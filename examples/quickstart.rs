//! Quickstart: schedule one busy hour on the paper's 6-edge testbed.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the small-scale scenario (1 application, 3 model versions,
//! 2x Jetson NX + 2x Jetson Nano + 2x Atlas 200DK), generates a bursty
//! diurnal workload trace, runs the BIRP scheduler for 24 slots and prints
//! the headline metrics.

use birp::core::{run_scheduler, Birp, RunConfig};
use birp::mab::MabConfig;
use birp::models::Catalog;
use birp::workload::{TraceConfig, TraceStats};

fn main() {
    let seed = 42;
    let catalog = Catalog::small_scale(seed);
    println!("edge collaborative system:");
    for e in &catalog.edges {
        println!(
            "  {:<16} mem {:>5.0} MB  bw {:>5.1} Mbps  gamma(ms) {:?}",
            e.name,
            e.memory_mb,
            e.bandwidth_mbps,
            e.gamma_ms.iter().map(|g| g.round()).collect::<Vec<_>>()
        );
    }

    let trace = TraceConfig {
        num_slots: 24,
        ..TraceConfig::small_scale(seed)
    }
    .generate();
    let stats = TraceStats::compute(&trace);
    println!(
        "\nworkload: {} requests over {} slots (peak/mean {:.2}, edge imbalance {:.2})",
        stats.total_requests,
        trace.num_slots(),
        stats.peak_to_mean,
        stats.edge_imbalance
    );

    let mut birp = Birp::new(catalog.clone(), MabConfig::paper_preset());
    let result = run_scheduler(&catalog, &trace, &mut birp, &RunConfig::default());

    let m = &result.metrics;
    println!("\nBIRP results:");
    println!("  served               {:>8}", m.served);
    println!("  dropped              {:>8}", m.dropped);
    println!("  total inference loss {:>11.2}", m.total_loss);
    println!("  SLO failure rate     {:>10.2}%", m.failure_rate_pct);
    println!(
        "  median completion    {:>10.3} (x slot)",
        m.cdf.quantile(0.5)
    );
    println!(
        "  p95 completion       {:>10.3} (x slot)",
        m.cdf.quantile(0.95)
    );
}
