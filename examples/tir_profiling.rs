//! Offline TIR profiling: reproduce the paper's Fig. 2 measurement +
//! piecewise-fit procedure on the simulated Jetson Nano.
//!
//! ```bash
//! cargo run --release --example tir_profiling
//! ```

use birp::core::experiments::fig2_experiment;

fn main() {
    let results = fig2_experiment(11, 16, 5);
    for r in &results {
        println!("model {}", r.model);
        println!(
            "  ground truth : TIR = b^{:.2} for b <= {}, {:.2} beyond",
            r.truth.eta, r.truth.beta, r.truth.c
        );
        println!(
            "  fitted       : TIR = b^{:.2} for b <= {}, {:.2} beyond (rmse {:.4}, {} samples)",
            r.fit.params.eta,
            r.fit.params.beta,
            r.fit.params.c,
            r.fit.rmse(),
            r.fit.n
        );
        // Mean measured TIR per batch size (the raw dots of Fig. 2).
        print!("  measured TIR :");
        for b in [1u32, 2, 4, 8, 12, 16] {
            let vals: Vec<f64> = r
                .samples
                .iter()
                .filter(|s| s.batch == b)
                .map(|s| s.tir)
                .collect();
            let mean = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
            print!(" b={b}:{mean:.2}");
        }
        println!("\n");
    }
}
