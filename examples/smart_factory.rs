//! Industrial-IoT scenario: the paper's large-scale setup (5 intelligent
//! applications x 5 model versions on 6 heterogeneous edges) driving a
//! smart-factory floor through a simulated day.
//!
//! ```bash
//! cargo run --release --example smart_factory
//! ```
//!
//! The five applications mirror the paper's Section 5.1 workload mix:
//! object detection (conveyor defect spotting), face recognition (access
//! control), image recognition (part classification), NLU (voice-driven
//! work orders) and semantic segmentation (AGV navigation).

use birp::core::{run_scheduler, Birp, MaxBatch, Oaei, RunConfig, Scheduler};
use birp::mab::MabConfig;
use birp::models::Catalog;
use birp::workload::TraceConfig;

fn main() {
    let seed = 7;
    let catalog = Catalog::large_scale(seed);
    println!(
        "smart factory: {} applications, {} model versions, {} edges",
        catalog.num_apps(),
        catalog.num_models(),
        catalog.num_edges()
    );
    for app in &catalog.apps {
        let losses: Vec<f64> = app.models.iter().map(|&m| catalog.model(m).loss).collect();
        println!(
            "  {:<22} request {:>4.1} MB, version losses {:?}",
            app.name, app.request_mb, losses
        );
    }

    // One simulated day at 15-minute granularity = 96 slots.
    let trace = TraceConfig {
        num_slots: 96,
        ..TraceConfig::large_scale(seed)
    }
    .generate();
    println!(
        "\nworkload: {} inference requests over one day\n",
        trace.total()
    );

    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Birp::new(catalog.clone(), MabConfig::paper_preset())),
        Box::new(Oaei::new(catalog.clone(), seed)),
        Box::new(MaxBatch::paper_default(catalog.clone())),
    ];

    println!(
        "{:<10} {:>12} {:>8} {:>14}",
        "scheduler", "total loss", "p%", "loss/request"
    );
    for s in schedulers.iter_mut() {
        let r = run_scheduler(&catalog, &trace, s.as_mut(), &RunConfig::default());
        let m = &r.metrics;
        let per_req = if m.served > 0 {
            m.total_loss / m.served as f64
        } else {
            f64::NAN
        };
        println!(
            "{:<10} {:>12.1} {:>7.2}% {:>14.4}",
            r.scheduler, m.total_loss, m.failure_rate_pct, per_req
        );
    }

    println!("\n(loss/request closer to 0.15 means the accurate 'xl' models carried the traffic;");
    println!(" closer to 0.49 means the schedulers fell back to tiny models under pressure)");
}
