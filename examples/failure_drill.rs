//! Failure drill: how does each scheduler ride out an edge outage?
//!
//! ```bash
//! cargo run --release --example failure_drill
//! ```
//!
//! Slots 8..16 take down edge 0 (a Jetson NX, the fastest device); slots
//! 16..24 degrade edge 4 (an Atlas) to a third of its speed. BIRP's bandit
//! notices the collapsing throughput-improvement ratios and steers work
//! away; the oblivious MAX baseline keeps feeding the dead edge. The final
//! row turns on the resilience layer (DESIGN.md §10): the health monitor
//! quarantines the dark edge outright and reroutes its queue.

use birp::core::{run_scheduler, Birp, HealthConfig, MaxBatch, RunConfig, Scheduler};
use birp::mab::MabConfig;
use birp::models::{Catalog, EdgeId};
use birp::sim::{FaultPlan, SimConfig};
use birp::workload::TraceConfig;

fn main() {
    let catalog = Catalog::small_scale(42);
    let trace = TraceConfig {
        num_slots: 32,
        mean_rate: 6.0,
        ..TraceConfig::small_scale(3)
    }
    .generate();

    let faults = FaultPlan::none()
        .with_outage(EdgeId(0), 8, 16)
        .with_degradation(EdgeId(4), 16, 24, 3.0);

    println!("fault plan: edge 0 dark for slots 8..16, edge 4 at 1/3 speed for 16..24\n");
    println!(
        "{:<10} {:>12} {:>8} {:>9} {:>10}",
        "scheduler", "total loss", "p%", "dropped", "p95 compl"
    );

    let mut variants: Vec<(Box<dyn Scheduler>, bool)> = vec![
        (
            Box::new(Birp::new(catalog.clone(), MabConfig::paper_preset())),
            false,
        ),
        (Box::new(MaxBatch::paper_default(catalog.clone())), false),
        (
            Box::new(Birp::new(catalog.clone(), MabConfig::paper_preset())),
            true,
        ),
    ];
    for (s, resilient) in variants.iter_mut() {
        let cfg = RunConfig {
            sim: SimConfig {
                faults: faults.clone(),
                ..Default::default()
            },
            resilience: resilient.then(HealthConfig::default),
            ..Default::default()
        };
        let r = run_scheduler(&catalog, &trace, s.as_mut(), &cfg);
        let m = &r.metrics;
        let label = if *resilient {
            format!("{}+res", r.scheduler)
        } else {
            r.scheduler.clone()
        };
        println!(
            "{:<10} {:>12.1} {:>7.2}% {:>9} {:>10.3}",
            label,
            m.total_loss,
            m.failure_rate_pct,
            m.dropped,
            m.cdf.quantile(0.95)
        );
        if let Some(h) = &r.health {
            println!(
                "           quarantined {} episode(s), rerouted {}, {} probes",
                h.events.len(),
                h.rerouted,
                h.probes
            );
        }
    }

    println!("\n(compare against a healthy run with `--example baseline_comparison`)");
}
