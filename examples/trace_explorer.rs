//! Workload trace explorer: see what the generator's knobs do, and round
//! trip a trace through CSV — the path for plugging in external traces.
//!
//! ```bash
//! cargo run --release --example trace_explorer
//! ```

use birp::workload::{gen::TraceConfig, io, stats::TraceStats};

fn main() {
    println!("knob sweep on the small-scale generator (seed 42):\n");
    println!(
        "{:<34} {:>9} {:>10} {:>11} {:>9}",
        "configuration", "total", "peak/mean", "imbalance", "gini"
    );
    let base = TraceConfig {
        num_slots: 96,
        ..TraceConfig::small_scale(42)
    };
    let variants: Vec<(&str, TraceConfig)> = vec![
        ("baseline", base.clone()),
        (
            "no bursts (burstiness=0)",
            TraceConfig {
                burstiness: 0.0,
                ..base.clone()
            },
        ),
        (
            "heavy bursts (burstiness=0.8)",
            TraceConfig {
                burstiness: 0.8,
                ..base.clone()
            },
        ),
        (
            "uniform edges (imbalance=0)",
            TraceConfig {
                imbalance: 0.0,
                ..base.clone()
            },
        ),
        (
            "hot edges (imbalance=1.5)",
            TraceConfig {
                imbalance: 1.5,
                ..base.clone()
            },
        ),
        (
            "flat day (amplitude=0)",
            TraceConfig {
                diurnal_amplitude: 0.0,
                ..base.clone()
            },
        ),
        (
            "strong diurnal (amplitude=0.9)",
            TraceConfig {
                diurnal_amplitude: 0.9,
                ..base
            },
        ),
    ];
    for (label, cfg) in variants {
        let t = cfg.generate();
        let s = TraceStats::compute(&t);
        println!(
            "{:<34} {:>9} {:>10.2} {:>11.2} {:>9.3}",
            label, s.total_requests, s.peak_to_mean, s.edge_imbalance, s.edge_gini
        );
    }

    // CSV round trip.
    let trace = TraceConfig {
        num_slots: 8,
        ..TraceConfig::small_scale(1)
    }
    .generate();
    let csv = io::to_csv(&trace);
    let back = io::from_csv(
        &csv,
        Some((trace.num_slots(), trace.num_apps(), trace.num_edges())),
    )
    .expect("roundtrip");
    assert_eq!(trace, back);
    println!(
        "\nCSV round trip OK ({} bytes for 8 slots); format:",
        csv.len()
    );
    for line in csv.lines().take(4) {
        println!("  {line}");
    }
}
