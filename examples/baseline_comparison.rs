//! Head-to-head comparison of all four schedulers on the small-scale
//! scenario — a miniature of the paper's Fig. 6 experiment.
//!
//! ```bash
//! cargo run --release --example baseline_comparison
//! ```

use birp::core::experiments::{compare_schedulers, ComparisonConfig};

fn main() {
    let mut cfg = ComparisonConfig::small_scale(42, 48);
    cfg.trace.mean_rate = 7.0;
    println!(
        "running {} schedulers over {} slots (seed {})...\n",
        cfg.schedulers.len(),
        cfg.trace.num_slots,
        cfg.seed
    );

    let mut results = compare_schedulers(&cfg);
    results.sort_by(|a, b| {
        a.run
            .metrics
            .total_loss
            .partial_cmp(&b.run.metrics.total_loss)
            .unwrap()
    });

    println!(
        "{:<10} {:>10} {:>9} {:>12} {:>8} {:>10} {:>10}",
        "scheduler", "served", "dropped", "total loss", "p%", "median t", "p95 t"
    );
    for r in &results {
        let m = &r.run.metrics;
        println!(
            "{:<10} {:>10} {:>9} {:>12.1} {:>7.2}% {:>10.3} {:>10.3}",
            r.run.scheduler,
            m.served,
            m.dropped,
            m.total_loss,
            m.failure_rate_pct,
            m.cdf.quantile(0.5),
            m.cdf.quantile(0.95),
        );
    }

    let birp = results.iter().find(|r| r.run.scheduler == "BIRP").unwrap();
    let oaei = results.iter().find(|r| r.run.scheduler == "OAEI").unwrap();
    let dl = 100.0 * (1.0 - birp.run.metrics.total_loss / oaei.run.metrics.total_loss);
    println!("\nBIRP reduces inference loss vs OAEI by {dl:.1}% on this run");
}
