//! # birp-sim
//!
//! Slot-driven simulator of the edge collaborative system — the substitute
//! for the paper's physical 3-type / 6-device testbed (see DESIGN.md).
//!
//! Each slot, a scheduler (from `birp-core`) hands the simulator a
//! [`Schedule`]: the workload routing `y`, the model deployments `x` and
//! batch sizes `b`. The simulator then
//!
//! 1. checks the schedule's structural feasibility ([`schedule::validate`]),
//! 2. executes every edge's batches against the *ground-truth* TIR curves
//!    with multiplicative measurement noise ([`executor`]),
//! 3. charges network transfers and model (re)deployments against the
//!    per-edge bandwidth budget,
//! 4. emits per-request completion times, per-batch observed TIRs (the MAB
//!    feedback signal), loss and SLO accounting ([`SlotOutcome`]).
//!
//! Edges execute independently within a slot, so the executor fans out with
//! rayon; determinism is preserved by giving every (edge, slot) pair its own
//! counter-derived RNG stream.
//!
//! The [`utilization`] module reproduces the serial-execution resource
//! measurements of paper Table 1.

pub mod energy;
pub mod executor;
pub mod faults;
pub mod metrics;
pub mod noise;
pub mod schedule;
pub mod utilization;

pub use energy::{energy_per_request, slot_energy, PowerProfile};
pub use executor::{BatchOutcome, EdgeSim, SimConfig, SlotOutcome};
pub use faults::{Degradation, FaultPlan, Flaky, LinkFault, Outage, OUTAGE_COMPLETION};
pub use metrics::{Cdf, MetricsCollector, RunMetrics};
pub use schedule::{
    network_usage_mb, validate, validate_against_trace, Deployment, Routing, Schedule,
    ScheduleError,
};
pub use utilization::{measure_utilization, UtilSample};
