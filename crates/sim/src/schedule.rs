//! The per-slot decision object and its structural validation.
//!
//! A [`Schedule`] encodes exactly the paper's three decision families for
//! one slot: `y^t_{ikk'}` ([`Routing`]), `x^t_{ijk}` and `b^t_{ijk}`
//! ([`Deployment`], at most one per (edge, model)).

use birp_models::{AppId, Catalog, EdgeId, ModelId};
use birp_workload::Trace;
use serde::{Deserialize, Serialize};

/// One deployed model executing one batch this slot (paper: `x_{ijk} = 1`
/// with batch size `b_{ijk}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Deployment {
    pub app: AppId,
    pub model: ModelId,
    /// Batch size; >= 1 (a deployed model with `b = 0` is not deployed).
    pub batch: u32,
}

/// The routing tensor `y[app][from][to]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Routing {
    num_apps: usize,
    num_edges: usize,
    flows: Vec<u32>,
}

impl Routing {
    pub fn zeros(num_apps: usize, num_edges: usize) -> Self {
        Routing {
            num_apps,
            num_edges,
            flows: vec![0; num_apps * num_edges * num_edges],
        }
    }

    #[inline]
    fn idx(&self, a: usize, from: usize, to: usize) -> usize {
        (a * self.num_edges + from) * self.num_edges + to
    }

    #[inline]
    pub fn get(&self, app: AppId, from: EdgeId, to: EdgeId) -> u32 {
        self.flows[self.idx(app.index(), from.index(), to.index())]
    }

    #[inline]
    pub fn set(&mut self, app: AppId, from: EdgeId, to: EdgeId, v: u32) {
        let i = self.idx(app.index(), from.index(), to.index());
        self.flows[i] = v;
    }

    #[inline]
    pub fn add(&mut self, app: AppId, from: EdgeId, to: EdgeId, v: u32) {
        let i = self.idx(app.index(), from.index(), to.index());
        self.flows[i] += v;
    }

    /// Requests of `app` leaving `from` (sum over destinations != from).
    pub fn outbound(&self, app: AppId, from: EdgeId) -> u32 {
        (0..self.num_edges)
            .filter(|&to| to != from.index())
            .map(|to| self.get(app, from, EdgeId(to)))
            .sum()
    }

    /// Requests of `app` arriving at `to` from elsewhere.
    pub fn inbound(&self, app: AppId, to: EdgeId) -> u32 {
        (0..self.num_edges)
            .filter(|&from| from != to.index())
            .map(|from| self.get(app, EdgeId(from), to))
            .sum()
    }

    /// All requests of `app` to be executed at `to` (local + remote).
    pub fn arriving(&self, app: AppId, to: EdgeId) -> u32 {
        (0..self.num_edges)
            .map(|from| self.get(app, EdgeId(from), to))
            .sum()
    }

    /// Total requests routed away from `from` for `app`, including the
    /// self-loop (locally executed).
    pub fn departing_total(&self, app: AppId, from: EdgeId) -> u32 {
        (0..self.num_edges)
            .map(|to| self.get(app, from, EdgeId(to)))
            .sum()
    }
}

/// The full per-slot decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    pub t: usize,
    /// Deployments per edge (outer index = edge).
    pub deployments: Vec<Vec<Deployment>>,
    pub routing: Routing,
    /// Requests left unassigned per `[app][edge-of-origin]`; the runner
    /// carries them into the next slot.
    pub unserved: Vec<Vec<u32>>,
    /// If true the executor runs each deployment's `batch` requests as
    /// single-request serial executions (no TIR benefit) — how the OAEI
    /// baseline executes.
    pub serial: bool,
}

impl Schedule {
    /// An empty schedule (nothing deployed, everything unserved).
    pub fn empty(t: usize, num_apps: usize, num_edges: usize) -> Self {
        Schedule {
            t,
            deployments: vec![Vec::new(); num_edges],
            routing: Routing::zeros(num_apps, num_edges),
            unserved: vec![vec![0; num_edges]; num_apps],
            serial: false,
        }
    }

    /// Total requests executed this slot.
    pub fn served(&self) -> u64 {
        self.deployments
            .iter()
            .flatten()
            .map(|d| d.batch as u64)
            .sum()
    }

    /// Total requests left unserved.
    pub fn total_unserved(&self) -> u64 {
        self.unserved.iter().flatten().map(|&v| v as u64).sum()
    }

    /// Inference loss `Σ loss_ij * b_ijk` of this schedule (paper Eq. 10,
    /// one slot).
    pub fn loss(&self, catalog: &Catalog) -> f64 {
        self.deployments
            .iter()
            .flatten()
            .map(|d| catalog.model(d.model).loss * d.batch as f64)
            .sum()
    }

    /// Whether model `m` is deployed on edge `e` (the `x^t_{ijk}` bit).
    pub fn is_deployed(&self, e: EdgeId, m: ModelId) -> bool {
        self.deployments[e.index()].iter().any(|d| d.model == m)
    }
}

/// Structural feasibility violations.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// Eq. 3 broken: routed + unserved != demand.
    FlowConservation {
        app: AppId,
        edge: EdgeId,
        routed: u32,
        unserved: u32,
        demand: u32,
    },
    /// Eq. 5 broken: batches at an edge != arriving requests.
    BatchMismatch {
        app: AppId,
        edge: EdgeId,
        batches: u32,
        arriving: u32,
    },
    /// A deployment with batch 0 or above the global cap.
    BadBatch {
        edge: EdgeId,
        model: ModelId,
        batch: u32,
    },
    /// Two deployments of the same model on one edge.
    DuplicateDeployment { edge: EdgeId, model: ModelId },
    /// A deployment whose model does not belong to its app.
    WrongApp {
        edge: EdgeId,
        model: ModelId,
        app: AppId,
    },
    /// Eq. 6 broken: memory over capacity.
    MemoryExceeded {
        edge: EdgeId,
        used_mb: f64,
        capacity_mb: f64,
    },
    /// Eq. 9 broken: network over budget.
    NetworkExceeded {
        edge: EdgeId,
        used_mb: f64,
        budget_mb: f64,
    },
    /// Shape mismatch against the catalog.
    Shape(String),
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::FlowConservation { app, edge, routed, unserved, demand } => write!(
                f,
                "flow conservation broken at ({app},{edge}): routed {routed} + unserved {unserved} != demand {demand}"
            ),
            ScheduleError::BatchMismatch { app, edge, batches, arriving } => write!(
                f,
                "batch total {batches} != arriving {arriving} for ({app},{edge})"
            ),
            ScheduleError::BadBatch { edge, model, batch } => {
                write!(f, "deployment ({edge},{model}) has invalid batch {batch}")
            }
            ScheduleError::DuplicateDeployment { edge, model } => {
                write!(f, "model {model} deployed twice on {edge}")
            }
            ScheduleError::WrongApp { edge, model, app } => {
                write!(f, "deployment ({edge},{model}) does not belong to app {app}")
            }
            ScheduleError::MemoryExceeded { edge, used_mb, capacity_mb } => {
                write!(f, "memory on {edge}: {used_mb:.1} MB > {capacity_mb:.1} MB")
            }
            ScheduleError::NetworkExceeded { edge, used_mb, budget_mb } => {
                write!(f, "network on {edge}: {used_mb:.1} MB > {budget_mb:.1} MB")
            }
            ScheduleError::Shape(s) => write!(f, "shape error: {s}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Network MB charged to edge `k` by `schedule` (paper Eq. 9 LHS):
/// request forwarding in both directions plus compressed-weight transfers
/// for newly deployed models (`prev` = previous slot's deployment bits).
pub fn network_usage_mb(
    catalog: &Catalog,
    schedule: &Schedule,
    prev: Option<&Schedule>,
    k: EdgeId,
) -> f64 {
    let mut used = 0.0;
    for app in &catalog.apps {
        let zeta = app.request_mb;
        used += zeta
            * (schedule.routing.outbound(app.id, k) + schedule.routing.inbound(app.id, k)) as f64;
    }
    for d in &schedule.deployments[k.index()] {
        let was_deployed = prev.is_some_and(|p| p.is_deployed(k, d.model));
        if !was_deployed {
            used += catalog.model(d.model).compressed_mb;
        }
    }
    used
}

/// Validate the structural constraints (Eqs. 3–6, 9) of `schedule` against
/// a per-(app, edge) demand accessor (the runner passes trace demand plus
/// carry-over). Compute (Eq. 8) is deliberately *not* checked: planners
/// satisfy it w.r.t. their TIR estimates, and overruns against ground truth
/// are precisely how SLO violations arise.
pub fn validate(
    catalog: &Catalog,
    demand: &impl Fn(AppId, EdgeId) -> u32,
    schedule: &Schedule,
    prev: Option<&Schedule>,
) -> Result<(), ScheduleError> {
    let (na, ne) = (catalog.num_apps(), catalog.num_edges());
    if schedule.deployments.len() != ne {
        return Err(ScheduleError::Shape(format!(
            "deployments for {} edges, catalog has {ne}",
            schedule.deployments.len()
        )));
    }
    if schedule.unserved.len() != na || schedule.unserved.iter().any(|v| v.len() != ne) {
        return Err(ScheduleError::Shape("unserved shape mismatch".into()));
    }

    // Eq. 3 + unserved bookkeeping.
    for app in &catalog.apps {
        for e in 0..ne {
            let edge = EdgeId(e);
            let d = demand(app.id, edge);
            let routed = schedule.routing.departing_total(app.id, edge);
            let unserved = schedule.unserved[app.id.index()][e];
            if routed + unserved != d {
                return Err(ScheduleError::FlowConservation {
                    app: app.id,
                    edge,
                    routed,
                    unserved,
                    demand: d,
                });
            }
        }
    }

    // Deployment sanity + Eq. 5 per (app, edge).
    for e in 0..ne {
        let edge = EdgeId(e);
        let mut seen = std::collections::HashSet::new();
        for d in &schedule.deployments[e] {
            // Serial schedules may assign any number of requests to a model
            // (they run one at a time); batched ones are capped by MAX_BATCH.
            let over_cap = !schedule.serial && d.batch > birp_models::catalog::MAX_BATCH;
            if d.batch == 0 || over_cap {
                return Err(ScheduleError::BadBatch {
                    edge,
                    model: d.model,
                    batch: d.batch,
                });
            }
            if !seen.insert(d.model) {
                return Err(ScheduleError::DuplicateDeployment {
                    edge,
                    model: d.model,
                });
            }
            if catalog.model(d.model).app != d.app {
                return Err(ScheduleError::WrongApp {
                    edge,
                    model: d.model,
                    app: d.app,
                });
            }
        }
        for app in &catalog.apps {
            let batches: u32 = schedule.deployments[e]
                .iter()
                .filter(|d| d.app == app.id)
                .map(|d| d.batch)
                .sum();
            let arriving = schedule.routing.arriving(app.id, edge);
            if batches != arriving {
                return Err(ScheduleError::BatchMismatch {
                    app: app.id,
                    edge,
                    batches,
                    arriving,
                });
            }
        }

        // Eq. 6: memory. Serial execution holds one request's intermediates
        // at a time; batched execution holds the whole batch's.
        let used_mb: f64 = schedule.deployments[e]
            .iter()
            .map(|d| {
                let eff_batch = if schedule.serial { 1 } else { d.batch };
                catalog.model(d.model).memory_mb(eff_batch)
            })
            .sum();
        let capacity = catalog.edge(edge).memory_mb;
        if used_mb > capacity + 1e-6 {
            return Err(ScheduleError::MemoryExceeded {
                edge,
                used_mb,
                capacity_mb: capacity,
            });
        }

        // Eq. 9: network.
        let net = network_usage_mb(catalog, schedule, prev, edge);
        let budget = catalog.edge(edge).network_budget_mb;
        if net > budget + 1e-6 {
            return Err(ScheduleError::NetworkExceeded {
                edge,
                used_mb: net,
                budget_mb: budget,
            });
        }
    }
    Ok(())
}

/// Convenience: validate against the raw trace demand of `schedule.t`
/// (no carry-over).
pub fn validate_against_trace(
    catalog: &Catalog,
    trace: &Trace,
    schedule: &Schedule,
    prev: Option<&Schedule>,
) -> Result<(), ScheduleError> {
    let demand = |a: AppId, e: EdgeId| trace.demand(schedule.t, a, e);
    validate(catalog, &demand, schedule, prev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use birp_models::Catalog;

    fn tiny_world() -> (Catalog, Trace) {
        let catalog = Catalog::small_scale(1);
        let mut trace = Trace::zeros(1, catalog.num_apps(), catalog.num_edges());
        trace.set_demand(0, AppId(0), EdgeId(0), 4);
        trace.set_demand(0, AppId(0), EdgeId(1), 2);
        (catalog, trace)
    }

    /// 4 requests at edge 0 (3 local + 1 moved to edge 1), 2 local at edge 1.
    fn good_schedule(catalog: &Catalog) -> Schedule {
        let mut s = Schedule::empty(0, catalog.num_apps(), catalog.num_edges());
        s.routing.set(AppId(0), EdgeId(0), EdgeId(0), 3);
        s.routing.set(AppId(0), EdgeId(0), EdgeId(1), 1);
        s.routing.set(AppId(0), EdgeId(1), EdgeId(1), 2);
        s.deployments[0].push(Deployment {
            app: AppId(0),
            model: ModelId(0),
            batch: 3,
        });
        s.deployments[1].push(Deployment {
            app: AppId(0),
            model: ModelId(1),
            batch: 3,
        });
        s
    }

    #[test]
    fn valid_schedule_passes() {
        let (catalog, trace) = tiny_world();
        let s = good_schedule(&catalog);
        validate_against_trace(&catalog, &trace, &s, None).unwrap();
        assert_eq!(s.served(), 6);
        assert_eq!(s.total_unserved(), 0);
    }

    #[test]
    fn loss_is_weighted_batch_sum() {
        let (catalog, _) = tiny_world();
        let s = good_schedule(&catalog);
        let expected = catalog.models[0].loss * 3.0 + catalog.models[1].loss * 3.0;
        assert!((s.loss(&catalog) - expected).abs() < 1e-12);
    }

    #[test]
    fn flow_conservation_violation_detected() {
        let (catalog, trace) = tiny_world();
        let mut s = good_schedule(&catalog);
        s.routing.set(AppId(0), EdgeId(0), EdgeId(1), 0); // lose a request
        assert!(matches!(
            validate_against_trace(&catalog, &trace, &s, None),
            Err(ScheduleError::FlowConservation { .. })
        ));
    }

    #[test]
    fn unserved_requests_balance_flow() {
        let (catalog, trace) = tiny_world();
        let mut s = good_schedule(&catalog);
        s.routing.set(AppId(0), EdgeId(0), EdgeId(1), 0);
        s.unserved[0][0] = 1;
        // Edge 1 now receives only 2; shrink its batch.
        s.deployments[1][0].batch = 2;
        validate_against_trace(&catalog, &trace, &s, None).unwrap();
    }

    #[test]
    fn batch_mismatch_detected() {
        let (catalog, trace) = tiny_world();
        let mut s = good_schedule(&catalog);
        s.deployments[1][0].batch = 2; // arriving 3, batches 2
        assert!(matches!(
            validate_against_trace(&catalog, &trace, &s, None),
            Err(ScheduleError::BatchMismatch { .. })
        ));
    }

    #[test]
    fn duplicate_and_zero_batch_detected() {
        let (catalog, trace) = tiny_world();
        let mut s = good_schedule(&catalog);
        s.deployments[0].push(Deployment {
            app: AppId(0),
            model: ModelId(0),
            batch: 0,
        });
        assert!(matches!(
            validate_against_trace(&catalog, &trace, &s, None),
            Err(ScheduleError::BadBatch { .. })
        ));
        let mut s = good_schedule(&catalog);
        // Split edge 0's batch into two deployments of the same model.
        s.deployments[0][0].batch = 2;
        s.deployments[0].push(Deployment {
            app: AppId(0),
            model: ModelId(0),
            batch: 1,
        });
        assert!(matches!(
            validate_against_trace(&catalog, &trace, &s, None),
            Err(ScheduleError::DuplicateDeployment { .. })
        ));
    }

    #[test]
    fn network_accounting_charges_transfers_and_new_models() {
        let (catalog, _) = tiny_world();
        let s = good_schedule(&catalog);
        // Edge 0: 1 outbound request * 1.5 MB + new model 0 weights.
        let used0 = network_usage_mb(&catalog, &s, None, EdgeId(0));
        let expect0 = 1.5 + catalog.models[0].compressed_mb;
        assert!((used0 - expect0).abs() < 1e-9, "{used0} vs {expect0}");
        // With prev = same schedule, no model transfer cost.
        let used0_warm = network_usage_mb(&catalog, &s, Some(&s), EdgeId(0));
        assert!((used0_warm - 1.5).abs() < 1e-9);
        // Edge 2 is idle: nothing charged.
        assert_eq!(network_usage_mb(&catalog, &s, None, EdgeId(2)), 0.0);
    }

    #[test]
    fn routing_helpers() {
        let mut r = Routing::zeros(1, 3);
        r.set(AppId(0), EdgeId(0), EdgeId(1), 5);
        r.set(AppId(0), EdgeId(0), EdgeId(0), 2);
        r.add(AppId(0), EdgeId(2), EdgeId(1), 3);
        assert_eq!(r.outbound(AppId(0), EdgeId(0)), 5);
        assert_eq!(r.inbound(AppId(0), EdgeId(1)), 8);
        assert_eq!(r.arriving(AppId(0), EdgeId(1)), 8);
        assert_eq!(r.departing_total(AppId(0), EdgeId(0)), 7);
    }
}
