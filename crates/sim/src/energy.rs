//! Edge energy model.
//!
//! The paper notes that edge accelerators "prioritize energy efficiency"
//! (Section 2.1); this module quantifies the energy side of scheduling
//! decisions so experiments can report joules per request next to loss and
//! SLO metrics. Power figures follow the boards' published envelopes:
//! Jetson NX 10/20 W modes, Jetson Nano 5/10 W, Atlas 200DK ~9.5/24 W.

use serde::{Deserialize, Serialize};

use birp_models::{Catalog, DeviceKind, EdgeId};

use crate::executor::SlotOutcome;

/// Idle / busy power draw of a device kind, watts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerProfile {
    pub idle_w: f64,
    pub busy_w: f64,
}

impl PowerProfile {
    /// Nominal envelope for a device kind.
    pub fn of(kind: DeviceKind) -> PowerProfile {
        match kind {
            DeviceKind::JetsonNX => PowerProfile {
                idle_w: 5.0,
                busy_w: 20.0,
            },
            DeviceKind::JetsonNano => PowerProfile {
                idle_w: 2.0,
                busy_w: 10.0,
            },
            DeviceKind::Atlas200DK => PowerProfile {
                idle_w: 6.0,
                busy_w: 24.0,
            },
        }
    }

    /// Energy for a slot of `slot_ms` with `busy_ms` of accelerator
    /// activity, joules.
    pub fn slot_energy_j(&self, slot_ms: f64, busy_ms: f64) -> f64 {
        let busy = busy_ms.clamp(0.0, slot_ms.max(busy_ms));
        (self.idle_w * slot_ms + (self.busy_w - self.idle_w) * busy) / 1000.0
    }
}

/// Per-edge energy of one executed slot, joules.
pub fn slot_energy(catalog: &Catalog, outcome: &SlotOutcome) -> Vec<f64> {
    (0..catalog.num_edges())
        .map(|e| {
            let kind = catalog.edge(EdgeId(e)).kind;
            PowerProfile::of(kind).slot_energy_j(catalog.slot_ms, outcome.compute_used_ms[e])
        })
        .collect()
}

/// Joules per served request for one slot (NaN when nothing served).
pub fn energy_per_request(catalog: &Catalog, outcome: &SlotOutcome) -> f64 {
    let total: f64 = slot_energy(catalog, outcome).iter().sum();
    if outcome.served == 0 {
        f64::NAN
    } else {
        total / outcome.served as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{EdgeSim, SimConfig};
    use crate::schedule::{Deployment, Schedule};
    use birp_models::{AppId, ModelId};

    #[test]
    fn idle_slot_costs_idle_power() {
        let p = PowerProfile::of(DeviceKind::JetsonNano);
        let e = p.slot_energy_j(10_000.0, 0.0);
        assert!((e - 2.0 * 10.0).abs() < 1e-9); // 2 W x 10 s = 20 J
    }

    #[test]
    fn busy_time_adds_delta_power() {
        let p = PowerProfile {
            idle_w: 5.0,
            busy_w: 20.0,
        };
        let e = p.slot_energy_j(10_000.0, 4_000.0);
        // 5 W x 10 s + 15 W x 4 s = 50 + 60 = 110 J.
        assert!((e - 110.0).abs() < 1e-9);
    }

    #[test]
    fn batching_saves_energy_per_request() {
        let catalog = Catalog::small_scale(5);
        let mut s = Schedule::empty(0, catalog.num_apps(), catalog.num_edges());
        s.routing.set(AppId(0), EdgeId(0), EdgeId(0), 8);
        s.deployments[0].push(Deployment {
            app: AppId(0),
            model: ModelId(0),
            batch: 8,
        });
        let sim = EdgeSim::new(
            catalog.clone(),
            SimConfig {
                exec_noise_sigma: 0.0,
                ..Default::default()
            },
        );

        let batched = sim.execute_slot(&s, None);
        let mut serial = s.clone();
        serial.serial = true;
        let serial_out = sim.execute_slot(&serial, None);

        let e_batched = energy_per_request(&catalog, &batched);
        let e_serial = energy_per_request(&catalog, &serial_out);
        assert!(
            e_batched < e_serial,
            "batched {e_batched} J/req should beat serial {e_serial} J/req"
        );
    }

    #[test]
    fn per_edge_vector_length() {
        let catalog = Catalog::small_scale(5);
        let s = Schedule::empty(0, catalog.num_apps(), catalog.num_edges());
        let sim = EdgeSim::new(catalog.clone(), SimConfig::default());
        let out = sim.execute_slot(&s, None);
        let v = slot_energy(&catalog, &out);
        assert_eq!(v.len(), catalog.num_edges());
        assert!(v.iter().all(|&j| j > 0.0)); // idle power is never free
        assert!(energy_per_request(&catalog, &out).is_nan());
    }
}
