//! Serial-execution resource-utilisation measurement (paper Table 1).
//!
//! The paper measures CPU/GPU/NPU utilisation and FPS while serially
//! executing one model on one device. The simulator's equivalent samples
//! the device's ground-truth utilisation profile with Gaussian measurement
//! noise over a configurable number of sampling windows, exactly the way a
//! `tegrastats`-style poller would.

use rand::RngExt;
use serde::{Deserialize, Serialize};

use birp_models::{Catalog, EdgeId, ModelId, UtilProfile};

use crate::noise::stream_rng;

/// One utilisation measurement (means over the sampling windows).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UtilSample {
    pub edge: EdgeId,
    pub model: ModelId,
    pub cpu_pct: f64,
    pub gpu_pct: f64,
    pub npu_pct: f64,
    pub npu_core_pct: f64,
    pub avg_fps: f64,
    pub windows: usize,
}

impl UtilSample {
    pub fn profile(&self) -> UtilProfile {
        UtilProfile {
            cpu_pct: self.cpu_pct,
            gpu_pct: self.gpu_pct,
            npu_pct: self.npu_pct,
            npu_core_pct: self.npu_core_pct,
        }
    }
}

/// Measure utilisation of `model` running serially on `edge` for
/// `windows` sampling windows.
pub fn measure_utilization(
    catalog: &Catalog,
    edge: EdgeId,
    model: ModelId,
    windows: usize,
    seed: u64,
) -> UtilSample {
    let device = catalog.edge(edge);
    let truth = device.util[model.index()];
    let gamma = device.gamma_ms[model.index()];
    let mut rng = stream_rng(seed, edge.index(), model.index());

    let mut acc = [0.0f64; 4];
    let mut fps_acc = 0.0;
    let windows = windows.max(1);
    for _ in 0..windows {
        let jitter = |rng: &mut rand::rngs::StdRng, v: f64| -> f64 {
            if v <= 0.0 {
                0.0
            } else {
                (v + rng.random_range(-3.0..3.0)).clamp(0.0, 100.0)
            }
        };
        acc[0] += jitter(&mut rng, truth.cpu_pct);
        acc[1] += jitter(&mut rng, truth.gpu_pct);
        acc[2] += jitter(&mut rng, truth.npu_pct);
        acc[3] += jitter(&mut rng, truth.npu_core_pct);
        // FPS jitter mirrors the executor's multiplicative latency noise.
        let noisy_gamma = gamma * rng.random_range(0.96..1.04);
        fps_acc += 1000.0 / noisy_gamma;
    }
    let inv = 1.0 / windows as f64;
    UtilSample {
        edge,
        model,
        cpu_pct: acc[0] * inv,
        gpu_pct: acc[1] * inv,
        npu_pct: acc[2] * inv,
        npu_core_pct: acc[3] * inv,
        avg_fps: fps_acc * inv,
        windows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use birp_models::DeviceKind;

    #[test]
    fn measurement_tracks_table1_ground_truth() {
        let catalog = Catalog::table1(7);
        // Yolov4-t on the Nano: published 97.9 / 72.4 / 23.6 FPS.
        let s = measure_utilization(&catalog, EdgeId(0), ModelId(0), 200, 1);
        assert!((s.cpu_pct - 97.9).abs() < 1.0, "cpu {}", s.cpu_pct);
        assert!((s.gpu_pct - 72.4).abs() < 1.0, "gpu {}", s.gpu_pct);
        assert!((s.avg_fps - 23.6).abs() < 0.5, "fps {}", s.avg_fps);
        assert_eq!(s.npu_pct, 0.0);
    }

    #[test]
    fn atlas_reports_npu_not_gpu() {
        let catalog = Catalog::table1(7);
        assert_eq!(catalog.edge(EdgeId(1)).kind, DeviceKind::Atlas200DK);
        let s = measure_utilization(&catalog, EdgeId(1), ModelId(0), 100, 2);
        assert_eq!(s.gpu_pct, 0.0);
        assert!((s.npu_core_pct - 31.2).abs() < 1.5);
    }

    #[test]
    fn measurement_is_deterministic_per_seed() {
        let catalog = Catalog::table1(7);
        let a = measure_utilization(&catalog, EdgeId(0), ModelId(1), 50, 9);
        let b = measure_utilization(&catalog, EdgeId(0), ModelId(1), 50, 9);
        assert_eq!(a.cpu_pct, b.cpu_pct);
        assert_eq!(a.avg_fps, b.avg_fps);
        let c = measure_utilization(&catalog, EdgeId(0), ModelId(1), 50, 10);
        assert_ne!(a.cpu_pct, c.cpu_pct);
    }

    #[test]
    fn more_windows_tighten_the_estimate() {
        let catalog = Catalog::table1(7);
        let truth = catalog.edge(EdgeId(0)).util[2].cpu_pct;
        let coarse = measure_utilization(&catalog, EdgeId(0), ModelId(2), 3, 11);
        let fine = measure_utilization(&catalog, EdgeId(0), ModelId(2), 2000, 11);
        assert!((fine.cpu_pct - truth).abs() <= (coarse.cpu_pct - truth).abs() + 0.5);
        // The clamp at 100 % biases near-saturated readings slightly low,
        // exactly like a real utilisation poller; allow that bias.
        assert!((fine.cpu_pct - truth).abs() < 1.0);
    }

    #[test]
    fn util_profile_conversion() {
        let catalog = Catalog::table1(7);
        let s = measure_utilization(&catalog, EdgeId(0), ModelId(0), 10, 1);
        let p = s.profile();
        assert_eq!(p.cpu_pct, s.cpu_pct);
        assert_eq!(p.gpu_pct, s.gpu_pct);
    }
}
