//! The slot executor: runs a [`Schedule`] against ground truth.
//!
//! Each edge owns an accelerator that executes its deployed batches
//! sequentially (the paper time-slices models within the slot; a serialised
//! order with the same total busy time gives the same completion-time
//! distribution family). A batch's execution time is the ground-truth
//! batch latency (paper Eq. 7 with the *true* TIR curve) times log-normal
//! measurement noise. Batches whose application received redistributed
//! requests cannot start before those requests arrive over the wireless
//! link.
//!
//! Edges are mutually independent within a slot, so the executor fans out
//! over them with rayon; per-(edge, slot) RNG streams keep results
//! bit-identical across thread counts.

use rand::RngExt;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use birp_models::{AppId, Catalog, EdgeId, ModelId};

use crate::noise::{exec_noise, stream_rng};
use crate::schedule::{network_usage_mb, Schedule};

/// Simulator knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    pub seed: u64,
    /// Sigma of the multiplicative log-normal execution noise.
    pub exec_noise_sigma: f64,
    /// Randomise per-edge batch execution order (seeded); otherwise batches
    /// run in planner order.
    pub shuffle_batches: bool,
    /// Run the per-slot edge loop with rayon.
    pub parallel: bool,
    /// Injected outages / degradations (empty by default).
    #[serde(default)]
    pub faults: crate::faults::FaultPlan,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xB1E9,
            exec_noise_sigma: 0.08,
            shuffle_batches: true,
            parallel: true,
            faults: crate::faults::FaultPlan::none(),
        }
    }
}

/// One executed batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchOutcome {
    pub edge: EdgeId,
    pub app: AppId,
    pub model: ModelId,
    pub batch: u32,
    /// When the batch started on the accelerator, ms into the slot.
    pub start_ms: f64,
    /// Measured execution time, ms.
    pub exec_ms: f64,
    /// Completion time of every request in the batch, normalised by the
    /// slot duration (1.0 = the SLO boundary).
    pub completion_norm: f64,
    /// `b * gamma / exec_ms` — the throughput-improvement ratio the
    /// scheduler observes and feeds to the MAB tuner.
    pub observed_tir: f64,
}

/// Everything the simulator reports for one slot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlotOutcome {
    pub t: usize,
    pub batches: Vec<BatchOutcome>,
    /// Inference loss of the slot (paper Eq. 10 restricted to `t`).
    pub loss: f64,
    /// Accelerator busy time per edge, ms.
    pub compute_used_ms: Vec<f64>,
    /// Network budget consumed per edge, MB.
    pub network_used_mb: Vec<f64>,
    pub served: u64,
    pub unserved: u64,
    /// Served requests that finished after the slot boundary.
    pub slo_violations: u64,
}

impl SlotOutcome {
    /// Iterator over per-request completion times (normalised).
    pub fn completions(&self) -> impl Iterator<Item = f64> + '_ {
        self.batches
            .iter()
            .flat_map(|b| std::iter::repeat_n(b.completion_norm, b.batch as usize))
    }
}

/// The simulator: a catalog plus noise configuration.
#[derive(Debug, Clone)]
pub struct EdgeSim {
    catalog: Catalog,
    cfg: SimConfig,
}

impl EdgeSim {
    pub fn new(catalog: Catalog, cfg: SimConfig) -> Self {
        EdgeSim { catalog, cfg }
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Execute one slot. `prev` is last slot's schedule (for model-transfer
    /// network accounting).
    pub fn execute_slot(&self, schedule: &Schedule, prev: Option<&Schedule>) -> SlotOutcome {
        let ne = self.catalog.num_edges();
        let run_edge = |e: usize| self.execute_edge(EdgeId(e), schedule);
        let per_edge: Vec<EdgeOutcome> = if self.cfg.parallel {
            (0..ne).into_par_iter().map(run_edge).collect()
        } else {
            (0..ne).map(run_edge).collect()
        };

        let mut batches = Vec::new();
        let mut compute_used_ms = Vec::with_capacity(ne);
        let mut network_used_mb = Vec::with_capacity(ne);
        let mut slo_violations = 0u64;
        for (e, out) in per_edge.into_iter().enumerate() {
            compute_used_ms.push(out.busy_ms);
            network_used_mb.push(network_usage_mb(&self.catalog, schedule, prev, EdgeId(e)));
            slo_violations += out
                .batches
                .iter()
                .filter(|b| b.completion_norm > 1.0)
                .map(|b| b.batch as u64)
                .sum::<u64>();
            batches.extend(out.batches);
        }

        SlotOutcome {
            t: schedule.t,
            loss: schedule.loss(&self.catalog),
            served: schedule.served(),
            unserved: schedule.total_unserved(),
            batches,
            compute_used_ms,
            network_used_mb,
            slo_violations,
        }
    }

    /// Wireless arrival delay (ms) of app `a`'s redistributed requests at
    /// edge `k`: inbound bytes over the edge's bandwidth, accumulated per
    /// source link so injected link faults scale (or sever) each path
    /// independently. A dead link (`factor == 0`) means those requests
    /// never arrive within the slot: the batch waits far past the SLO.
    fn inbound_delay_ms(&self, schedule: &Schedule, a: AppId, k: EdgeId) -> f64 {
        let inbound = schedule.routing.inbound(a, k);
        if inbound == 0 {
            return 0.0;
        }
        let per_request_ms =
            self.catalog.app(a).request_mb * 8.0 / self.catalog.edge(k).bandwidth_mbps * 1000.0;
        let mut delay = 0.0;
        for src in 0..self.catalog.num_edges() {
            if src == k.index() {
                continue;
            }
            let n = schedule.routing.get(a, EdgeId(src), k);
            if n == 0 {
                continue;
            }
            let factor = self.cfg.faults.link_factor(EdgeId(src), k, schedule.t);
            if factor <= 0.0 {
                return crate::faults::OUTAGE_COMPLETION * self.catalog.slot_ms;
            }
            delay += per_request_ms * n as f64 / factor;
        }
        delay
    }

    fn execute_edge(&self, k: EdgeId, schedule: &Schedule) -> EdgeOutcome {
        let mut rng = stream_rng(self.cfg.seed, k.index(), schedule.t);
        let edge = self.catalog.edge(k);
        let slot_ms = self.catalog.slot_ms;

        // Expand deployments into executable units: whole batches in batch
        // mode, single-request units in serial mode (no TIR benefit).
        struct Unit {
            app: AppId,
            model: ModelId,
            batch: u32,
            offset_ms: f64,
            order_key: f64,
            /// Report this unit's observed TIR (single requests of a serial
            /// expansion do not constitute a batch measurement).
            is_batch: bool,
        }
        let mut units: Vec<Unit> = Vec::new();
        for d in &schedule.deployments[k.index()] {
            let offset = self.inbound_delay_ms(schedule, d.app, k);
            if schedule.serial {
                for _ in 0..d.batch {
                    units.push(Unit {
                        app: d.app,
                        model: d.model,
                        batch: 1,
                        offset_ms: offset,
                        order_key: 0.0,
                        is_batch: false,
                    });
                }
            } else {
                units.push(Unit {
                    app: d.app,
                    model: d.model,
                    batch: d.batch,
                    offset_ms: offset,
                    order_key: 0.0,
                    is_batch: true,
                });
            }
        }
        if self.cfg.shuffle_batches {
            for u in &mut units {
                u.order_key = rng.random_range(0.0..1.0);
            }
            units.sort_by(|a, b| a.order_key.partial_cmp(&b.order_key).unwrap());
        }

        // Fault state for this (edge, slot).
        let down = self.cfg.faults.is_down(k, schedule.t);
        let slowdown = self.cfg.faults.slowdown(k, schedule.t);

        let mut cur_ms = 0.0f64;
        let mut busy_ms = 0.0f64;
        let mut batches = Vec::with_capacity(units.len());
        for u in units {
            let gamma = edge.gamma_ms[u.model.index()];
            if down {
                // The edge is dark: the batch never executes. Its requests
                // blow far past the SLO and the observed TIR collapses —
                // exactly what a scheduler's monitoring would report.
                batches.push(BatchOutcome {
                    edge: k,
                    app: u.app,
                    model: u.model,
                    batch: u.batch,
                    start_ms: 0.0,
                    exec_ms: 0.0,
                    completion_norm: crate::faults::OUTAGE_COMPLETION,
                    observed_tir: 0.0,
                });
                continue;
            }
            let truth = &edge.tir_truth[u.model.index()];
            let ideal = birp_tir::latency(gamma, u.batch, truth) * slowdown;
            let exec = ideal * exec_noise(&mut rng, self.cfg.exec_noise_sigma);
            let start = cur_ms.max(u.offset_ms);
            let completion = start + exec;
            cur_ms = completion;
            busy_ms += exec;
            let observed_tir = if u.is_batch {
                u.batch as f64 * gamma / exec
            } else {
                1.0
            };
            batches.push(BatchOutcome {
                edge: k,
                app: u.app,
                model: u.model,
                batch: u.batch,
                start_ms: start,
                exec_ms: exec,
                completion_norm: completion / slot_ms,
                observed_tir,
            });
        }
        EdgeOutcome { batches, busy_ms }
    }
}

struct EdgeOutcome {
    batches: Vec<BatchOutcome>,
    busy_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Deployment;
    use birp_models::Catalog;

    fn setup() -> (EdgeSim, Schedule) {
        let catalog = Catalog::small_scale(5);
        let mut s = Schedule::empty(0, catalog.num_apps(), catalog.num_edges());
        s.routing.set(AppId(0), EdgeId(0), EdgeId(0), 6);
        s.routing.set(AppId(0), EdgeId(1), EdgeId(0), 2);
        s.deployments[0].push(Deployment {
            app: AppId(0),
            model: ModelId(0),
            batch: 8,
        });
        let sim = EdgeSim::new(
            catalog,
            SimConfig {
                exec_noise_sigma: 0.0,
                ..Default::default()
            },
        );
        (sim, s)
    }

    #[test]
    fn noiseless_execution_matches_ground_truth() {
        let (sim, s) = setup();
        let out = sim.execute_slot(&s, None);
        assert_eq!(out.batches.len(), 1);
        let b = &out.batches[0];
        let expected = sim.catalog().edge(EdgeId(0)).true_batch_latency_ms(0, 8);
        assert!((b.exec_ms - expected).abs() < 1e-9);
        // Observed TIR equals the true TIR without noise.
        let truth = sim.catalog().true_tir(EdgeId(0), ModelId(0)).tir(8);
        assert!((b.observed_tir - truth).abs() < 1e-9);
        assert_eq!(out.served, 8);
    }

    #[test]
    fn inbound_requests_delay_start() {
        let (sim, s) = setup();
        let out = sim.execute_slot(&s, None);
        let b = &out.batches[0];
        // 2 requests x 1.5 MB inbound over edge-0 bandwidth.
        let expected_delay =
            2.0 * 1.5 * 8.0 / sim.catalog().edge(EdgeId(0)).bandwidth_mbps * 1000.0;
        assert!((b.start_ms - expected_delay).abs() < 1e-9);
    }

    #[test]
    fn serial_mode_expands_to_unit_batches() {
        let (sim, mut s) = setup();
        s.serial = true;
        let out = sim.execute_slot(&s, None);
        assert_eq!(out.batches.len(), 8);
        assert!(out.batches.iter().all(|b| b.batch == 1));
        // Serial total busy time = 8 * gamma (no TIR benefit).
        let gamma = sim.catalog().gamma_ms(EdgeId(0), ModelId(0));
        assert!((out.compute_used_ms[0] - 8.0 * gamma).abs() < 1e-6);
        // Batch mode is strictly faster.
        let mut s2 = s.clone();
        s2.serial = false;
        let out2 = sim.execute_slot(&s2, None);
        assert!(out2.compute_used_ms[0] < out.compute_used_ms[0]);
    }

    #[test]
    fn execution_is_deterministic_and_thread_count_independent() {
        let catalog = Catalog::small_scale(5);
        let mut s = Schedule::empty(0, catalog.num_apps(), catalog.num_edges());
        for e in 0..6 {
            s.routing.set(AppId(0), EdgeId(e), EdgeId(e), 4);
            s.deployments[e].push(Deployment {
                app: AppId(0),
                model: ModelId(0),
                batch: 4,
            });
        }
        let mk = |parallel| {
            EdgeSim::new(
                catalog.clone(),
                SimConfig {
                    parallel,
                    ..Default::default()
                },
            )
            .execute_slot(&s, None)
        };
        let a = mk(true);
        let b = mk(false);
        assert_eq!(a.batches.len(), b.batches.len());
        for (x, y) in a.batches.iter().zip(&b.batches) {
            assert_eq!(x.edge, y.edge);
            assert_eq!(x.exec_ms, y.exec_ms);
        }
    }

    #[test]
    fn slo_violation_counting() {
        // Force an overload: a huge serial pile on one slow edge.
        let catalog = Catalog::small_scale(5);
        let slot_ms = catalog.slot_ms;
        let mut s = Schedule::empty(0, 1, catalog.num_edges());
        s.routing.set(AppId(0), EdgeId(2), EdgeId(2), 16);
        // model 2 is the xl model: 16 of them serially blow way past tau.
        s.deployments[2].push(Deployment {
            app: AppId(0),
            model: ModelId(2),
            batch: 16,
        });
        s.serial = true;
        let sim = EdgeSim::new(
            catalog,
            SimConfig {
                exec_noise_sigma: 0.0,
                ..Default::default()
            },
        );
        let out = sim.execute_slot(&s, None);
        assert!(out.slo_violations > 0, "expected overruns");
        let last = out
            .batches
            .iter()
            .map(|b| b.completion_norm)
            .fold(0.0, f64::max);
        assert!(last > 1.0, "last completion {last} (slot_ms {slot_ms})");
    }

    #[test]
    fn outage_fails_batches_without_executing() {
        let (sim_base, s) = setup();
        let catalog = sim_base.catalog().clone();
        let sim = EdgeSim::new(
            catalog,
            SimConfig {
                exec_noise_sigma: 0.0,
                faults: crate::faults::FaultPlan::none().with_outage(EdgeId(0), 0, 1),
                ..Default::default()
            },
        );
        let out = sim.execute_slot(&s, None);
        assert_eq!(out.batches.len(), 1);
        let b = &out.batches[0];
        assert_eq!(b.exec_ms, 0.0);
        assert_eq!(b.observed_tir, 0.0);
        assert!(b.completion_norm > 1.0, "outage must violate the SLO");
        assert_eq!(out.compute_used_ms[0], 0.0);
        assert!(out.slo_violations >= 8);
    }

    #[test]
    fn degradation_scales_execution_time() {
        let (sim_base, s) = setup();
        let catalog = sim_base.catalog().clone();
        let healthy = sim_base.execute_slot(&s, None);
        let sim = EdgeSim::new(
            catalog,
            SimConfig {
                exec_noise_sigma: 0.0,
                faults: crate::faults::FaultPlan::none().with_degradation(EdgeId(0), 0, 1, 3.0),
                ..Default::default()
            },
        );
        let degraded = sim.execute_slot(&s, None);
        let h = healthy.batches[0].exec_ms;
        let d = degraded.batches[0].exec_ms;
        assert!(
            (d / h - 3.0).abs() < 1e-9,
            "expected 3x slowdown, got {}",
            d / h
        );
        // Observed TIR shrinks accordingly — the MAB sees the edge go bad.
        assert!(degraded.batches[0].observed_tir < healthy.batches[0].observed_tir);
    }

    #[test]
    fn degraded_link_stretches_inbound_delay() {
        let (sim_base, s) = setup();
        let catalog = sim_base.catalog().clone();
        let healthy = sim_base.execute_slot(&s, None);
        let sim = EdgeSim::new(
            catalog,
            SimConfig {
                exec_noise_sigma: 0.0,
                faults: crate::faults::FaultPlan::none().with_link_fault(
                    EdgeId(1),
                    EdgeId(0),
                    0,
                    1,
                    0.25,
                ),
                ..Default::default()
            },
        );
        let degraded = sim.execute_slot(&s, None);
        // The 2 requests shipped 1 -> 0 take 4x longer to arrive.
        assert!(
            (degraded.batches[0].start_ms - 4.0 * healthy.batches[0].start_ms).abs() < 1e-9,
            "start {} vs healthy {}",
            degraded.batches[0].start_ms,
            healthy.batches[0].start_ms
        );
    }

    #[test]
    fn dead_link_blows_the_slo_without_killing_the_edge() {
        let (sim_base, s) = setup();
        let catalog = sim_base.catalog().clone();
        let sim = EdgeSim::new(
            catalog,
            SimConfig {
                exec_noise_sigma: 0.0,
                faults: crate::faults::FaultPlan::none().with_link_fault(
                    EdgeId(1),
                    EdgeId(0),
                    0,
                    1,
                    0.0,
                ),
                ..Default::default()
            },
        );
        let out = sim.execute_slot(&s, None);
        let b = &out.batches[0];
        // The batch still executes (the edge is healthy) but cannot start
        // before its stranded inbound requests, far past the slot boundary.
        assert!(b.exec_ms > 0.0);
        assert!(
            b.completion_norm >= crate::faults::OUTAGE_COMPLETION,
            "completion {}",
            b.completion_norm
        );
        assert!(out.slo_violations >= 8);
    }

    #[test]
    fn flaky_edge_alternates_outage_slots() {
        let (sim_base, s) = setup();
        let catalog = sim_base.catalog().clone();
        let sim = EdgeSim::new(
            catalog,
            SimConfig {
                exec_noise_sigma: 0.0,
                faults: crate::faults::FaultPlan::none().with_flaky(EdgeId(0), 0, 10, 2, 1),
                ..Default::default()
            },
        );
        let mut s0 = s.clone();
        s0.t = 0; // down phase
        let mut s1 = s.clone();
        s1.t = 1; // up phase
        let down = sim.execute_slot(&s0, None);
        let up = sim.execute_slot(&s1, None);
        assert_eq!(down.batches[0].exec_ms, 0.0);
        assert_eq!(
            down.batches[0].completion_norm,
            crate::faults::OUTAGE_COMPLETION
        );
        assert!(up.batches[0].exec_ms > 0.0);
        assert!(up.batches[0].completion_norm < 1.0);
    }

    #[test]
    fn completions_iterator_length_matches_served() {
        let (sim, s) = setup();
        let out = sim.execute_slot(&s, None);
        assert_eq!(out.completions().count() as u64, out.served);
    }

    #[test]
    fn noise_changes_exec_but_preserves_mean() {
        let catalog = Catalog::small_scale(5);
        let mut s = Schedule::empty(0, 1, catalog.num_edges());
        s.routing.set(AppId(0), EdgeId(0), EdgeId(0), 4);
        s.deployments[0].push(Deployment {
            app: AppId(0),
            model: ModelId(0),
            batch: 4,
        });
        let ideal = catalog.edge(EdgeId(0)).true_batch_latency_ms(0, 4);
        let mut sum = 0.0;
        let n = 200;
        for t in 0..n {
            let mut st = s.clone();
            st.t = t;
            let sim = EdgeSim::new(
                catalog.clone(),
                SimConfig {
                    exec_noise_sigma: 0.15,
                    ..Default::default()
                },
            );
            sum += sim.execute_slot(&st, None).batches[0].exec_ms;
        }
        let mean = sum / n as f64;
        assert!(
            (mean / ideal - 1.0).abs() < 0.05,
            "mean ratio {}",
            mean / ideal
        );
    }
}
