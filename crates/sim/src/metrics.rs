//! Run-level metrics: completion-time CDFs, per-slot and cumulative loss,
//! and the SLO failure rate `p%` — the two evaluation metrics of paper
//! Section 5.2.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::{DeError, Deserialize, Serialize, Value};

use crate::executor::SlotOutcome;

/// Loss charged per *dropped* request. Exceeds the worst model loss (0.49)
/// so that a scheduler can never look better by refusing to serve; mirrors
/// the overflow penalty in the per-slot optimisation problem.
pub const DROP_LOSS: f64 = 1.0;

/// An empirical CDF over completion times.
///
/// Ingest (`push`/`extend`) is O(1) amortised: samples are appended and a
/// dirty flag is raised. The sort is deferred to the next *query*, so a
/// burst of N pushes followed by any number of queries costs exactly one
/// sort — the runner pushes per-request completions every slot but only
/// queries at figure boundaries. `sort_count` exposes how many sorts
/// actually ran (benchmark- and test-observable).
pub struct Cdf {
    /// Sample store; sorted iff `dirty` is false. The mutex gives queries
    /// (`&self`) the interior mutability needed to sort lazily and keeps
    /// concurrent readers safe.
    samples: Mutex<Vec<f64>>,
    /// Raised by `push`/`extend`, cleared by the sort on the next query.
    dirty: AtomicBool,
    /// Number of deferred sorts performed so far.
    sorts: AtomicUsize,
}

impl Cdf {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Cdf {
            samples: Mutex::new(samples),
            dirty: AtomicBool::new(false),
            sorts: AtomicUsize::new(0),
        }
    }

    pub fn push(&mut self, v: f64) {
        // `&mut self`: no lock needed, just append and mark dirty.
        self.samples.get_mut().unwrap().push(v);
        *self.dirty.get_mut() = true;
    }

    pub fn extend(&mut self, vals: impl IntoIterator<Item = f64>) {
        let samples = self.samples.get_mut().unwrap();
        let before = samples.len();
        samples.extend(vals);
        if samples.len() != before {
            *self.dirty.get_mut() = true;
        }
    }

    /// Run `f` over the sorted sample slice, sorting first if any ingest
    /// happened since the last query. The flag is checked under the lock so
    /// concurrent queries cannot both skip the sort.
    fn with_sorted<R>(&self, f: impl FnOnce(&[f64]) -> R) -> R {
        let mut samples = self.samples.lock().unwrap();
        if self.dirty.swap(false, Ordering::AcqRel) {
            samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
            self.sorts.fetch_add(1, Ordering::Relaxed);
        }
        f(&samples)
    }

    /// How many deferred sorts have run (observability for tests/benches).
    pub fn sort_count(&self) -> usize {
        self.sorts.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.samples.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fraction of samples `<= x`.
    pub fn at(&self, x: f64) -> f64 {
        self.with_sorted(|s| {
            if s.is_empty() {
                return 0.0;
            }
            s.partition_point(|&v| v <= x) as f64 / s.len() as f64
        })
    }

    /// The `q`-quantile (q in [0, 1]).
    pub fn quantile(&self, q: f64) -> f64 {
        self.with_sorted(|s| {
            if s.is_empty() {
                return f64::NAN;
            }
            let i = ((q.clamp(0.0, 1.0)) * (s.len() - 1) as f64).round() as usize;
            s[i]
        })
    }

    /// Evaluate the CDF on an even grid over `[0, max_x]` — the series the
    /// figure harnesses print.
    pub fn series(&self, max_x: f64, points: usize) -> Vec<(f64, f64)> {
        self.with_sorted(|s| {
            (0..points)
                .map(|i| {
                    let x = max_x * i as f64 / (points - 1).max(1) as f64;
                    let y = if s.is_empty() {
                        0.0
                    } else {
                        s.partition_point(|&v| v <= x) as f64 / s.len() as f64
                    };
                    (x, y)
                })
                .collect()
        })
    }
}

impl Default for Cdf {
    fn default() -> Self {
        Cdf {
            samples: Mutex::new(Vec::new()),
            dirty: AtomicBool::new(false),
            sorts: AtomicUsize::new(0),
        }
    }
}

impl Clone for Cdf {
    fn clone(&self) -> Self {
        Cdf {
            samples: Mutex::new(self.samples.lock().unwrap().clone()),
            dirty: AtomicBool::new(self.dirty.load(Ordering::Acquire)),
            sorts: AtomicUsize::new(0),
        }
    }
}

impl std::fmt::Debug for Cdf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cdf")
            .field("samples", &*self.samples.lock().unwrap())
            .field("dirty", &self.dirty.load(Ordering::Relaxed))
            .finish()
    }
}

// Hand-written (the interior-mutability fields defeat the derive) but shaped
// exactly like the old `{ "samples": [...] }` derive output, so cached
// artifacts under `results/` keep round-tripping byte-identically. Samples
// serialize sorted, and deserialized data is therefore trusted as clean.
impl Serialize for Cdf {
    fn to_value(&self) -> Value {
        let samples = self.with_sorted(|s| s.to_vec());
        Value::Object(vec![("samples".to_string(), samples.to_value())])
    }
}

impl Deserialize for Cdf {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let samples: Vec<f64> = match v.get("samples") {
            Some(field) => Deserialize::from_value(field)?,
            None => return Err(DeError::custom("Cdf: missing field `samples`")),
        };
        // Files we wrote are sorted; be defensive about hand-edited ones.
        let sorted = samples.windows(2).all(|w| w[0] <= w[1]);
        Ok(Cdf {
            samples: Mutex::new(samples),
            dirty: AtomicBool::new(!sorted),
            sorts: AtomicUsize::new(0),
        })
    }
}

/// Streaming collector over a run's slots.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricsCollector {
    completion_samples: Vec<f64>,
    loss_per_slot: Vec<f64>,
    served: u64,
    /// Requests never served at all (dropped after max carryover age).
    dropped: u64,
    slo_failures: u64,
    /// Per-slot failure / request counters (for p% checkpoints, Fig. 5).
    failures_by_slot: Vec<u64>,
    requests_by_slot: Vec<u64>,
}

impl MetricsCollector {
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark the start of a new slot; subsequent completions/drops are
    /// attributed to it.
    pub fn begin_slot(&mut self) {
        self.failures_by_slot.push(0);
        self.requests_by_slot.push(0);
    }

    fn bump_slot(&mut self, failed: bool) {
        if self.requests_by_slot.is_empty() {
            self.begin_slot();
        }
        *self.requests_by_slot.last_mut().unwrap() += 1;
        if failed {
            *self.failures_by_slot.last_mut().unwrap() += 1;
        }
    }

    /// Record a whole slot outcome (no carry-over attribution; the runner
    /// uses `record_completion` when it needs to age requests).
    pub fn record_slot(&mut self, outcome: &SlotOutcome) {
        self.begin_slot();
        self.loss_per_slot.push(outcome.loss);
        for b in &outcome.batches {
            for _ in 0..b.batch {
                self.completion_samples.push(b.completion_norm);
                let failed = b.completion_norm > 1.0;
                if failed {
                    self.slo_failures += 1;
                }
                self.served += 1;
                self.bump_slot(failed);
            }
        }
    }

    /// Record one request completion directly (used by the runner for
    /// carried-over requests whose effective completion spans slots).
    pub fn record_completion(&mut self, completion_norm: f64) {
        self.completion_samples.push(completion_norm);
        let failed = completion_norm > 1.0;
        if failed {
            self.slo_failures += 1;
        }
        self.served += 1;
        self.bump_slot(failed);
    }

    /// Record requests that were never served. Each counts as an SLO
    /// failure and charges [`DROP_LOSS`] to the current slot's loss, so a
    /// scheduler can never improve its loss curve by refusing work.
    pub fn record_dropped(&mut self, count: u64) {
        self.dropped += count;
        self.slo_failures += count;
        for _ in 0..count {
            self.bump_slot(true);
        }
        if count > 0 {
            match self.loss_per_slot.last_mut() {
                Some(l) => *l += DROP_LOSS * count as f64,
                None => self.loss_per_slot.push(DROP_LOSS * count as f64),
            }
        }
    }

    /// Add a raw loss sample for a slot recorded via `record_completion`.
    pub fn record_loss(&mut self, loss: f64) {
        self.loss_per_slot.push(loss);
    }

    pub fn finish(self) -> RunMetrics {
        let cum: Vec<f64> = self
            .loss_per_slot
            .iter()
            .scan(0.0, |acc, &l| {
                *acc += l;
                Some(*acc)
            })
            .collect();
        let total_requests = self.served + self.dropped;
        RunMetrics {
            cdf: Cdf::from_samples(self.completion_samples),
            total_loss: self.loss_per_slot.iter().sum(),
            loss_per_slot: self.loss_per_slot,
            cumulative_loss: cum,
            served: self.served,
            dropped: self.dropped,
            slo_failures: self.slo_failures,
            failure_rate_pct: if total_requests > 0 {
                100.0 * self.slo_failures as f64 / total_requests as f64
            } else {
                0.0
            },
            failures_by_slot: self.failures_by_slot,
            requests_by_slot: self.requests_by_slot,
        }
    }
}

/// Final metrics of one run (one scheduler over one trace).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunMetrics {
    pub cdf: Cdf,
    pub total_loss: f64,
    /// `loss^t` series (paper Fig. 6b / 7b).
    pub loss_per_slot: Vec<f64>,
    /// `Σ_{t' <= t} loss^{t'}` series (paper Fig. 6c / 7c).
    pub cumulative_loss: Vec<f64>,
    pub served: u64,
    pub dropped: u64,
    pub slo_failures: u64,
    /// The paper's `p%`: share of requests violating the response-time SLO.
    pub failure_rate_pct: f64,
    /// Per-slot SLO-failure counts (for p% evaluated at a checkpoint slot).
    pub failures_by_slot: Vec<u64>,
    pub requests_by_slot: Vec<u64>,
}

impl RunMetrics {
    /// `p%` restricted to slots `0..=t` (paper Fig. 5 checkpoints).
    pub fn failure_rate_pct_at(&self, t: usize) -> f64 {
        let end = (t + 1).min(self.failures_by_slot.len());
        let fails: u64 = self.failures_by_slot[..end].iter().sum();
        let reqs: u64 = self.requests_by_slot[..end].iter().sum();
        if reqs == 0 {
            0.0
        } else {
            100.0 * fails as f64 / reqs as f64
        }
    }

    /// Cumulative loss up to and including slot `t` (clamped to the end).
    pub fn cumulative_loss_at(&self, t: usize) -> f64 {
        if self.cumulative_loss.is_empty() {
            return 0.0;
        }
        self.cumulative_loss[t.min(self.cumulative_loss.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_basic_queries() {
        let c = Cdf::from_samples(vec![0.5, 0.1, 0.9, 0.3]);
        assert_eq!(c.len(), 4);
        assert!((c.at(0.05) - 0.0).abs() < 1e-12);
        assert!((c.at(0.3) - 0.5).abs() < 1e-12);
        assert!((c.at(1.0) - 1.0).abs() < 1e-12);
        assert!((c.quantile(0.0) - 0.1).abs() < 1e-12);
        assert!((c.quantile(1.0) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn cdf_push_keeps_sorted() {
        let mut c = Cdf::new();
        for v in [0.7, 0.2, 0.9, 0.1] {
            c.push(v);
        }
        assert!((c.at(0.2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cdf_series_grid() {
        let c = Cdf::from_samples(vec![0.25, 0.75]);
        let s = c.series(1.0, 5);
        assert_eq!(s.len(), 5);
        assert_eq!(s[0], (0.0, 0.0));
        assert!((s[2].1 - 0.5).abs() < 1e-12); // at 0.5
        assert!((s[4].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cdf_is_safe() {
        let c = Cdf::new();
        assert!(c.is_empty());
        assert_eq!(c.at(0.5), 0.0);
        assert!(c.quantile(0.5).is_nan());
        assert!(c.quantile(0.0).is_nan());
        assert!(c.quantile(1.0).is_nan());
        assert_eq!(c.series(1.0, 3), vec![(0.0, 0.0), (0.5, 0.0), (1.0, 0.0)]);
    }

    #[test]
    fn single_sample_cdf() {
        let mut c = Cdf::new();
        c.push(0.4);
        assert_eq!(c.len(), 1);
        assert_eq!(c.quantile(0.0), 0.4);
        assert_eq!(c.quantile(0.5), 0.4);
        assert_eq!(c.quantile(1.0), 0.4);
        assert_eq!(c.at(0.3), 0.0);
        assert_eq!(c.at(0.4), 1.0);
    }

    #[test]
    fn duplicate_samples_step_together() {
        let c = Cdf::from_samples(vec![0.5, 0.5, 0.5, 0.9]);
        assert!((c.at(0.49) - 0.0).abs() < 1e-12);
        assert!((c.at(0.5) - 0.75).abs() < 1e-12);
        assert_eq!(c.quantile(0.0), 0.5);
        assert_eq!(c.quantile(1.0), 0.9);
    }

    #[test]
    fn quantile_extremes_are_min_and_max() {
        let c = Cdf::from_samples(vec![3.0, 1.0, 2.0, 5.0, 4.0]);
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(1.0), 5.0);
        // Out-of-range q clamps rather than panics.
        assert_eq!(c.quantile(-0.5), 1.0);
        assert_eq!(c.quantile(2.0), 5.0);
    }

    #[test]
    fn push_burst_costs_exactly_one_sort() {
        let mut c = Cdf::new();
        for i in 0..1000 {
            c.push(((i * 7919) % 1000) as f64);
        }
        assert_eq!(c.sort_count(), 0, "ingest must not sort");
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            c.quantile(q);
        }
        c.at(500.0);
        c.series(1000.0, 16);
        assert_eq!(c.sort_count(), 1, "repeated queries must reuse one sort");
        c.push(-1.0);
        assert_eq!(c.quantile(0.0), -1.0);
        assert_eq!(c.sort_count(), 2, "new ingest re-arms the deferred sort");
    }

    #[test]
    fn cdf_serde_round_trip_sorted_shape() {
        let mut c = Cdf::new();
        c.extend([0.9, 0.1, 0.5]);
        let json = serde_json::to_string(&c).unwrap();
        // Serializes in sorted order under the legacy `samples` key.
        assert_eq!(json, "{\"samples\":[0.1,0.5,0.9]}");
        let back: Cdf = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.quantile(1.0), 0.9);
        // Sorted input is trusted: no deferred sort needed after restore.
        assert_eq!(back.sort_count(), 0);
    }

    #[test]
    fn collector_aggregates_loss_and_failures() {
        let mut m = MetricsCollector::new();
        m.record_loss(2.0);
        m.record_completion(0.5);
        m.record_completion(1.5); // violation
        m.record_loss(3.0);
        m.record_completion(0.9);
        m.record_dropped(1);
        let r = m.finish();
        // 2.0 + 3.0 of model loss plus DROP_LOSS for the dropped request.
        assert!((r.total_loss - 6.0).abs() < 1e-12);
        assert_eq!(r.cumulative_loss, vec![2.0, 6.0]);
        assert_eq!(r.served, 3);
        assert_eq!(r.dropped, 1);
        assert_eq!(r.slo_failures, 2);
        assert!((r.failure_rate_pct - 50.0).abs() < 1e-12);
    }

    #[test]
    fn failure_rate_of_empty_run_is_zero() {
        let r = MetricsCollector::new().finish();
        assert_eq!(r.failure_rate_pct, 0.0);
        assert_eq!(r.total_loss, 0.0);
    }
}
