//! Run-level metrics: completion-time CDFs, per-slot and cumulative loss,
//! and the SLO failure rate `p%` — the two evaluation metrics of paper
//! Section 5.2.

use serde::{Deserialize, Serialize};

use crate::executor::SlotOutcome;

/// Loss charged per *dropped* request. Exceeds the worst model loss (0.49)
/// so that a scheduler can never look better by refusing to serve; mirrors
/// the overflow penalty in the per-slot optimisation problem.
pub const DROP_LOSS: f64 = 1.0;

/// An empirical CDF over completion times.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Cdf {
    /// Sorted samples.
    samples: Vec<f64>,
}

impl Cdf {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Cdf { samples }
    }

    pub fn push(&mut self, v: f64) {
        // Insert-sorted lazily: callers push in bulk then query; we keep it
        // simple and re-sort on demand boundaries instead.
        let pos = self.samples.partition_point(|&s| s <= v);
        self.samples.insert(pos, v);
    }

    pub fn extend(&mut self, vals: impl IntoIterator<Item = f64>) {
        self.samples.extend(vals);
        self.samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Fraction of samples `<= x`.
    pub fn at(&self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.partition_point(|&s| s <= x) as f64 / self.samples.len() as f64
    }

    /// The `q`-quantile (q in [0, 1]).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        let i = ((q.clamp(0.0, 1.0)) * (self.samples.len() - 1) as f64).round() as usize;
        self.samples[i]
    }

    /// Evaluate the CDF on an even grid over `[0, max_x]` — the series the
    /// figure harnesses print.
    pub fn series(&self, max_x: f64, points: usize) -> Vec<(f64, f64)> {
        (0..points)
            .map(|i| {
                let x = max_x * i as f64 / (points - 1).max(1) as f64;
                (x, self.at(x))
            })
            .collect()
    }
}

/// Streaming collector over a run's slots.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricsCollector {
    completion_samples: Vec<f64>,
    loss_per_slot: Vec<f64>,
    served: u64,
    /// Requests never served at all (dropped after max carryover age).
    dropped: u64,
    slo_failures: u64,
    /// Per-slot failure / request counters (for p% checkpoints, Fig. 5).
    failures_by_slot: Vec<u64>,
    requests_by_slot: Vec<u64>,
}

impl MetricsCollector {
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark the start of a new slot; subsequent completions/drops are
    /// attributed to it.
    pub fn begin_slot(&mut self) {
        self.failures_by_slot.push(0);
        self.requests_by_slot.push(0);
    }

    fn bump_slot(&mut self, failed: bool) {
        if self.requests_by_slot.is_empty() {
            self.begin_slot();
        }
        *self.requests_by_slot.last_mut().unwrap() += 1;
        if failed {
            *self.failures_by_slot.last_mut().unwrap() += 1;
        }
    }

    /// Record a whole slot outcome (no carry-over attribution; the runner
    /// uses `record_completion` when it needs to age requests).
    pub fn record_slot(&mut self, outcome: &SlotOutcome) {
        self.begin_slot();
        self.loss_per_slot.push(outcome.loss);
        for b in &outcome.batches {
            for _ in 0..b.batch {
                self.completion_samples.push(b.completion_norm);
                let failed = b.completion_norm > 1.0;
                if failed {
                    self.slo_failures += 1;
                }
                self.served += 1;
                self.bump_slot(failed);
            }
        }
    }

    /// Record one request completion directly (used by the runner for
    /// carried-over requests whose effective completion spans slots).
    pub fn record_completion(&mut self, completion_norm: f64) {
        self.completion_samples.push(completion_norm);
        let failed = completion_norm > 1.0;
        if failed {
            self.slo_failures += 1;
        }
        self.served += 1;
        self.bump_slot(failed);
    }

    /// Record requests that were never served. Each counts as an SLO
    /// failure and charges [`DROP_LOSS`] to the current slot's loss, so a
    /// scheduler can never improve its loss curve by refusing work.
    pub fn record_dropped(&mut self, count: u64) {
        self.dropped += count;
        self.slo_failures += count;
        for _ in 0..count {
            self.bump_slot(true);
        }
        if count > 0 {
            match self.loss_per_slot.last_mut() {
                Some(l) => *l += DROP_LOSS * count as f64,
                None => self.loss_per_slot.push(DROP_LOSS * count as f64),
            }
        }
    }

    /// Add a raw loss sample for a slot recorded via `record_completion`.
    pub fn record_loss(&mut self, loss: f64) {
        self.loss_per_slot.push(loss);
    }

    pub fn finish(self) -> RunMetrics {
        let cum: Vec<f64> = self
            .loss_per_slot
            .iter()
            .scan(0.0, |acc, &l| {
                *acc += l;
                Some(*acc)
            })
            .collect();
        let total_requests = self.served + self.dropped;
        RunMetrics {
            cdf: Cdf::from_samples(self.completion_samples),
            total_loss: self.loss_per_slot.iter().sum(),
            loss_per_slot: self.loss_per_slot,
            cumulative_loss: cum,
            served: self.served,
            dropped: self.dropped,
            slo_failures: self.slo_failures,
            failure_rate_pct: if total_requests > 0 {
                100.0 * self.slo_failures as f64 / total_requests as f64
            } else {
                0.0
            },
            failures_by_slot: self.failures_by_slot,
            requests_by_slot: self.requests_by_slot,
        }
    }
}

/// Final metrics of one run (one scheduler over one trace).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunMetrics {
    pub cdf: Cdf,
    pub total_loss: f64,
    /// `loss^t` series (paper Fig. 6b / 7b).
    pub loss_per_slot: Vec<f64>,
    /// `Σ_{t' <= t} loss^{t'}` series (paper Fig. 6c / 7c).
    pub cumulative_loss: Vec<f64>,
    pub served: u64,
    pub dropped: u64,
    pub slo_failures: u64,
    /// The paper's `p%`: share of requests violating the response-time SLO.
    pub failure_rate_pct: f64,
    /// Per-slot SLO-failure counts (for p% evaluated at a checkpoint slot).
    pub failures_by_slot: Vec<u64>,
    pub requests_by_slot: Vec<u64>,
}

impl RunMetrics {
    /// `p%` restricted to slots `0..=t` (paper Fig. 5 checkpoints).
    pub fn failure_rate_pct_at(&self, t: usize) -> f64 {
        let end = (t + 1).min(self.failures_by_slot.len());
        let fails: u64 = self.failures_by_slot[..end].iter().sum();
        let reqs: u64 = self.requests_by_slot[..end].iter().sum();
        if reqs == 0 {
            0.0
        } else {
            100.0 * fails as f64 / reqs as f64
        }
    }

    /// Cumulative loss up to and including slot `t` (clamped to the end).
    pub fn cumulative_loss_at(&self, t: usize) -> f64 {
        if self.cumulative_loss.is_empty() {
            return 0.0;
        }
        self.cumulative_loss[t.min(self.cumulative_loss.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_basic_queries() {
        let c = Cdf::from_samples(vec![0.5, 0.1, 0.9, 0.3]);
        assert_eq!(c.len(), 4);
        assert!((c.at(0.05) - 0.0).abs() < 1e-12);
        assert!((c.at(0.3) - 0.5).abs() < 1e-12);
        assert!((c.at(1.0) - 1.0).abs() < 1e-12);
        assert!((c.quantile(0.0) - 0.1).abs() < 1e-12);
        assert!((c.quantile(1.0) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn cdf_push_keeps_sorted() {
        let mut c = Cdf::new();
        for v in [0.7, 0.2, 0.9, 0.1] {
            c.push(v);
        }
        assert!((c.at(0.2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cdf_series_grid() {
        let c = Cdf::from_samples(vec![0.25, 0.75]);
        let s = c.series(1.0, 5);
        assert_eq!(s.len(), 5);
        assert_eq!(s[0], (0.0, 0.0));
        assert!((s[2].1 - 0.5).abs() < 1e-12); // at 0.5
        assert!((s[4].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cdf_is_safe() {
        let c = Cdf::new();
        assert!(c.is_empty());
        assert_eq!(c.at(0.5), 0.0);
        assert!(c.quantile(0.5).is_nan());
    }

    #[test]
    fn collector_aggregates_loss_and_failures() {
        let mut m = MetricsCollector::new();
        m.record_loss(2.0);
        m.record_completion(0.5);
        m.record_completion(1.5); // violation
        m.record_loss(3.0);
        m.record_completion(0.9);
        m.record_dropped(1);
        let r = m.finish();
        // 2.0 + 3.0 of model loss plus DROP_LOSS for the dropped request.
        assert!((r.total_loss - 6.0).abs() < 1e-12);
        assert_eq!(r.cumulative_loss, vec![2.0, 6.0]);
        assert_eq!(r.served, 3);
        assert_eq!(r.dropped, 1);
        assert_eq!(r.slo_failures, 2);
        assert!((r.failure_rate_pct - 50.0).abs() < 1e-12);
    }

    #[test]
    fn failure_rate_of_empty_run_is_zero() {
        let r = MetricsCollector::new().finish();
        assert_eq!(r.failure_rate_pct, 0.0);
        assert_eq!(r.total_loss, 0.0);
    }
}
