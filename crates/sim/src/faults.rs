//! Failure injection: edge outages and performance degradations.
//!
//! The paper's testbed assumes healthy edges; a production deployment does
//! not get that luxury. The fault plan lets experiments and tests inject
//!
//! * **outages** — an edge is dark for a slot range: its batches never
//!   execute (their requests blow far past the SLO), and the observed TIR
//!   collapses, which the MAB tuner perceives as the arm going bad,
//! * **degradations** — an edge runs slower by a factor for a slot range
//!   (thermal throttling, co-tenant interference).
//!
//! Schedulers are *not* told about faults; they only see the outcomes —
//! exactly the information asymmetry a real redistribution scheduler faces.

use serde::{Deserialize, Serialize};

use birp_models::EdgeId;

/// Completion-time (normalised) assigned to requests whose batch never ran
/// because its edge was down. Far beyond any SLO; distinguishable from slow
///-but-finished work in the CDF tail.
pub const OUTAGE_COMPLETION: f64 = 8.0;

/// One edge outage window (inclusive start, exclusive end).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Outage {
    pub edge: EdgeId,
    pub from_slot: usize,
    pub to_slot: usize,
}

/// One degradation window: execution on `edge` is `slowdown`x slower.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Degradation {
    pub edge: EdgeId,
    pub from_slot: usize,
    pub to_slot: usize,
    pub slowdown: f64,
}

/// The full fault schedule for a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    pub outages: Vec<Outage>,
    pub degradations: Vec<Degradation>,
}

impl FaultPlan {
    /// No faults (the default).
    pub fn none() -> Self {
        Self::default()
    }

    pub fn with_outage(mut self, edge: EdgeId, from_slot: usize, to_slot: usize) -> Self {
        self.outages.push(Outage {
            edge,
            from_slot,
            to_slot,
        });
        self
    }

    pub fn with_degradation(
        mut self,
        edge: EdgeId,
        from_slot: usize,
        to_slot: usize,
        slowdown: f64,
    ) -> Self {
        self.degradations.push(Degradation {
            edge,
            from_slot,
            to_slot,
            slowdown,
        });
        self
    }

    /// Is `edge` dark during `slot`?
    pub fn is_down(&self, edge: EdgeId, slot: usize) -> bool {
        self.outages
            .iter()
            .any(|o| o.edge == edge && slot >= o.from_slot && slot < o.to_slot)
    }

    /// Execution-time multiplier for `edge` during `slot` (1.0 = healthy).
    pub fn slowdown(&self, edge: EdgeId, slot: usize) -> f64 {
        self.degradations
            .iter()
            .filter(|d| d.edge == edge && slot >= d.from_slot && slot < d.to_slot)
            .map(|d| d.slowdown.max(1.0))
            .fold(1.0, f64::max)
    }

    pub fn is_empty(&self) -> bool {
        self.outages.is_empty() && self.degradations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_healthy() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert!(!p.is_down(EdgeId(0), 5));
        assert_eq!(p.slowdown(EdgeId(0), 5), 1.0);
    }

    #[test]
    fn outage_windows_are_half_open() {
        let p = FaultPlan::none().with_outage(EdgeId(2), 3, 6);
        assert!(!p.is_down(EdgeId(2), 2));
        assert!(p.is_down(EdgeId(2), 3));
        assert!(p.is_down(EdgeId(2), 5));
        assert!(!p.is_down(EdgeId(2), 6));
        assert!(!p.is_down(EdgeId(1), 4));
    }

    #[test]
    fn overlapping_degradations_take_the_worst() {
        let p = FaultPlan::none()
            .with_degradation(EdgeId(0), 0, 10, 2.0)
            .with_degradation(EdgeId(0), 5, 8, 3.5);
        assert_eq!(p.slowdown(EdgeId(0), 2), 2.0);
        assert_eq!(p.slowdown(EdgeId(0), 6), 3.5);
        assert_eq!(p.slowdown(EdgeId(0), 9), 2.0);
        assert_eq!(p.slowdown(EdgeId(0), 10), 1.0);
    }

    #[test]
    fn sub_unity_slowdowns_are_clamped() {
        let p = FaultPlan::none().with_degradation(EdgeId(0), 0, 5, 0.1);
        assert_eq!(p.slowdown(EdgeId(0), 1), 1.0);
    }
}
