//! Failure injection: edge outages and performance degradations.
//!
//! The paper's testbed assumes healthy edges; a production deployment does
//! not get that luxury. The fault plan lets experiments and tests inject
//!
//! * **outages** — an edge is dark for a slot range: its batches never
//!   execute (their requests blow far past the SLO), and the observed TIR
//!   collapses, which the MAB tuner perceives as the arm going bad,
//! * **degradations** — an edge runs slower by a factor for a slot range
//!   (thermal throttling, co-tenant interference),
//! * **link faults** — a directed redistribution path `(k, k')` is down or
//!   bandwidth-degraded for a slot range: requests shipped over it arrive
//!   late (or effectively never, blowing the SLO),
//! * **flaky edges** — intermittent outages: within a window the edge
//!   cycles `down_slots` dark slots out of every `period` (loose contacts,
//!   crash loops, periodic co-tenant evictions).
//!
//! All windows are half-open `[from_slot, to_slot)`. Schedulers are *not*
//! told about faults; they only see the outcomes — exactly the information
//! asymmetry a real redistribution scheduler faces.

use serde::{Deserialize, Serialize};

use birp_models::EdgeId;

/// Completion-time (normalised) assigned to requests whose batch never ran
/// because its edge was down. Far beyond any SLO; distinguishable from
/// slow-but-finished work in the CDF tail.
pub const OUTAGE_COMPLETION: f64 = 8.0;

/// One edge outage window (inclusive start, exclusive end).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Outage {
    pub edge: EdgeId,
    pub from_slot: usize,
    pub to_slot: usize,
}

/// One degradation window: execution on `edge` is `slowdown`x slower.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Degradation {
    pub edge: EdgeId,
    pub from_slot: usize,
    pub to_slot: usize,
    pub slowdown: f64,
}

/// One directed link fault: requests of any app shipped `from -> to` see
/// their transfer bandwidth scaled by `bandwidth_factor` (0.0 = the path is
/// down — shipped requests effectively never arrive within the slot).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFault {
    pub from: EdgeId,
    pub to: EdgeId,
    pub from_slot: usize,
    pub to_slot: usize,
    /// Multiplier on the path's effective bandwidth, clamped to `[0, 1]`.
    pub bandwidth_factor: f64,
}

/// One flaky window: inside `[from_slot, to_slot)` the edge is dark for the
/// first `down_slots` slots of every `period`-slot cycle (phase anchored at
/// `from_slot`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flaky {
    pub edge: EdgeId,
    pub from_slot: usize,
    pub to_slot: usize,
    pub period: usize,
    pub down_slots: usize,
}

/// The full fault schedule for a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    #[serde(default)]
    pub outages: Vec<Outage>,
    #[serde(default)]
    pub degradations: Vec<Degradation>,
    #[serde(default)]
    pub link_faults: Vec<LinkFault>,
    #[serde(default)]
    pub flaky: Vec<Flaky>,
}

impl FaultPlan {
    /// No faults (the default).
    pub fn none() -> Self {
        Self::default()
    }

    pub fn with_outage(mut self, edge: EdgeId, from_slot: usize, to_slot: usize) -> Self {
        self.outages.push(Outage {
            edge,
            from_slot,
            to_slot,
        });
        self
    }

    pub fn with_degradation(
        mut self,
        edge: EdgeId,
        from_slot: usize,
        to_slot: usize,
        slowdown: f64,
    ) -> Self {
        self.degradations.push(Degradation {
            edge,
            from_slot,
            to_slot,
            slowdown,
        });
        self
    }

    pub fn with_link_fault(
        mut self,
        from: EdgeId,
        to: EdgeId,
        from_slot: usize,
        to_slot: usize,
        bandwidth_factor: f64,
    ) -> Self {
        self.link_faults.push(LinkFault {
            from,
            to,
            from_slot,
            to_slot,
            bandwidth_factor,
        });
        self
    }

    pub fn with_flaky(
        mut self,
        edge: EdgeId,
        from_slot: usize,
        to_slot: usize,
        period: usize,
        down_slots: usize,
    ) -> Self {
        self.flaky.push(Flaky {
            edge,
            from_slot,
            to_slot,
            period,
            down_slots,
        });
        self
    }

    /// Is `edge` dark during `slot`?
    pub fn is_down(&self, edge: EdgeId, slot: usize) -> bool {
        self.outages
            .iter()
            .any(|o| o.edge == edge && slot >= o.from_slot && slot < o.to_slot)
            || self.flaky.iter().any(|f| {
                f.edge == edge
                    && slot >= f.from_slot
                    && slot < f.to_slot
                    && (slot - f.from_slot) % f.period.max(1) < f.down_slots
            })
    }

    /// Effective bandwidth multiplier for the directed path `from -> to`
    /// during `slot`. Overlapping faults take the worst (smallest) factor;
    /// 1.0 means healthy, 0.0 means the path is down.
    pub fn link_factor(&self, from: EdgeId, to: EdgeId, slot: usize) -> f64 {
        self.link_faults
            .iter()
            .filter(|l| l.from == from && l.to == to && slot >= l.from_slot && slot < l.to_slot)
            .map(|l| l.bandwidth_factor.clamp(0.0, 1.0))
            .fold(1.0, f64::min)
    }

    /// Execution-time multiplier for `edge` during `slot` (1.0 = healthy).
    pub fn slowdown(&self, edge: EdgeId, slot: usize) -> f64 {
        self.degradations
            .iter()
            .filter(|d| d.edge == edge && slot >= d.from_slot && slot < d.to_slot)
            .map(|d| d.slowdown.max(1.0))
            .fold(1.0, f64::max)
    }

    pub fn is_empty(&self) -> bool {
        self.outages.is_empty()
            && self.degradations.is_empty()
            && self.link_faults.is_empty()
            && self.flaky.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_healthy() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert!(!p.is_down(EdgeId(0), 5));
        assert_eq!(p.slowdown(EdgeId(0), 5), 1.0);
    }

    #[test]
    fn outage_windows_are_half_open() {
        let p = FaultPlan::none().with_outage(EdgeId(2), 3, 6);
        assert!(!p.is_down(EdgeId(2), 2));
        assert!(p.is_down(EdgeId(2), 3));
        assert!(p.is_down(EdgeId(2), 5));
        assert!(!p.is_down(EdgeId(2), 6));
        assert!(!p.is_down(EdgeId(1), 4));
    }

    #[test]
    fn overlapping_degradations_take_the_worst() {
        let p = FaultPlan::none()
            .with_degradation(EdgeId(0), 0, 10, 2.0)
            .with_degradation(EdgeId(0), 5, 8, 3.5);
        assert_eq!(p.slowdown(EdgeId(0), 2), 2.0);
        assert_eq!(p.slowdown(EdgeId(0), 6), 3.5);
        assert_eq!(p.slowdown(EdgeId(0), 9), 2.0);
        assert_eq!(p.slowdown(EdgeId(0), 10), 1.0);
    }

    #[test]
    fn sub_unity_slowdowns_are_clamped() {
        let p = FaultPlan::none().with_degradation(EdgeId(0), 0, 5, 0.1);
        assert_eq!(p.slowdown(EdgeId(0), 1), 1.0);
    }

    #[test]
    fn link_fault_windows_are_half_open_and_directional() {
        let p = FaultPlan::none().with_link_fault(EdgeId(1), EdgeId(3), 4, 8, 0.25);
        assert_eq!(p.link_factor(EdgeId(1), EdgeId(3), 3), 1.0);
        assert_eq!(p.link_factor(EdgeId(1), EdgeId(3), 4), 0.25);
        assert_eq!(p.link_factor(EdgeId(1), EdgeId(3), 7), 0.25);
        assert_eq!(p.link_factor(EdgeId(1), EdgeId(3), 8), 1.0);
        // Opposite direction is unaffected.
        assert_eq!(p.link_factor(EdgeId(3), EdgeId(1), 5), 1.0);
        assert!(!p.is_empty());
    }

    #[test]
    fn overlapping_link_faults_take_the_worst_factor() {
        let p = FaultPlan::none()
            .with_link_fault(EdgeId(0), EdgeId(1), 0, 10, 0.5)
            .with_link_fault(EdgeId(0), EdgeId(1), 3, 6, 0.0);
        assert_eq!(p.link_factor(EdgeId(0), EdgeId(1), 1), 0.5);
        assert_eq!(p.link_factor(EdgeId(0), EdgeId(1), 4), 0.0);
        // Factors outside [0, 1] are clamped.
        let q = FaultPlan::none().with_link_fault(EdgeId(0), EdgeId(1), 0, 5, 3.0);
        assert_eq!(q.link_factor(EdgeId(0), EdgeId(1), 2), 1.0);
    }

    #[test]
    fn flaky_edge_cycles_within_its_window() {
        // [10, 20), period 4, down 2: down at 10,11,14,15,18,19.
        let p = FaultPlan::none().with_flaky(EdgeId(2), 10, 20, 4, 2);
        for slot in [10, 11, 14, 15, 18, 19] {
            assert!(p.is_down(EdgeId(2), slot), "slot {slot} should be down");
        }
        for slot in [9, 12, 13, 16, 17, 20, 21] {
            assert!(!p.is_down(EdgeId(2), slot), "slot {slot} should be up");
        }
        assert!(!p.is_down(EdgeId(1), 10));
    }

    #[test]
    fn flaky_zero_period_is_treated_as_full_outage() {
        let p = FaultPlan::none().with_flaky(EdgeId(0), 2, 5, 0, 1);
        assert!(p.is_down(EdgeId(0), 2));
        assert!(p.is_down(EdgeId(0), 4));
        assert!(!p.is_down(EdgeId(0), 5));
    }
}
