//! Deterministic per-(edge, slot) randomness.
//!
//! Every edge in every slot draws from its own counter-derived RNG stream,
//! so the rayon-parallel executor produces bit-identical results regardless
//! of thread count or scheduling order.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, LogNormal};

/// Mix a base seed with (edge, slot) into an independent stream seed
/// (SplitMix64-style finaliser).
pub fn stream_seed(base: u64, edge: usize, slot: usize) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(edge as u64 + 1))
        .wrapping_add(0xBF58_476D_1CE4_E5B9u64.wrapping_mul(slot as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// RNG for one (edge, slot) cell.
pub fn stream_rng(base: u64, edge: usize, slot: usize) -> StdRng {
    StdRng::seed_from_u64(stream_seed(base, edge, slot))
}

/// Mean-1 log-normal execution-time noise with multiplicative sigma.
/// `sigma = 0` returns exactly 1.
pub fn exec_noise(rng: &mut StdRng, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return 1.0;
    }
    let d = LogNormal::new(-sigma * sigma / 2.0, sigma).expect("valid lognormal");
    d.sample(rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for e in 0..16 {
            for t in 0..64 {
                assert!(seen.insert(stream_seed(42, e, t)), "collision at ({e},{t})");
            }
        }
    }

    #[test]
    fn streams_are_reproducible() {
        use rand::RngExt;
        let a: f64 = stream_rng(7, 3, 5).random_range(0.0..1.0);
        let b: f64 = stream_rng(7, 3, 5).random_range(0.0..1.0);
        assert_eq!(a, b);
        let c: f64 = stream_rng(8, 3, 5).random_range(0.0..1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_sigma_noise_is_one() {
        let mut rng = stream_rng(1, 0, 0);
        assert_eq!(exec_noise(&mut rng, 0.0), 1.0);
    }

    #[test]
    fn noise_is_mean_one_ish() {
        let mut rng = stream_rng(2, 0, 0);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exec_noise(&mut rng, 0.2)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn noise_is_positive() {
        let mut rng = stream_rng(3, 1, 1);
        for _ in 0..1000 {
            assert!(exec_noise(&mut rng, 0.5) > 0.0);
        }
    }
}
