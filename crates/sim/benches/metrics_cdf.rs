//! Guards the `Cdf` ingest path (the satellite fix of PR 1): `push` must be
//! an O(1) append with a deferred sort, not an O(n) insert-sort. The
//! `push_then_quantiles` benchmark models the runner's real access pattern —
//! a burst of per-request completion pushes, then a handful of quantile
//! queries at the figure boundary.

use birp_sim::Cdf;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// Deterministic pseudo-random completion times (no `rand` in benches).
fn samples(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * 7919 + 13) % 10_007) as f64 / 10_007.0)
        .collect()
}

fn bench_push(c: &mut Criterion) {
    let mut g = c.benchmark_group("cdf");
    for &n in &[1_000usize, 10_000] {
        let vals = samples(n);
        g.bench_function(format!("push_{n}"), |b| {
            b.iter(|| {
                let mut cdf = Cdf::new();
                for &v in &vals {
                    cdf.push(v);
                }
                black_box(cdf.len())
            })
        });
        g.bench_function(format!("push_then_quantiles_{n}"), |b| {
            b.iter(|| {
                let mut cdf = Cdf::new();
                for &v in &vals {
                    cdf.push(v);
                }
                let mut acc = 0.0;
                for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
                    acc += cdf.quantile(q);
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_push);
criterion_main!(benches);
