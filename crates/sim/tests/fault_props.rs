//! Property tests for the fault plan: serde round-trips, worst-of
//! overlapping windows, and half-open window semantics for arbitrary
//! generated plans. The fault generators live in
//! `birp_conformance::strategies`, parameterized by this file's NE/HORIZON.

use proptest::prelude::*;

use birp_conformance::strategies;
use birp_models::EdgeId;
use birp_sim::{FaultPlan, LinkFault};

const NE: usize = 6;
const HORIZON: usize = 64;

// Shared parameterized generators, pinned to this file's fixture shape.
fn arb_link_fault() -> impl Strategy<Value = LinkFault> {
    strategies::arb_link_fault(NE, HORIZON)
}

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    strategies::arb_fault_plan(NE, HORIZON)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any plan survives a JSON round-trip unchanged.
    #[test]
    fn plan_round_trips_through_json(plan in arb_plan()) {
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(plan, back);
    }

    /// At every (edge, slot), the effective slowdown is exactly the worst
    /// clamped factor among the windows covering that slot — overlapping
    /// windows never compound.
    #[test]
    fn overlapping_degradations_apply_the_worst(plan in arb_plan()) {
        for e in 0..NE {
            for t in 0..HORIZON + 24 {
                let expected = plan
                    .degradations
                    .iter()
                    .filter(|d| d.edge == EdgeId(e) && t >= d.from_slot && t < d.to_slot)
                    .map(|d| d.slowdown.max(1.0))
                    .fold(1.0, f64::max);
                prop_assert_eq!(plan.slowdown(EdgeId(e), t), expected);
                prop_assert!(plan.slowdown(EdgeId(e), t) >= 1.0);
            }
        }
    }

    /// Link-fault windows are half-open: active at `from_slot`, inactive at
    /// `to_slot`; the factor is always inside [0, 1] and directional.
    #[test]
    fn link_fault_windows_are_half_open(fault in arb_link_fault()) {
        let plan = FaultPlan { link_faults: vec![fault], ..FaultPlan::default() };
        let clamped = fault.bandwidth_factor.clamp(0.0, 1.0);
        prop_assert_eq!(plan.link_factor(fault.from, fault.to, fault.from_slot), clamped);
        prop_assert_eq!(plan.link_factor(fault.from, fault.to, fault.to_slot), 1.0);
        if fault.from_slot > 0 {
            prop_assert_eq!(
                plan.link_factor(fault.from, fault.to, fault.from_slot - 1),
                1.0
            );
        }
        if fault.from != fault.to {
            // The reverse direction is untouched.
            prop_assert_eq!(plan.link_factor(fault.to, fault.from, fault.from_slot), 1.0);
        }
        for t in 0..HORIZON + 24 {
            let f = plan.link_factor(fault.from, fault.to, t);
            prop_assert!((0.0..=1.0).contains(&f));
        }
    }

    /// Outage and flaky windows are half-open, and a dark slot is always
    /// explained by some covering window.
    #[test]
    fn down_slots_are_covered_by_windows(plan in arb_plan()) {
        for o in &plan.outages {
            prop_assert!(plan.is_down(o.edge, o.from_slot));
            prop_assert!(plan.is_down(o.edge, o.to_slot - 1));
        }
        for e in 0..NE {
            for t in 0..HORIZON + 24 {
                if plan.is_down(EdgeId(e), t) {
                    let covered = plan
                        .outages
                        .iter()
                        .any(|o| o.edge == EdgeId(e) && t >= o.from_slot && t < o.to_slot)
                        || plan.flaky.iter().any(|f| {
                            f.edge == EdgeId(e) && t >= f.from_slot && t < f.to_slot
                        });
                    prop_assert!(covered, "edge {e} dark at {t} with no window");
                }
            }
        }
    }
}
