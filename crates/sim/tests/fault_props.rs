//! Property tests for the fault plan: serde round-trips, worst-of
//! overlapping windows, and half-open window semantics for arbitrary
//! generated plans.

use proptest::prelude::*;

use birp_models::EdgeId;
use birp_sim::{Degradation, FaultPlan, Flaky, LinkFault, Outage};

const NE: usize = 6;
const HORIZON: usize = 64;

fn arb_window() -> impl Strategy<Value = (usize, usize)> {
    (0usize..HORIZON, 1usize..24).prop_map(|(from, len)| (from, from + len))
}

fn arb_outage() -> impl Strategy<Value = Outage> {
    (0usize..NE, arb_window()).prop_map(|(e, (from_slot, to_slot))| Outage {
        edge: EdgeId(e),
        from_slot,
        to_slot,
    })
}

fn arb_degradation() -> impl Strategy<Value = Degradation> {
    (0usize..NE, arb_window(), 0.1f64..6.0).prop_map(|(e, (from_slot, to_slot), slowdown)| {
        Degradation {
            edge: EdgeId(e),
            from_slot,
            to_slot,
            slowdown,
        }
    })
}

fn arb_link_fault() -> impl Strategy<Value = LinkFault> {
    (0usize..NE, 0usize..NE, arb_window(), -0.5f64..2.0).prop_map(
        |(from, to, (from_slot, to_slot), bandwidth_factor)| LinkFault {
            from: EdgeId(from),
            to: EdgeId(to),
            from_slot,
            to_slot,
            bandwidth_factor,
        },
    )
}

fn arb_flaky() -> impl Strategy<Value = Flaky> {
    (0usize..NE, arb_window(), 0usize..6, 0usize..4).prop_map(
        |(e, (from_slot, to_slot), period, down_slots)| Flaky {
            edge: EdgeId(e),
            from_slot,
            to_slot,
            period,
            down_slots,
        },
    )
}

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        proptest::collection::vec(arb_outage(), 0..4),
        proptest::collection::vec(arb_degradation(), 0..4),
        proptest::collection::vec(arb_link_fault(), 0..4),
        proptest::collection::vec(arb_flaky(), 0..4),
    )
        .prop_map(|(outages, degradations, link_faults, flaky)| FaultPlan {
            outages,
            degradations,
            link_faults,
            flaky,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any plan survives a JSON round-trip unchanged.
    #[test]
    fn plan_round_trips_through_json(plan in arb_plan()) {
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(plan, back);
    }

    /// At every (edge, slot), the effective slowdown is exactly the worst
    /// clamped factor among the windows covering that slot — overlapping
    /// windows never compound.
    #[test]
    fn overlapping_degradations_apply_the_worst(plan in arb_plan()) {
        for e in 0..NE {
            for t in 0..HORIZON + 24 {
                let expected = plan
                    .degradations
                    .iter()
                    .filter(|d| d.edge == EdgeId(e) && t >= d.from_slot && t < d.to_slot)
                    .map(|d| d.slowdown.max(1.0))
                    .fold(1.0, f64::max);
                prop_assert_eq!(plan.slowdown(EdgeId(e), t), expected);
                prop_assert!(plan.slowdown(EdgeId(e), t) >= 1.0);
            }
        }
    }

    /// Link-fault windows are half-open: active at `from_slot`, inactive at
    /// `to_slot`; the factor is always inside [0, 1] and directional.
    #[test]
    fn link_fault_windows_are_half_open(fault in arb_link_fault()) {
        let plan = FaultPlan { link_faults: vec![fault], ..FaultPlan::default() };
        let clamped = fault.bandwidth_factor.clamp(0.0, 1.0);
        prop_assert_eq!(plan.link_factor(fault.from, fault.to, fault.from_slot), clamped);
        prop_assert_eq!(plan.link_factor(fault.from, fault.to, fault.to_slot), 1.0);
        if fault.from_slot > 0 {
            prop_assert_eq!(
                plan.link_factor(fault.from, fault.to, fault.from_slot - 1),
                1.0
            );
        }
        if fault.from != fault.to {
            // The reverse direction is untouched.
            prop_assert_eq!(plan.link_factor(fault.to, fault.from, fault.from_slot), 1.0);
        }
        for t in 0..HORIZON + 24 {
            let f = plan.link_factor(fault.from, fault.to, t);
            prop_assert!((0.0..=1.0).contains(&f));
        }
    }

    /// Outage and flaky windows are half-open, and a dark slot is always
    /// explained by some covering window.
    #[test]
    fn down_slots_are_covered_by_windows(plan in arb_plan()) {
        for o in &plan.outages {
            prop_assert!(plan.is_down(o.edge, o.from_slot));
            prop_assert!(plan.is_down(o.edge, o.to_slot - 1));
        }
        for e in 0..NE {
            for t in 0..HORIZON + 24 {
                if plan.is_down(EdgeId(e), t) {
                    let covered = plan
                        .outages
                        .iter()
                        .any(|o| o.edge == EdgeId(e) && t >= o.from_slot && t < o.to_slot)
                        || plan.flaky.iter().any(|f| {
                            f.edge == EdgeId(e) && t >= f.from_slot && t < f.to_slot
                        });
                    prop_assert!(covered, "edge {e} dark at {t} with no window");
                }
            }
        }
    }
}
