//! Property-based tests for the TIR fitter: planted-parameter recovery and
//! fit-quality invariants over random ground truths.

use birp_tir::{fit_piecewise, latency, TirParams, TirSample};
use proptest::prelude::*;

fn samples_from(truth: &TirParams, max_b: u32, reps: usize, noise: f64) -> Vec<TirSample> {
    let mut out = Vec::new();
    for b in 1..=max_b {
        for r in 0..reps {
            // Deterministic pseudo-noise, bounded by `noise`.
            let wiggle = 1.0 + noise * (((b as f64) * 12.9898 + r as f64 * 78.233).sin());
            out.push(TirSample::new(b, truth.tir(b) * wiggle));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Noiseless samples: the fitter recovers eta almost exactly and beta
    /// within the inherent +-1 threshold ambiguity.
    #[test]
    fn recovers_planted_noiseless(eta in 0.08f64..0.38, beta in 3u32..14) {
        let truth = TirParams::consistent(eta, beta);
        let samples = samples_from(&truth, 16, 3, 0.0);
        let fit = fit_piecewise(&samples).unwrap();
        prop_assert!((fit.params.eta - eta).abs() < 1e-6,
            "eta {} vs {}", fit.params.eta, eta);
        prop_assert!((fit.params.beta as i64 - beta as i64).abs() <= 1,
            "beta {} vs {}", fit.params.beta, beta);
        prop_assert!(fit.sse < 1e-9);
    }

    /// Mild noise: estimates stay in the neighbourhood.
    #[test]
    fn robust_under_noise(eta in 0.10f64..0.35, beta in 4u32..13) {
        let truth = TirParams::consistent(eta, beta);
        let samples = samples_from(&truth, 16, 5, 0.01);
        let fit = fit_piecewise(&samples).unwrap();
        prop_assert!((fit.params.eta - eta).abs() < 0.08);
        prop_assert!((fit.params.beta as i64 - beta as i64).abs() <= 3);
    }

    /// The fitted parameters never leave the physically valid region.
    #[test]
    fn fits_are_always_valid(eta in 0.0f64..0.5, beta in 2u32..16, noise in 0.0f64..0.2) {
        let truth = TirParams::consistent(eta.min(0.38), beta);
        let samples = samples_from(&truth, 16, 3, noise);
        if let Some(fit) = fit_piecewise(&samples) {
            prop_assert!(fit.params.is_valid(), "{:?}", fit.params);
        }
    }

    /// Batch latency is monotone in b and bounded by the serial latency.
    #[test]
    fn latency_monotone_and_batching_helps(
        eta in 0.05f64..0.38,
        beta in 2u32..16,
        gamma in 10.0f64..800.0,
    ) {
        let p = TirParams::consistent(eta, beta);
        let mut prev = 0.0;
        for b in 1..=16u32 {
            let f = latency(gamma, b, &p);
            prop_assert!(f >= prev, "latency not monotone at b={b}");
            // Batching never does worse than serial execution.
            prop_assert!(f <= gamma * b as f64 + 1e-9, "batching slower than serial at b={b}");
            prev = f;
        }
    }
}
