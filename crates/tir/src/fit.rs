//! Piecewise least-squares fitting of TIR measurements.
//!
//! Reproduces the fitting procedure behind paper Fig. 2: given raw
//! `(batch size, TIR)` samples, find the threshold `beta`, exponent `eta`
//! and saturation level `C` minimising the total squared error of
//!
//! ```text
//! TIR(b) = b^eta  (b <= beta),   C  (b > beta).
//! ```
//!
//! For a fixed `beta` the sub-threshold exponent has a closed-form
//! log-log least-squares solution (`ln TIR = eta ln b` — no intercept,
//! because `TIR(1) = 1` by definition) and `C` is the mean of the
//! supra-threshold samples; the 1-D search over `beta` is exhaustive.

use serde::{Deserialize, Serialize};

use crate::params::TirParams;

/// One TIR measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TirSample {
    pub batch: u32,
    pub tir: f64,
}

impl TirSample {
    pub fn new(batch: u32, tir: f64) -> Self {
        TirSample { batch, tir }
    }
}

/// Output of [`fit_piecewise`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FitResult {
    pub params: TirParams,
    /// Sum of squared errors at the optimum.
    pub sse: f64,
    /// Number of samples used.
    pub n: usize,
}

impl FitResult {
    /// Root-mean-square error of the fit.
    pub fn rmse(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.sse / self.n as f64).sqrt()
        }
    }
}

/// Exponent minimising `Σ (ln tir - eta ln b)^2` over sub-threshold samples.
fn fit_eta(samples: &[TirSample], beta: u32) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for s in samples {
        if s.batch <= beta && s.batch >= 2 && s.tir > 0.0 {
            let lb = (s.batch as f64).ln();
            num += lb * s.tir.ln();
            den += lb * lb;
        }
    }
    if den == 0.0 {
        0.0
    } else {
        (num / den).clamp(0.0, 1.0)
    }
}

/// Mean TIR of supra-threshold samples (the `C` plateau); falls back to the
/// power-law value at `beta` when no sample lies beyond the threshold.
fn fit_c(samples: &[TirSample], beta: u32, eta: f64) -> f64 {
    let beyond: Vec<f64> = samples
        .iter()
        .filter(|s| s.batch > beta)
        .map(|s| s.tir)
        .collect();
    if beyond.is_empty() {
        (beta as f64).powf(eta)
    } else {
        beyond.iter().sum::<f64>() / beyond.len() as f64
    }
}

fn sse(samples: &[TirSample], p: &TirParams) -> f64 {
    samples
        .iter()
        .map(|s| (s.tir - p.tir(s.batch)).powi(2))
        .sum()
}

/// Fit the piecewise TIR model to raw samples.
///
/// Returns `None` when there are no samples with `batch >= 2` (the curve is
/// unidentifiable: `TIR(1) = 1` for every parameter choice).
pub fn fit_piecewise(samples: &[TirSample]) -> Option<FitResult> {
    if !samples.iter().any(|s| s.batch >= 2 && s.tir > 0.0) {
        return None;
    }
    let max_b = samples.iter().map(|s| s.batch).max().unwrap_or(1);
    let mut best: Option<(TirParams, f64)> = None;
    for beta in 2..=max_b.max(2) {
        let eta = fit_eta(samples, beta);
        let c = fit_c(samples, beta, eta);
        let p = TirParams {
            eta,
            beta,
            c: c.max(1.0),
        };
        let e = sse(samples, &p);
        // `<=` on replacement: when two thresholds explain the data equally
        // well (TIR(beta) == C makes beta and beta-1 indistinguishable),
        // prefer the larger beta -- the power regime extends as far as the
        // data supports.
        match best {
            Some((_, be)) if be + 1e-12 < e => {}
            _ => best = Some((p, e)),
        }
    }
    best.map(|(params, sse)| FitResult {
        params,
        sse,
        n: samples.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planted_samples(eta: f64, beta: u32, max_b: u32, reps: usize) -> Vec<TirSample> {
        let truth = TirParams::consistent(eta, beta);
        let mut out = Vec::new();
        for b in 1..=max_b {
            for r in 0..reps {
                // Tiny deterministic perturbation so reps differ.
                let noise = 1.0 + 1e-3 * ((b as f64 * 7.77 + r as f64).sin());
                out.push(TirSample::new(b, truth.tir(b) * noise));
            }
        }
        out
    }

    #[test]
    fn recovers_planted_parameters() {
        for &(eta, beta) in &[(0.32, 5u32), (0.12, 10), (0.12, 8), (0.25, 12)] {
            let samples = planted_samples(eta, beta, 16, 5);
            let fit = fit_piecewise(&samples).unwrap();
            assert!(
                (fit.params.eta - eta).abs() < 0.02,
                "eta: fitted {} vs planted {eta}",
                fit.params.eta
            );
            assert!(
                (fit.params.beta as i64 - beta as i64).abs() <= 1,
                "beta: fitted {} vs planted {beta}",
                fit.params.beta
            );
            assert!(fit.rmse() < 0.01);
        }
    }

    #[test]
    fn exact_noiseless_fit_has_near_zero_error() {
        let truth = TirParams::consistent(0.3, 6);
        let samples: Vec<TirSample> = (1..=16).map(|b| TirSample::new(b, truth.tir(b))).collect();
        let fit = fit_piecewise(&samples).unwrap();
        assert!(fit.sse < 1e-10, "sse={}", fit.sse);
        assert_eq!(fit.params.beta, 6);
    }

    #[test]
    fn unidentifiable_input_returns_none() {
        assert!(fit_piecewise(&[]).is_none());
        assert!(fit_piecewise(&[TirSample::new(1, 1.0)]).is_none());
        assert!(fit_piecewise(&[TirSample::new(3, 0.0)]).is_none());
    }

    #[test]
    fn flat_curve_fits_eta_near_zero() {
        let samples: Vec<TirSample> = (1..=16).map(|b| TirSample::new(b, 1.0)).collect();
        let fit = fit_piecewise(&samples).unwrap();
        assert!(fit.params.eta.abs() < 1e-9);
        assert!((fit.params.c - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fit_is_robust_to_moderate_noise() {
        let truth = TirParams::consistent(0.2, 8);
        let mut samples = Vec::new();
        for b in 1..=16u32 {
            for r in 0..5u32 {
                let noise = 1.0 + 0.03 * (((b * 31 + r * 17) % 11) as f64 / 5.0 - 1.0);
                samples.push(TirSample::new(b, truth.tir(b) * noise));
            }
        }
        let fit = fit_piecewise(&samples).unwrap();
        assert!((fit.params.eta - 0.2).abs() < 0.05);
        assert!((fit.params.beta as i64 - 8).abs() <= 2);
    }

    #[test]
    fn rmse_scales_sse() {
        let f = FitResult {
            params: TirParams::paper_initial(),
            sse: 4.0,
            n: 16,
        };
        assert!((f.rmse() - 0.5).abs() < 1e-12);
        let empty = FitResult {
            params: TirParams::paper_initial(),
            sse: 0.0,
            n: 0,
        };
        assert_eq!(empty.rmse(), 0.0);
    }
}
