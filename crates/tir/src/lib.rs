//! # birp-tir
//!
//! The Throughput Improvement Ratio (TIR) model at the heart of BIRP.
//!
//! Section 2.2 of the paper observes that batching `b` requests of the same
//! DNN model multiplies throughput by
//!
//! ```text
//! TIR(b) = b^eta   for b <= beta      (power-law regime)
//!        = C       for b >  beta      (saturated regime, C ~= beta^eta)
//! ```
//!
//! (paper Eq. 2). This crate provides:
//!
//! * [`TirParams`] / [`TirCurve`] — the piecewise model and its evaluation,
//! * [`latency`] — the batch computation-time model of paper Eq. 7,
//!   `f(b) = b * gamma / TIR(b)`,
//! * [`fit`] — least-squares piecewise fitting used both by the Fig. 2
//!   reproduction and by the BIRP-OFF baseline's offline profiling,
//! * [`taylor`] — the Taylor linearisation at `(1, 1)` of paper Eq. 24 that
//!   turns the compute constraint into a linear one.

pub mod fit;
pub mod params;
pub mod taylor;

pub use fit::{fit_piecewise, FitResult, TirSample};
pub use params::{latency, TirCurve, TirParams};
pub use taylor::{linear_coeffs, linearized_latency, max_abs_error};
