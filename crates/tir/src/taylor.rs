//! Taylor linearisation of the batch latency (paper Eq. 24).
//!
//! The compute constraint (paper Eq. 12) contains the non-linear term
//! `gamma * b^(1-eta)`. BIRP expands it around `(1, 1)`:
//!
//! ```text
//! gamma * b^(1-eta)  ~=  gamma * [ (1 - eta) * b + eta ]  =  h(b)
//! ```
//!
//! which is exact at `b = 1` and tangent there, and *over*-estimates for
//! `b > 1` (the true curve is concave in `b` for `eta in (0,1)`), so the
//! linearised constraint is conservative: a schedule feasible under `h`
//! is feasible under the true latency. [`max_abs_error`] quantifies the
//! gap, which the EXPERIMENTS.md ablation reports.

use crate::params::TirParams;

/// Coefficients `(slope, intercept)` of `h(b) = slope * b + intercept`
/// (both already scaled by `gamma`).
pub fn linear_coeffs(gamma: f64, eta: f64) -> (f64, f64) {
    (gamma * (1.0 - eta), gamma * eta)
}

/// The linearised latency `h(b)` of paper Eq. 24.
pub fn linearized_latency(gamma: f64, eta: f64, b: f64) -> f64 {
    let (k, d) = linear_coeffs(gamma, eta);
    k * b + d
}

/// Maximum absolute error `max_{1 <= b <= beta} |h(b) - gamma b^(1-eta)|`
/// over the integer batch range where the linearisation is used.
pub fn max_abs_error(gamma: f64, params: &TirParams) -> f64 {
    let mut worst: f64 = 0.0;
    for b in 1..=params.beta {
        let exact = gamma * (b as f64).powf(1.0 - params.eta);
        let approx = linearized_latency(gamma, params.eta, b as f64);
        worst = worst.max((approx - exact).abs());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_at_b_equals_one() {
        for &eta in &[0.0, 0.1, 0.32, 0.9] {
            let h = linearized_latency(10.0, eta, 1.0);
            assert!((h - 10.0).abs() < 1e-12, "eta={eta}");
        }
    }

    #[test]
    fn linearisation_overestimates_for_b_above_one() {
        // h(b) >= gamma b^(1-eta) on b >= 1 by concavity (tangent at 1 would
        // *under*-estimate a concave function; here h is the secant-style
        // expansion (1-eta) b + eta which dominates b^(1-eta) for b >= 1).
        let gamma = 25.0;
        for &eta in &[0.1, 0.2, 0.32] {
            for b in 1..=16u32 {
                let exact = gamma * (b as f64).powf(1.0 - eta);
                let h = linearized_latency(gamma, eta, b as f64);
                assert!(h >= exact - 1e-9, "eta={eta} b={b}: h={h} exact={exact}");
            }
        }
    }

    #[test]
    fn eta_zero_is_exactly_linear() {
        // With eta = 0 batching gives no benefit and h(b) = gamma b exactly.
        let p = TirParams::new(0.0, 16, 1.0);
        assert_eq!(max_abs_error(30.0, &p), 0.0);
    }

    #[test]
    fn error_grows_with_eta_and_beta() {
        let small = TirParams::new(0.1, 4, 1.2);
        let large = TirParams::new(0.3, 16, 2.0);
        assert!(max_abs_error(10.0, &small) < max_abs_error(10.0, &large));
    }

    #[test]
    fn coeffs_scale_with_gamma() {
        let (k, d) = linear_coeffs(40.0, 0.25);
        assert!((k - 30.0).abs() < 1e-12);
        assert!((d - 10.0).abs() < 1e-12);
    }
}
