//! The piecewise TIR model (paper Eq. 2) and batch latency (paper Eq. 7).

use serde::{Deserialize, Serialize};

/// Hyper-parameters of the piecewise TIR function for one
/// (device, model-version) pair.
///
/// * `eta` — power-law exponent of the sub-threshold regime,
/// * `beta` — batch-size threshold where the curve saturates,
/// * `c` — saturated TIR level (physically `~= beta^eta`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TirParams {
    pub eta: f64,
    pub beta: u32,
    pub c: f64,
}

impl TirParams {
    /// Construct with explicit saturation level.
    pub fn new(eta: f64, beta: u32, c: f64) -> Self {
        TirParams { eta, beta, c }
    }

    /// Construct with the physically consistent saturation `c = beta^eta`.
    pub fn consistent(eta: f64, beta: u32) -> Self {
        TirParams {
            eta,
            beta,
            c: (beta as f64).powf(eta),
        }
    }

    /// The paper's conservative initial estimate (Eq. 23):
    /// `eta = 0.1, beta = 16, C = 16^0.1 ~= 1.32`.
    pub fn paper_initial() -> Self {
        TirParams {
            eta: 0.1,
            beta: 16,
            c: 16.0_f64.powf(0.1),
        }
    }

    /// Evaluate `TIR(b)` (paper Eq. 2).
    pub fn tir(&self, b: u32) -> f64 {
        if b == 0 {
            return 0.0;
        }
        if b <= self.beta {
            (b as f64).powf(self.eta)
        } else {
            self.c
        }
    }

    /// Whether the parameters are physically sane.
    pub fn is_valid(&self) -> bool {
        self.eta.is_finite()
            && self.eta >= 0.0
            && self.eta <= 1.0
            && self.beta >= 1
            && self.c.is_finite()
            && self.c >= 1.0
    }

    /// Observed exponent implied by a TIR measurement at batch `b > 1`
    /// (paper Eq. 21): `eta_hat = ln TIR / ln b`.
    pub fn observed_eta(b: u32, tir_observed: f64) -> Option<f64> {
        if b <= 1 || tir_observed <= 0.0 {
            return None;
        }
        Some(tir_observed.ln() / (b as f64).ln())
    }
}

/// A named TIR curve (convenience wrapper for profiling output and plots).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TirCurve {
    pub label: String,
    pub params: TirParams,
}

impl TirCurve {
    pub fn new(label: impl Into<String>, params: TirParams) -> Self {
        TirCurve {
            label: label.into(),
            params,
        }
    }

    /// Sample the curve over `1..=max_b`.
    pub fn sample(&self, max_b: u32) -> Vec<(u32, f64)> {
        (1..=max_b).map(|b| (b, self.params.tir(b))).collect()
    }
}

/// Batch computation time (paper Eq. 7):
///
/// ```text
/// f(b) = b * gamma / TIR(b)
///      = gamma * b^(1 - eta)    for b <= beta
///      = gamma * b / C          for b >  beta
/// ```
///
/// `gamma` is the single-request latency of the model on the device.
pub fn latency(gamma: f64, b: u32, params: &TirParams) -> f64 {
    if b == 0 {
        return 0.0;
    }
    gamma * b as f64 / params.tir(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tir_is_one_at_batch_one() {
        let p = TirParams::consistent(0.32, 5);
        assert!((p.tir(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tir_matches_fig2_lenet() {
        // Fig. 2a: TIR = b^0.32 for b <= 5, 1.68 for b > 5.
        let p = TirParams::new(0.32, 5, 1.68);
        assert!((p.tir(2) - 2.0_f64.powf(0.32)).abs() < 1e-12);
        assert!((p.tir(5) - 5.0_f64.powf(0.32)).abs() < 1e-12);
        assert!((p.tir(6) - 1.68).abs() < 1e-12);
        assert!((p.tir(16) - 1.68).abs() < 1e-12);
    }

    #[test]
    fn tir_zero_batch_is_zero() {
        let p = TirParams::paper_initial();
        assert_eq!(p.tir(0), 0.0);
    }

    #[test]
    fn consistent_construction_is_continuous_at_threshold() {
        let p = TirParams::consistent(0.12, 10);
        assert!((p.tir(10) - p.c).abs() < 1e-12);
    }

    #[test]
    fn paper_initial_values() {
        let p = TirParams::paper_initial();
        assert_eq!(p.eta, 0.1);
        assert_eq!(p.beta, 16);
        assert!((p.c - 1.31).abs() < 0.01);
        assert!(p.is_valid());
    }

    #[test]
    fn latency_grows_sublinearly_below_threshold() {
        let p = TirParams::consistent(0.3, 8);
        let gamma = 20.0;
        // f(b)/b decreasing in the power regime: batching is worth it.
        let per1 = latency(gamma, 1, &p) / 1.0;
        let per4 = latency(gamma, 4, &p) / 4.0;
        let per8 = latency(gamma, 8, &p) / 8.0;
        assert!(per4 < per1);
        assert!(per8 < per4);
        // Beyond threshold the per-request latency is flat.
        let per9 = latency(gamma, 9, &p) / 9.0;
        let per16 = latency(gamma, 16, &p) / 16.0;
        assert!((per9 - per16).abs() < 1e-9);
    }

    #[test]
    fn latency_eq7_closed_forms() {
        let p = TirParams::new(0.25, 6, 1.5);
        let gamma = 100.0;
        assert!((latency(gamma, 4, &p) - gamma * 4.0_f64.powf(0.75)).abs() < 1e-9);
        assert!((latency(gamma, 10, &p) - gamma * 10.0 / 1.5).abs() < 1e-9);
        assert_eq!(latency(gamma, 0, &p), 0.0);
    }

    #[test]
    fn observed_eta_inverts_tir() {
        let p = TirParams::consistent(0.27, 12);
        for b in 2..=12 {
            let eta_hat = TirParams::observed_eta(b, p.tir(b)).unwrap();
            assert!((eta_hat - 0.27).abs() < 1e-12, "b={b}");
        }
        assert!(TirParams::observed_eta(1, 1.0).is_none());
        assert!(TirParams::observed_eta(4, 0.0).is_none());
        assert!(TirParams::observed_eta(4, -1.0).is_none());
    }

    #[test]
    fn validity_checks() {
        assert!(!TirParams::new(-0.1, 5, 1.2).is_valid());
        assert!(!TirParams::new(1.5, 5, 1.2).is_valid());
        assert!(!TirParams::new(0.3, 0, 1.2).is_valid());
        assert!(!TirParams::new(0.3, 5, 0.5).is_valid());
        assert!(TirParams::new(0.3, 5, 1.2).is_valid());
    }

    #[test]
    fn curve_sampling() {
        let c = TirCurve::new("lenet", TirParams::new(0.32, 5, 1.68));
        let s = c.sample(16);
        assert_eq!(s.len(), 16);
        assert_eq!(s[0].0, 1);
        assert!((s[15].1 - 1.68).abs() < 1e-12);
    }
}
