//! Heterogeneous edge devices.
//!
//! The paper's testbed has three device types, two instances each. The
//! speed factors below are calibrated from the paper's own Table 1 FPS
//! measurements (e.g. ResNet-18: 32.2 FPS on Nano vs 78.8 FPS on the Atlas
//! 200DK NPU), with the Jetson NX taken as the 1.0 reference.

use serde::{Deserialize, Serialize};

use birp_tir::TirParams;

use crate::ids::EdgeId;

/// The three edge accelerator types of the paper's testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    JetsonNX,
    JetsonNano,
    Atlas200DK,
}

impl DeviceKind {
    /// Multiplier applied to a model's reference latency on this device
    /// (> 1 means slower than the Jetson NX reference).
    pub fn speed_factor(self) -> f64 {
        match self {
            DeviceKind::JetsonNX => 1.0,
            DeviceKind::JetsonNano => 2.4,
            DeviceKind::Atlas200DK => 1.15,
        }
    }

    /// Typical device memory in MB, centre of the paper's [4500, 6500] range.
    pub fn memory_mb(self) -> f64 {
        match self {
            DeviceKind::JetsonNX => 6500.0,
            DeviceKind::JetsonNano => 4500.0,
            DeviceKind::Atlas200DK => 5500.0,
        }
    }

    /// Which accelerator the compute-bound stage runs on (drives the
    /// Table 1 utilisation columns).
    pub fn accelerator(self) -> Accelerator {
        match self {
            DeviceKind::JetsonNX | DeviceKind::JetsonNano => Accelerator::Gpu,
            DeviceKind::Atlas200DK => Accelerator::Npu,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::JetsonNX => "Jetson NX",
            DeviceKind::JetsonNano => "Jetson Nano",
            DeviceKind::Atlas200DK => "Atlas 200DK",
        }
    }

    /// All three kinds, testbed order.
    pub fn all() -> [DeviceKind; 3] {
        [
            DeviceKind::JetsonNX,
            DeviceKind::JetsonNano,
            DeviceKind::Atlas200DK,
        ]
    }
}

/// Accelerator class (GPU for Jetsons, NPU for Ascend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Accelerator {
    Gpu,
    Npu,
}

/// Mean resource utilisation while serially executing one model
/// (the quantities of paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilProfile {
    pub cpu_pct: f64,
    /// GPU utilisation; 0 on NPU devices.
    pub gpu_pct: f64,
    /// NPU utilisation; 0 on GPU devices.
    pub npu_pct: f64,
    /// NPU AI-core utilisation; 0 on GPU devices.
    pub npu_core_pct: f64,
}

impl UtilProfile {
    pub fn zero() -> Self {
        UtilProfile {
            cpu_pct: 0.0,
            gpu_pct: 0.0,
            npu_pct: 0.0,
            npu_core_pct: 0.0,
        }
    }

    /// The utilisation of the compute-bound accelerator.
    pub fn bottleneck(&self, acc: Accelerator) -> f64 {
        match acc {
            Accelerator::Gpu => self.gpu_pct,
            Accelerator::Npu => self.npu_core_pct,
        }
    }
}

/// One edge device instance with its per-model ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EdgeDevice {
    pub id: EdgeId,
    pub kind: DeviceKind,
    pub name: String,
    /// Memory available for inference, MB (`M_k` in paper Eq. 6).
    pub memory_mb: f64,
    /// Wireless bandwidth, Mbps (drives `N_k^t` in paper Eq. 9).
    pub bandwidth_mbps: f64,
    /// Network budget per slot in MB (`N_k^t`); see `Catalog` for the
    /// calibration from Mbps.
    pub network_budget_mb: f64,
    /// Ground-truth single-request latency per global model, ms
    /// (`gamma^k_{ji}`, paper's nn-Meter substitute).
    pub gamma_ms: Vec<f64>,
    /// Ground-truth TIR curve per global model. Online algorithms must not
    /// read this directly; it parameterises the simulator and the BIRP-OFF
    /// oracle.
    pub tir_truth: Vec<TirParams>,
    /// Serial-execution utilisation profile per global model (Table 1).
    pub util: Vec<UtilProfile>,
}

impl EdgeDevice {
    /// Ground-truth batch latency of model `m` at batch `b` on this edge
    /// (paper Eq. 7 with the true TIR).
    pub fn true_batch_latency_ms(&self, model: usize, b: u32) -> f64 {
        birp_tir::latency(self.gamma_ms[model], b, &self.tir_truth[model])
    }

    /// Serial frames-per-second of model `m` (Table 1's "Average FPS").
    pub fn serial_fps(&self, model: usize) -> f64 {
        1000.0 / self.gamma_ms[model]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_factors_order_matches_table1() {
        // Table 1: Atlas beats Nano on every model; NX (newer) is fastest.
        assert!(DeviceKind::JetsonNX.speed_factor() < DeviceKind::Atlas200DK.speed_factor());
        assert!(DeviceKind::Atlas200DK.speed_factor() < DeviceKind::JetsonNano.speed_factor());
    }

    #[test]
    fn memory_within_paper_range() {
        for k in DeviceKind::all() {
            assert!((4500.0..=6500.0).contains(&k.memory_mb()), "{k:?}");
        }
    }

    #[test]
    fn accelerator_assignment() {
        assert_eq!(DeviceKind::JetsonNano.accelerator(), Accelerator::Gpu);
        assert_eq!(DeviceKind::Atlas200DK.accelerator(), Accelerator::Npu);
    }

    #[test]
    fn bottleneck_picks_right_column() {
        let u = UtilProfile {
            cpu_pct: 50.0,
            gpu_pct: 72.4,
            npu_pct: 12.6,
            npu_core_pct: 31.2,
        };
        assert_eq!(u.bottleneck(Accelerator::Gpu), 72.4);
        assert_eq!(u.bottleneck(Accelerator::Npu), 31.2);
    }

    #[test]
    fn edge_ground_truth_latency() {
        let e = EdgeDevice {
            id: EdgeId(0),
            kind: DeviceKind::JetsonNano,
            name: "nano-0".into(),
            memory_mb: 4500.0,
            bandwidth_mbps: 80.0,
            network_budget_mb: 200.0,
            gamma_ms: vec![40.0],
            tir_truth: vec![TirParams::consistent(0.3, 8)],
            util: vec![UtilProfile::zero()],
        };
        assert!((e.serial_fps(0) - 25.0).abs() < 1e-9);
        let l4 = e.true_batch_latency_ms(0, 4);
        assert!((l4 - 40.0 * 4.0_f64.powf(0.7)).abs() < 1e-9);
    }
}
