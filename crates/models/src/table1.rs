//! Reference data of paper Table 1: serial-execution resource utilisation
//! and FPS of four models on two edge device types.
//!
//! These published measurements serve two roles in the reproduction:
//!
//! 1. the simulator's utilisation model is calibrated against them
//!    (mean utilisation + measurement noise), and
//! 2. the `repro-table1` harness re-measures them in simulation and checks
//!    the motivating observation — no accelerator exceeds ~75 % utilisation
//!    on small models — still holds.

use serde::{Deserialize, Serialize};

use crate::device::{DeviceKind, UtilProfile};

/// One row of Table 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    pub model: &'static str,
    pub device: DeviceKind,
    pub util: UtilProfile,
    pub avg_fps: f64,
}

impl Table1Row {
    /// Single-request latency implied by the FPS column, ms.
    pub fn gamma_ms(&self) -> f64 {
        1000.0 / self.avg_fps
    }
}

/// The eight rows of paper Table 1, verbatim.
pub fn table1_reference() -> Vec<Table1Row> {
    use DeviceKind::{Atlas200DK, JetsonNano};
    let row = |model, device, cpu, gpu, npu, core, fps| Table1Row {
        model,
        device,
        util: UtilProfile {
            cpu_pct: cpu,
            gpu_pct: gpu,
            npu_pct: npu,
            npu_core_pct: core,
        },
        avg_fps: fps,
    };
    vec![
        row("Yolov4-t", JetsonNano, 97.9, 72.4, 0.0, 0.0, 23.6),
        row("Yolov4-t", Atlas200DK, 99.1, 0.0, 12.6, 31.2, 64.6),
        row("Yolov4-n", JetsonNano, 37.5, 99.9, 0.0, 0.0, 4.4),
        row("Yolov4-n", Atlas200DK, 45.5, 0.0, 3.1, 71.5, 18.7),
        row("ResNet-18", JetsonNano, 99.9, 61.2, 0.0, 0.0, 32.2),
        row("ResNet-18", Atlas200DK, 99.9, 0.0, 11.2, 25.1, 78.8),
        row("BERT", JetsonNano, 29.2, 98.5, 0.0, 0.0, 1.1),
        row("BERT", Atlas200DK, 36.7, 0.0, 0.0, 82.3, 9.1),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Accelerator;

    #[test]
    fn has_eight_rows() {
        assert_eq!(table1_reference().len(), 8);
    }

    #[test]
    fn paper_headline_utilisations_present() {
        // "the utilization rates of CPU, GPU, and NPU are limited to
        //  29.2%, 72.4%, and 31.2% respectively" (BERT CPU on Nano,
        //  Yolov4-t GPU on Nano, Yolov4-t NPU-core on Atlas).
        let rows = table1_reference();
        let bert_nano = rows
            .iter()
            .find(|r| r.model == "BERT" && r.device == DeviceKind::JetsonNano)
            .unwrap();
        assert_eq!(bert_nano.util.cpu_pct, 29.2);
        let yolo_nano = rows
            .iter()
            .find(|r| r.model == "Yolov4-t" && r.device == DeviceKind::JetsonNano)
            .unwrap();
        assert_eq!(yolo_nano.util.gpu_pct, 72.4);
        let yolo_atlas = rows
            .iter()
            .find(|r| r.model == "Yolov4-t" && r.device == DeviceKind::Atlas200DK)
            .unwrap();
        assert_eq!(yolo_atlas.util.npu_core_pct, 31.2);
    }

    #[test]
    fn atlas_is_faster_than_nano_on_every_model() {
        let rows = table1_reference();
        for model in ["Yolov4-t", "Yolov4-n", "ResNet-18", "BERT"] {
            let nano = rows
                .iter()
                .find(|r| r.model == model && r.device == DeviceKind::JetsonNano)
                .unwrap();
            let atlas = rows
                .iter()
                .find(|r| r.model == model && r.device == DeviceKind::Atlas200DK)
                .unwrap();
            assert!(atlas.avg_fps > nano.avg_fps, "{model}");
        }
    }

    #[test]
    fn small_models_underutilise_accelerators() {
        // The motivation: Yolov4-t never drives its accelerator past 75 %.
        for r in table1_reference().iter().filter(|r| r.model == "Yolov4-t") {
            let acc = r.device.accelerator();
            assert!(r.util.bottleneck(acc) < 75.0);
        }
        // ...whereas the big models do saturate it.
        for r in table1_reference() {
            if r.model == "Yolov4-n" || r.model == "BERT" {
                let acc = r.device.accelerator();
                assert!(r.util.bottleneck(acc) > 70.0, "{} {:?}", r.model, r.device);
            }
        }
    }

    #[test]
    fn gamma_inverts_fps() {
        let rows = table1_reference();
        let bert = rows
            .iter()
            .find(|r| r.model == "BERT" && r.device == DeviceKind::JetsonNano)
            .unwrap();
        assert!((bert.gamma_ms() - 909.09).abs() < 0.01);
    }

    #[test]
    fn gpu_devices_have_no_npu_numbers_and_vice_versa() {
        for r in table1_reference() {
            match r.device.accelerator() {
                Accelerator::Gpu => {
                    assert_eq!(r.util.npu_pct, 0.0);
                    assert_eq!(r.util.npu_core_pct, 0.0);
                }
                Accelerator::Npu => assert_eq!(r.util.gpu_pct, 0.0),
            }
        }
    }
}
