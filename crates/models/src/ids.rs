//! Newtype indices for the three entity spaces.
//!
//! All three are dense `usize` indices into the corresponding `Catalog`
//! vectors; the newtypes exist so that an application index can never be
//! accidentally used where an edge index is expected (the per-slot problem
//! builder juggles all three constantly).

use serde::{Deserialize, Serialize};

macro_rules! dense_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name(pub usize);

        impl $name {
            #[inline]
            pub fn index(self) -> usize {
                self.0
            }
        }

        impl From<usize> for $name {
            fn from(i: usize) -> Self {
                $name(i)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}{}", stringify!($name).chars().next().unwrap(), self.0)
            }
        }
    };
}

dense_id!(
    /// Index of an intelligent application (paper: `i` in `I`).
    AppId
);
dense_id!(
    /// Global index of a DNN model version (paper: `j_i`; we flatten the
    /// per-application model lists into one global space).
    ModelId
);
dense_id!(
    /// Index of an edge device (paper: `k` in `K`).
    EdgeId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_types_with_indices() {
        let a = AppId(3);
        let m = ModelId(3);
        let e = EdgeId(3);
        assert_eq!(a.index(), 3);
        assert_eq!(m.index(), 3);
        assert_eq!(e.index(), 3);
    }

    #[test]
    fn display_prefixes_differ() {
        assert_eq!(AppId(1).to_string(), "A1");
        assert_eq!(ModelId(2).to_string(), "M2");
        assert_eq!(EdgeId(0).to_string(), "E0");
    }

    #[test]
    fn from_usize() {
        let m: ModelId = 7usize.into();
        assert_eq!(m, ModelId(7));
    }

    #[test]
    fn ordering_follows_index() {
        assert!(EdgeId(1) < EdgeId(2));
        assert!(AppId(0) < AppId(5));
    }
}
