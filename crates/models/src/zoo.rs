//! Applications and DNN model versions (the "model zoo").

use serde::{Deserialize, Serialize};

use crate::ids::{AppId, ModelId};

/// One intelligent application (paper: `i`), owning a list of model
/// versions ordered from smallest/least-accurate to largest/most-accurate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Application {
    pub id: AppId,
    pub name: String,
    /// Size of one inference request in MB — `zeta_i` in the bandwidth
    /// constraint (paper Eq. 9).
    pub request_mb: f64,
    /// Global model ids of this application's versions.
    pub models: Vec<ModelId>,
}

impl Application {
    /// Number of available versions (`J_i`).
    pub fn num_versions(&self) -> usize {
        self.models.len()
    }
}

/// One DNN model version (paper: `j_i`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelVersion {
    pub id: ModelId,
    pub app: AppId,
    pub name: String,
    /// Inference error `loss_{ij}` (lower is better), in [0.15, 0.49].
    pub loss: f64,
    /// Single-request latency on the reference device (Jetson NX), ms;
    /// per-edge `gamma` scales this by the device speed factor.
    pub gamma_base_ms: f64,
    /// Weight memory `delta_{ji}`, MB.
    pub weight_mb: f64,
    /// Compressed weights `xi_{ji}` — network cost of (re)deploying the
    /// model, MB.
    pub compressed_mb: f64,
    /// Intermediate-tensor memory at batch size 1, `mu_{ji}`, MB; total
    /// activation memory scales linearly with the batch size (paper Eq. 6).
    pub intermediate_mb: f64,
}

impl ModelVersion {
    /// Memory footprint when deployed with batch size `b` (paper Eq. 6
    /// per-model term): `delta + mu * b`.
    pub fn memory_mb(&self, b: u32) -> f64 {
        self.weight_mb + self.intermediate_mb * b as f64
    }

    /// Sanity check against the paper's published ranges.
    pub fn in_paper_ranges(&self) -> bool {
        (0.15..=0.49).contains(&self.loss)
            && (18.0..=770.0).contains(&self.gamma_base_ms)
            && (33.0..=550.0).contains(&self.weight_mb)
            && (7.0..=98.0).contains(&self.compressed_mb)
            && (55.0..=480.0).contains(&self.intermediate_mb)
    }
}

/// The canonical 5-version ladder for an application, spanning the paper's
/// parameter ranges: version 0 is the small fast model (high loss), version
/// 4 the large accurate one (low loss). `spread` in [0,1] perturbs the
/// ladder per application so the 5 applications are not identical.
pub fn version_ladder(app: AppId, base_model_id: usize, spread: f64) -> Vec<ModelVersion> {
    // (loss, gamma_ms, weights, compressed, intermediates)
    const LADDER: [(f64, f64, f64, f64, f64); 5] = [
        (0.47, 22.0, 40.0, 9.0, 60.0),
        (0.40, 65.0, 95.0, 18.0, 115.0),
        (0.32, 150.0, 180.0, 35.0, 190.0),
        (0.24, 320.0, 310.0, 58.0, 290.0),
        (0.17, 620.0, 480.0, 85.0, 410.0),
    ];
    let names = ["tiny", "small", "medium", "large", "xl"];
    LADDER
        .iter()
        .zip(names)
        .enumerate()
        .map(|(v, (&(loss, gamma, w, c, inter), suffix))| {
            // Deterministic per-app wobble keeps every value inside the
            // published ranges while differentiating applications.
            let f = 1.0 + spread * (0.13 * ((app.0 * 5 + v) as f64).sin());
            ModelVersion {
                id: ModelId(base_model_id + v),
                app,
                name: format!("app{}-{}", app.0, suffix),
                loss: (loss * f).clamp(0.15, 0.49),
                gamma_base_ms: (gamma * f).clamp(18.0, 770.0),
                weight_mb: (w * f).clamp(33.0, 550.0),
                compressed_mb: (c * f).clamp(7.0, 98.0),
                intermediate_mb: (inter * f).clamp(55.0, 480.0),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_monotone_in_loss_and_latency() {
        let ms = version_ladder(AppId(0), 0, 0.0);
        for w in ms.windows(2) {
            assert!(w[0].loss > w[1].loss, "loss must decrease with size");
            assert!(
                w[0].gamma_base_ms < w[1].gamma_base_ms,
                "latency must increase"
            );
            assert!(w[0].weight_mb < w[1].weight_mb);
        }
    }

    #[test]
    fn ladder_respects_paper_ranges_for_all_apps() {
        for a in 0..5 {
            for m in version_ladder(AppId(a), a * 5, 1.0) {
                assert!(m.in_paper_ranges(), "{:?} outside ranges", m);
            }
        }
    }

    #[test]
    fn ladder_ids_are_dense() {
        let ms = version_ladder(AppId(2), 10, 0.5);
        let ids: Vec<usize> = ms.iter().map(|m| m.id.index()).collect();
        assert_eq!(ids, vec![10, 11, 12, 13, 14]);
        assert!(ms.iter().all(|m| m.app == AppId(2)));
    }

    #[test]
    fn spread_differentiates_applications() {
        let a = version_ladder(AppId(0), 0, 1.0);
        let b = version_ladder(AppId(1), 5, 1.0);
        assert!(a
            .iter()
            .zip(&b)
            .any(|(x, y)| (x.loss - y.loss).abs() > 1e-6));
    }

    #[test]
    fn memory_scales_linearly_with_batch() {
        let m = &version_ladder(AppId(0), 0, 0.0)[0];
        let m1 = m.memory_mb(1);
        let m4 = m.memory_mb(4);
        assert!((m4 - m1 - 3.0 * m.intermediate_mb).abs() < 1e-9);
        assert!((m.memory_mb(0) - m.weight_mb).abs() < 1e-9);
    }

    #[test]
    fn application_version_count() {
        let app = Application {
            id: AppId(0),
            name: "det".into(),
            request_mb: 1.2,
            models: vec![ModelId(0), ModelId(1)],
        };
        assert_eq!(app.num_versions(), 2);
    }
}
