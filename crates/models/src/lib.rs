//! # birp-models
//!
//! The static "world" of the BIRP reproduction: intelligent applications,
//! their DNN model versions, and the heterogeneous edge devices of the
//! paper's testbed (2x Jetson NX, 2x Jetson Nano, 2x Atlas 200DK).
//!
//! Every scalar the optimisation problem consumes lives here, drawn from the
//! ranges the paper publishes in Section 5.1:
//!
//! | quantity                     | paper range     | field |
//! |------------------------------|-----------------|-------|
//! | inference loss               | [0.15, 0.49]    | [`ModelVersion::loss`] |
//! | 1-request latency            | [18, 770] ms    | [`ModelVersion::gamma_base_ms`] |
//! | model weights                | [33, 550] MB    | [`ModelVersion::weight_mb`] |
//! | compressed weights (network) | [7, 98] MB      | [`ModelVersion::compressed_mb`] |
//! | intermediate tensors (b = 1) | [55, 480] MB    | [`ModelVersion::intermediate_mb`] |
//! | request size                 | [0.2, 3] MB     | [`Application::request_mb`] |
//! | edge memory                  | [4500, 6500] MB | [`EdgeDevice::memory_mb`] |
//! | edge bandwidth               | [50, 100] Mbps  | [`EdgeDevice::bandwidth_mbps`] |
//!
//! Per-(device, model) ground truth — single-request latency `gamma` and the
//! true TIR curve — is what the simulator executes against and what the
//! BIRP-OFF oracle is allowed to see; the online algorithms only ever
//! observe it through measurements.

pub mod catalog;
pub mod device;
pub mod ids;
pub mod table1;
pub mod zoo;

pub use catalog::Catalog;
pub use device::{DeviceKind, EdgeDevice, UtilProfile};
pub use ids::{AppId, EdgeId, ModelId};
pub use table1::{table1_reference, Table1Row};
pub use zoo::{Application, ModelVersion};
