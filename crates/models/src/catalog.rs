//! The [`Catalog`]: everything static about one experimental scenario.
//!
//! A catalog bundles the applications, the flattened model zoo, and the
//! edge devices with their per-model ground truth. Constructors mirror the
//! paper's evaluation setups:
//!
//! * [`Catalog::small_scale`] — 1 application, 3 model versions, 6 edges
//!   (Fig. 6, where the TIR functions were profiled offline),
//! * [`Catalog::large_scale`] — 5 applications x 5 versions = 25 models,
//!   6 edges (Fig. 7),
//! * [`Catalog::fig2`] — LeNet / GoogLeNet / ResNet-18 on a Jetson Nano
//!   with the exact fitted TIR parameters of Fig. 2,
//! * [`Catalog::table1`] — the four Table 1 models on Nano + Atlas with
//!   latencies implied by the published FPS numbers.
//!
//! ## Calibration notes (substitutions recorded in DESIGN.md)
//!
//! The paper uses 15-minute slots on physical hardware; the absolute scale
//! of `tau` is immaterial to the scheduling problem *except* through the
//! one-batch-per-model-per-slot semantics of Eq. 5: the slot must be short
//! enough that the compute constraint (not the batch threshold `beta`)
//! limits throughput, or batching could never beat serial execution. The
//! simulator uses `slot_ms = 2_500`, under which one edge serially executes
//! ~4 (BERT-class) to ~110 (tiny-class) requests per slot — the same
//! relative pressure as the testbed.
//!
//! The network budget is deliberately NOT `bandwidth * slot`: the paper's
//! 15-minute slots make any model transfer trivial, while 2.5 s would make
//! every transfer impossible. We charge a 30-second effective window
//! (`bandwidth_mbps * 30 / 8` MB), which keeps Eq. 9 meaningful — heavy
//! model churn is expensive, request forwarding is cheap — matching the
//! paper's "model weights are transmitted compressed and are not the
//! determining factor" observation (Section 4.1).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use birp_tir::TirParams;

use crate::device::{DeviceKind, EdgeDevice, UtilProfile};
use crate::ids::{AppId, EdgeId, ModelId};
use crate::table1::table1_reference;
use crate::zoo::{version_ladder, Application, ModelVersion};

/// Largest batch size any planner may select; matches the paper's
/// observation that thresholds `beta` stay below 16 (Section 4.2).
pub const MAX_BATCH: u32 = 16;

/// Effective seconds of wireless transfer capacity charged per slot (see
/// the calibration note above).
pub const NETWORK_WINDOW_S: f64 = 30.0;

/// One experimental scenario's static world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Catalog {
    pub apps: Vec<Application>,
    /// Flattened model zoo; `ModelId` indexes this vector.
    pub models: Vec<ModelVersion>,
    pub edges: Vec<EdgeDevice>,
    /// Compute budget per slot in ms (`tau`, paper Eq. 8). The SLO equals
    /// one slot: a request completing after `slot_ms` violates it.
    pub slot_ms: f64,
    /// Seed the ground truth was generated from (for provenance).
    pub seed: u64,
}

impl Catalog {
    pub fn num_apps(&self) -> usize {
        self.apps.len()
    }

    pub fn num_models(&self) -> usize {
        self.models.len()
    }

    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    pub fn app(&self, a: AppId) -> &Application {
        &self.apps[a.index()]
    }

    pub fn model(&self, m: ModelId) -> &ModelVersion {
        &self.models[m.index()]
    }

    pub fn edge(&self, e: EdgeId) -> &EdgeDevice {
        &self.edges[e.index()]
    }

    /// Model versions of application `a`, smallest first.
    pub fn models_of(&self, a: AppId) -> &[ModelId] {
        &self.apps[a.index()].models
    }

    /// Ground-truth TIR of model `m` on edge `e` (oracle/simulator only).
    pub fn true_tir(&self, e: EdgeId, m: ModelId) -> &TirParams {
        &self.edges[e.index()].tir_truth[m.index()]
    }

    /// Ground-truth single-request latency of model `m` on edge `e`, ms.
    pub fn gamma_ms(&self, e: EdgeId, m: ModelId) -> f64 {
        self.edges[e.index()].gamma_ms[m.index()]
    }

    /// Internal consistency check; every cross-index must resolve.
    pub fn validate(&self) -> Result<(), String> {
        for (i, app) in self.apps.iter().enumerate() {
            if app.id.index() != i {
                return Err(format!("app {i} has id {}", app.id));
            }
            for &m in &app.models {
                if m.index() >= self.models.len() {
                    return Err(format!("app {i} references missing model {m}"));
                }
                if self.models[m.index()].app != app.id {
                    return Err(format!("model {m} does not back-reference app {i}"));
                }
            }
        }
        for (i, model) in self.models.iter().enumerate() {
            if model.id.index() != i {
                return Err(format!("model {i} has id {}", model.id));
            }
        }
        for (i, edge) in self.edges.iter().enumerate() {
            if edge.id.index() != i {
                return Err(format!("edge {i} has id {}", edge.id));
            }
            for (what, len) in [
                ("gamma_ms", edge.gamma_ms.len()),
                ("tir_truth", edge.tir_truth.len()),
                ("util", edge.util.len()),
            ] {
                if len != self.models.len() {
                    return Err(format!(
                        "edge {i}: {what} has {len} entries, expected {}",
                        self.models.len()
                    ));
                }
            }
            for (m, p) in edge.tir_truth.iter().enumerate() {
                if !p.is_valid() {
                    return Err(format!("edge {i} model {m}: invalid TIR params {p:?}"));
                }
            }
        }
        Ok(())
    }

    // --- scenario constructors -----------------------------------------

    /// The paper's testbed: two instances each of NX / Nano / Atlas.
    fn testbed_edges(models: &[ModelVersion], seed: u64, slot_ms: f64) -> Vec<EdgeDevice> {
        let mut edges = Vec::new();
        let mut idx = 0usize;
        for kind in DeviceKind::all() {
            for instance in 0..2 {
                edges.push(make_edge(
                    EdgeId(idx),
                    kind,
                    &format!(
                        "{}-{}",
                        kind.name().to_lowercase().replace(' ', "-"),
                        instance
                    ),
                    models,
                    seed,
                    slot_ms,
                ));
                idx += 1;
            }
        }
        edges
    }

    /// Small-scale scenario of Fig. 6: 1 application, 3 model versions.
    pub fn small_scale(seed: u64) -> Catalog {
        let ladder = version_ladder(AppId(0), 0, 0.0);
        // Keep tiny / medium / xl, re-indexed densely.
        let mut models: Vec<ModelVersion> = [0usize, 2, 4]
            .iter()
            .enumerate()
            .map(|(new_id, &v)| {
                let mut m = ladder[v].clone();
                m.id = ModelId(new_id);
                m
            })
            .collect();
        for (i, m) in models.iter_mut().enumerate() {
            m.name = format!("det-v{i}");
        }
        let apps = vec![Application {
            id: AppId(0),
            name: "object-detection".into(),
            request_mb: 1.5,
            models: models.iter().map(|m| m.id).collect(),
        }];
        let slot_ms = 2_500.0;
        let edges = Self::testbed_edges(&models, seed, slot_ms);
        let cat = Catalog {
            apps,
            models,
            edges,
            slot_ms,
            seed,
        };
        debug_assert!(cat.validate().is_ok());
        cat
    }

    /// Large-scale scenario of Fig. 7: 5 applications x 5 versions.
    pub fn large_scale(seed: u64) -> Catalog {
        let app_names = [
            "object-detection",
            "face-recognition",
            "image-recognition",
            "nlu",
            "semantic-segmentation",
        ];
        let request_sizes = [1.5, 0.9, 0.4, 0.2, 3.0];
        let mut apps = Vec::new();
        let mut models = Vec::new();
        for (a, (name, req)) in app_names.iter().zip(request_sizes).enumerate() {
            let versions = version_ladder(AppId(a), models.len(), 1.0);
            apps.push(Application {
                id: AppId(a),
                name: (*name).into(),
                request_mb: req,
                models: versions.iter().map(|m| m.id).collect(),
            });
            models.extend(versions);
        }
        let slot_ms = 2_500.0;
        let edges = Self::testbed_edges(&models, seed, slot_ms);
        let cat = Catalog {
            apps,
            models,
            edges,
            slot_ms,
            seed,
        };
        debug_assert!(cat.validate().is_ok());
        cat
    }

    /// Fleet-scale scenario for sharded-decomposition experiments: the
    /// small-scale app/model zoo replicated across `num_edges` devices
    /// cycling through the three testbed kinds. Edges keep per-id
    /// bandwidth draws, so two instances of a kind still differ in their
    /// network budgets exactly as in [`Catalog::small_scale`].
    pub fn fleet_scale(seed: u64, num_edges: usize) -> Catalog {
        let mut cat = Self::small_scale(seed);
        let kinds = DeviceKind::all();
        let models = cat.models.clone();
        cat.edges = (0..num_edges)
            .map(|i| {
                let kind = kinds[(i / 2) % kinds.len()];
                make_edge(
                    EdgeId(i),
                    kind,
                    &format!("fleet-{}-{i}", kind.name().to_lowercase().replace(' ', "-")),
                    &models,
                    seed,
                    cat.slot_ms,
                )
            })
            .collect();
        debug_assert!(cat.validate().is_ok());
        cat
    }

    /// Sub-catalog over a contiguous edge range, for cluster subproblems.
    ///
    /// Edges are copied verbatim (same ground truth, gamma, utilisation
    /// and — critically — the same per-original-id bandwidth draw) and
    /// only re-indexed densely, so a cluster's rows are bitwise the rows
    /// the same edges produce in the monolithic problem.
    pub fn restrict_edges(&self, range: std::ops::Range<usize>) -> Catalog {
        assert!(
            range.end <= self.edges.len(),
            "restrict_edges: range {range:?} exceeds {} edges",
            self.edges.len()
        );
        let edges = self.edges[range]
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let mut e = e.clone();
                e.id = EdgeId(i);
                e
            })
            .collect();
        let cat = Catalog {
            apps: self.apps.clone(),
            models: self.models.clone(),
            edges,
            slot_ms: self.slot_ms,
            seed: self.seed,
        };
        debug_assert!(cat.validate().is_ok());
        cat
    }

    /// Fig. 2 scenario: the three image-recognition models on one Jetson
    /// Nano, with the paper's exact fitted TIR parameters as ground truth.
    pub fn fig2(seed: u64) -> Catalog {
        let specs: [(&str, f64, TirParams); 3] = [
            ("LeNet", 4.0, TirParams::new(0.32, 5, 1.68)),
            ("GoogLeNet", 24.0, TirParams::new(0.12, 10, 1.30)),
            ("ResNet-18", 31.0, TirParams::new(0.12, 8, 1.28)),
        ];
        let models: Vec<ModelVersion> = specs
            .iter()
            .enumerate()
            .map(|(i, (name, gamma, _))| ModelVersion {
                id: ModelId(i),
                app: AppId(0),
                name: (*name).into(),
                loss: 0.30 - 0.05 * i as f64,
                gamma_base_ms: *gamma,
                weight_mb: 33.0 + 40.0 * i as f64,
                compressed_mb: 7.0 + 8.0 * i as f64,
                intermediate_mb: 55.0 + 30.0 * i as f64,
            })
            .collect();
        let apps = vec![Application {
            id: AppId(0),
            name: "image-recognition".into(),
            request_mb: 0.4,
            models: models.iter().map(|m| m.id).collect(),
        }];
        let slot_ms = 2_500.0;
        let mut edge = make_edge(
            EdgeId(0),
            DeviceKind::JetsonNano,
            "jetson-nano-0",
            &models,
            seed,
            slot_ms,
        );
        // Override generated ground truth with the paper's fitted curves and
        // Nano-measured latencies (gamma_base already Nano-scale here).
        for (m, (_, gamma, tir)) in specs.iter().enumerate() {
            edge.gamma_ms[m] = *gamma;
            edge.tir_truth[m] = *tir;
        }
        let cat = Catalog {
            apps,
            models,
            edges: vec![edge],
            slot_ms,
            seed,
        };
        debug_assert!(cat.validate().is_ok());
        cat
    }

    /// Table 1 scenario: Yolov4-t / Yolov4-n / ResNet-18 / BERT on one
    /// Jetson Nano and one Atlas 200DK, with per-device latency implied by
    /// the published FPS and the published utilisation profiles.
    pub fn table1(seed: u64) -> Catalog {
        let names = ["Yolov4-t", "Yolov4-n", "ResNet-18", "BERT"];
        let losses = [0.42, 0.27, 0.33, 0.17];
        let models: Vec<ModelVersion> = names
            .iter()
            .enumerate()
            .map(|(i, name)| ModelVersion {
                id: ModelId(i),
                app: AppId(0),
                name: (*name).into(),
                loss: losses[i],
                gamma_base_ms: 30.0, // replaced per-device below
                weight_mb: 100.0,
                compressed_mb: 20.0,
                intermediate_mb: 100.0,
            })
            .collect();
        let apps = vec![Application {
            id: AppId(0),
            name: "mixed".into(),
            request_mb: 1.0,
            models: models.iter().map(|m| m.id).collect(),
        }];
        let slot_ms = 2_500.0;
        let reference = table1_reference();
        let mut edges = Vec::new();
        for (e, kind) in [DeviceKind::JetsonNano, DeviceKind::Atlas200DK]
            .into_iter()
            .enumerate()
        {
            let mut edge = make_edge(
                EdgeId(e),
                kind,
                &format!("{}-0", kind.name().to_lowercase().replace(' ', "-")),
                &models,
                seed,
                slot_ms,
            );
            for (m, name) in names.iter().enumerate() {
                let row = reference
                    .iter()
                    .find(|r| r.model == *name && r.device == kind)
                    .expect("table1 reference row");
                edge.gamma_ms[m] = row.gamma_ms();
                edge.util[m] = row.util;
            }
            edges.push(edge);
        }
        let cat = Catalog {
            apps,
            models,
            edges,
            slot_ms,
            seed,
        };
        debug_assert!(cat.validate().is_ok());
        cat
    }
}

/// Deterministic per-(edge-kind, model) stream so both instances of a device
/// kind share ground truth, as two identical boards would.
fn kind_rng(seed: u64, kind: DeviceKind, model: usize) -> StdRng {
    let kind_ix = match kind {
        DeviceKind::JetsonNX => 0u64,
        DeviceKind::JetsonNano => 1,
        DeviceKind::Atlas200DK => 2,
    };
    StdRng::seed_from_u64(seed ^ (kind_ix << 32) ^ ((model as u64) << 8) ^ 0x5157_4F2D)
}

fn make_edge(
    id: EdgeId,
    kind: DeviceKind,
    name: &str,
    models: &[ModelVersion],
    seed: u64,
    slot_ms: f64,
) -> EdgeDevice {
    let mut gamma_ms = Vec::with_capacity(models.len());
    let mut tir_truth = Vec::with_capacity(models.len());
    let mut util = Vec::with_capacity(models.len());
    for (m, model) in models.iter().enumerate() {
        let mut rng = kind_rng(seed, kind, m);
        let jitter: f64 = rng.random_range(0.9..1.1);
        let gamma = model.gamma_base_ms * kind.speed_factor() * jitter;
        gamma_ms.push(gamma);
        // Ground-truth TIR: smaller models have somewhat more batching
        // headroom (Fig. 2's LeNet eta=0.32 vs ResNet eta=0.12 on a Nano),
        // but accelerator-bound large models still batch well — kernel
        // launch amortisation grows with model size. The mild size penalty
        // keeps both effects.
        let size_factor = (model.gamma_base_ms / 770.0).clamp(0.0, 1.0);
        let eta = (0.32 - 0.10 * size_factor) * rng.random_range(0.85..1.15);
        let eta = eta.clamp(0.12, 0.36);
        let beta = rng.random_range(6..=16u32);
        tir_truth.push(TirParams::consistent(eta, beta));
        // Utilisation ground truth: accelerator utilisation rises with model
        // size; CPU is the bottleneck for small models (Table 1 pattern).
        let acc_util = (25.0 + 75.0 * (1.0 - (-gamma / 250.0).exp())).clamp(10.0, 99.9);
        let cpu_util = (105.0 - 0.105 * gamma).clamp(25.0, 99.9);
        util.push(match kind.accelerator() {
            crate::device::Accelerator::Gpu => UtilProfile {
                cpu_pct: cpu_util,
                gpu_pct: acc_util,
                npu_pct: 0.0,
                npu_core_pct: 0.0,
            },
            crate::device::Accelerator::Npu => UtilProfile {
                cpu_pct: cpu_util,
                gpu_pct: 0.0,
                npu_pct: acc_util * 0.15,
                npu_core_pct: acc_util,
            },
        });
    }
    let _ = slot_ms; // network budget is decoupled from the slot (see above)
    let mut rng = StdRng::seed_from_u64(seed ^ (id.index() as u64) << 16 ^ 0xBEEF);
    let bandwidth = rng.random_range(50.0..100.0);
    EdgeDevice {
        id,
        kind,
        name: name.to_string(),
        memory_mb: kind.memory_mb(),
        bandwidth_mbps: bandwidth,
        network_budget_mb: bandwidth * NETWORK_WINDOW_S / 8.0,
        gamma_ms,
        tir_truth,
        util,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_shape() {
        let c = Catalog::small_scale(42);
        assert_eq!(c.num_apps(), 1);
        assert_eq!(c.num_models(), 3);
        assert_eq!(c.num_edges(), 6);
        c.validate().unwrap();
    }

    #[test]
    fn large_scale_shape() {
        let c = Catalog::large_scale(42);
        assert_eq!(c.num_apps(), 5);
        assert_eq!(c.num_models(), 25);
        assert_eq!(c.num_edges(), 6);
        c.validate().unwrap();
        // Each app owns exactly 5 versions, disjoint.
        let mut seen = std::collections::HashSet::new();
        for app in &c.apps {
            assert_eq!(app.num_versions(), 5);
            for &m in &app.models {
                assert!(seen.insert(m), "model {m} shared between apps");
            }
        }
    }

    #[test]
    fn catalog_generation_is_deterministic() {
        let a = Catalog::large_scale(7);
        let b = Catalog::large_scale(7);
        for (ea, eb) in a.edges.iter().zip(&b.edges) {
            assert_eq!(ea.gamma_ms, eb.gamma_ms);
            for (ta, tb) in ea.tir_truth.iter().zip(&eb.tir_truth) {
                assert_eq!(ta, tb);
            }
        }
        let c = Catalog::large_scale(8);
        assert!(
            a.edges[0].gamma_ms != c.edges[0].gamma_ms,
            "different seeds must differ"
        );
    }

    #[test]
    fn same_kind_instances_share_ground_truth() {
        let c = Catalog::large_scale(42);
        // Edges 0,1 are NX; 2,3 Nano; 4,5 Atlas.
        assert_eq!(c.edges[0].kind, c.edges[1].kind);
        assert_eq!(c.edges[0].gamma_ms, c.edges[1].gamma_ms);
        assert_ne!(c.edges[0].gamma_ms, c.edges[2].gamma_ms);
    }

    #[test]
    fn nano_is_slower_than_nx() {
        let c = Catalog::small_scale(42);
        let nx = &c.edges[0];
        let nano = &c.edges[2];
        assert_eq!(nx.kind, DeviceKind::JetsonNX);
        assert_eq!(nano.kind, DeviceKind::JetsonNano);
        for m in 0..c.num_models() {
            assert!(nano.gamma_ms[m] > nx.gamma_ms[m], "model {m}");
        }
    }

    #[test]
    fn fig2_uses_paper_parameters() {
        let c = Catalog::fig2(1);
        assert_eq!(c.num_edges(), 1);
        let e = &c.edges[0];
        assert_eq!(e.kind, DeviceKind::JetsonNano);
        assert_eq!(e.tir_truth[0], TirParams::new(0.32, 5, 1.68));
        assert_eq!(e.tir_truth[1], TirParams::new(0.12, 10, 1.30));
        assert_eq!(e.tir_truth[2], TirParams::new(0.12, 8, 1.28));
        c.validate().unwrap();
    }

    #[test]
    fn table1_latency_matches_published_fps() {
        let c = Catalog::table1(1);
        c.validate().unwrap();
        let nano = &c.edges[0];
        // Yolov4-t on Nano: 23.6 FPS -> gamma = 42.37 ms.
        assert!((nano.gamma_ms[0] - 1000.0 / 23.6).abs() < 1e-9);
        assert!((nano.serial_fps(0) - 23.6).abs() < 1e-9);
        // BERT on Nano: 1.1 FPS.
        assert!((nano.serial_fps(3) - 1.1).abs() < 1e-9);
    }

    #[test]
    fn tir_ground_truth_within_motivation_ranges() {
        let c = Catalog::large_scale(3);
        for e in &c.edges {
            for p in &e.tir_truth {
                assert!(p.eta >= 0.12 && p.eta <= 0.36, "eta {}", p.eta);
                assert!(p.beta >= 6 && p.beta <= 16, "beta {}", p.beta);
                assert!(p.c >= 1.0 && p.c < 3.0, "c {}", p.c);
            }
        }
    }

    #[test]
    fn network_budget_calibration() {
        let c = Catalog::small_scale(42);
        for e in &c.edges {
            let expected = e.bandwidth_mbps * NETWORK_WINDOW_S / 8.0;
            assert!((e.network_budget_mb - expected).abs() < 1e-9);
            assert!(e.network_budget_mb >= 50.0 * NETWORK_WINDOW_S / 8.0 - 1e-9);
            assert!(e.network_budget_mb <= 100.0 * NETWORK_WINDOW_S / 8.0 + 1e-9);
        }
    }

    #[test]
    fn validate_catches_broken_backreference() {
        let mut c = Catalog::small_scale(42);
        c.models[0].app = AppId(7);
        assert!(c.validate().is_err());
    }

    #[test]
    fn fleet_scale_has_requested_shape() {
        let c = Catalog::fleet_scale(42, 25);
        assert_eq!(c.num_edges(), 25);
        assert_eq!(c.num_apps(), 1);
        assert_eq!(c.num_models(), 3);
        c.validate().unwrap();
        // First 6 edges match the testbed kind layout of small_scale.
        let small = Catalog::small_scale(42);
        for i in 0..6 {
            assert_eq!(c.edges[i].kind, small.edges[i].kind);
        }
    }

    #[test]
    fn restrict_edges_copies_edges_verbatim() {
        let c = Catalog::small_scale(42);
        let sub = c.restrict_edges(2..5);
        assert_eq!(sub.num_edges(), 3);
        sub.validate().unwrap();
        for (i, e) in sub.edges.iter().enumerate() {
            let orig = &c.edges[2 + i];
            assert_eq!(e.id, EdgeId(i));
            assert_eq!(e.kind, orig.kind);
            assert_eq!(e.gamma_ms, orig.gamma_ms);
            // Bandwidth must be the ORIGINAL edge's draw (seeded on the
            // original id), not a fresh draw on the dense sub-index.
            assert_eq!(e.bandwidth_mbps, orig.bandwidth_mbps);
            assert_eq!(e.network_budget_mb, orig.network_budget_mb);
            assert_eq!(e.memory_mb, orig.memory_mb);
        }
    }
}
