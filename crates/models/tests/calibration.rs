//! Calibration invariants over the paper-derived reference data: Table 1
//! rows, the model-version ladder, and the TIR parameterisation. These are
//! facts the rest of the stack silently assumes (positive latencies,
//! memory monotone in model size, the TIR curve continuous at its knee);
//! breaking any of them while editing the calibration tables should fail
//! here, not three crates downstream.

use birp_models::catalog::MAX_BATCH;
use birp_models::zoo::version_ladder;
use birp_models::{table1_reference, AppId, Catalog};
use birp_tir::TirParams;

/// Every published Table 1 row implies a finite, positive single-request
/// latency, and utilisation percentages stay inside [0, 100].
#[test]
fn table1_latencies_positive_and_utilisation_bounded() {
    let rows = table1_reference();
    assert_eq!(rows.len(), 8);
    for r in &rows {
        let gamma = r.gamma_ms();
        assert!(
            gamma.is_finite() && gamma > 0.0,
            "{} on {:?}: gamma {} must be positive",
            r.model,
            r.device,
            gamma
        );
        for (name, v) in [
            ("cpu", r.util.cpu_pct),
            ("gpu", r.util.gpu_pct),
            ("npu", r.util.npu_pct),
            ("npu_core", r.util.npu_core_pct),
        ] {
            assert!(
                (0.0..=100.0).contains(&v),
                "{} on {:?}: {name}% = {v} out of range",
                r.model,
                r.device
            );
        }
    }
}

/// Up the version ladder (small → large model), memory is strictly
/// monotone, and within one version the deployed footprint is monotone in
/// the batch size.
#[test]
fn ladder_memory_monotone_in_size_and_batch() {
    for a in 0..5 {
        let ladder = version_ladder(AppId(a), a * 5, 0.6);
        for w in ladder.windows(2) {
            for b in [0u32, 1, 4, MAX_BATCH] {
                assert!(
                    w[0].memory_mb(b) < w[1].memory_mb(b),
                    "app {a}: {} not lighter than {} at b={b}",
                    w[0].name,
                    w[1].name
                );
            }
        }
        for m in &ladder {
            assert!(m.in_paper_ranges(), "{} outside paper ranges", m.name);
            for b in 0..MAX_BATCH {
                assert!(
                    m.memory_mb(b) < m.memory_mb(b + 1),
                    "{}: memory not monotone in batch at b={b}",
                    m.name
                );
            }
        }
    }
}

/// The TIR curve `tir(b) = b^eta (b <= beta), c beyond` is continuous at
/// the knee exactly when `c == beta^eta` — which `TirParams::consistent`
/// guarantees and every catalog truth table must satisfy.
#[test]
fn tir_knee_is_continuous() {
    for eta in [0.05, 0.18, 0.32] {
        for beta in [1u32, 4, 9, 16] {
            let p = TirParams::consistent(eta, beta);
            assert!(p.is_valid());
            let at_knee = p.tir(beta);
            let past_knee = p.tir(beta + 1);
            assert!(
                (p.c - (beta as f64).powf(eta)).abs() < 1e-12,
                "consistent() must set c = beta^eta"
            );
            assert!(
                (at_knee - past_knee).abs() < 1e-12,
                "eta={eta} beta={beta}: tir jumps at the knee ({at_knee} -> {past_knee})"
            );
        }
    }
}

/// Both built-in catalogs carry knee-consistent TIR truths and positive
/// per-edge latencies for every (edge, model) pair.
#[test]
fn catalogs_are_knee_consistent_with_positive_latencies() {
    for catalog in [Catalog::small_scale(42), Catalog::large_scale(42)] {
        catalog.validate().expect("catalog validates");
        for e in &catalog.edges {
            for m in 0..catalog.num_models() {
                assert!(
                    e.gamma_ms[m].is_finite() && e.gamma_ms[m] > 0.0,
                    "{}: non-positive gamma for model {m}",
                    e.name
                );
                let p = &e.tir_truth[m];
                assert!(
                    (p.c - (p.beta as f64).powf(p.eta)).abs() < 1e-9,
                    "{}: model {m} TIR truth violates c == beta^eta",
                    e.name
                );
            }
        }
    }
}
