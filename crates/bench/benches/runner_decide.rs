//! Multi-slot decide-latency benchmark for cross-slot temporal reuse
//! (DESIGN.md §11).
//!
//! Runs the Fig. 6 small-scale BIRP workload twice over the same trace —
//! temporal reuse on and off — timing every `decide` call, and writes the
//! mean per-slot latencies plus their ratio to `BENCH_runner.json` at the
//! repo root (`BIRP_BENCH_RUNNER_OUT` overrides the destination, which is
//! how the `bench-diff` regression gate takes a fresh measurement without
//! clobbering the committed baseline). The acceptance bar is a ≥ 1.5× mean
//! improvement with reuse on, while the conformance layer (reuse-on
//! goldens, the `temporal_differential` suite) pins the objectives to
//! equality.
//!
//! A third pass re-runs the reuse-on workload with the telemetry facade
//! enabled at its default (`debug`) level to measure the flight recorder's
//! decide-path overhead — the observability acceptance bar is ≤ 5%.
//!
//! A fourth pass measures the durability layer (DESIGN.md §12): the Fig. 7
//! large-scale workload driven through `run_scheduler_resumable` with a
//! `--checkpoint-every 10` policy writing to a scratch file, timed on whole
//! run wall clock (checkpoint serialisation happens *between* slots, so
//! decide-only timing would not see it). It uses the large scale because
//! that is the production-shaped denominator: per-slot decide there is
//! ~10 ms, while the small-scale toy slots are sub-ms and would measure the
//! fixed per-save cost against almost no work. The acceptance bar is ≤ 3%
//! run overhead; `birp bench-diff` enforces it as an absolute bound on the
//! fresh record.
//!
//! A fifth pass measures the incremental re-solve layer (DESIGN.md §13):
//! a drift-only 64-slot sequence in the skip-heavy regime (tight pivot
//! budget, long skip streak — the regime where per-slot model construction
//! dominates decide), persistent slot model refreshed with typed deltas vs
//! lowered from scratch every slot. The two variants must make bitwise-
//! identical decisions (asserted on total loss); the acceptance bar is a
//! ≥ 1.5× mean decide improvement with the delta path on, enforced by
//! `birp bench-diff` as an absolute bound on the fresh record.

use std::sync::Arc;
use std::time::Instant;

use birp_core::{
    run_scheduler, run_scheduler_resumable, Birp, CheckpointPolicy, DemandMatrix, ProblemConfig,
    RunConfig, RunOutcome, Scheduler, ShardConfig, ShardCoordinator, SlotProblem, TemporalReuse,
    TirMatrix,
};
use birp_mab::MabConfig;
use birp_models::{AppId, Catalog, EdgeId};
use birp_sim::{Schedule, SlotOutcome};
use birp_solver::{SolveBudget, SolverConfig};
use birp_telemetry as telemetry;
use birp_workload::{Trace, TraceConfig};
use serde::Serialize;

const SLOTS: usize = 32;
const MEAN_RATE: f64 = 7.0;
const SEED: u64 = 42;
const REPS: usize = 5;
/// Slots for the checkpoint-overhead pass (Fig. 7 large scale, ~10 ms/slot):
/// two periodic saves at `--checkpoint-every 10` land inside the horizon.
const CKPT_SLOTS: usize = 24;
/// Slots for the delta-path pass: long enough that the one unavoidable
/// first-slot full lowering is noise against the drift-only refreshes.
const DELTA_SLOTS: usize = 64;
/// Skip streak for the delta-path pass: with the tight pivot budget below,
/// the solver stays in the heuristic regime and almost every slot is a lean
/// refresh — the regime where per-slot model construction is the dominant
/// decide cost and the delta path has something to win.
const DELTA_SKIP_STREAK: usize = 16;
/// Pivot budget forcing degraded (budget-truncated) solves so the
/// heuristic-regime skip actually fires on the small-scale workload.
const DELTA_MAX_PIVOTS: u64 = 40;
/// Fleet size for the sharded-decomposition pass (DESIGN.md §14).
const FLEET_EDGES: usize = 1000;
/// Edges per cluster for the sharded pass: 20 clusters of 50.
const FLEET_CLUSTER: usize = 50;
/// The fleet passes solve a 10k-variable MILP; three reps keep the bench
/// under a minute while best-of still discards scheduler noise.
const FLEET_REPS: usize = 3;

/// Times every `decide` call, delegating everything else unchanged.
struct TimedDecide<S> {
    inner: S,
    total_ms: f64,
    calls: usize,
}

impl<S: Scheduler> Scheduler for TimedDecide<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn decide(&mut self, t: usize, demand: &DemandMatrix, prev: Option<&Schedule>) -> Schedule {
        let start = Instant::now();
        let s = self.inner.decide(t, demand, prev);
        self.total_ms += start.elapsed().as_secs_f64() * 1e3;
        self.calls += 1;
        s
    }

    fn observe(&mut self, outcome: &SlotOutcome) {
        self.inner.observe(outcome);
    }

    fn set_edge_mask(&mut self, mask: Option<&[bool]>) {
        self.inner.set_edge_mask(mask);
    }
}

/// One full run; returns (mean decide ms, total loss).
fn run_once(catalog: &Catalog, trace: &Trace, reuse: TemporalReuse) -> (f64, f64) {
    let mut timed = TimedDecide {
        inner: Birp::new(catalog.clone(), MabConfig::paper_preset())
            .with_solver(SolverConfig::scheduling())
            .with_reuse(reuse),
        total_ms: 0.0,
        calls: 0,
    };
    let result = run_scheduler(catalog, trace, &mut timed, &RunConfig::default());
    (
        timed.total_ms / timed.calls.max(1) as f64,
        result.metrics.total_loss,
    )
}

/// One drift-regime run for the delta-path pass (DESIGN.md §13): tight
/// pivot budget + long skip streak keep the scheduler on lean refreshes,
/// with the persistent slot model either absorbing each slot as typed
/// deltas (`deltas: true`) or lowering from scratch every slot
/// (`deltas: false`, the pre-delta decision path). Returns
/// (mean decide ms, total loss); the loss must be bit-identical between the
/// two variants — the delta path is a build-cost lever, not a policy.
fn run_drift_once(catalog: &Catalog, trace: &Trace, deltas: bool) -> (f64, f64) {
    let solver_cfg = SolverConfig {
        budget: SolveBudget {
            max_pivots: Some(DELTA_MAX_PIVOTS),
            ..SolveBudget::default()
        },
        ..SolverConfig::scheduling()
    };
    let reuse = TemporalReuse {
        max_skip_streak: DELTA_SKIP_STREAK,
        deltas,
        ..TemporalReuse::default()
    };
    let mut timed = TimedDecide {
        inner: Birp::new(catalog.clone(), MabConfig::paper_preset())
            .with_solver(solver_cfg)
            .with_reuse(reuse),
        total_ms: 0.0,
        calls: 0,
    };
    let result = run_scheduler(catalog, trace, &mut timed, &RunConfig::default());
    (
        timed.total_ms / timed.calls.max(1) as f64,
        result.metrics.total_loss,
    )
}

/// One full reuse-on run timed on wall clock, optionally checkpointing.
/// Returns mean wall ms per slot (includes serialisation + atomic writes).
fn run_wall_once(catalog: &Catalog, trace: &Trace, policy: Option<&CheckpointPolicy>) -> f64 {
    let mut scheduler = Birp::new(catalog.clone(), MabConfig::paper_preset())
        .with_solver(SolverConfig::scheduling())
        .with_reuse(TemporalReuse::default());
    let start = Instant::now();
    let outcome = run_scheduler_resumable(
        catalog,
        trace,
        &mut scheduler,
        &RunConfig::default(),
        policy,
        None,
        None,
    )
    .expect("bench run cannot fail to checkpoint to a scratch file");
    assert!(matches!(outcome, RunOutcome::Complete(_)));
    start.elapsed().as_secs_f64() * 1e3 / trace.num_slots() as f64
}

/// Fleet-scale single-slot decide (DESIGN.md §14): the same 1000-edge slot
/// MILP solved monolithically and through the sharded coordinator, both
/// under the production per-solve budget (`SolverConfig::scheduling()` —
/// sharding must not need a bigger budget class than the small scale uses).
/// Returns (mono best ms, shard best ms, final duality gap).
fn fleet_pass() -> (f64, f64, f64) {
    let catalog = Catalog::fleet_scale(SEED, FLEET_EDGES);
    let mut demand = DemandMatrix::zeros(catalog.num_apps(), catalog.num_edges());
    for k in 0..catalog.num_edges() {
        demand.set(AppId(0), EdgeId(k), ((k * 7 + 3) % 6) as u32);
    }
    let tir = TirMatrix::initial(&catalog);
    let cfg = ProblemConfig::default();
    let solver = SolverConfig::scheduling();
    let shard_cfg = ShardConfig {
        cluster_size: FLEET_CLUSTER,
        max_iters: 4,
        gap_tol: 0.05,
        fallback: false,
    };
    let total = demand.total();

    let mut mono_ms = f64::INFINITY;
    let mut shard_ms = f64::INFINITY;
    let mut gap = f64::INFINITY;
    for _ in 0..FLEET_REPS {
        let start = Instant::now();
        let problem = SlotProblem::build_with_reuse(&catalog, 0, &demand, &tir, None, &cfg, None);
        let (schedule, _) = problem.solve(&solver).expect("fleet monolithic solve");
        mono_ms = mono_ms.min(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(schedule.served() + schedule.total_unserved(), total);

        // Fresh coordinator per rep: the timing includes the per-cluster
        // first lowering, i.e. the cold first slot (later slots only get
        // cheaper through the persistent cluster models).
        let mut coord = ShardCoordinator::new(&catalog, shard_cfg);
        let start = Instant::now();
        let out = coord.decide(&catalog, 0, &demand, &tir, None, &cfg, &solver);
        shard_ms = shard_ms.min(start.elapsed().as_secs_f64() * 1e3);
        gap = out.duality_gap;
        assert!(!out.fallback_used);
        assert_eq!(out.schedule.served() + out.schedule.total_unserved(), total);
    }
    (mono_ms, shard_ms, gap)
}

#[derive(Serialize)]
struct Workload {
    scale: &'static str,
    slots: usize,
    mean_rate: f64,
    seed: u64,
}

#[derive(Serialize)]
struct Losses {
    reuse_off: f64,
    reuse_on: f64,
}

#[derive(Serialize)]
struct Acceptance {
    decide_speedup_required: f64,
    decide_speedup_measured: f64,
    objective_equality: &'static str,
    /// Absolute bound on `checkpoint_overhead_pct`, enforced by
    /// `birp bench-diff` on the fresh record (not a baseline ratio).
    checkpoint_overhead_max_pct: f64,
    /// Minimum `delta_speedup` (drift regime, delta path on vs off),
    /// enforced by `birp bench-diff` on the fresh record.
    delta_speedup_required: f64,
    delta_speedup_measured: f64,
    /// Minimum `fleet_shard_speedup` (1000-edge single-slot decide, sharded
    /// vs monolithic, same per-solve budget class), enforced by
    /// `birp bench-diff` on the fresh record. Deliberately below the
    /// measured ~1.8×: the gate catches a broken decomposition, not noise.
    shard_speedup_required: f64,
    shard_speedup_measured: f64,
}

#[derive(Serialize)]
struct Record {
    description: &'static str,
    workload: Workload,
    reuse_off_mean_decide_ms: f64,
    reuse_on_mean_decide_ms: f64,
    speedup: f64,
    /// Delta-path pass (DESIGN.md §13): mean decide latency on the
    /// drift-only 64-slot regime with the persistent slot model rebuilt
    /// from scratch every slot...
    delta_off_mean_decide_ms: f64,
    /// ...vs refreshed in place with typed deltas.
    delta_on_mean_decide_ms: f64,
    delta_speedup: f64,
    /// Decide-path slowdown with telemetry enabled at the default (`debug`)
    /// level, percent relative to the facade-disabled run.
    telemetry_overhead_pct: f64,
    /// Whole-run wall-clock slowdown with `--checkpoint-every 10` durable
    /// snapshots enabled, percent relative to the checkpoint-free run.
    checkpoint_overhead_pct: f64,
    /// Fleet pass (DESIGN.md §14): one 1000-edge slot decided by the
    /// monolithic MILP under the production budget class...
    fleet_mono_decide_ms: f64,
    /// ...vs the sharded coordinator (20 clusters of 50, dual-price loop),
    /// same budget class per cluster solve.
    fleet_shard_decide_ms: f64,
    fleet_shard_speedup: f64,
    /// Final duality gap the coordinator certified for the fleet slot.
    fleet_shard_gap: f64,
    total_loss: Losses,
    acceptance: Acceptance,
}

fn main() {
    // `cargo bench` passes harness flags (e.g. --bench); a bare `--no-run`
    // compile guard never executes this, and any argument beyond the binary
    // name is ignored.
    let catalog = Catalog::small_scale(SEED);
    let trace = TraceConfig {
        num_slots: SLOTS,
        mean_rate: MEAN_RATE,
        ..TraceConfig::small_scale(SEED)
    }
    .generate();

    // Warm-up: populate caches/codegen so neither variant pays first-run
    // costs.
    run_once(&catalog, &trace, TemporalReuse::disabled());

    let mut on_ms = f64::INFINITY;
    let mut off_ms = f64::INFINITY;
    let (mut on_loss, mut off_loss) = (0.0, 0.0);
    for _ in 0..REPS {
        let (ms, loss) = run_once(&catalog, &trace, TemporalReuse::disabled());
        if ms < off_ms {
            off_ms = ms;
        }
        off_loss = loss;
        let (ms, loss) = run_once(&catalog, &trace, TemporalReuse::default());
        if ms < on_ms {
            on_ms = ms;
        }
        on_loss = loss;
    }
    let speedup = off_ms / on_ms;

    // Delta-path pass (DESIGN.md §13): drift-only slot sequence under the
    // skip-heavy regime, persistent-model refresh on vs scratch lowering
    // every slot. The decisions must be identical — only the build cost
    // moves.
    let delta_trace = TraceConfig {
        num_slots: DELTA_SLOTS,
        mean_rate: MEAN_RATE,
        ..TraceConfig::small_scale(SEED)
    }
    .generate();
    run_drift_once(&catalog, &delta_trace, false); // warm-up
    let mut delta_off_ms = f64::INFINITY;
    let mut delta_on_ms = f64::INFINITY;
    let (mut delta_off_loss, mut delta_on_loss) = (0.0, 0.0);
    for _ in 0..REPS {
        let (ms, loss) = run_drift_once(&catalog, &delta_trace, false);
        delta_off_ms = delta_off_ms.min(ms);
        delta_off_loss = loss;
        let (ms, loss) = run_drift_once(&catalog, &delta_trace, true);
        delta_on_ms = delta_on_ms.min(ms);
        delta_on_loss = loss;
    }
    assert_eq!(
        delta_off_loss.to_bits(),
        delta_on_loss.to_bits(),
        "delta-refreshed and scratch-built runs must make identical decisions"
    );
    let delta_speedup = delta_off_ms / delta_on_ms;

    // Telemetry overhead: same reuse-on workload with the facade enabled at
    // its default level into a null sink (counters/histograms/events run the
    // full recording path; only the final write is free). Best-of-REPS on
    // both sides so scheduler noise cancels the same way.
    let mut instr_ms = f64::INFINITY;
    for _ in 0..REPS {
        telemetry::init(Arc::new(telemetry::NullSink), telemetry::Level::Debug);
        let (ms, _) = run_once(&catalog, &trace, TemporalReuse::default());
        telemetry::shutdown();
        telemetry::reset();
        if ms < instr_ms {
            instr_ms = ms;
        }
    }
    let overhead_pct = (instr_ms / on_ms - 1.0) * 100.0;

    // Checkpoint overhead: whole-run wall clock (snapshotting runs between
    // slots, outside `decide`), plain vs `every: 10` durable checkpoints to
    // a scratch file, on the Fig. 7 large-scale workload (see module docs
    // for why the denominator is the large scale). Best-of-REPS both sides.
    let large_catalog = Catalog::large_scale(SEED);
    let large_trace = TraceConfig {
        num_slots: CKPT_SLOTS,
        ..TraceConfig::large_scale(SEED)
    }
    .generate();
    let ckpt_path = std::env::temp_dir().join(format!("birp-bench-ckpt-{}", std::process::id()));
    let policy = CheckpointPolicy {
        path: ckpt_path.clone(),
        every: 10,
        spec: serde::Value::Null,
    };
    run_wall_once(&large_catalog, &large_trace, None); // warm-up
    let mut plain_wall_ms = f64::INFINITY;
    let mut ckpt_wall_ms = f64::INFINITY;
    for _ in 0..REPS {
        plain_wall_ms = plain_wall_ms.min(run_wall_once(&large_catalog, &large_trace, None));
        ckpt_wall_ms = ckpt_wall_ms.min(run_wall_once(&large_catalog, &large_trace, Some(&policy)));
    }
    let _ = std::fs::remove_file(&ckpt_path);
    let ckpt_overhead_pct = (ckpt_wall_ms / plain_wall_ms - 1.0) * 100.0;

    // Fleet pass (DESIGN.md §14): sharded vs monolithic on one 1000-edge
    // slot, same per-solve budget class on both sides.
    let (fleet_mono_ms, fleet_shard_ms, fleet_gap) = fleet_pass();
    let fleet_speedup = fleet_mono_ms / fleet_shard_ms;

    println!("--- runner decide latency (Fig. 6 small scale, {SLOTS} slots) ---");
    println!("reuse off  mean decide {off_ms:.3} ms/slot   total loss {off_loss:.2}");
    println!("reuse on   mean decide {on_ms:.3} ms/slot   total loss {on_loss:.2}");
    println!("speedup    {speedup:.2}x (acceptance: >= 1.5x)");
    println!(
        "--- delta path (drift regime, {DELTA_SLOTS} slots, skip streak {DELTA_SKIP_STREAK}) ---"
    );
    println!("delta off  mean decide {delta_off_ms:.4} ms/slot");
    println!("delta on   mean decide {delta_on_ms:.4} ms/slot");
    println!("speedup    {delta_speedup:.2}x (acceptance: >= 1.5x)");
    println!("telemetry  mean decide {instr_ms:.3} ms/slot at debug level");
    println!("overhead   {overhead_pct:.1}% (acceptance: <= 5%)");
    println!(
        "checkpoint mean wall {ckpt_wall_ms:.3} ms/slot at --checkpoint-every 10 \
         (plain {plain_wall_ms:.3}, Fig. 7 large scale, {CKPT_SLOTS} slots)"
    );
    println!("overhead   {ckpt_overhead_pct:.1}% (acceptance: <= 3%)");
    println!(
        "--- fleet pass (DESIGN.md §14, {FLEET_EDGES} edges, clusters of {FLEET_CLUSTER}, \
         best of {FLEET_REPS}) ---"
    );
    println!("monolithic decide {fleet_mono_ms:.1} ms/slot");
    println!("sharded    decide {fleet_shard_ms:.1} ms/slot   duality gap {fleet_gap:.4}");
    println!("speedup    {fleet_speedup:.2}x (acceptance: >= 1.2x)");

    let record = Record {
        description: "Mean per-slot BIRP decide latency on the Fig. 6 small-scale workload \
                      (crates/bench/benches/runner_decide.rs), temporal reuse on vs off, same \
                      trace, best of 5 runs. checkpoint_overhead_pct is whole-run wall overhead \
                      of --checkpoint-every 10 durable snapshots on the Fig. 7 large-scale \
                      workload (24 slots). delta_* is the incremental re-solve pass: mean decide \
                      on a drift-only 64-slot sequence in the skip-heavy regime (pivot budget 40, \
                      skip streak 16), persistent slot model refreshed with typed deltas vs \
                      lowered from scratch every slot, identical decisions asserted. fleet_* is \
                      the sharded decomposition pass (DESIGN.md §14): one 1000-edge slot decided \
                      by the monolithic MILP vs the sharded coordinator (20 clusters of 50, \
                      dual-price loop, no fallback), same per-solve budget class, best of 3.",
        workload: Workload {
            scale: "small",
            slots: SLOTS,
            mean_rate: MEAN_RATE,
            seed: SEED,
        },
        reuse_off_mean_decide_ms: off_ms,
        reuse_on_mean_decide_ms: on_ms,
        speedup,
        delta_off_mean_decide_ms: delta_off_ms,
        delta_on_mean_decide_ms: delta_on_ms,
        delta_speedup,
        telemetry_overhead_pct: overhead_pct,
        checkpoint_overhead_pct: ckpt_overhead_pct,
        fleet_mono_decide_ms: fleet_mono_ms,
        fleet_shard_decide_ms: fleet_shard_ms,
        fleet_shard_speedup: fleet_speedup,
        fleet_shard_gap: fleet_gap,
        total_loss: Losses {
            reuse_off: off_loss,
            reuse_on: on_loss,
        },
        acceptance: Acceptance {
            decide_speedup_required: 1.5,
            decide_speedup_measured: speedup,
            objective_equality: "temporal_differential proptests + reuse-on golden snapshots",
            checkpoint_overhead_max_pct: 3.0,
            delta_speedup_required: 1.5,
            delta_speedup_measured: delta_speedup,
            shard_speedup_required: 1.2,
            shard_speedup_measured: fleet_speedup,
        },
    };
    let path = std::env::var("BIRP_BENCH_RUNNER_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runner.json").to_string()
    });
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&record).expect("serialisable"),
    )
    .expect("write BENCH_runner.json");
    println!("wrote {path}");
}
