//! Fig. 5 bench: the (eps1, eps2) -> p% (SLO failure rate) surface,
//! scaled down, printed once at startup.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use birp_core::experiments::{epsilon_sweep, SweepConfig};

fn print_surface_once() {
    let mut cfg = SweepConfig::quick(42, 24);
    cfg.checkpoints = vec![11, 23];
    // Push load up so SLO pressure is visible even on a short horizon.
    cfg.trace.mean_rate = 9.0;
    let result = epsilon_sweep(&cfg);
    println!("\n--- Fig. 5 (scaled): SLO failure rate p% over the eps grid ---");
    for &t in &result.checkpoints {
        println!("  t = {t}:");
        for p in &result.points {
            let pct = p.failure_pct.iter().find(|(ct, _)| *ct == t).unwrap().1;
            println!("    eps1={:.2} eps2={:.2}  p%={pct:>6.2}", p.eps1, p.eps2);
        }
    }
    println!();
}

fn bench_fig5(c: &mut Criterion) {
    print_surface_once();
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("sweep_high_load_2x2_grid_8_slots", |b| {
        let mut cfg = SweepConfig::quick(42, 8);
        cfg.eps1_grid = vec![0.01, 0.07];
        cfg.eps2_grid = vec![0.04, 0.10];
        cfg.checkpoints = vec![7];
        cfg.trace.mean_rate = 9.0;
        b.iter(|| black_box(epsilon_sweep(&cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
