//! Fig. 6 bench: the small-scale 4-way scheduler comparison (CDF, per-slot
//! loss, cumulative loss), scaled down, with the key series printed once.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use birp_bench::series_summary;
use birp_core::experiments::{compare_schedulers, ComparisonConfig};

fn print_series_once() {
    let mut cfg = ComparisonConfig::small_scale(42, 32);
    cfg.trace.mean_rate = 7.0;
    let results = compare_schedulers(&cfg);
    println!("\n--- Fig. 6 (scaled): small-scale comparison, 32 slots ---");
    for r in &results {
        let m = &r.run.metrics;
        println!(
            "{:<9} loss={:>9.1} p%={:>5.2} cdf: {}",
            r.run.scheduler,
            m.total_loss,
            m.failure_rate_pct,
            series_summary(&m.cdf.series(1.5, 16))
        );
    }
    println!();
}

fn bench_fig6(c: &mut Criterion) {
    print_series_once();
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    let mut cfg = ComparisonConfig::small_scale(42, 6);
    cfg.trace.mean_rate = 6.0;
    g.bench_function("small_scale_4way_6_slots", |b| {
        b.iter(|| black_box(compare_schedulers(&cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
