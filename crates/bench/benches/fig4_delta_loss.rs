//! Fig. 4 bench: the (eps1, eps2) -> ΔLoss sweep, scaled down, with the
//! grid surface printed once at startup.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use birp_core::experiments::{epsilon_sweep, SweepConfig};

fn print_surface_once() {
    let mut cfg = SweepConfig::quick(42, 24);
    cfg.checkpoints = vec![10, 23];
    let result = epsilon_sweep(&cfg);
    println!("\n--- Fig. 4 (scaled): ΔLoss = cum(BIRP) - cum(BIRP-OFF) ---");
    for &t in &result.checkpoints {
        println!("  t = {t}:");
        for p in &result.points {
            let d = p.delta_loss.iter().find(|(ct, _)| *ct == t).unwrap().1;
            println!(
                "    eps1={:.2} eps2={:.2}  dLoss={:>9.2}",
                p.eps1, p.eps2, d
            );
        }
    }
    println!();
}

fn bench_fig4(c: &mut Criterion) {
    print_surface_once();
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("sweep_2x2_grid_8_slots", |b| {
        let mut cfg = SweepConfig::quick(42, 8);
        cfg.eps1_grid = vec![0.02, 0.06];
        cfg.eps2_grid = vec![0.05, 0.09];
        cfg.checkpoints = vec![7];
        b.iter(|| black_box(epsilon_sweep(&cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
