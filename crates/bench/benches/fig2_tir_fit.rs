//! Fig. 2 bench: times the TIR profiling sweep + piecewise fit and prints
//! the regenerated fits once at startup.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use birp_core::experiments::fig2_experiment;
use birp_tir::{fit_piecewise, TirParams, TirSample};

fn print_fits_once() {
    println!("\n--- Fig. 2 (regenerated TIR fits) ---");
    for r in fig2_experiment(11, 16, 5) {
        println!(
            "{:<10} fitted TIR=b^{:.2} (b<={}), {:.2} beyond | truth b^{:.2} (b<={})",
            r.model, r.fit.params.eta, r.fit.params.beta, r.fit.params.c, r.truth.eta, r.truth.beta
        );
    }
    println!();
}

fn bench_fig2(c: &mut Criterion) {
    print_fits_once();
    c.bench_function("fig2/profile_and_fit_b8_r3", |b| {
        b.iter(|| black_box(fig2_experiment(11, 8, 3)))
    });
    // Pure fitting cost on a synthetic 80-sample cloud.
    let truth = TirParams::consistent(0.22, 9);
    let samples: Vec<TirSample> = (1..=16u32)
        .flat_map(|bb| {
            (0..5).map(move |r| TirSample::new(bb, truth.tir(bb) * (1.0 + 0.001 * r as f64)))
        })
        .collect();
    c.bench_function("fig2/fit_piecewise_80_samples", |b| {
        b.iter(|| black_box(fit_piecewise(&samples)))
    });
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
