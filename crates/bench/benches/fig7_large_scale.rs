//! Fig. 7 bench: the large-scale (5 apps x 25 models) comparison, scaled
//! down, with the key series printed once at startup.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use birp_bench::series_summary;
use birp_core::experiments::{compare_schedulers, ComparisonConfig};

fn print_series_once() {
    let mut cfg = ComparisonConfig::large_scale(42, 8);
    cfg.trace.mean_rate = 1.8;
    let results = compare_schedulers(&cfg);
    println!("\n--- Fig. 7 (scaled): large-scale comparison, 8 slots ---");
    for r in &results {
        let m = &r.run.metrics;
        println!(
            "{:<9} loss={:>9.1} p%={:>5.2} cdf: {}",
            r.run.scheduler,
            m.total_loss,
            m.failure_rate_pct,
            series_summary(&m.cdf.series(2.0, 16))
        );
    }
    println!();
}

fn bench_fig7(c: &mut Criterion) {
    print_series_once();
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    let mut cfg = ComparisonConfig::large_scale(42, 1);
    cfg.trace.mean_rate = 1.5;
    g.bench_function("large_scale_3way_1_slot", |b| {
        b.iter(|| black_box(compare_schedulers(&cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
