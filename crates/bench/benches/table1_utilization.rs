//! Table 1 bench: times the serial-utilisation measurement sweep and
//! prints the regenerated table once at startup.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use birp_core::experiments::table1_experiment;
use birp_models::{Catalog, EdgeId, ModelId};
use birp_sim::measure_utilization;

fn print_table_once() {
    println!("\n--- Table 1 (regenerated, 300 windows) ---");
    println!(
        "{:<10} {:<12} {:>7} {:>7} {:>7} {:>9} {:>8} {:>8}",
        "model", "device", "cpu%", "gpu%", "npu%", "npucore%", "fps", "ref fps"
    );
    for r in table1_experiment(3, 300) {
        println!(
            "{:<10} {:<12} {:>7.1} {:>7.1} {:>7.1} {:>9.1} {:>8.1} {:>8.1}",
            r.model,
            r.device,
            r.measured.cpu_pct,
            r.measured.gpu_pct,
            r.measured.npu_pct,
            r.measured.npu_core_pct,
            r.measured.avg_fps,
            r.reference_fps
        );
    }
    println!();
}

fn bench_table1(c: &mut Criterion) {
    print_table_once();
    let catalog = Catalog::table1(3);
    c.bench_function("table1/measure_one_cell_100w", |b| {
        b.iter(|| black_box(measure_utilization(&catalog, EdgeId(0), ModelId(0), 100, 7)))
    });
    c.bench_function("table1/full_sweep_50w", |b| {
        b.iter(|| black_box(table1_experiment(3, 50)))
    });
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
