//! Solver micro-benchmarks: the substrate the whole reproduction stands on.
//!
//! Times the bounded-variable simplex against the reference engine, branch
//! and bound on knapsacks, and a representative BIRP per-slot MILP.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use birp_core::{DemandMatrix, ProblemConfig, SlotProblem, TirMatrix};
use birp_models::{AppId, Catalog, EdgeId};
use birp_solver::lp::{LpProblem, RowCmp};
use birp_solver::milp::{branch_and_bound, BnbConfig, MilpProblem};
use birp_solver::simplex::{
    solve_bounded, solve_reference, with_engine, SimplexMode, SimplexOptions,
};
use birp_solver::SolverConfig;

/// A dense-ish random LP with `n` columns and `m` rows (deterministic).
fn random_lp(n: usize, m: usize, seed: u64) -> LpProblem {
    let mut lp = LpProblem::with_columns(n);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 1000) as f64 / 1000.0
    };
    for j in 0..n {
        lp.objective[j] = next() * 2.0 - 1.0;
        lp.upper[j] = 1.0 + next() * 9.0;
    }
    for _ in 0..m {
        let coeffs: Vec<(usize, f64)> = (0..n)
            .filter_map(|j| {
                let v = next();
                (v > 0.6).then_some((j, v * 4.0 - 1.0))
            })
            .collect();
        let rhs = 1.0 + next() * (n as f64);
        lp.push_row(coeffs, RowCmp::Le, rhs);
    }
    lp
}

fn knapsack(n: usize) -> MilpProblem {
    let mut lp = LpProblem::with_columns(n);
    lp.upper = vec![1.0; n];
    lp.objective = (0..n).map(|i| -(((i * 37) % 13) as f64 + 1.0)).collect();
    let weights: Vec<(usize, f64)> = (0..n).map(|i| (i, ((i * 17) % 7) as f64 + 1.0)).collect();
    let cap: f64 = weights.iter().map(|(_, w)| w).sum::<f64>() * 0.4;
    lp.push_row(weights, RowCmp::Le, cap);
    MilpProblem {
        lp,
        integers: (0..n).collect(),
    }
}

fn bench_simplex(c: &mut Criterion) {
    let mut g = c.benchmark_group("simplex");
    for &(n, m) in &[(40usize, 25usize), (120, 80), (300, 200)] {
        let lp = random_lp(n, m, 42);
        g.bench_function(format!("bounded_{n}x{m}"), |b| {
            b.iter(|| black_box(solve_bounded(&lp)))
        });
    }
    // The reference oracle is only worth timing on the small instance.
    let lp = random_lp(40, 25, 42);
    g.bench_function("reference_40x25", |b| {
        b.iter(|| black_box(solve_reference(&lp)))
    });
    g.finish();
}

/// Sparse revised core vs dense tableau core, back to back on identical
/// instances — the differential table recorded in BENCH_solver.json. Also
/// sweeps the scheduled refactorization cadence on the large instance
/// (too-small intervals pay rebuilds, too-large ones pay eta-file drag).
fn bench_simplex_sparse(c: &mut Criterion) {
    let mut g = c.benchmark_group("simplex_sparse");
    for &(n, m) in &[(120usize, 80usize), (300, 200)] {
        let lp = random_lp(n, m, 42);
        for (tag, mode) in [
            ("sparse", SimplexMode::Sparse),
            ("dense", SimplexMode::Dense),
        ] {
            let opts = SimplexOptions {
                mode,
                ..SimplexOptions::default()
            };
            g.bench_function(format!("{tag}_{n}x{m}"), |b| {
                b.iter(|| {
                    with_engine(|eng| black_box(eng.solve_cold(&lp, &lp.lower, &lp.upper, &opts)))
                })
            });
        }
    }
    let lp = random_lp(300, 200, 42);
    for interval in [8usize, 32, 64, 128] {
        let opts = SimplexOptions {
            mode: SimplexMode::Sparse,
            refactor_interval: interval,
            ..SimplexOptions::default()
        };
        g.bench_function(format!("refactor_cadence_{interval}"), |b| {
            b.iter(|| {
                with_engine(|eng| black_box(eng.solve_cold(&lp, &lp.lower, &lp.upper, &opts)))
            })
        });
    }
    g.finish();
}

/// Dive-chain guard: one cold solve, then a chain of in-place
/// `resolve_with_bounds` re-solves under successive bound tightenings —
/// the diving heuristic's access pattern. Guards the satellite scratch
/// reuse in the dense extract/compact path and the sparse eta-file
/// carry-over (a regression to per-call allocation or per-step
/// refactorization shows up here first).
fn bench_dive_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("dive_chain");
    let lp = random_lp(120, 80, 42);
    for (tag, mode) in [
        ("sparse", SimplexMode::Sparse),
        ("dense", SimplexMode::Dense),
    ] {
        let opts = SimplexOptions {
            mode,
            ..SimplexOptions::default()
        };
        g.bench_function(format!("resolve_chain_{tag}"), |b| {
            b.iter(|| {
                with_engine(|eng| {
                    let cold = eng.solve_cold(&lp, &lp.lower, &lp.upper, &opts);
                    let mut hi = lp.upper.clone();
                    for j in 0..8 {
                        hi[j] *= 0.5;
                        black_box(eng.resolve_with_bounds(&lp, &lp.lower, &hi, &opts));
                    }
                    black_box(cold)
                })
            })
        });
    }
    g.finish();
}

fn bench_bnb(c: &mut Criterion) {
    let mut g = c.benchmark_group("branch_and_bound");
    for &n in &[12usize, 18, 24] {
        let p = knapsack(n);
        g.bench_function(format!("knapsack_{n}"), |b| {
            b.iter(|| black_box(branch_and_bound(&p, &BnbConfig::default())))
        });
    }
    let p = knapsack(24);
    g.bench_function("knapsack_24_parallel", |b| {
        b.iter(|| {
            black_box(branch_and_bound(
                &p,
                &BnbConfig {
                    parallel: true,
                    ..Default::default()
                },
            ))
        })
    });
    g.finish();
}

fn bench_slot_problem(c: &mut Criterion) {
    let mut g = c.benchmark_group("slot_problem");
    g.sample_size(10);
    for (label, catalog) in [
        ("small_scale", Catalog::small_scale(42)),
        ("large_scale", Catalog::large_scale(42)),
    ] {
        let mut demand = DemandMatrix::zeros(catalog.num_apps(), catalog.num_edges());
        for i in 0..catalog.num_apps() {
            for k in 0..catalog.num_edges() {
                demand.set(AppId(i), EdgeId(k), ((3 * i + 5 * k) % 14) as u32);
            }
        }
        let tir = TirMatrix::oracle(&catalog);
        g.bench_function(format!("build_{label}"), |b| {
            b.iter(|| {
                black_box(SlotProblem::build(
                    &catalog,
                    0,
                    &demand,
                    &tir,
                    None,
                    &ProblemConfig::default(),
                ))
            })
        });
        let problem =
            SlotProblem::build(&catalog, 0, &demand, &tir, None, &ProblemConfig::default());
        g.bench_function(format!("solve_{label}"), |b| {
            b.iter(|| black_box(problem.solve(&SolverConfig::scheduling())))
        });
    }
    g.finish();
}

/// Node throughput on the representative per-slot MILP: exhaust a fixed
/// node budget serially (no gap early-exit, no dives) so the measurement is
/// LP-re-solve cost, not search luck. `warm` vs `cold` isolates the
/// warm-start machinery; nodes/sec = node budget / measured time.
fn bench_node_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("node_throughput");
    g.sample_size(10);
    let catalog = Catalog::small_scale(42);
    let mut demand = DemandMatrix::zeros(catalog.num_apps(), catalog.num_edges());
    for i in 0..catalog.num_apps() {
        for k in 0..catalog.num_edges() {
            demand.set(AppId(i), EdgeId(k), ((3 * i + 5 * k) % 14) as u32);
        }
    }
    let tir = TirMatrix::oracle(&catalog);
    let problem = SlotProblem::build(&catalog, 0, &demand, &tir, None, &ProblemConfig::default());
    let milp = problem.debug_milp();
    for (label, warm_nodes) in [("warm", true), ("cold", false)] {
        let cfg = BnbConfig {
            node_limit: 256,
            rel_gap: 0.0,
            parallel: false,
            root_dive: false,
            warm_nodes,
            ..Default::default()
        };
        g.bench_function(format!("slot_256_nodes_{label}"), |b| {
            b.iter(|| black_box(branch_and_bound(&milp, &cfg)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_simplex,
    bench_simplex_sparse,
    bench_dive_chain,
    bench_bnb,
    bench_slot_problem,
    bench_node_throughput
);
criterion_main!(benches);
