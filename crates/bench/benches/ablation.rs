//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * branch-and-bound *with vs without* the root/in-tree diving heuristic,
//! * *binary-priority* branching vs plain most-fractional (approximated by
//!   comparing the scheduling-preset solve against a no-dive run — the
//!   in-tree dive is what binary-priority branching enables),
//! * BIRP planning with *LCB estimates vs raw means* (exploration value),
//! * Taylor-linearised compute constraint vs the exact-power evaluation
//!   cost (how much the linearisation saves per solve).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use birp_core::{DemandMatrix, ProblemConfig, SlotProblem, TirMatrix};
use birp_models::{AppId, Catalog, EdgeId};
use birp_solver::SolverConfig;
use birp_tir::{latency, linearized_latency, TirParams};

fn hot_demand(catalog: &Catalog) -> DemandMatrix {
    let mut d = DemandMatrix::zeros(catalog.num_apps(), catalog.num_edges());
    d.set(AppId(0), EdgeId(2), 40);
    d.set(AppId(0), EdgeId(0), 12);
    d
}

fn bench_dive_ablation(c: &mut Criterion) {
    let catalog = Catalog::small_scale(42);
    let demand = hot_demand(&catalog);
    let tir = TirMatrix::oracle(&catalog);
    let problem = SlotProblem::build(&catalog, 0, &demand, &tir, None, &ProblemConfig::default());
    let mut g = c.benchmark_group("ablation_dive");
    g.sample_size(20);
    g.bench_function("with_dive", |b| {
        b.iter(|| black_box(problem.solve(&SolverConfig::scheduling())))
    });
    g.bench_function("without_dive", |b| {
        let cfg = SolverConfig {
            root_dive: false,
            ..SolverConfig::scheduling()
        };
        b.iter(|| black_box(problem.solve(&cfg)))
    });
    g.finish();

    // Report solution quality difference once.
    let with = problem.solve(&SolverConfig::scheduling()).unwrap().1;
    let without = problem
        .solve(&SolverConfig {
            root_dive: false,
            ..SolverConfig::scheduling()
        })
        .unwrap()
        .1;
    println!(
        "\nablation_dive quality: with dive obj={:.2} gap={:.4}; without obj={:.2} gap={:.4}\n",
        with.objective, with.gap, without.objective, without.gap
    );
}

fn bench_estimate_ablation(c: &mut Criterion) {
    // LCB (conservative) vs oracle TIR estimates: how much optimality the
    // exploration padding costs per slot.
    let catalog = Catalog::small_scale(42);
    let demand = hot_demand(&catalog);
    let lcb = TirMatrix::initial(&catalog); // the fresh-arm LCB state
    let oracle = TirMatrix::oracle(&catalog);
    let mut g = c.benchmark_group("ablation_estimates");
    g.sample_size(20);
    for (label, tir) in [("initial_lcb", &lcb), ("oracle", &oracle)] {
        let p = SlotProblem::build(&catalog, 0, &demand, tir, None, &ProblemConfig::default());
        g.bench_function(label.to_string(), |b| {
            b.iter(|| black_box(p.solve(&SolverConfig::scheduling())))
        });
    }
    g.finish();

    let p_lcb = SlotProblem::build(&catalog, 0, &demand, &lcb, None, &ProblemConfig::default());
    let p_orc = SlotProblem::build(
        &catalog,
        0,
        &demand,
        &oracle,
        None,
        &ProblemConfig::default(),
    );
    let o1 = p_lcb
        .solve(&SolverConfig::scheduling())
        .unwrap()
        .1
        .objective;
    let o2 = p_orc
        .solve(&SolverConfig::scheduling())
        .unwrap()
        .1
        .objective;
    println!("\nablation_estimates objective: initial LCB {o1:.2} vs oracle {o2:.2}\n");
}

fn bench_taylor_vs_exact(c: &mut Criterion) {
    // Pure arithmetic cost of the compute term: linear h(b) vs exact power.
    let p = TirParams::consistent(0.25, 12);
    let mut g = c.benchmark_group("ablation_compute_term");
    g.bench_function("taylor_linear", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for bb in 1..=16u32 {
                acc += linearized_latency(black_box(240.0), p.eta, bb as f64);
            }
            black_box(acc)
        })
    });
    g.bench_function("exact_power", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for bb in 1..=16u32 {
                acc += latency(black_box(240.0), bb, &p);
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_dive_ablation,
    bench_estimate_ablation,
    bench_taylor_vs_exact
);
criterion_main!(benches);
