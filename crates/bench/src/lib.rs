//! # birp-bench
//!
//! The experiment harness: one Criterion bench *and* one `repro-*` binary
//! per table/figure of the paper.
//!
//! * `cargo bench -p birp-bench` times scaled-down versions of every
//!   experiment (and the solver micro-benchmarks) — fast, CI-friendly,
//! * `cargo run --release -p birp-bench --bin repro-figN` runs the
//!   full-size experiment and prints the same rows/series the paper plots,
//!   plus a JSON record under `results/` for EXPERIMENTS.md.
//!
//! This library crate holds the shared formatting/serialisation helpers.

use std::fs;
use std::path::{Path, PathBuf};

use serde::Serialize;

pub mod diff;

/// Directory the `repro-*` binaries write JSON records into.
pub fn results_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    fs::create_dir_all(&dir).ok();
    dir
}

/// Persist an experiment record as pretty JSON; returns the path.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> PathBuf {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialisable record");
    fs::write(&path, json).expect("write results file");
    path
}

/// Render a `(x, y)` series as a compact single-line summary.
pub fn series_summary(series: &[(f64, f64)]) -> String {
    let picks = [
        0usize,
        series.len() / 4,
        series.len() / 2,
        3 * series.len() / 4,
        series.len().saturating_sub(1),
    ];
    let mut parts = Vec::new();
    for &i in &picks {
        if let Some(&(x, y)) = series.get(i) {
            parts.push(format!("({x:.2}, {y:.3})"));
        }
    }
    parts.join(" ")
}

/// Fixed-width table row helper.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_summary_samples_endpoints() {
        let s: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, (i * i) as f64)).collect();
        let out = series_summary(&s);
        assert!(out.starts_with("(0.00, 0.000)"));
        assert!(out.ends_with("(9.00, 81.000)"));
    }

    #[test]
    fn row_alignment() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }

    #[test]
    fn results_dir_exists() {
        assert!(results_dir().exists());
    }
}
