//! Automated perf-regression gate: compare fresh benchmark measurements
//! against the committed baselines (`BENCH_solver.json`, `BENCH_runner.json`
//! at the repo root).
//!
//! `birp bench-diff` drives this module:
//!
//! 1. parse a captured `cargo bench -p birp-bench --bench solver_micro`
//!    output (the vendored criterion harness prints one
//!    `bench <name> <ns> ns/iter (<n> iters)` line per benchmark),
//! 2. parse a regenerated `BENCH_runner.json` (the `runner_decide` bench
//!    writes one; `BIRP_BENCH_RUNNER_OUT` redirects it so the committed
//!    baseline is never clobbered by a gate run),
//! 3. compare each measurement against the committed baseline value with a
//!    multiplicative tolerance, and fail (non-zero exit upstream) when any
//!    measurement exceeds `baseline * tolerance`.
//!
//! The tolerance is deliberately coarse (CI default 2.0×): the gate exists
//! to catch order-of-magnitude regressions — an accidentally disabled warm
//! start, a quadratic loop — not 5% noise on shared runners.

use std::collections::BTreeMap;

use serde_json::Value;

/// One baseline-vs-measurement pair.
#[derive(Debug, Clone)]
pub struct Comparison {
    pub name: String,
    /// Committed baseline value (ns for criterion benches, ms for the
    /// runner-decide latencies — units cancel in the ratio).
    pub baseline: f64,
    pub measured: f64,
    /// `measured / baseline`; > 1.0 means slower than the baseline.
    pub ratio: f64,
    pub regressed: bool,
}

/// Outcome of a full diff: per-benchmark comparisons plus bookkeeping for
/// entries that could not be matched up.
#[derive(Debug, Default)]
pub struct DiffReport {
    pub comparisons: Vec<Comparison>,
    /// Baseline entries with no fresh measurement (bench renamed/removed —
    /// the gate flags these so baselines cannot silently go stale).
    pub missing: Vec<String>,
    /// Fresh measurements with no baseline entry (new benches; informative
    /// only, new benchmarks cannot regress).
    pub unmatched: Vec<String>,
    pub tolerance: f64,
}

impl DiffReport {
    /// True when any matched benchmark exceeded the tolerance or a baseline
    /// entry went unmeasured.
    pub fn failed(&self) -> bool {
        self.comparisons.iter().any(|c| c.regressed) || !self.missing.is_empty()
    }

    /// Aligned text table, one row per comparison.
    pub fn render(&self) -> String {
        let name_w = self
            .comparisons
            .iter()
            .map(|c| c.name.len())
            .max()
            .unwrap_or(0)
            .max("benchmark".len());
        let mut out = format!(
            "{:<name_w$}  {:>14}  {:>14}  {:>7}  status\n",
            "benchmark", "baseline", "measured", "ratio"
        );
        for c in &self.comparisons {
            out.push_str(&format!(
                "{:<name_w$}  {:>14.1}  {:>14.1}  {:>6.2}x  {}\n",
                c.name,
                c.baseline,
                c.measured,
                c.ratio,
                if c.regressed { "REGRESSED" } else { "ok" }
            ));
        }
        for name in &self.missing {
            out.push_str(&format!(
                "{name:<name_w$}  (baseline has no fresh measurement)\n"
            ));
        }
        for name in &self.unmatched {
            out.push_str(&format!("{name:<name_w$}  (new benchmark, no baseline)\n"));
        }
        out
    }
}

/// Parse the vendored criterion harness output: one measurement per
/// `bench <name> <value> ns/iter (...)` line. Unrelated lines pass through.
pub fn parse_criterion_output(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let mut it = line.split_whitespace();
        if it.next() != Some("bench") {
            continue;
        }
        let Some(name) = it.next() else { continue };
        let Some(value) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
            continue;
        };
        if it.next() != Some("ns/iter") {
            continue;
        }
        out.insert(name.to_string(), value);
    }
    out
}

/// Baseline values from `BENCH_solver.json`: `benchmarks.<name>.after_ns`,
/// skipping entries without a committed measurement (`null`).
pub fn parse_solver_baseline(json: &str) -> Result<BTreeMap<String, f64>, String> {
    let v: Value = serde_json::from_str(json).map_err(|e| format!("invalid JSON: {e}"))?;
    let Some(Value::Object(benches)) = v.get("benchmarks") else {
        return Err("no 'benchmarks' object".into());
    };
    let mut out = BTreeMap::new();
    for (name, entry) in benches {
        if let Some(ns) = entry.get("after_ns").and_then(Value::as_f64) {
            out.insert(name.clone(), ns);
        }
    }
    Ok(out)
}

/// Per-slot decide latencies from a `BENCH_runner.json` record, keyed so
/// they line up between baseline and a regenerated measurement.
pub fn parse_runner_record(json: &str) -> Result<BTreeMap<String, f64>, String> {
    let v: Value = serde_json::from_str(json).map_err(|e| format!("invalid JSON: {e}"))?;
    let mut out = BTreeMap::new();
    for key in [
        "reuse_off_mean_decide_ms",
        "reuse_on_mean_decide_ms",
        "delta_off_mean_decide_ms",
        "delta_on_mean_decide_ms",
        "fleet_mono_decide_ms",
        "fleet_shard_decide_ms",
    ] {
        match v.get(key).and_then(Value::as_f64) {
            Some(ms) => {
                out.insert(format!("runner_decide/{key}"), ms);
            }
            None => return Err(format!("no numeric '{key}' field")),
        }
    }
    Ok(out)
}

/// Absolute acceptance bounds carried inside a `BENCH_runner.json` record
/// itself: `checkpoint_overhead_pct` must stay at or below
/// `acceptance.checkpoint_overhead_max_pct` (default 3%, DESIGN.md §12),
/// `delta_speedup` must stay at or above
/// `acceptance.delta_speedup_required` (default 1.5×, DESIGN.md §13), and
/// `fleet_shard_speedup` must stay at or above
/// `acceptance.shard_speedup_required` (default 1.2×, DESIGN.md §14).
/// Percent overheads hover near zero and speedups are ratios already, so a
/// baseline-ratio gate would be meaningless noise — the bounds are checked
/// on the *fresh* record alone. Returns one message per violated bound; an
/// old-format record without the fields passes.
pub fn runner_acceptance_failures(json: &str) -> Result<Vec<String>, String> {
    let v: Value = serde_json::from_str(json).map_err(|e| format!("invalid JSON: {e}"))?;
    let mut failures = Vec::new();
    if let Some(pct) = v.get("checkpoint_overhead_pct").and_then(Value::as_f64) {
        let max = v
            .get("acceptance")
            .and_then(|a| a.get("checkpoint_overhead_max_pct"))
            .and_then(Value::as_f64)
            .unwrap_or(3.0);
        if pct > max {
            failures.push(format!(
                "checkpoint_overhead_pct {pct:.2}% exceeds the {max}% acceptance bound"
            ));
        }
    }
    if let Some(speedup) = v.get("delta_speedup").and_then(Value::as_f64) {
        let min = v
            .get("acceptance")
            .and_then(|a| a.get("delta_speedup_required"))
            .and_then(Value::as_f64)
            .unwrap_or(1.5);
        if speedup < min {
            failures.push(format!(
                "delta_speedup {speedup:.2}x falls below the {min}x acceptance bound"
            ));
        }
    }
    if let Some(speedup) = v.get("fleet_shard_speedup").and_then(Value::as_f64) {
        let min = v
            .get("acceptance")
            .and_then(|a| a.get("shard_speedup_required"))
            .and_then(Value::as_f64)
            .unwrap_or(1.2);
        if speedup < min {
            failures.push(format!(
                "fleet_shard_speedup {speedup:.2}x falls below the {min}x acceptance bound"
            ));
        }
    }
    Ok(failures)
}

/// Compare measurements against a baseline: a benchmark regresses when
/// `measured > baseline * tolerance` (tolerance 2.0 = "no more than twice
/// as slow").
pub fn compare(
    baseline: &BTreeMap<String, f64>,
    measured: &BTreeMap<String, f64>,
    tolerance: f64,
) -> DiffReport {
    let mut report = DiffReport {
        tolerance,
        ..DiffReport::default()
    };
    for (name, &base) in baseline {
        match measured.get(name) {
            Some(&m) => {
                let ratio = if base > 0.0 { m / base } else { f64::INFINITY };
                report.comparisons.push(Comparison {
                    name: name.clone(),
                    baseline: base,
                    measured: m,
                    ratio,
                    regressed: ratio > tolerance,
                });
            }
            None => report.missing.push(name.clone()),
        }
    }
    for name in measured.keys() {
        if !baseline.contains_key(name) {
            report.unmatched.push(name.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const SOLVER_BASELINE: &str = r#"{
        "benchmarks": {
            "simplex/bounded_40x25": { "before_ns": 89304.5, "after_ns": 23172.1 },
            "branch_and_bound/knapsack_12": { "before_ns": 159419.6, "after_ns": 42740.4 },
            "node_throughput/slot_256_nodes_warm": { "before_ns": null, "after_ns": 2038999.6 }
        }
    }"#;

    #[test]
    fn criterion_lines_parse_and_noise_is_skipped() {
        let text = "warming up\n\
                    bench simplex/bounded_40x25                            23000.0 ns/iter (100 iters)\n\
                    bench branch_and_bound/knapsack_12                     43000.5 ns/iter (50 iters)\n\
                    bench broken_line                                      not_a_number ns/iter\n\
                    done\n";
        let m = parse_criterion_output(text);
        assert_eq!(m.len(), 2);
        assert_eq!(m["simplex/bounded_40x25"], 23000.0);
        assert_eq!(m["branch_and_bound/knapsack_12"], 43000.5);
    }

    #[test]
    fn passes_within_tolerance() {
        let baseline = parse_solver_baseline(SOLVER_BASELINE).unwrap();
        assert_eq!(baseline.len(), 3);
        let mut measured = baseline.clone();
        // 40% slower across the board: inside a 2x gate.
        for v in measured.values_mut() {
            *v *= 1.4;
        }
        let report = compare(&baseline, &measured, 2.0);
        assert!(!report.failed(), "{}", report.render());
        assert_eq!(report.comparisons.len(), 3);
    }

    #[test]
    fn fails_on_synthetically_inflated_measurement() {
        let baseline = parse_solver_baseline(SOLVER_BASELINE).unwrap();
        let mut measured = baseline.clone();
        // One benchmark 3x slower than its baseline: the gate must trip.
        *measured.get_mut("simplex/bounded_40x25").unwrap() *= 3.0;
        let report = compare(&baseline, &measured, 2.0);
        assert!(report.failed());
        let bad: Vec<_> = report
            .comparisons
            .iter()
            .filter(|c| c.regressed)
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(bad, ["simplex/bounded_40x25"]);
    }

    #[test]
    fn missing_measurement_fails_and_new_bench_does_not() {
        let baseline = parse_solver_baseline(SOLVER_BASELINE).unwrap();
        let mut measured = baseline.clone();
        measured.remove("simplex/bounded_40x25");
        measured.insert("simplex/brand_new".into(), 1.0);
        let report = compare(&baseline, &measured, 2.0);
        assert!(report.failed(), "stale baseline entry must fail the gate");
        assert_eq!(report.missing, ["simplex/bounded_40x25"]);
        assert_eq!(report.unmatched, ["simplex/brand_new"]);

        let fresh_only = compare(&BTreeMap::new(), &measured, 2.0);
        assert!(!fresh_only.failed(), "new benches alone cannot regress");
    }

    #[test]
    fn runner_record_parses_committed_shape() {
        let json = r#"{
            "reuse_off_mean_decide_ms": 0.959,
            "reuse_on_mean_decide_ms": 0.413,
            "speedup": 2.32,
            "delta_off_mean_decide_ms": 0.066,
            "delta_on_mean_decide_ms": 0.038,
            "delta_speedup": 1.74,
            "fleet_mono_decide_ms": 1504.0,
            "fleet_shard_decide_ms": 833.0,
            "fleet_shard_speedup": 1.8
        }"#;
        let m = parse_runner_record(json).unwrap();
        assert_eq!(m.len(), 6);
        assert!((m["runner_decide/reuse_off_mean_decide_ms"] - 0.959).abs() < 1e-12);
        assert!((m["runner_decide/delta_on_mean_decide_ms"] - 0.038).abs() < 1e-12);
        assert!((m["runner_decide/fleet_shard_decide_ms"] - 833.0).abs() < 1e-12);

        // A record missing the delta or fleet keys (pre-§13/§14 shape) must
        // be rejected — that is how a silently-dropped bench pass fails the
        // gate.
        let legacy = r#"{
            "reuse_off_mean_decide_ms": 0.959,
            "reuse_on_mean_decide_ms": 0.413
        }"#;
        assert!(parse_runner_record(legacy).is_err());
        let no_fleet = r#"{
            "reuse_off_mean_decide_ms": 0.959,
            "reuse_on_mean_decide_ms": 0.413,
            "delta_off_mean_decide_ms": 0.066,
            "delta_on_mean_decide_ms": 0.038
        }"#;
        assert!(parse_runner_record(no_fleet).is_err());
    }

    #[test]
    fn delta_speedup_bound_is_enforced_absolutely() {
        // At or above the required speedup: passes.
        let ok = r#"{
            "delta_speedup": 1.74,
            "acceptance": { "delta_speedup_required": 1.5 }
        }"#;
        assert!(runner_acceptance_failures(ok).unwrap().is_empty());

        // Below the bound: one violation naming the numbers.
        let bad = r#"{
            "delta_speedup": 1.12,
            "acceptance": { "delta_speedup_required": 1.5 }
        }"#;
        let fails = runner_acceptance_failures(bad).unwrap();
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("1.12"), "{fails:?}");

        // No acceptance block: the 1.5x default applies.
        let default_bound = r#"{ "delta_speedup": 1.2 }"#;
        assert_eq!(runner_acceptance_failures(default_bound).unwrap().len(), 1);

        // Old-format record without the field passes untouched.
        let legacy = r#"{ "reuse_on_mean_decide_ms": 0.4 }"#;
        assert!(runner_acceptance_failures(legacy).unwrap().is_empty());
    }

    #[test]
    fn shard_speedup_bound_is_enforced_absolutely() {
        // At or above the required speedup: passes.
        let ok = r#"{
            "fleet_shard_speedup": 1.8,
            "acceptance": { "shard_speedup_required": 1.2 }
        }"#;
        assert!(runner_acceptance_failures(ok).unwrap().is_empty());

        // Below the bound: one violation naming the numbers.
        let bad = r#"{
            "fleet_shard_speedup": 0.97,
            "acceptance": { "shard_speedup_required": 1.2 }
        }"#;
        let fails = runner_acceptance_failures(bad).unwrap();
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("0.97"), "{fails:?}");

        // No acceptance block: the 1.2x default applies.
        let default_bound = r#"{ "fleet_shard_speedup": 1.05 }"#;
        assert_eq!(runner_acceptance_failures(default_bound).unwrap().len(), 1);

        // Old-format record without the field passes untouched.
        let legacy = r#"{ "reuse_on_mean_decide_ms": 0.4 }"#;
        assert!(runner_acceptance_failures(legacy).unwrap().is_empty());
    }

    #[test]
    fn checkpoint_overhead_bound_is_enforced_absolutely() {
        // Inside the bound (and the record's own bound wins over the default).
        let ok = r#"{
            "checkpoint_overhead_pct": 1.9,
            "acceptance": { "checkpoint_overhead_max_pct": 3.0 }
        }"#;
        assert!(runner_acceptance_failures(ok).unwrap().is_empty());

        // Over the bound: one violation naming the numbers.
        let bad = r#"{
            "checkpoint_overhead_pct": 7.25,
            "acceptance": { "checkpoint_overhead_max_pct": 3.0 }
        }"#;
        let fails = runner_acceptance_failures(bad).unwrap();
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("7.25"), "{fails:?}");

        // No acceptance block: the 3% default applies.
        let default_bound = r#"{ "checkpoint_overhead_pct": 4.0 }"#;
        assert_eq!(runner_acceptance_failures(default_bound).unwrap().len(), 1);

        // Old-format record without the field passes untouched.
        let legacy = r#"{ "reuse_on_mean_decide_ms": 0.4 }"#;
        assert!(runner_acceptance_failures(legacy).unwrap().is_empty());
    }
}
