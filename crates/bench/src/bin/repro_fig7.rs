//! Regenerate paper Fig. 7: large-scale comparison (5 apps, 25 models) —
//! completion-time CDF, per-slot loss and cumulative loss for
//! BIRP / OAEI / MAX over 300 slots.
//!
//! ```bash
//! cargo run --release -p birp-bench --bin repro-fig7
//! ```

use birp_bench::write_json;
use birp_core::experiments::{compare_schedulers, ComparisonConfig};

fn main() {
    let cfg = ComparisonConfig::large_scale(42, 300);
    eprintln!(
        "running {} schedulers over 300 slots (large scale)...",
        cfg.schedulers.len()
    );
    let results = compare_schedulers(&cfg);

    println!("--- Fig. 7a: completion-time CDF (x = completed time / slot) ---");
    print!("{:>6}", "x");
    for r in &results {
        print!(" {:>9}", r.run.scheduler);
    }
    println!();
    for i in 0..=20 {
        let x = 2.0 * i as f64 / 20.0;
        print!("{x:>6.2}");
        for r in &results {
            print!(" {:>9.3}", r.run.metrics.cdf.at(x));
        }
        println!();
    }

    println!("\n--- Fig. 7b: per-slot loss (every 20th slot) ---");
    print!("{:>6}", "t");
    for r in &results {
        print!(" {:>10}", r.run.scheduler);
    }
    println!();
    for t in (0..300).step_by(20) {
        print!("{t:>6}");
        for r in &results {
            print!(" {:>10.1}", r.run.metrics.loss_per_slot[t]);
        }
        println!();
    }

    println!("\n--- Fig. 7c: cumulative loss ---");
    print!("{:>6}", "t");
    for r in &results {
        print!(" {:>11}", r.run.scheduler);
    }
    println!();
    for t in (0..300).step_by(50).chain([299]) {
        print!("{t:>6}");
        for r in &results {
            print!(" {:>11.1}", r.run.metrics.cumulative_loss_at(t));
        }
        println!();
    }

    println!("\n--- summary ---");
    for r in &results {
        let m = &r.run.metrics;
        println!(
            "{:<9} total loss {:>10.1}   p% {:>6.2}   served {:>8}   dropped {:>6}",
            r.run.scheduler, m.total_loss, m.failure_rate_pct, m.served, m.dropped
        );
    }
    let path = write_json("fig7", &results);
    println!("\nwrote {}", path.display());
}
