//! Check the paper's headline claims against full-size simulated runs:
//!
//! * "overall inference loss reduction of at least 32.9 %" (32.3 % in
//!   Fig. 7c) for BIRP vs OAEI,
//! * "the failure rate of SLO has been reduced to 19.8 % of OAEI"
//!   (small scale: 1.9 % vs 10.0 %; large scale: 0.21 % vs 4.1 %),
//! * BIRP tracks BIRP-OFF closely (the tuning module works).
//!
//! ```bash
//! cargo run --release -p birp-bench --bin repro-headline [-- --fresh]
//! ```
//!
//! By default a cached `results/fig6.json` / `fig7.json` is reused to avoid
//! re-running the 300-slot comparisons; `--fresh` forces live runs, which
//! additionally capture the solver/MAB telemetry aggregates into
//! `results/headline.json` (cached figures predate the run, so they carry
//! none).

use birp_bench::write_json;
use birp_core::experiments::{compare_schedulers, ComparisonConfig, SchedulerKind};
use birp_telemetry as telemetry;
use serde::Serialize;

#[derive(Serialize)]
struct Headline {
    scale: &'static str,
    birp_loss: f64,
    oaei_loss: f64,
    loss_reduction_pct: f64,
    birp_fail_pct: f64,
    oaei_fail_pct: f64,
    fail_ratio_pct: f64,
    birp_off_loss: Option<f64>,
    /// Counter/histogram snapshot of the comparison run (solver pivots and
    /// nodes, MAB pulls and LCB widths, runner latencies). `None` when the
    /// figures were reused from a cached `fig6`/`fig7.json` — the cache
    /// predates the run, so there is nothing fresh to aggregate.
    telemetry: Option<telemetry::TelemetrySummary>,
}

fn evaluate(scale: &'static str, cfg: &ComparisonConfig) -> Headline {
    // Aggregate counters/histograms only (NullSink: no event stream). The
    // snapshot spans every scheduler in the comparison, which is the point —
    // it characterises what the whole experiment cost.
    telemetry::init(
        std::sync::Arc::new(telemetry::NullSink),
        telemetry::Level::Error,
    );
    let results = compare_schedulers(cfg);
    let snapshot = telemetry::summary();
    telemetry::reset();
    let get = |k: SchedulerKind| results.iter().find(|r| r.kind == k);
    let birp = get(SchedulerKind::Birp).expect("BIRP run");
    let oaei = get(SchedulerKind::Oaei).expect("OAEI run");
    let birp_loss = birp.run.metrics.total_loss;
    let oaei_loss = oaei.run.metrics.total_loss;
    let birp_fail = birp.run.metrics.failure_rate_pct;
    let oaei_fail = oaei.run.metrics.failure_rate_pct;
    Headline {
        scale,
        birp_loss,
        oaei_loss,
        loss_reduction_pct: 100.0 * (1.0 - birp_loss / oaei_loss),
        birp_fail_pct: birp_fail,
        oaei_fail_pct: oaei_fail,
        fail_ratio_pct: if oaei_fail > 0.0 {
            100.0 * birp_fail / oaei_fail
        } else {
            f64::NAN
        },
        birp_off_loss: get(SchedulerKind::BirpOff).map(|r| r.run.metrics.total_loss),
        telemetry: Some(snapshot),
    }
}

fn report(h: &Headline) {
    println!("--- {} scale ---", h.scale);
    println!(
        "  BIRP loss {:>10.1}   OAEI loss {:>10.1}",
        h.birp_loss, h.oaei_loss
    );
    println!(
        "  loss reduction vs OAEI: {:>6.1}%   (paper: >= 32.9%, Fig. 7c: 32.3%)",
        h.loss_reduction_pct
    );
    println!(
        "  BIRP p% {:>6.2}   OAEI p% {:>6.2}",
        h.birp_fail_pct, h.oaei_fail_pct
    );
    println!(
        "  SLO failure ratio BIRP/OAEI: {:>6.1}%   (paper: 19.8%)",
        h.fail_ratio_pct
    );
    if let Some(off) = h.birp_off_loss {
        println!(
            "  BIRP vs BIRP-OFF loss: {:>10.1} vs {:>10.1} ({:+.1}% — tuning overhead)",
            h.birp_loss,
            off,
            100.0 * (h.birp_loss / off - 1.0)
        );
    }
    if let Some(t) = &h.telemetry {
        println!(
            "  solver: {} solves, {} B&B nodes, {} pivots   MAB: {} pulls",
            t.counter("solver.solves").unwrap_or(0),
            t.counter("solver.nodes").unwrap_or(0),
            t.counter("solver.pivots").unwrap_or(0),
            t.counter("mab.pulls").unwrap_or(0),
        );
    }
    println!();
}

/// Reuse a previously generated `repro-fig6` / `repro-fig7` record when
/// available, so the headline check does not re-run 300-slot comparisons.
fn load_or_run(scale: &'static str, cached: &str, cfg: &ComparisonConfig, fresh: bool) -> Headline {
    let path = birp_bench::results_dir().join(format!("{cached}.json"));
    if fresh {
        eprintln!("--fresh: running the {scale}-scale comparison...");
        return evaluate(scale, cfg);
    }
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(results) =
            serde_json::from_str::<Vec<birp_core::experiments::ComparisonResult>>(&text)
        {
            eprintln!("reusing {}", path.display());
            let get = |k: SchedulerKind| results.iter().find(|r| r.kind == k);
            if let (Some(birp), Some(oaei)) = (get(SchedulerKind::Birp), get(SchedulerKind::Oaei)) {
                let birp_loss = birp.run.metrics.total_loss;
                let oaei_loss = oaei.run.metrics.total_loss;
                let birp_fail = birp.run.metrics.failure_rate_pct;
                let oaei_fail = oaei.run.metrics.failure_rate_pct;
                return Headline {
                    scale,
                    birp_loss,
                    oaei_loss,
                    loss_reduction_pct: 100.0 * (1.0 - birp_loss / oaei_loss),
                    birp_fail_pct: birp_fail,
                    oaei_fail_pct: oaei_fail,
                    fail_ratio_pct: if oaei_fail > 0.0 {
                        100.0 * birp_fail / oaei_fail
                    } else {
                        f64::NAN
                    },
                    birp_off_loss: get(SchedulerKind::BirpOff).map(|r| r.run.metrics.total_loss),
                    telemetry: None,
                };
            }
        }
    }
    eprintln!("no cached {cached}.json — running the {scale}-scale comparison...");
    evaluate(scale, cfg)
}

fn main() {
    let fresh = std::env::args().any(|a| a == "--fresh");
    let small = load_or_run(
        "small",
        "fig6",
        &ComparisonConfig::small_scale(42, 300),
        fresh,
    );
    let large = load_or_run(
        "large",
        "fig7",
        &ComparisonConfig::large_scale(42, 300),
        fresh,
    );
    report(&small);
    report(&large);

    let verdict_loss = large.loss_reduction_pct > 20.0;
    let verdict_slo = large.fail_ratio_pct < 60.0;
    println!("qualitative reproduction verdict:");
    println!("  BIRP substantially reduces loss vs OAEI:      {verdict_loss}");
    println!("  BIRP substantially reduces SLO failures:      {verdict_slo}");

    let path = write_json("headline", &vec![small, large]);
    println!("\nwrote {}", path.display());
}
