//! Regenerate paper Fig. 5: impact of (eps1, eps2) on the SLO failure rate
//! p%, at t = 100 and t = 300.
//!
//! ```bash
//! cargo run --release -p birp-bench --bin repro-fig5
//! ```

use birp_bench::write_json;
use birp_core::experiments::{epsilon_sweep, SweepConfig};

fn main() {
    let mut cfg = SweepConfig::paper(42, 300);
    cfg.checkpoints = vec![100, 299];
    eprintln!(
        "sweeping {}x{} grid over {} slots ({} BIRP runs, rayon-parallel)...",
        cfg.eps1_grid.len(),
        cfg.eps2_grid.len(),
        cfg.trace.num_slots,
        cfg.eps1_grid.len() * cfg.eps2_grid.len()
    );
    let result = epsilon_sweep(&cfg);

    for &t in &result.checkpoints {
        println!("--- Fig. 5: p% surface at t = {t} ---");
        print!("{:>7}", "e1\\e2");
        for e2 in &cfg.eps2_grid {
            print!(" {e2:>7.2}");
        }
        println!();
        for e1 in &cfg.eps1_grid {
            print!("{e1:>7.2}");
            for e2 in &cfg.eps2_grid {
                let p = result
                    .points
                    .iter()
                    .find(|p| (p.eps1 - e1).abs() < 1e-9 && (p.eps2 - e2).abs() < 1e-9)
                    .unwrap();
                let pct = p.failure_pct.iter().find(|(ct, _)| *ct == t).unwrap().1;
                print!(" {pct:>7.2}");
            }
            println!();
        }
        println!();
    }
    let path = write_json("fig5", &result);
    println!("wrote {}", path.display());
}
