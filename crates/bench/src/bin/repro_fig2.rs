//! Regenerate paper Fig. 2: TIR raw data and piecewise fits for
//! LeNet / GoogLeNet / ResNet-18 on a simulated Jetson Nano.
//!
//! ```bash
//! cargo run --release -p birp-bench --bin repro-fig2
//! ```

use birp_bench::write_json;
use birp_core::experiments::fig2_experiment;

fn main() {
    let results = fig2_experiment(11, 16, 5);
    for r in &results {
        println!("--- Fig. 2: {} ---", r.model);
        println!(
            "fitted : TIR = b^{:.2}, b <= {}   |   TIR = {:.2}, b > {}",
            r.fit.params.eta, r.fit.params.beta, r.fit.params.c, r.fit.params.beta
        );
        println!(
            "truth  : TIR = b^{:.2}, b <= {}   |   TIR = {:.2}, b > {}   (rmse {:.4})",
            r.truth.eta,
            r.truth.beta,
            r.truth.c,
            r.truth.beta,
            r.fit.rmse()
        );
        println!("batch-size -> mean measured TIR (raw dots):");
        for b in 1..=16u32 {
            let vals: Vec<f64> = r
                .samples
                .iter()
                .filter(|s| s.batch == b)
                .map(|s| s.tir)
                .collect();
            let mean = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
            let fitted = r.fit.params.tir(b);
            println!("  b={b:>2}  measured {mean:>5.3}  fitted {fitted:>5.3}");
        }
        println!();
    }
    let path = write_json("fig2", &results);
    println!("wrote {}", path.display());
}
