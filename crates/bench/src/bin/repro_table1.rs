//! Regenerate paper Table 1: serial-execution resource utilisation and FPS
//! on the simulated Jetson Nano and Atlas 200DK.
//!
//! ```bash
//! cargo run --release -p birp-bench --bin repro-table1
//! ```

use birp_bench::write_json;
use birp_core::experiments::table1_experiment;

fn main() {
    let rows = table1_experiment(3, 1000);
    println!("Table 1: Inference Resource Usage and Performance upon Heterogeneous Edges");
    println!(
        "{:<10} {:<12} {:>8} {:>8} {:>8} {:>10} {:>9} | {:>8} {:>8}",
        "Inference", "Edge", "CPU %", "GPU %", "NPU %", "NPUCore %", "FPS", "ref CPU", "ref FPS"
    );
    for r in &rows {
        println!(
            "{:<10} {:<12} {:>8.1} {:>8.1} {:>8.1} {:>10.1} {:>9.1} | {:>8.1} {:>8.1}",
            r.model,
            r.device,
            r.measured.cpu_pct,
            r.measured.gpu_pct,
            r.measured.npu_pct,
            r.measured.npu_core_pct,
            r.measured.avg_fps,
            r.reference_cpu_pct,
            r.reference_fps
        );
    }
    println!("\nmotivating observation check:");
    let small_underutilised = rows
        .iter()
        .filter(|r| r.model == "Yolov4-t" || r.model == "ResNet-18")
        .all(|r| r.measured.gpu_pct.max(r.measured.npu_core_pct) < 75.0);
    println!("  small models keep accelerator < 75%: {small_underutilised}");
    let path = write_json("table1", &rows);
    println!("\nwrote {}", path.display());
}
