//! Robustness integration tests (DESIGN.md §10):
//!
//! * request conservation under quarantine-and-reroute for every fault
//!   shape the plan can express,
//! * the information-asymmetry guarantee — two differently-written but
//!   behaviourally identical fault plans must produce bitwise-identical
//!   runs, so no scheduler or detector code can be reading the plan,
//! * graceful solver degradation — a starved solve budget must never
//!   panic or leave a slot unserved, and must announce itself through the
//!   `solver.degraded` telemetry counter.

use birp_core::{run_scheduler, BirpOff, HealthConfig, RunConfig};
use birp_models::{Catalog, EdgeId};
use birp_sim::{FaultPlan, SimConfig};
use birp_solver::{SolveBudget, SolverConfig};
use birp_telemetry as telemetry;
use birp_workload::{Trace, TraceConfig};

fn setup(slots: usize) -> (Catalog, Trace) {
    let catalog = Catalog::small_scale(42);
    let trace = TraceConfig {
        num_slots: slots,
        mean_rate: 7.0,
        ..TraceConfig::small_scale(13)
    }
    .generate();
    (catalog, trace)
}

fn serial_scheduling() -> SolverConfig {
    SolverConfig {
        parallel: false,
        ..SolverConfig::scheduling()
    }
}

fn run_with(catalog: &Catalog, trace: &Trace, faults: FaultPlan, resilient: bool) -> String {
    let cfg = RunConfig {
        sim: SimConfig {
            faults,
            ..SimConfig::default()
        },
        resilience: resilient.then(HealthConfig::default),
        ..RunConfig::default()
    };
    let mut s = BirpOff::new(catalog.clone()).with_solver(serial_scheduling());
    let r = run_scheduler(catalog, trace, &mut s, &cfg);
    assert_eq!(
        r.metrics.served + r.metrics.dropped,
        r.offered,
        "conservation broken (resilient={resilient})"
    );
    serde_json::to_string(&r).unwrap()
}

/// `served + dropped == offered` must hold under every fault shape, with
/// and without the resilience layer.
#[test]
fn resilience_conserves_requests_under_every_fault_plan() {
    let (catalog, trace) = setup(18);
    let plans = [
        FaultPlan::none(),
        FaultPlan::none().with_outage(EdgeId(2), 3, 12),
        FaultPlan::none().with_degradation(EdgeId(0), 2, 14, 3.0),
        FaultPlan::none().with_link_fault(EdgeId(1), EdgeId(3), 4, 10, 0.0),
        FaultPlan::none().with_flaky(EdgeId(4), 5, 15, 3, 2),
        FaultPlan::none()
            .with_outage(EdgeId(2), 3, 9)
            .with_link_fault(EdgeId(0), EdgeId(1), 2, 8, 0.25)
            .with_flaky(EdgeId(5), 8, 16, 2, 1)
            .with_degradation(EdgeId(1), 0, 18, 2.0),
    ];
    for plan in plans {
        run_with(&catalog, &trace, plan.clone(), false);
        run_with(&catalog, &trace, plan, true);
    }
}

/// Two plans that describe the same physical behaviour differently (one
/// outage window vs two adjacent ones) must yield bitwise-identical run
/// results: schedulers and the detector only ever see outcomes, so the
/// plan's *representation* cannot leak into decisions.
#[test]
fn resilience_sees_outcomes_not_the_fault_plan() {
    let (catalog, trace) = setup(16);
    let one_window = FaultPlan::none().with_outage(EdgeId(2), 3, 9);
    let split_windows = FaultPlan::none()
        .with_outage(EdgeId(2), 3, 6)
        .with_outage(EdgeId(2), 6, 9);
    for resilient in [false, true] {
        let a = run_with(&catalog, &trace, one_window.clone(), resilient);
        let b = run_with(&catalog, &trace, split_windows.clone(), resilient);
        assert_eq!(
            a, b,
            "equivalent fault plans diverged (resilient={resilient}): \
             something is reading the plan, not the outcomes"
        );
    }
}

/// A starved solve budget (1 node, 1 pivot) must degrade, not panic:
/// every slot still gets a feasible schedule (conservation holds for the
/// whole run) and the solver announces the degradation via telemetry.
#[test]
fn resilience_budget_exhaustion_degrades_gracefully() {
    let (catalog, trace) = setup(10);
    telemetry::init(
        std::sync::Arc::new(telemetry::MemorySink::new()),
        telemetry::Level::Warn,
    );
    let starved = SolverConfig {
        budget: SolveBudget {
            max_nodes: Some(1),
            max_pivots: Some(1),
            deadline_ms: None,
        },
        ..serial_scheduling()
    };
    let mut s = BirpOff::new(catalog.clone()).with_solver(starved);
    let r = run_scheduler(&catalog, &trace, &mut s, &RunConfig::default());
    let degraded = telemetry::summary().counter("solver.degraded");
    telemetry::reset();
    assert_eq!(
        r.metrics.served + r.metrics.dropped,
        r.offered,
        "a starved solver must still serve every slot"
    );
    assert!(
        degraded.unwrap_or(0) > 0,
        "budget exhaustion must be visible as solver.degraded telemetry, got {degraded:?}"
    );
}
