//! Property-based tests: for arbitrary demand matrices, every schedule the
//! per-slot problem (and every scheduler) emits is structurally feasible
//! and conserves requests.

use birp_conformance::strategies::arb_demand;
use proptest::prelude::*;

use birp_core::{Birp, BirpOff, MaxBatch, Oaei, Scheduler};
use birp_core::{ProblemConfig, SlotProblem, TirMatrix};
use birp_mab::MabConfig;
use birp_models::{AppId, Catalog, EdgeId};
use birp_solver::SolverConfig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Decoded MILP schedules always validate and conserve requests.
    #[test]
    fn slot_problem_schedules_are_feasible(d in arb_demand(1, 6, 30)) {
        let catalog = Catalog::small_scale(42);
        let tir = TirMatrix::oracle(&catalog);
        let p = SlotProblem::build(&catalog, 0, &d, &tir, None, &ProblemConfig::default());
        let (schedule, _) = p.solve(&SolverConfig::scheduling()).unwrap();
        let demand_fn = |a: AppId, e: EdgeId| d.get(a, e);
        birp_sim::validate(&catalog, &demand_fn, &schedule, None).unwrap();
        prop_assert_eq!(schedule.served() + schedule.total_unserved(), d.total());
    }

    /// Every scheduler's decisions validate on random demand.
    #[test]
    fn all_schedulers_emit_feasible_schedules(d in arb_demand(1, 6, 20), which in 0usize..4) {
        let catalog = Catalog::small_scale(42);
        let mut s: Box<dyn Scheduler> = match which {
            0 => Box::new(Birp::new(catalog.clone(), MabConfig::paper_preset())),
            1 => Box::new(BirpOff::new(catalog.clone())),
            2 => Box::new(Oaei::new(catalog.clone(), 1)),
            _ => Box::new(MaxBatch::paper_default(catalog.clone())),
        };
        let schedule = s.decide(0, &d, None);
        let demand_fn = |a: AppId, e: EdgeId| d.get(a, e);
        birp_sim::validate(&catalog, &demand_fn, &schedule, None).unwrap();
        prop_assert_eq!(schedule.served() + schedule.total_unserved(), d.total());
    }

    /// The serial (OAEI-mode) problem is feasible for any demand too.
    #[test]
    fn serial_problems_are_feasible(d in arb_demand(1, 6, 40)) {
        let catalog = Catalog::small_scale(42);
        let tir = TirMatrix::initial(&catalog);
        let cfg = ProblemConfig {
            mode: birp_core::ExecutionMode::Serial { max_serial: 256 },
            ..Default::default()
        };
        let p = SlotProblem::build(&catalog, 0, &d, &tir, None, &cfg);
        let (schedule, _) = p.solve(&SolverConfig::scheduling()).unwrap();
        prop_assert!(schedule.serial);
        let demand_fn = |a: AppId, e: EdgeId| d.get(a, e);
        birp_sim::validate(&catalog, &demand_fn, &schedule, None).unwrap();
    }
}
