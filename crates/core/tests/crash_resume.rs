//! Crash-safety properties of the resumable runner (DESIGN.md §12).
//!
//! The headline guarantee: killing a run at *any* slot boundary and
//! resuming from its checkpoint produces a bitwise-identical remaining
//! trace and final `RunResult` versus the uninterrupted run — for every
//! scheduler, with and without the resilience layer. Alongside it: the
//! checkpoint parser never panics on corrupted bytes, resume validation
//! rejects mismatched runs with typed errors, and a panicking scheduler is
//! isolated to its slot instead of aborting the process.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use birp_core::checkpoint::{self, ResumeError};
use birp_core::{
    run_scheduler, run_scheduler_resumable, Birp, BirpOff, CheckpointPolicy, HealthConfig,
    MaxBatch, Oaei, RunCheckpoint, RunConfig, RunOutcome, RunResult, RunnerCheckpoint, Scheduler,
    ShardConfig, TemporalReuse,
};
use birp_mab::MabConfig;
use birp_models::{Catalog, EdgeId};
use birp_sim::{FaultPlan, Schedule, SimConfig, SlotOutcome};
use birp_workload::{Trace, TraceConfig};
use serde::{DeError, Serialize, Value};

const SLOTS: usize = 8;

fn setup() -> (Catalog, Trace) {
    let catalog = Catalog::small_scale(42);
    let trace = TraceConfig {
        num_slots: SLOTS,
        mean_rate: 5.0,
        ..TraceConfig::small_scale(7)
    }
    .generate();
    (catalog, trace)
}

fn make_scheduler(catalog: &Catalog, which: usize) -> Box<dyn Scheduler> {
    match which {
        0 => Box::new(Birp::new(catalog.clone(), MabConfig::paper_preset())),
        1 => Box::new(BirpOff::new(catalog.clone())),
        2 => Box::new(Oaei::new(catalog.clone(), 3)),
        _ => Box::new(MaxBatch::paper_default(catalog.clone())),
    }
}

/// BIRP variants with the incremental re-solve path leaned on hard: deltas
/// on (the default) plus a skip streak longer than the trace, so the
/// persistent slot model is refreshed — never rebuilt — across every slot a
/// kill can land between.
fn delta_scheduler(catalog: &Catalog, which: usize) -> Box<dyn Scheduler> {
    let reuse = TemporalReuse {
        max_skip_streak: 6,
        ..TemporalReuse::default()
    };
    match which {
        0 => Box::new(Birp::new(catalog.clone(), MabConfig::paper_preset()).with_reuse(reuse)),
        _ => Box::new(BirpOff::new(catalog.clone()).with_reuse(reuse)),
    }
}

/// BIRP variants with the sharded decomposition coordinator on (DESIGN.md
/// §14): every slot runs the dual-price loop, the coupling prices carry
/// across slots, and a kill between slots lands between price iterations of
/// the coordinator's trajectory. The checkpoint persists the prices
/// (`BirpState.shard_prices`); cluster models restore by re-lowering.
fn shard_scheduler(catalog: &Catalog, which: usize) -> Box<dyn Scheduler> {
    let cfg = ShardConfig {
        cluster_size: 2,
        max_iters: 3,
        gap_tol: 0.05,
        fallback: true,
    };
    match which {
        0 => Box::new(Birp::new(catalog.clone(), MabConfig::paper_preset()).with_shards(cfg)),
        _ => Box::new(BirpOff::new(catalog.clone()).with_shards(cfg)),
    }
}

fn config(resilience: bool) -> RunConfig {
    RunConfig {
        sim: SimConfig {
            faults: if resilience {
                FaultPlan::default().with_outage(EdgeId(2), 2, 6)
            } else {
                FaultPlan::default()
            },
            ..SimConfig::default()
        },
        resilience: resilience.then(HealthConfig::default),
        ..RunConfig::default()
    }
}

/// Delegating wrapper that raises the shutdown flag while deciding slot
/// `kill_at` — the runner then observes it at the top of slot `kill_at + 1`,
/// checkpointing exactly there. Models a SIGTERM landing mid-run.
struct KillAt {
    inner: Box<dyn Scheduler>,
    kill_at: usize,
    flag: Arc<AtomicBool>,
}

impl Scheduler for KillAt {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn decide(
        &mut self,
        t: usize,
        demand: &birp_core::DemandMatrix,
        prev: Option<&Schedule>,
    ) -> Schedule {
        if t == self.kill_at {
            self.flag.store(true, Ordering::SeqCst);
        }
        self.inner.decide(t, demand, prev)
    }
    fn observe(&mut self, outcome: &SlotOutcome) {
        self.inner.observe(outcome);
    }
    fn set_edge_mask(&mut self, mask: Option<&[bool]>) {
        self.inner.set_edge_mask(mask);
    }
    fn export_state(&self) -> Value {
        self.inner.export_state()
    }
    fn import_state(&mut self, state: &Value) -> Result<(), DeError> {
        self.inner.import_state(state)
    }
}

fn tmp_ckpt(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("birp-crash-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("run.ckpt")
}

fn result_json(r: &RunResult) -> String {
    serde_json::to_string(&Serialize::to_value(r)).unwrap()
}

/// Kill at `kill_at`, resume from the written checkpoint on a freshly built
/// scheduler, and return the resumed run's final result.
fn killed_and_resumed(
    catalog: &Catalog,
    trace: &Trace,
    cfg: &RunConfig,
    mk: &dyn Fn(&Catalog) -> Box<dyn Scheduler>,
    kill_at: usize,
    tag: &str,
) -> RunResult {
    let path = tmp_ckpt(tag);
    let flag = Arc::new(AtomicBool::new(false));
    let mut killed = KillAt {
        inner: mk(catalog),
        kill_at,
        flag: Arc::clone(&flag),
    };
    let policy = CheckpointPolicy {
        path: path.clone(),
        every: 0,
        spec: Value::Null,
    };
    let outcome = run_scheduler_resumable(
        catalog,
        trace,
        &mut killed,
        cfg,
        Some(&policy),
        None,
        Some(&flag),
    )
    .unwrap();
    match outcome {
        RunOutcome::Interrupted { next_slot } => assert_eq!(next_slot, kill_at + 1),
        RunOutcome::Complete(_) => panic!("run was never interrupted"),
    }

    let ck = checkpoint::load(&path).unwrap();
    assert_eq!(ck.runner.next_slot, kill_at + 1);
    let mut fresh = mk(catalog);
    let resumed = run_scheduler_resumable(
        catalog,
        trace,
        fresh.as_mut(),
        cfg,
        None,
        Some(ck.runner),
        None,
    )
    .unwrap();
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
    match resumed {
        RunOutcome::Complete(r) => *r,
        RunOutcome::Interrupted { .. } => panic!("resumed run interrupted again"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The headline property: kill anywhere, resume, get the exact same
    /// final result as the uninterrupted run — any scheduler, resilience on
    /// or off.
    #[test]
    fn kill_resume_is_bitwise_equivalent(
        kill_at in 0..SLOTS - 1,
        which in 0usize..4,
        resilience_bit in 0usize..2,
    ) {
        let resilience = resilience_bit == 1;
        let (catalog, trace) = setup();
        let cfg = config(resilience);
        let baseline = run_scheduler(&catalog, &trace, make_scheduler(&catalog, which).as_mut(), &cfg);
        let resumed = killed_and_resumed(
            &catalog, &trace, &cfg, &|c| make_scheduler(c, which), kill_at,
            &format!("prop-{which}-{kill_at}-{resilience}"),
        );
        prop_assert_eq!(result_json(&baseline), result_json(&resumed));
    }

    /// Delta-path kill–resume (DESIGN.md §13): with the persistent slot
    /// model refreshing across every slot, a kill lands mid-delta-sequence
    /// by construction. The checkpoint carries only the model's input
    /// fingerprint; the resumed scheduler re-lowers from it and refreshes
    /// on, and the final result must still be bitwise identical to the
    /// uninterrupted run.
    #[test]
    fn kill_resume_mid_delta_sequence_is_bitwise_equivalent(
        kill_at in 0..SLOTS - 1,
        which in 0usize..2,
        resilience_bit in 0usize..2,
    ) {
        let resilience = resilience_bit == 1;
        let (catalog, trace) = setup();
        let cfg = config(resilience);
        let baseline = run_scheduler(
            &catalog, &trace, delta_scheduler(&catalog, which).as_mut(), &cfg,
        );
        let resumed = killed_and_resumed(
            &catalog, &trace, &cfg, &|c| delta_scheduler(c, which), kill_at,
            &format!("delta-{which}-{kill_at}-{resilience}"),
        );
        prop_assert_eq!(result_json(&baseline), result_json(&resumed));
    }

    /// Sharded kill–resume: the coordinator's dual prices evolve across
    /// slots, so a kill anywhere splits its price trajectory. Resume must
    /// restore the prices from the checkpoint and re-lower the cluster
    /// models from scratch, and the final result must still be bitwise
    /// identical to the uninterrupted sharded run.
    #[test]
    fn kill_resume_sharded_is_bitwise_equivalent(
        kill_at in 0..SLOTS - 1,
        which in 0usize..2,
        resilience_bit in 0usize..2,
    ) {
        let resilience = resilience_bit == 1;
        let (catalog, trace) = setup();
        let cfg = config(resilience);
        let baseline = run_scheduler(
            &catalog, &trace, shard_scheduler(&catalog, which).as_mut(), &cfg,
        );
        let resumed = killed_and_resumed(
            &catalog, &trace, &cfg, &|c| shard_scheduler(c, which), kill_at,
            &format!("shard-{which}-{kill_at}-{resilience}"),
        );
        prop_assert_eq!(result_json(&baseline), result_json(&resumed));
    }

    /// Corruption fuzz: arbitrary byte flips and truncations of a valid
    /// checkpoint file either parse or fail with a typed error — never
    /// panic the loader.
    #[test]
    fn corrupted_checkpoints_never_panic(ix in 0usize..4096, bit in 0u8..8, cut in 0usize..4096) {
        let ck = RunCheckpoint {
            spec: Value::Null,
            runner: RunnerCheckpoint::fresh(2, 3),
        };
        let payload = serde_json::to_string(&Serialize::to_value(&ck)).unwrap();
        let header = format!(
            "{} v{} crc32={:08x} len={}\n",
            checkpoint::MAGIC,
            checkpoint::VERSION,
            checkpoint::crc32(payload.as_bytes()),
            payload.len()
        );
        let mut bytes: Vec<u8> = header.into_bytes();
        bytes.extend_from_slice(payload.as_bytes());

        let mut flipped = bytes.clone();
        let at = ix % flipped.len();
        flipped[at] ^= 1 << bit;
        let _ = checkpoint::parse(&flipped);

        let truncated = &bytes[..cut % (bytes.len() + 1)];
        let _ = checkpoint::parse(truncated);
    }
}

/// Every kill point of a resilience run (quarantine + reroute + probes all
/// active) resumes exactly — the FSM, the reroute counters and the probe
/// schedule all live in the checkpoint.
#[test]
fn every_kill_point_resumes_exactly_under_faults() {
    let (catalog, trace) = setup();
    let cfg = config(true);
    let baseline = run_scheduler(&catalog, &trace, make_scheduler(&catalog, 1).as_mut(), &cfg);
    let expected = result_json(&baseline);
    for kill_at in 0..SLOTS - 1 {
        let resumed = killed_and_resumed(
            &catalog,
            &trace,
            &cfg,
            &|c| make_scheduler(c, 1),
            kill_at,
            &format!("all-{kill_at}"),
        );
        assert_eq!(expected, result_json(&resumed), "kill_at={kill_at}");
    }
}

/// Resume validation rejects checkpoints that do not match the run.
#[test]
fn resume_validation_catches_mismatches() {
    let (catalog, trace) = setup();
    let cfg = RunConfig::default();

    // Wrong scheduler.
    let mut ck = RunnerCheckpoint::fresh(catalog.num_apps(), catalog.num_edges());
    ck.scheduler_name = "OAEI".to_string();
    let mut birp = BirpOff::new(catalog.clone());
    let err = run_scheduler_resumable(&catalog, &trace, &mut birp, &cfg, None, Some(ck), None)
        .unwrap_err();
    assert!(matches!(err, ResumeError::SpecMismatch(_)), "{err}");

    // Wrong queue shape.
    let ck = RunnerCheckpoint::fresh(catalog.num_apps() + 1, catalog.num_edges());
    let err = run_scheduler_resumable(&catalog, &trace, &mut birp, &cfg, None, Some(ck), None)
        .unwrap_err();
    assert!(matches!(err, ResumeError::SpecMismatch(_)), "{err}");

    // Slot index beyond the trace.
    let mut ck = RunnerCheckpoint::fresh(catalog.num_apps(), catalog.num_edges());
    ck.next_slot = trace.num_slots() + 1;
    let err = run_scheduler_resumable(&catalog, &trace, &mut birp, &cfg, None, Some(ck), None)
        .unwrap_err();
    assert!(matches!(err, ResumeError::SpecMismatch(_)), "{err}");

    // Resilience setting differs from the checkpointed run.
    let ck = RunnerCheckpoint::fresh(catalog.num_apps(), catalog.num_edges());
    let cfg_res = RunConfig {
        resilience: Some(HealthConfig::default()),
        ..RunConfig::default()
    };
    let err = run_scheduler_resumable(&catalog, &trace, &mut birp, &cfg_res, None, Some(ck), None)
        .unwrap_err();
    assert!(matches!(err, ResumeError::SpecMismatch(_)), "{err}");

    // Garbage scheduler state payload.
    let mut ck = RunnerCheckpoint::fresh(catalog.num_apps(), catalog.num_edges());
    ck.scheduler_state = Value::Str("not a scheduler state".to_string());
    let mut oaei = Oaei::new(catalog.clone(), 3);
    let err = run_scheduler_resumable(&catalog, &trace, &mut oaei, &cfg, None, Some(ck), None)
        .unwrap_err();
    assert!(matches!(err, ResumeError::Parse(_)), "{err}");
}

/// A scheduler that panics mid-run loses only that slot: the greedy-LOCAL
/// fallback serves it, the run completes, and the isolation count lands in
/// the next checkpoint.
#[test]
fn panicking_scheduler_is_isolated_to_its_slot() {
    struct PanicAt {
        inner: BirpOff,
        panic_on: Vec<usize>,
    }
    impl Scheduler for PanicAt {
        fn name(&self) -> &'static str {
            self.inner.name()
        }
        fn decide(
            &mut self,
            t: usize,
            demand: &birp_core::DemandMatrix,
            prev: Option<&Schedule>,
        ) -> Schedule {
            assert!(!self.panic_on.contains(&t), "injected panic at t={t}");
            self.inner.decide(t, demand, prev)
        }
        fn observe(&mut self, outcome: &SlotOutcome) {
            self.inner.observe(outcome);
        }
        fn set_edge_mask(&mut self, mask: Option<&[bool]>) {
            self.inner.set_edge_mask(mask);
        }
    }

    let (catalog, trace) = setup();
    let path = tmp_ckpt("panic");
    let policy = CheckpointPolicy {
        path: path.clone(),
        every: SLOTS - 1,
        spec: Value::Null,
    };
    let mut s = PanicAt {
        inner: BirpOff::new(catalog.clone()),
        panic_on: vec![1, 4],
    };
    // Injected panics print through the default hook; silence is not worth a
    // global hook swap, so the test output simply shows two panic banners.
    let outcome = run_scheduler_resumable(
        &catalog,
        &trace,
        &mut s,
        &RunConfig::default(),
        Some(&policy),
        None,
        None,
    )
    .unwrap();
    let RunOutcome::Complete(r) = outcome else {
        panic!("run did not complete");
    };
    assert_eq!(
        r.metrics.served + r.metrics.dropped,
        r.offered,
        "conservation must hold across isolated panics"
    );
    let ck = checkpoint::load(&path).unwrap();
    assert_eq!(ck.runner.panic_isolated, 2);
    let _ = std::fs::remove_dir_all(path.parent().unwrap());

    // With isolation off the same panic is fatal.
    let mut s = PanicAt {
        inner: BirpOff::new(catalog.clone()),
        panic_on: vec![1],
    };
    let cfg = RunConfig {
        isolate_panics: false,
        ..RunConfig::default()
    };
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_scheduler(&catalog, &trace, &mut s, &cfg)
    }));
    assert!(caught.is_err(), "isolation off must propagate the panic");
}

/// Periodic checkpoints land on the configured cadence and resume exactly
/// like shutdown checkpoints do.
#[test]
fn periodic_checkpoint_resumes_exactly() {
    let (catalog, trace) = setup();
    let cfg = RunConfig::default();
    let baseline = run_scheduler(&catalog, &trace, make_scheduler(&catalog, 0).as_mut(), &cfg);

    let path = tmp_ckpt("periodic");
    let policy = CheckpointPolicy {
        path: path.clone(),
        every: 3,
        spec: Value::Object(vec![("scale".into(), Value::Str("small".into()))]),
    };
    let mut s = make_scheduler(&catalog, 0);
    let outcome = run_scheduler_resumable(
        &catalog,
        &trace,
        s.as_mut(),
        &cfg,
        Some(&policy),
        None,
        None,
    )
    .unwrap();
    let RunOutcome::Complete(full) = outcome else {
        panic!("run did not complete");
    };
    assert_eq!(result_json(&baseline), result_json(&full));

    // The file on disk is the *last* periodic save: slot 6 of 8 (slot 3's
    // save was overwritten, the would-be slot-9 save is out of range).
    let ck = checkpoint::load(&path).unwrap();
    assert_eq!(ck.runner.next_slot, 6);
    assert_eq!(ck.spec.get("scale").and_then(Value::as_str), Some("small"));

    let mut fresh = make_scheduler(&catalog, 0);
    let resumed = run_scheduler_resumable(
        &catalog,
        &trace,
        fresh.as_mut(),
        &cfg,
        None,
        Some(ck.runner),
        None,
    )
    .unwrap();
    let RunOutcome::Complete(r) = resumed else {
        panic!("resumed run did not complete");
    };
    assert_eq!(result_json(&baseline), result_json(&r));
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}
