//! The per-slot demand matrix handed to schedulers.
//!
//! This is `r^t_{ik}` for one fixed `t` — the trace's row plus any
//! requests the runner carried over from earlier slots.

use birp_models::{AppId, EdgeId};
use birp_workload::Trace;
use serde::{Deserialize, Serialize};

/// Demand per `[app][edge]` for one slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DemandMatrix {
    num_apps: usize,
    num_edges: usize,
    data: Vec<u32>,
}

impl DemandMatrix {
    pub fn zeros(num_apps: usize, num_edges: usize) -> Self {
        DemandMatrix {
            num_apps,
            num_edges,
            data: vec![0; num_apps * num_edges],
        }
    }

    /// Extract slot `t` of a trace.
    pub fn from_trace(trace: &Trace, t: usize) -> Self {
        let mut m = Self::zeros(trace.num_apps(), trace.num_edges());
        for a in 0..trace.num_apps() {
            for e in 0..trace.num_edges() {
                m.set(AppId(a), EdgeId(e), trace.demand(t, AppId(a), EdgeId(e)));
            }
        }
        m
    }

    #[inline]
    fn idx(&self, a: usize, e: usize) -> usize {
        debug_assert!(a < self.num_apps && e < self.num_edges);
        a * self.num_edges + e
    }

    #[inline]
    pub fn get(&self, app: AppId, edge: EdgeId) -> u32 {
        self.data[self.idx(app.index(), edge.index())]
    }

    #[inline]
    pub fn set(&mut self, app: AppId, edge: EdgeId, v: u32) {
        let i = self.idx(app.index(), edge.index());
        self.data[i] = v;
    }

    #[inline]
    pub fn add(&mut self, app: AppId, edge: EdgeId, v: u32) {
        let i = self.idx(app.index(), edge.index());
        self.data[i] += v;
    }

    pub fn num_apps(&self) -> usize {
        self.num_apps
    }

    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    pub fn total(&self) -> u64 {
        self.data.iter().map(|&v| v as u64).sum()
    }

    /// Total demand of one application across edges.
    pub fn app_total(&self, app: AppId) -> u64 {
        (0..self.num_edges)
            .map(|e| self.data[self.idx(app.index(), e)] as u64)
            .sum()
    }

    /// Total demand arriving at one edge across applications.
    pub fn edge_total(&self, edge: EdgeId) -> u64 {
        (0..self.num_apps)
            .map(|a| self.data[self.idx(a, edge.index())] as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_add() {
        let mut d = DemandMatrix::zeros(2, 3);
        d.set(AppId(1), EdgeId(2), 5);
        d.add(AppId(1), EdgeId(2), 3);
        assert_eq!(d.get(AppId(1), EdgeId(2)), 8);
        assert_eq!(d.get(AppId(0), EdgeId(0)), 0);
        assert_eq!(d.total(), 8);
    }

    #[test]
    fn totals_by_axis() {
        let mut d = DemandMatrix::zeros(2, 2);
        d.set(AppId(0), EdgeId(0), 1);
        d.set(AppId(0), EdgeId(1), 2);
        d.set(AppId(1), EdgeId(0), 4);
        assert_eq!(d.app_total(AppId(0)), 3);
        assert_eq!(d.edge_total(EdgeId(0)), 5);
    }

    #[test]
    fn from_trace_slices_one_slot() {
        let mut t = Trace::zeros(2, 1, 2);
        t.set_demand(1, AppId(0), EdgeId(1), 9);
        let d = DemandMatrix::from_trace(&t, 1);
        assert_eq!(d.get(AppId(0), EdgeId(1)), 9);
        let d0 = DemandMatrix::from_trace(&t, 0);
        assert_eq!(d0.total(), 0);
    }
}
