//! The per-slot optimisation problem `P1^t` / `P2^t` (paper Section 4).
//!
//! Decision variables (paper Section 3.1):
//!
//! * `x[k][m] in {0,1}` — deploy model `m` on edge `k` this slot,
//! * `b[k][m] in N` — its batch size,
//! * `y[i][k][k'] in N` — requests of app `i` moved from `k` to `k'`,
//! * `o[i][k] in N` — requests left unserved (carried to the next slot);
//!   the paper's formulation implicitly assumes capacity suffices, the
//!   overflow variable makes the problem always feasible and its penalty
//!   (`> max loss`) guarantees serving is preferred whenever possible.
//!
//! Constraints: flow conservation (Eq. 3), deployment/batch coupling
//! (Eq. 4), batch/arrival balance (Eq. 5), memory (Eq. 6), the
//! Taylor-linearised compute constraint (Eqs. 12, 24, 25) and the
//! network constraint with the `x^{t-1}`-dependent model-transfer term
//! (Eqs. 9, 13, 14).
//!
//! The bilinear objective `Σ loss * x * b` of Eq. 10 collapses to the
//! linear `Σ loss * b` on the feasible set because Eq. 4 forces `b = 0`
//! whenever `x = 0` — the same exact reduction a MIQP solver applies
//! internally (see `birp_solver::Model::linearized_product` for the general
//! machinery, which this builder does not need).

use birp_models::catalog::MAX_BATCH;
use birp_models::{Catalog, EdgeId, ModelId};
use birp_sim::{Deployment, Schedule};
use birp_solver::{
    LinExpr, Model, ModelStatus, Solution, SolverConfig, SolverError, VarId, VarKind,
};
use birp_telemetry as telemetry;
use birp_tir::{linear_coeffs, TirParams};
use serde::{Deserialize, Serialize};

use crate::demand::DemandMatrix;

/// Per-(edge, model) TIR parameter estimates used by the planner.
#[derive(Debug, Clone)]
pub struct TirMatrix {
    num_models: usize,
    params: Vec<TirParams>,
}

impl TirMatrix {
    /// Build from a function of (edge index, model index).
    pub fn from_fn(
        num_edges: usize,
        num_models: usize,
        f: impl Fn(usize, usize) -> TirParams,
    ) -> Self {
        let mut params = Vec::with_capacity(num_edges * num_models);
        for e in 0..num_edges {
            for m in 0..num_models {
                params.push(f(e, m));
            }
        }
        TirMatrix { num_models, params }
    }

    /// The ground truth (for the BIRP-OFF oracle and tests).
    pub fn oracle(catalog: &Catalog) -> Self {
        Self::from_fn(catalog.num_edges(), catalog.num_models(), |e, m| {
            catalog.edges[e].tir_truth[m]
        })
    }

    /// The paper's conservative initialisation for every arm (Eq. 23).
    pub fn initial(catalog: &Catalog) -> Self {
        Self::from_fn(catalog.num_edges(), catalog.num_models(), |_, _| {
            TirParams::paper_initial()
        })
    }

    #[inline]
    pub fn get(&self, e: EdgeId, m: ModelId) -> &TirParams {
        &self.params[e.index() * self.num_models + m.index()]
    }
}

/// Whether the planned schedule executes batched (BIRP family) or serially
/// (the OAEI baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Batch-aware: compute follows the Taylor-linearised TIR model and
    /// batches are capped by the TIR threshold `beta`.
    Batched,
    /// Serial: no batching benefit (`TIR = 1`), per-request memory, batch
    /// variable bounded by `max_serial` only.
    Serial { max_serial: u32 },
}

/// Builder knobs.
#[derive(Debug, Clone)]
pub struct ProblemConfig {
    pub mode: ExecutionMode,
    /// Objective penalty per unserved request; must exceed the worst model
    /// loss (0.49) so that serving always dominates dropping.
    pub drop_penalty: f64,
    /// Quarantine mask (`masked_edges[k] == true` ⇒ edge `k` is excluded):
    /// a masked edge deploys no models, runs no batches, serves nothing
    /// locally and receives no redistributed requests. Its own arrivals may
    /// still ship out or overflow, so the problem stays feasible. `None`
    /// means no edge is masked.
    pub masked_edges: Option<Vec<bool>>,
}

impl Default for ProblemConfig {
    fn default() -> Self {
        ProblemConfig {
            mode: ExecutionMode::Batched,
            drop_penalty: 1.0,
            masked_edges: None,
        }
    }
}

/// What happened to the temporal-reuse candidate a
/// [`SlotProblem::build_with_reuse`] call was given (DESIGN.md §11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReuseOutcome {
    /// The repaired previous-slot schedule beat the LP-guided greedy point
    /// and was installed as the solver's starting incumbent.
    Installed,
    /// The repaired point was feasible but no better than the LP-guided
    /// greedy warm start, which was kept instead.
    NotBetter,
    /// The repair pass produced an infeasible point (defensive check — the
    /// projection is feasible by construction); the greedy warm start was
    /// kept.
    RepairFail,
}

/// Solve statistics surfaced to experiment logs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolveStats {
    pub objective: f64,
    pub gap: f64,
    pub nodes: usize,
    pub optimal: bool,
    /// The solve budget ran out: the schedule decodes the best incumbent,
    /// not a proven (near-)optimum.
    #[serde(default)]
    pub degraded: bool,
    /// Incumbent trajectory `(nodes_solved, objective, gap)` in install
    /// order — the convergence signature surfaced by the per-slot decision
    /// provenance record. Empty for schedules that bypassed branch and
    /// bound (cache hits carry a single synthetic point).
    #[serde(default)]
    pub incumbents: Vec<(u64, f64, f64)>,
}

/// The lowered per-slot problem plus the variable maps needed to decode.
///
/// ## Routing aggregation
///
/// The paper's `y[i][k][k']` tensor only ever enters the constraints as
/// per-edge sums — outbound `Σ_{k'} y[i][k][k']`, arriving
/// `Σ_k y[i][k][k']`, and the network charge on both. The builder therefore
/// lowers three aggregate variables per (app, edge) instead of `K^2` flows:
///
/// * `local[i][k]` — served where generated,
/// * `out[i][k]` — shipped away from `k`,
/// * `inn[i][k]` — received by `k` from elsewhere,
///
/// with a per-app balance `Σ_k out = Σ_k inn`. This shrinks the large-scale
/// problem by ~90 integer variables and is exactly equivalent: `decode`
/// reconstructs a pairwise routing with the same sums (any such routing has
/// identical loss, memory, compute and network behaviour).
pub struct SlotProblem {
    model: Model,
    t: usize,
    num_apps: usize,
    num_edges: usize,
    num_models: usize,
    serial: bool,
    /// Owning app of each model (decode lookup).
    model_app: Vec<birp_models::AppId>,
    x: Vec<Vec<VarId>>,
    b: Vec<Vec<VarId>>,
    local: Vec<Vec<VarId>>,
    out: Vec<Vec<VarId>>,
    inn: Vec<Vec<VarId>>,
    o: Vec<Vec<VarId>>,
    /// Feasible-by-construction warm start (loss-greedy local packing)
    /// computed at build time; branch and bound starts from its objective
    /// as the incumbent cutoff.
    warm: Vec<f64>,
    /// Objective of the root LP relaxation, captured from the warm-start
    /// guide solve (the dual bound any integer point is certified against).
    root_obj: Option<f64>,
    /// Outcome of the temporal-reuse repair pass, when one ran.
    reuse_outcome: Option<ReuseOutcome>,
    /// Objective coefficient per variable (point-evaluation without
    /// re-lowering the model).
    obj_coeffs: Vec<f64>,
}

impl SlotProblem {
    /// Lower the slot-`t` problem. `prev` supplies `x^{t-1}` (Eqs. 13/14);
    /// `tir` supplies the `(eta, beta)` estimates of Eq. 12.
    pub fn build(
        catalog: &Catalog,
        t: usize,
        demand: &DemandMatrix,
        tir: &TirMatrix,
        prev: Option<&Schedule>,
        cfg: &ProblemConfig,
    ) -> SlotProblem {
        Self::build_with_reuse(catalog, t, demand, tir, prev, cfg, None)
    }

    /// [`build`](Self::build), plus a temporal-reuse candidate: `reuse` is
    /// the previous slot's executed schedule, repaired onto this slot's
    /// constraints (current demand, masks and TIR estimates) by replaying
    /// its routing/deployment structure through the same budget-disciplined
    /// packing that produces the greedy warm start. Whichever point is
    /// better becomes the installed incumbent; [`reuse_outcome`]
    /// (Self::reuse_outcome) reports what happened.
    pub fn build_with_reuse(
        catalog: &Catalog,
        t: usize,
        demand: &DemandMatrix,
        tir: &TirMatrix,
        prev: Option<&Schedule>,
        cfg: &ProblemConfig,
        reuse: Option<&Schedule>,
    ) -> SlotProblem {
        Self::build_inner(catalog, t, demand, tir, prev, cfg, reuse, true)
    }

    /// [`build_with_reuse`](Self::build_with_reuse) without the guide-LP
    /// solve. The heuristic-regime skip path (DESIGN.md §11) only needs the
    /// repaired candidate checked against current-slot feasibility and the
    /// greedy warm floor — paying for the root relaxation on a slot that
    /// will never run branch and bound is pure overhead. The floor here is
    /// the *unguided* greedy packing and [`root_bound`](Self::root_bound)
    /// is `None`, so certification-based paths are unavailable on a lean
    /// problem; callers that end up solving must rebuild with
    /// [`build_with_reuse`](Self::build_with_reuse).
    pub fn build_reuse_lean(
        catalog: &Catalog,
        t: usize,
        demand: &DemandMatrix,
        tir: &TirMatrix,
        prev: Option<&Schedule>,
        cfg: &ProblemConfig,
        reuse: Option<&Schedule>,
    ) -> SlotProblem {
        Self::build_inner(catalog, t, demand, tir, prev, cfg, reuse, false)
    }

    #[allow(clippy::too_many_arguments)]
    fn build_inner(
        catalog: &Catalog,
        t: usize,
        demand: &DemandMatrix,
        tir: &TirMatrix,
        prev: Option<&Schedule>,
        cfg: &ProblemConfig,
        reuse: Option<&Schedule>,
        guide_lp: bool,
    ) -> SlotProblem {
        let _build_span = telemetry::span("problem.build");
        let na = catalog.num_apps();
        let ne = catalog.num_edges();
        let nm = catalog.num_models();
        let mut model = Model::new();

        let serial = matches!(cfg.mode, ExecutionMode::Serial { .. });
        let batch_cap = |e: usize, m: usize| -> u32 {
            match cfg.mode {
                ExecutionMode::Batched => tir.get(EdgeId(e), ModelId(m)).beta.clamp(1, MAX_BATCH),
                ExecutionMode::Serial { max_serial } => max_serial.max(1),
            }
        };

        // --- variables ----------------------------------------------------
        let x: Vec<Vec<VarId>> = (0..ne)
            .map(|e| {
                (0..nm)
                    .map(|m| model.add_binary(&format!("x[{e}][{m}]"), 0.0))
                    .collect()
            })
            .collect();
        let b: Vec<Vec<VarId>> = (0..ne)
            .map(|e| {
                (0..nm)
                    .map(|m| {
                        model.add_var(
                            &format!("b[{e}][{m}]"),
                            VarKind::Integer,
                            0.0,
                            batch_cap(e, m) as f64,
                            catalog.models[m].loss, // objective: loss * b
                        )
                    })
                    .collect()
            })
            .collect();
        let app_total = |i: usize| -> f64 {
            (0..ne)
                .map(|k| demand.get(birp_models::AppId(i), EdgeId(k)) as u64)
                .sum::<u64>() as f64
        };
        let mut local = Vec::with_capacity(na);
        let mut out = Vec::with_capacity(na);
        let mut inn = Vec::with_capacity(na);
        for i in 0..na {
            let total = app_total(i);
            let mut l_row = Vec::with_capacity(ne);
            let mut o_row = Vec::with_capacity(ne);
            let mut i_row = Vec::with_capacity(ne);
            for k in 0..ne {
                let supply = demand.get(birp_models::AppId(i), EdgeId(k)) as f64;
                l_row.push(model.add_var(
                    &format!("local[{i}][{k}]"),
                    VarKind::Integer,
                    0.0,
                    supply,
                    0.0,
                ));
                o_row.push(model.add_var(
                    &format!("out[{i}][{k}]"),
                    VarKind::Integer,
                    0.0,
                    supply,
                    0.0,
                ));
                i_row.push(model.add_var(
                    &format!("in[{i}][{k}]"),
                    VarKind::Integer,
                    0.0,
                    total,
                    0.0,
                ));
            }
            local.push(l_row);
            out.push(o_row);
            inn.push(i_row);
        }
        let o: Vec<Vec<VarId>> = (0..na)
            .map(|i| {
                (0..ne)
                    .map(|k| {
                        let supply = demand.get(birp_models::AppId(i), EdgeId(k));
                        model.add_var(
                            &format!("o[{i}][{k}]"),
                            VarKind::Integer,
                            0.0,
                            supply as f64,
                            cfg.drop_penalty,
                        )
                    })
                    .collect()
            })
            .collect();

        // --- quarantine mask -----------------------------------------------
        // A masked edge hosts nothing and receives nothing; its own supply
        // keeps `out`/`o` open so the flow rows stay feasible.
        let masked = |k: usize| -> bool {
            cfg.masked_edges
                .as_ref()
                .is_some_and(|m| m.get(k).copied().unwrap_or(false))
        };
        for e in (0..ne).filter(|&e| masked(e)) {
            for m in 0..nm {
                model.set_bounds(x[e][m], 0.0, 0.0);
                model.set_bounds(b[e][m], 0.0, 0.0);
            }
            for i in 0..na {
                model.set_bounds(local[i][e], 0.0, 0.0);
                model.set_bounds(inn[i][e], 0.0, 0.0);
            }
        }

        // --- Eq. 3: flow conservation + overflow ---------------------------
        // local + out + o = r per (app, edge).
        for i in 0..na {
            for k in 0..ne {
                let supply = demand.get(birp_models::AppId(i), EdgeId(k));
                let expr = local[i][k] + out[i][k] + o[i][k];
                model.add_eq(&format!("flow[{i}][{k}]"), expr, supply as f64);
            }
        }

        // Per-app routing balance: everything shipped is received somewhere.
        for i in 0..na {
            let expr = LinExpr::sum(out[i].iter().copied()) - LinExpr::sum(inn[i].iter().copied());
            model.add_eq(&format!("balance[{i}]"), expr, 0.0);
        }

        // --- Eq. 4: deployment/batch coupling ------------------------------
        // Only `b <= cap * x` is lowered; the paper's `b >= x` merely forbids
        // idle deployments (x = 1, b = 0), which are weakly dominated and
        // pruned at decode time — dropping the row halves the coupling
        // constraints.
        for e in 0..ne {
            for m in 0..nm {
                let cap = batch_cap(e, m) as f64;
                model.add_le(
                    &format!("cap[{e}][{m}]"),
                    LinExpr::term(b[e][m], 1.0) - LinExpr::term(x[e][m], cap),
                    0.0,
                );
            }
        }

        // --- Eq. 5: batches equal arriving workload ------------------------
        // Σ_j b[k][j of app i] = local[i][k] + in[i][k].
        for i in 0..na {
            for k in 0..ne {
                let mut expr = LinExpr::new();
                for &m in catalog.models_of(birp_models::AppId(i)) {
                    expr.add_term(b[k][m.index()], 1.0);
                }
                expr.add_term(local[i][k], -1.0);
                expr.add_term(inn[i][k], -1.0);
                model.add_eq(&format!("serve[{i}][{k}]"), expr, 0.0);
            }
        }

        // --- Eq. 6: memory --------------------------------------------------
        for e in 0..ne {
            let mut expr = LinExpr::new();
            for m in 0..nm {
                let mv = &catalog.models[m];
                if serial {
                    // One request's intermediates at a time.
                    expr.add_term(x[e][m], mv.weight_mb + mv.intermediate_mb);
                } else {
                    expr.add_term(x[e][m], mv.weight_mb);
                    expr.add_term(b[e][m], mv.intermediate_mb);
                }
            }
            model.add_le(&format!("mem[{e}]"), expr, catalog.edges[e].memory_mb);
        }

        // --- Eqs. 12/24/25: compute -----------------------------------------
        for e in 0..ne {
            let mut expr = LinExpr::new();
            for m in 0..nm {
                let gamma = catalog.edges[e].gamma_ms[m];
                match cfg.mode {
                    ExecutionMode::Batched => {
                        // x * h(b) = gamma[(1-eta) b + eta x] using x*b = b.
                        let eta = tir.get(EdgeId(e), ModelId(m)).eta;
                        let (slope, intercept) = linear_coeffs(gamma, eta);
                        expr.add_term(b[e][m], slope);
                        expr.add_term(x[e][m], intercept);
                    }
                    ExecutionMode::Serial { .. } => {
                        expr.add_term(b[e][m], gamma);
                    }
                }
            }
            model.add_le(&format!("compute[{e}]"), expr, catalog.slot_ms);
        }

        // --- Eqs. 9/13/14: network -------------------------------------------
        for k in 0..ne {
            let mut expr = LinExpr::new();
            for i in 0..na {
                let zeta = catalog.apps[i].request_mb;
                expr.add_term(out[i][k], zeta);
                expr.add_term(inn[i][k], zeta);
            }
            for (m, &xkm) in x[k].iter().enumerate() {
                let was = prev.is_some_and(|p| p.is_deployed(EdgeId(k), ModelId(m)));
                if !was {
                    // [x^t - x^{t-1}]^+ = x^t when x^{t-1} = 0, else 0.
                    expr.add_term(xkm, catalog.models[m].compressed_mb);
                }
            }
            model.add_le(
                &format!("net[{k}]"),
                expr,
                catalog.edges[k].network_budget_mb,
            );
        }

        // --- warm start: LP-guided greedy packing with redistribution -------
        // The LP relaxation knows the right *structure* (which models carry
        // which cell's traffic, what ships where); the greedy `place()`
        // machinery adds the integrality and budget discipline the LP
        // lacks. Pass 1 serves locally following the LP's local shares and
        // model preferences, pass 2 ships leftovers to the LP's preferred
        // receivers, pass 3 mops up anywhere with spare compute. Feasible
        // by construction — the incumbent cutoff branch and bound starts
        // from.
        let lp_root = if guide_lp {
            let _guide_span = telemetry::span("problem.guide_lp");
            model
                .solve_relaxation()
                .ok()
                .filter(|s| s.status == birp_solver::LpStatus::Optimal)
        } else {
            None
        };
        let root_obj = lp_root.as_ref().map(|s| s.objective);
        let lp_guide: Option<Vec<f64>> = lp_root.map(|s| s.x);
        // Guide-driven packing, shared by the LP warm start and the
        // temporal-reuse repair pass: the guide says which models should
        // carry which cell's traffic and what ships where; the passes add
        // the integrality and budget discipline, so the result is feasible
        // by construction whatever the guide.
        let build_packed = |guide_vec: Option<&Vec<f64>>| -> Vec<f64> {
            let mut warm = vec![0.0; model.num_vars()];
            let guide = |v: VarId| -> f64 { guide_vec.map_or(0.0, |g| g[v.index()]) };
            let mut mem_left: Vec<f64> = catalog.edges.iter().map(|e| e.memory_mb).collect();
            let mut compute_left = vec![catalog.slot_ms; ne];
            let mut net_left: Vec<f64> =
                catalog.edges.iter().map(|e| e.network_budget_mb).collect();
            let mut batches = vec![vec![0u32; nm]; ne];

            // Place up to `want` requests of `app` on edge `k`; returns the
            // number placed. Most accurate (lowest loss) versions first.
            let place = |k: usize,
                         app: birp_models::AppId,
                         want: u32,
                         mem_left: &mut [f64],
                         compute_left: &mut [f64],
                         net_left: &mut [f64],
                         batches: &mut [Vec<u32>]|
             -> u32 {
                if masked(k) {
                    return 0;
                }
                let mut left = want;
                // LP-preferred models first (largest fractional batch),
                // then by accuracy.
                let mut order: Vec<ModelId> = catalog.models_of(app).to_vec();
                order.sort_by(|ma, mb| {
                    let ga = guide(b[k][ma.index()]);
                    let gb = guide(b[k][mb.index()]);
                    gb.partial_cmp(&ga).unwrap().then_with(|| {
                        catalog
                            .model(*ma)
                            .loss
                            .partial_cmp(&catalog.model(*mb).loss)
                            .unwrap()
                    })
                });
                for mid in order {
                    let m = mid.index();
                    let mv = &catalog.models[m];
                    let cap = batch_cap(k, m);
                    let gamma = catalog.edges[k].gamma_ms[m];
                    while left > 0 && batches[k][m] < cap {
                        let fresh = batches[k][m] == 0;
                        let (dc, dm);
                        match cfg.mode {
                            ExecutionMode::Batched => {
                                let eta = tir.get(EdgeId(k), ModelId(m)).eta;
                                let (slope, intercept) = linear_coeffs(gamma, eta);
                                dc = slope + if fresh { intercept } else { 0.0 };
                                dm = if fresh {
                                    mv.weight_mb + mv.intermediate_mb
                                } else {
                                    mv.intermediate_mb
                                };
                            }
                            ExecutionMode::Serial { .. } => {
                                dc = gamma;
                                dm = if fresh {
                                    mv.weight_mb + mv.intermediate_mb
                                } else {
                                    0.0
                                };
                            }
                        }
                        let dn = if fresh && !prev.is_some_and(|p| p.is_deployed(EdgeId(k), mid)) {
                            mv.compressed_mb
                        } else {
                            0.0
                        };
                        if dc <= compute_left[k] && dm <= mem_left[k] && dn <= net_left[k] {
                            compute_left[k] -= dc;
                            mem_left[k] -= dm;
                            net_left[k] -= dn;
                            batches[k][m] += 1;
                            left -= 1;
                        } else {
                            break;
                        }
                    }
                }
                want - left
            };

            // Pass 1: local service, following the LP's local share for the
            // cell (leave the LP's shipped share for pass 2, so receiving
            // edges' capacity is not consumed by greedy local overreach).
            let mut leftover = vec![vec![0u32; ne]; na];
            for k in 0..ne {
                for i in 0..na {
                    let app = birp_models::AppId(i);
                    let d = demand.get(app, EdgeId(k));
                    let want = if guide_vec.is_some() {
                        d.min((guide(local[i][k]) + 0.999).floor() as u32)
                    } else {
                        d
                    };
                    let served = place(
                        k,
                        app,
                        want,
                        &mut mem_left,
                        &mut compute_left,
                        &mut net_left,
                        &mut batches,
                    );
                    warm[local[i][k].index()] = served as f64;
                    leftover[i][k] = d - served;
                }
            }

            // Pass 2 ships leftovers to the LP's preferred receivers; pass 3
            // retries everything left: more local service, then any edge
            // with spare compute.
            for pass in [2, 3] {
                for i in 0..na {
                    let app = birp_models::AppId(i);
                    let zeta = catalog.apps[i].request_mb;
                    for src in 0..ne {
                        if pass == 3 && leftover[i][src] > 0 {
                            // Extra local service beyond the LP's share.
                            let extra = place(
                                src,
                                app,
                                leftover[i][src],
                                &mut mem_left,
                                &mut compute_left,
                                &mut net_left,
                                &mut batches,
                            );
                            warm[local[i][src].index()] += extra as f64;
                            leftover[i][src] -= extra;
                        }
                        while leftover[i][src] > 0 {
                            let mut order: Vec<usize> = (0..ne).filter(|&d| d != src).collect();
                            if pass == 2 {
                                // LP's receivers first.
                                order.sort_by(|&a, &c| {
                                    guide(inn[i][c]).partial_cmp(&guide(inn[i][a])).unwrap()
                                });
                            } else {
                                order.sort_by(|&a, &c| {
                                    compute_left[c].partial_cmp(&compute_left[a]).unwrap()
                                });
                            }
                            let mut moved_any = false;
                            for dest in order {
                                if pass == 2 && guide(inn[i][dest]) < 0.5 {
                                    continue; // not an LP receiver
                                }
                                let net_cap = ((net_left[src] / zeta).min(net_left[dest] / zeta))
                                    .floor()
                                    .max(0.0) as u32;
                                let block = leftover[i][src].min(net_cap);
                                if block == 0 {
                                    continue;
                                }
                                // Reserve the forwarding budget before
                                // placing: `place` may also spend
                                // `net_left[dest]` on a fresh model transfer,
                                // and deducting the forwarding cost only
                                // afterwards let the two overdraw the edge's
                                // network budget (making the "feasible by
                                // construction" warm start infeasible).
                                let reserve = zeta * block as f64;
                                net_left[src] -= reserve;
                                net_left[dest] -= reserve;
                                let placed = place(
                                    dest,
                                    app,
                                    block,
                                    &mut mem_left,
                                    &mut compute_left,
                                    &mut net_left,
                                    &mut batches,
                                );
                                let refund = zeta * (block - placed) as f64;
                                net_left[src] += refund;
                                net_left[dest] += refund;
                                if placed > 0 {
                                    warm[out[i][src].index()] += placed as f64;
                                    warm[inn[i][dest].index()] += placed as f64;
                                    leftover[i][src] -= placed;
                                    moved_any = true;
                                    break;
                                }
                            }
                            if !moved_any {
                                break;
                            }
                        }
                        if pass == 3 {
                            warm[o[i][src].index()] = leftover[i][src] as f64;
                        }
                    }
                }
            }

            for k in 0..ne {
                for m in 0..nm {
                    if batches[k][m] > 0 {
                        warm[x[k][m].index()] = 1.0;
                        warm[b[k][m].index()] = batches[k][m] as f64;
                    }
                }
            }
            warm
        };
        let mut warm = build_packed(lp_guide.as_ref());

        // Point objective without re-lowering: `Σ loss·b + penalty·o` (the
        // only variables with objective coefficients).
        let obj_coeffs: Vec<f64> = {
            let mut c = vec![0.0; model.num_vars()];
            for e in 0..ne {
                for m in 0..nm {
                    c[b[e][m].index()] = catalog.models[m].loss;
                }
            }
            for row in &o {
                for &ov in row {
                    c[ov.index()] = cfg.drop_penalty;
                }
            }
            c
        };
        let point_obj = |p: &[f64]| -> f64 { obj_coeffs.iter().zip(p).map(|(&c, &v)| c * v).sum() };

        // --- temporal reuse: repair the previous schedule into a candidate -
        // Encode the reused schedule into this slot's variable space and
        // run it through the same packing passes: stale structure (masked
        // edges, shrunken batch caps, vanished demand) is projected onto
        // the current constraints instead of carried over verbatim.
        let mut reuse_outcome = None;
        if let Some(reused) = reuse.filter(|r| r.serial == serial) {
            let mut g = vec![0.0; model.num_vars()];
            for (e, ds) in reused.deployments.iter().enumerate().take(ne) {
                for d in ds {
                    let m = d.model.index();
                    if m < nm {
                        g[x[e][m].index()] = 1.0;
                        g[b[e][m].index()] += d.batch as f64;
                    }
                }
            }
            for i in 0..na.min(reused.unserved.len()) {
                let app = birp_models::AppId(i);
                for src in 0..ne {
                    for dst in 0..ne {
                        let r = reused.routing.get(app, EdgeId(src), EdgeId(dst)) as f64;
                        if r == 0.0 {
                            continue;
                        }
                        if src == dst {
                            g[local[i][src].index()] += r;
                        } else {
                            g[out[i][src].index()] += r;
                            g[inn[i][dst].index()] += r;
                        }
                    }
                }
            }
            let temporal = build_packed(Some(&g));
            let violation = model.max_violation(&temporal);
            reuse_outcome = Some(if violation >= 1e-6 {
                ReuseOutcome::RepairFail
            } else if point_obj(&temporal) <= point_obj(&warm) + 1e-12 {
                warm = temporal;
                ReuseOutcome::Installed
            } else {
                ReuseOutcome::NotBetter
            });
        }

        SlotProblem {
            model,
            t,
            num_apps: na,
            num_edges: ne,
            num_models: nm,
            serial,
            model_app: catalog.models.iter().map(|m| m.app).collect(),
            x,
            b,
            local,
            out,
            inn,
            o,
            warm,
            root_obj,
            reuse_outcome,
            obj_coeffs,
        }
    }

    pub fn num_vars(&self) -> usize {
        self.model.num_vars()
    }

    pub fn num_constraints(&self) -> usize {
        self.model.num_constraints()
    }

    /// What the temporal-reuse repair pass did (`None` when
    /// [`build`](Self::build) ran without a reuse candidate).
    pub fn reuse_outcome(&self) -> Option<ReuseOutcome> {
        self.reuse_outcome
    }

    /// Objective of the root LP relaxation — a lower bound on every
    /// feasible integer point. `None` when the guide LP failed.
    pub fn root_bound(&self) -> Option<f64> {
        self.root_obj
    }

    /// Direct (un-repaired) encoding of a schedule into this problem's
    /// variable space. No projection is applied: a schedule built for a
    /// different slot state encodes verbatim and will fail
    /// [`violation_at`](Self::violation_at) — exactly how stale cache
    /// entries are caught.
    pub fn encode_schedule(&self, s: &Schedule) -> Vec<f64> {
        let mut p = vec![0.0; self.model.num_vars()];
        for (e, ds) in s.deployments.iter().enumerate().take(self.num_edges) {
            for d in ds {
                let m = d.model.index();
                if m < self.num_models {
                    p[self.x[e][m].index()] = 1.0;
                    p[self.b[e][m].index()] += d.batch as f64;
                }
            }
        }
        for i in 0..self.num_apps {
            let app = birp_models::AppId(i);
            for src in 0..self.num_edges {
                for dst in 0..self.num_edges {
                    let r = s.routing.get(app, EdgeId(src), EdgeId(dst)) as f64;
                    if r == 0.0 {
                        continue;
                    }
                    if src == dst {
                        p[self.local[i][src].index()] += r;
                    } else {
                        p[self.out[i][src].index()] += r;
                        p[self.inn[i][dst].index()] += r;
                    }
                }
            }
            for (k, &u) in s
                .unserved
                .get(i)
                .map_or(&[][..], |row| row)
                .iter()
                .enumerate()
            {
                if k < self.num_edges {
                    p[self.o[i][k].index()] = u as f64;
                }
            }
        }
        p
    }

    /// Objective value of a point in this problem's variable space.
    pub fn point_objective(&self, p: &[f64]) -> f64 {
        self.obj_coeffs.iter().zip(p).map(|(&c, &v)| c * v).sum()
    }

    /// Maximum constraint/bound violation at a point (0 = feasible).
    pub fn violation_at(&self, p: &[f64]) -> f64 {
        self.model.max_violation(p)
    }

    /// Certify a candidate schedule against this problem without solving
    /// it: the direct encoding must be feasible here, and its objective
    /// must sit within relative tolerance `tol` of the LP root bound — the
    /// same `(objective - bound) / max(1, |objective|)` criterion branch
    /// and bound terminates on. On success returns `(objective, gap)`;
    /// `None` means the candidate is stale or not provably good enough and
    /// the caller must solve.
    pub fn certify_schedule(&self, s: &Schedule, tol: f64) -> Option<(f64, f64)> {
        let root = self.root_obj?;
        let p = self.encode_schedule(s);
        if self.model.max_violation(&p) >= 1e-6 {
            return None;
        }
        let obj = self.point_objective(&p);
        let gap = (obj - root).max(0.0) / obj.abs().max(1.0);
        (gap <= tol + 1e-12).then_some((obj, gap))
    }

    /// Certify the already-built warm-start point against the LP root
    /// bound and, on success, decode it into a schedule without running
    /// branch and bound at all. This is the incumbent-skip lever of the
    /// temporal-reuse layer (DESIGN.md §11): when slot `t-1`'s repaired
    /// schedule is already within the solver's own termination gap of the
    /// root bound, any branch and bound run would accept it and stop — so
    /// the search is pure overhead. Returns `None` when the warm point is
    /// not provably good enough (the caller must solve) or the root LP
    /// failed.
    pub fn certified_warm(&self, tol: f64) -> Option<(Schedule, SolveStats)> {
        let root = self.root_obj?;
        if self.model.max_violation(&self.warm) >= 1e-6 {
            return None;
        }
        let obj = self.point_objective(&self.warm);
        let gap = (obj - root).max(0.0) / obj.abs().max(1.0);
        if gap > tol + 1e-12 {
            return None;
        }
        let sol = Solution {
            status: ModelStatus::Optimal,
            objective: obj,
            values: self.warm.clone(),
            bound: root,
            gap,
            nodes: 0,
            degraded: false,
            incumbents: vec![(0, obj, gap)],
        };
        let stats = SolveStats {
            objective: obj,
            gap,
            nodes: 0,
            optimal: true,
            degraded: false,
            incumbents: vec![(0, obj, gap)],
        };
        Some((self.decode(&sol), stats))
    }

    /// Decode the built warm-start point into a schedule *without* running
    /// branch and bound or certifying anything: the greedy packing, improved
    /// by the repaired previous-slot schedule whenever that carried a lower
    /// objective ([`ReuseOutcome::Installed`]). This point is feasible by
    /// construction and is exactly the floor a budget-exhausted
    /// branch-and-bound run falls back to, which is why the heuristic-regime
    /// skip path (DESIGN.md §11) may serve it while the solver is returning
    /// degraded incumbents anyway. The returned stats carry the honest
    /// (possibly large, or unbounded on a lean build) gap against the LP
    /// root bound and are never marked optimal — this is a floor, not a
    /// proof.
    pub fn warm_schedule(&self) -> (Schedule, SolveStats) {
        let obj = self.point_objective(&self.warm);
        let gap = self.root_obj.map_or(f64::INFINITY, |root| {
            (obj - root).max(0.0) / obj.abs().max(1.0)
        });
        let sol = Solution {
            status: ModelStatus::Feasible,
            objective: obj,
            values: self.warm.clone(),
            bound: self.root_obj.unwrap_or(f64::NEG_INFINITY),
            gap,
            nodes: 0,
            degraded: false,
            incumbents: vec![(0, obj, gap)],
        };
        let stats = SolveStats {
            objective: obj,
            gap,
            nodes: 0,
            optimal: false,
            degraded: false,
            incumbents: vec![(0, obj, gap)],
        };
        (self.decode(&sol), stats)
    }

    /// Solve and decode into a schedule. The loss-greedy warm start built
    /// alongside the model guarantees branch and bound always holds a
    /// usable incumbent, even under the tightest node budgets.
    pub fn solve(&self, solver_cfg: &SolverConfig) -> Result<(Schedule, SolveStats), SolverError> {
        let sol = self.model.solve_warm(solver_cfg, Some(self.warm.clone()))?;
        let stats = SolveStats {
            objective: sol.objective,
            gap: sol.gap,
            nodes: sol.nodes,
            optimal: sol.status == ModelStatus::Optimal,
            degraded: sol.degraded,
            incumbents: sol.incumbents.clone(),
        };
        Ok((self.decode(&sol), stats))
    }

    /// Fractional deployment variables of the LP relaxation — the input to
    /// OAEI's randomised rounding.
    pub fn relaxation_x(&self) -> Result<Vec<Vec<f64>>, SolverError> {
        let lp = self.model.solve_relaxation()?;
        match lp.status {
            birp_solver::LpStatus::Optimal => Ok((0..self.num_edges)
                .map(|e| {
                    (0..self.num_models)
                        .map(|m| lp.x[self.x[e][m].index()])
                        .collect()
                })
                .collect()),
            birp_solver::LpStatus::Infeasible => Err(SolverError::Infeasible),
            birp_solver::LpStatus::Unbounded => Err(SolverError::Unbounded),
        }
    }

    /// Solve with the deployment variables pinned to `fixed` (OAEI's second
    /// stage after rounding).
    pub fn solve_with_fixed_x(
        &self,
        fixed: &[Vec<bool>],
        solver_cfg: &SolverConfig,
    ) -> Result<(Schedule, SolveStats), SolverError> {
        let mut pinned = self.model.clone();
        // Warm start consistent with the pinned deployments: serve nothing,
        // overflow everything (valid whenever the pinned deployments fit in
        // memory/network on their own; if they do not, the pinned problem
        // is infeasible and the caller's fallback path takes over).
        let mut warm = vec![0.0; pinned.num_vars()];
        for e in 0..self.num_edges {
            for m in 0..self.num_models {
                let v = if fixed[e][m] { 1.0 } else { 0.0 };
                pinned.set_bounds(self.x[e][m], v, v);
                warm[self.x[e][m].index()] = v;
            }
        }
        for row in &self.o {
            for &ov in row {
                warm[ov.index()] = pinned.bounds(ov).1;
            }
        }
        let sol = pinned.solve_warm(solver_cfg, Some(warm))?;
        let stats = SolveStats {
            objective: sol.objective,
            gap: sol.gap,
            nodes: sol.nodes,
            optimal: sol.status == ModelStatus::Optimal,
            degraded: sol.degraded,
            incumbents: sol.incumbents.clone(),
        };
        Ok((self.decode(&sol), stats))
    }

    /// Translate a solver point into a [`Schedule`].
    ///
    /// Deployments with `x = 1, b = 0` are pruned (see the Eq. 4 note in
    /// `build`). The aggregate `local/out/in` solution is expanded into a
    /// concrete pairwise routing: same-edge out/in pairs are first cancelled
    /// into local service (never worse — it only releases network budget),
    /// then sources and sinks are matched greedily in index order. Any such
    /// matching realises exactly the aggregate sums the constraints were
    /// enforced on.
    pub fn decode(&self, sol: &Solution) -> Schedule {
        let mut schedule = Schedule::empty(self.t, self.num_apps, self.num_edges);
        schedule.serial = self.serial;
        for e in 0..self.num_edges {
            for m in 0..self.num_models {
                let deployed = sol.int_value(self.x[e][m]) == 1;
                let batch = sol.int_value(self.b[e][m]).max(0) as u32;
                if deployed && batch > 0 {
                    schedule.deployments[e].push(Deployment {
                        app: self.model_app[m],
                        model: ModelId(m),
                        batch,
                    });
                }
            }
        }
        for i in 0..self.num_apps {
            let app = birp_models::AppId(i);
            let ne = self.num_edges;
            let mut local: Vec<i64> = (0..ne)
                .map(|k| sol.int_value(self.local[i][k]).max(0))
                .collect();
            let mut out: Vec<i64> = (0..ne)
                .map(|k| sol.int_value(self.out[i][k]).max(0))
                .collect();
            let mut inn: Vec<i64> = (0..ne)
                .map(|k| sol.int_value(self.inn[i][k]).max(0))
                .collect();

            // Cancel same-edge ship-and-receive into local service.
            for k in 0..ne {
                let c = out[k].min(inn[k]);
                if c > 0 {
                    local[k] += c;
                    out[k] -= c;
                    inn[k] -= c;
                }
            }
            for (k, &lk) in local.iter().enumerate() {
                if lk > 0 {
                    schedule.routing.set(app, EdgeId(k), EdgeId(k), lk as u32);
                }
                schedule.unserved[i][k] = sol.int_value(self.o[i][k]).max(0) as u32;
            }
            // Greedy source/sink matching (disjoint after cancellation).
            // Indexing is clearer than iterators here: `out`/`inn` advance
            // on different cursors and are both mutated.
            let mut sink = 0usize;
            #[allow(clippy::needless_range_loop)]
            for src in 0..ne {
                while out[src] > 0 {
                    while sink < ne && inn[sink] == 0 {
                        sink += 1;
                    }
                    if sink >= ne {
                        break; // sums matched by the balance row; defensive
                    }
                    let amount = out[src].min(inn[sink]);
                    schedule
                        .routing
                        .add(app, EdgeId(src), EdgeId(sink), amount as u32);
                    out[src] -= amount;
                    inn[sink] -= amount;
                }
            }
        }
        schedule
    }
}

impl SlotProblem {
    /// Debug-only: the lowered MILP (used by diagnostics examples).
    pub fn debug_milp(&self) -> birp_solver::MilpProblem {
        self.model.to_milp().unwrap()
    }

    /// Debug-only: warm-start objective and max violation.
    pub fn debug_warm(&self) -> (f64, f64) {
        let milp = self.model.to_milp().unwrap();
        (
            milp.lp.objective_at(&self.warm),
            milp.lp.max_violation(&self.warm),
        )
    }

    /// Debug-only: named rows and column bounds the warm start violates by
    /// more than `tol`, as `(name, violation)` pairs.
    pub fn debug_warm_violations(&self, tol: f64) -> Vec<(String, f64)> {
        let milp = self.model.to_milp().unwrap();
        let named = self.model.num_constraints();
        let mut out = Vec::new();
        for (i, row) in milp.lp.rows.iter().enumerate() {
            let v = row.violation(&self.warm);
            if v > tol {
                let name = if i < named {
                    self.model.constraint_name(i).to_string()
                } else {
                    format!("row{i}")
                };
                out.push((name, v));
            }
        }
        for j in 0..milp.lp.num_cols() {
            let w = self.warm[j];
            let v = (milp.lp.lower[j] - w).max(w - milp.lp.upper[j]);
            if v > tol {
                out.push((
                    format!("bound:{}", self.model.var_name(VarId::from_index(j))),
                    v,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use birp_models::AppId;
    use birp_sim::schedule::validate_against_trace;
    use birp_workload::Trace;

    fn demand_of(catalog: &Catalog, cells: &[(usize, usize, u32)]) -> DemandMatrix {
        let mut d = DemandMatrix::zeros(catalog.num_apps(), catalog.num_edges());
        for &(i, k, v) in cells {
            d.set(AppId(i), EdgeId(k), v);
        }
        d
    }

    fn trace_of(catalog: &Catalog, t: usize, d: &DemandMatrix) -> Trace {
        let mut tr = Trace::zeros(t + 1, catalog.num_apps(), catalog.num_edges());
        for i in 0..catalog.num_apps() {
            for k in 0..catalog.num_edges() {
                tr.set_demand(t, AppId(i), EdgeId(k), d.get(AppId(i), EdgeId(k)));
            }
        }
        tr
    }

    #[test]
    fn batched_problem_serves_everything_under_light_load() {
        let catalog = Catalog::small_scale(42);
        let demand = demand_of(&catalog, &[(0, 0, 6), (0, 3, 4)]);
        let tir = TirMatrix::oracle(&catalog);
        let p = SlotProblem::build(&catalog, 0, &demand, &tir, None, &ProblemConfig::default());
        let (schedule, stats) = p.solve(&SolverConfig::default()).unwrap();
        assert_eq!(
            schedule.total_unserved(),
            0,
            "light load must be fully served"
        );
        assert_eq!(schedule.served(), 10);
        assert!(stats.objective > 0.0);
        // The decoded schedule satisfies every structural constraint.
        let trace = trace_of(&catalog, 0, &demand);
        validate_against_trace(&catalog, &trace, &schedule, None).unwrap();
    }

    #[test]
    fn light_load_prefers_accurate_models() {
        // With tiny demand and ample compute, the lowest-loss model should
        // carry the traffic.
        let catalog = Catalog::small_scale(42);
        let demand = demand_of(&catalog, &[(0, 0, 2)]);
        let tir = TirMatrix::oracle(&catalog);
        let p = SlotProblem::build(&catalog, 0, &demand, &tir, None, &ProblemConfig::default());
        let (schedule, _) = p.solve(&SolverConfig::default()).unwrap();
        let best_loss = catalog
            .models
            .iter()
            .map(|m| m.loss)
            .fold(f64::INFINITY, f64::min);
        let expected = best_loss * 2.0;
        assert!(
            (schedule.loss(&catalog) - expected).abs() < 1e-6,
            "loss {} vs expected {expected}",
            schedule.loss(&catalog)
        );
    }

    #[test]
    fn heavy_load_spills_to_other_edges_or_overflow() {
        let catalog = Catalog::small_scale(42);
        // Far beyond one edge's capacity: must redistribute.
        let demand = demand_of(&catalog, &[(0, 2, 40)]);
        let tir = TirMatrix::oracle(&catalog);
        let p = SlotProblem::build(&catalog, 0, &demand, &tir, None, &ProblemConfig::default());
        let (schedule, _) = p.solve(&SolverConfig::scheduling()).unwrap();
        let moved: u32 = (0..catalog.num_edges())
            .filter(|&k2| k2 != 2)
            .map(|k2| schedule.routing.get(AppId(0), EdgeId(2), EdgeId(k2)))
            .sum();
        assert!(moved > 0, "expected redistribution away from the hot edge");
        let trace = trace_of(&catalog, 0, &demand);
        validate_against_trace(&catalog, &trace, &schedule, None).unwrap();
    }

    #[test]
    fn batch_sizes_respect_beta_estimates() {
        let catalog = Catalog::small_scale(42);
        let demand = demand_of(&catalog, &[(0, 0, 30)]);
        // Pessimistic estimates: beta = 2 everywhere.
        let tir = TirMatrix::from_fn(catalog.num_edges(), catalog.num_models(), |_, _| {
            TirParams::consistent(0.2, 2)
        });
        let p = SlotProblem::build(&catalog, 0, &demand, &tir, None, &ProblemConfig::default());
        let (schedule, _) = p.solve(&SolverConfig::scheduling()).unwrap();
        for d in schedule.deployments.iter().flatten() {
            assert!(d.batch <= 2, "batch {} exceeds beta estimate", d.batch);
        }
    }

    #[test]
    fn serial_mode_produces_serial_schedule() {
        let catalog = Catalog::small_scale(42);
        let demand = demand_of(&catalog, &[(0, 0, 12)]);
        let tir = TirMatrix::initial(&catalog);
        let cfg = ProblemConfig {
            mode: ExecutionMode::Serial { max_serial: 256 },
            ..Default::default()
        };
        let p = SlotProblem::build(&catalog, 0, &demand, &tir, None, &cfg);
        let (schedule, _) = p.solve(&SolverConfig::scheduling()).unwrap();
        assert!(schedule.serial);
        assert_eq!(schedule.served() + schedule.total_unserved(), 12);
        let trace = trace_of(&catalog, 0, &demand);
        validate_against_trace(&catalog, &trace, &schedule, None).unwrap();
    }

    #[test]
    fn network_constraint_limits_model_churn() {
        let catalog = Catalog::small_scale(42);
        let demand = demand_of(&catalog, &[(0, 0, 4)]);
        let tir = TirMatrix::oracle(&catalog);
        // Previous slot deployed model 0 on edge 0; redeploying it is free,
        // any other model pays its compressed weight.
        let mut prev = Schedule::empty(0, catalog.num_apps(), catalog.num_edges());
        prev.deployments[0].push(Deployment {
            app: AppId(0),
            model: ModelId(0),
            batch: 1,
        });
        let p = SlotProblem::build(
            &catalog,
            1,
            &demand,
            &tir,
            Some(&prev),
            &ProblemConfig::default(),
        );
        let (schedule, _) = p.solve(&SolverConfig::default()).unwrap();
        let trace = trace_of(&catalog, 1, &demand);
        validate_against_trace(&catalog, &trace, &schedule, Some(&prev)).unwrap();
    }

    #[test]
    fn zero_demand_yields_empty_schedule() {
        let catalog = Catalog::small_scale(42);
        let demand = DemandMatrix::zeros(catalog.num_apps(), catalog.num_edges());
        let tir = TirMatrix::initial(&catalog);
        let p = SlotProblem::build(&catalog, 0, &demand, &tir, None, &ProblemConfig::default());
        let (schedule, stats) = p.solve(&SolverConfig::default()).unwrap();
        assert_eq!(schedule.served(), 0);
        assert_eq!(schedule.total_unserved(), 0);
        assert!(schedule.deployments.iter().all(|d| d.is_empty()));
        assert!(stats.objective.abs() < 1e-9);
    }

    #[test]
    fn masked_edge_hosts_nothing_and_receives_nothing() {
        let catalog = Catalog::small_scale(42);
        // Demand on the masked edge itself and on a healthy neighbour.
        let demand = demand_of(&catalog, &[(0, 2, 8), (0, 0, 5)]);
        let tir = TirMatrix::oracle(&catalog);
        let mut mask = vec![false; catalog.num_edges()];
        mask[2] = true;
        let cfg = ProblemConfig {
            masked_edges: Some(mask),
            ..Default::default()
        };
        let p = SlotProblem::build(&catalog, 0, &demand, &tir, None, &cfg);
        let (schedule, _) = p.solve(&SolverConfig::scheduling()).unwrap();
        assert!(
            schedule.deployments[2].is_empty(),
            "masked edge must deploy nothing"
        );
        for i in 0..catalog.num_apps() {
            for src in 0..catalog.num_edges() {
                assert_eq!(
                    schedule.routing.get(AppId(i), EdgeId(src), EdgeId(2)),
                    0,
                    "no route into the masked edge"
                );
            }
        }
        // The masked edge's own arrivals are shipped out or dropped, never
        // lost from the accounting.
        let trace = trace_of(&catalog, 0, &demand);
        validate_against_trace(&catalog, &trace, &schedule, None).unwrap();
        assert_eq!(schedule.served() + schedule.total_unserved(), 13);
    }

    #[test]
    fn problem_dimensions_scale_with_catalog() {
        let catalog = Catalog::small_scale(42);
        let demand = DemandMatrix::zeros(catalog.num_apps(), catalog.num_edges());
        let tir = TirMatrix::initial(&catalog);
        let p = SlotProblem::build(&catalog, 0, &demand, &tir, None, &ProblemConfig::default());
        // x: 18, b: 18, local/out/in: 3 x 6, o: 6.
        assert_eq!(p.num_vars(), 18 + 18 + 18 + 6);
        assert!(p.num_constraints() > 0);
    }
}
