//! The per-slot optimisation problem `P1^t` / `P2^t` (paper Section 4).
//!
//! Decision variables (paper Section 3.1):
//!
//! * `x[k][m] in {0,1}` — deploy model `m` on edge `k` this slot,
//! * `b[k][m] in N` — its batch size,
//! * `y[i][k][k'] in N` — requests of app `i` moved from `k` to `k'`,
//! * `o[i][k] in N` — requests left unserved (carried to the next slot);
//!   the paper's formulation implicitly assumes capacity suffices, the
//!   overflow variable makes the problem always feasible and its penalty
//!   (`> max loss`) guarantees serving is preferred whenever possible.
//!
//! Constraints: flow conservation (Eq. 3), deployment/batch coupling
//! (Eq. 4), batch/arrival balance (Eq. 5), memory (Eq. 6), the
//! Taylor-linearised compute constraint (Eqs. 12, 24, 25) and the
//! network constraint with the `x^{t-1}`-dependent model-transfer term
//! (Eqs. 9, 13, 14).
//!
//! The bilinear objective `Σ loss * x * b` of Eq. 10 collapses to the
//! linear `Σ loss * b` on the feasible set because Eq. 4 forces `b = 0`
//! whenever `x = 0` — the same exact reduction a MIQP solver applies
//! internally (see `birp_solver::Model::linearized_product` for the general
//! machinery, which this builder does not need).

use birp_models::catalog::MAX_BATCH;
use birp_models::{Catalog, EdgeId, ModelId};
use birp_sim::{Deployment, Schedule};
use birp_solver::{
    LinExpr, Model, ModelStatus, RowId, Solution, SolverConfig, SolverError, VarId, VarKind,
};
use birp_telemetry as telemetry;
use birp_tir::{linear_coeffs, TirParams};
use serde::{Deserialize, Serialize};
use std::cell::Cell;

use crate::demand::DemandMatrix;

/// Per-(edge, model) TIR parameter estimates used by the planner.
#[derive(Debug, Clone)]
pub struct TirMatrix {
    num_models: usize,
    params: Vec<TirParams>,
}

impl TirMatrix {
    /// Build from a function of (edge index, model index).
    pub fn from_fn(
        num_edges: usize,
        num_models: usize,
        f: impl Fn(usize, usize) -> TirParams,
    ) -> Self {
        let mut params = Vec::with_capacity(num_edges * num_models);
        for e in 0..num_edges {
            for m in 0..num_models {
                params.push(f(e, m));
            }
        }
        TirMatrix { num_models, params }
    }

    /// The ground truth (for the BIRP-OFF oracle and tests).
    pub fn oracle(catalog: &Catalog) -> Self {
        Self::from_fn(catalog.num_edges(), catalog.num_models(), |e, m| {
            catalog.edges[e].tir_truth[m]
        })
    }

    /// The paper's conservative initialisation for every arm (Eq. 23).
    pub fn initial(catalog: &Catalog) -> Self {
        Self::from_fn(catalog.num_edges(), catalog.num_models(), |_, _| {
            TirParams::paper_initial()
        })
    }

    #[inline]
    pub fn get(&self, e: EdgeId, m: ModelId) -> &TirParams {
        &self.params[e.index() * self.num_models + m.index()]
    }
}

/// Whether the planned schedule executes batched (BIRP family) or serially
/// (the OAEI baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Batch-aware: compute follows the Taylor-linearised TIR model and
    /// batches are capped by the TIR threshold `beta`.
    Batched,
    /// Serial: no batching benefit (`TIR = 1`), per-request memory, batch
    /// variable bounded by `max_serial` only.
    Serial { max_serial: u32 },
}

/// Builder knobs.
#[derive(Debug, Clone)]
pub struct ProblemConfig {
    pub mode: ExecutionMode,
    /// Objective penalty per unserved request; must exceed the worst model
    /// loss (0.49) so that serving always dominates dropping.
    pub drop_penalty: f64,
    /// Quarantine mask (`masked_edges[k] == true` ⇒ edge `k` is excluded):
    /// a masked edge deploys no models, runs no batches, serves nothing
    /// locally and receives no redistributed requests. Its own arrivals may
    /// still ship out or overflow, so the problem stays feasible. `None`
    /// means no edge is masked.
    pub masked_edges: Option<Vec<bool>>,
    /// Lagrangian shard coupling (DESIGN.md §14). `Some` lowers this
    /// problem as one *cluster* of a sharded decomposition: two extra
    /// integer columns per app — `exp[i]` (requests exported to other
    /// clusters) and `imp[i]` (requests imported from them) — enter the
    /// per-app balance row as `Σout − Σin − exp + imp = 0`, priced
    /// `+λ_i·exp − λ_i·imp` in the objective. `None` (the default and the
    /// monolithic path) lowers the exact model of previous revisions,
    /// bitwise.
    pub coupling: Option<ShardCoupling>,
}

impl Default for ProblemConfig {
    fn default() -> Self {
        ProblemConfig {
            mode: ExecutionMode::Batched,
            drop_penalty: 1.0,
            masked_edges: None,
            coupling: None,
        }
    }
}

/// Per-app Lagrangian prices and import capacity for one cluster
/// subproblem of the sharded decomposition (DESIGN.md §14).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCoupling {
    /// `λ_i` per app: the bandwidth price charged per exported request and
    /// credited per imported request.
    pub prices: Vec<f64>,
    /// Total demand of each app *outside* this cluster — an a-priori bound
    /// on how many requests the rest of the fleet could possibly send
    /// here, capping `imp[i]` without cutting off any global optimum.
    pub outside_demand: Vec<u32>,
}

/// What happened to the temporal-reuse candidate a
/// [`SlotProblem::build_with_reuse`] call was given (DESIGN.md §11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReuseOutcome {
    /// The repaired previous-slot schedule beat the LP-guided greedy point
    /// and was installed as the solver's starting incumbent.
    Installed,
    /// The repaired point was feasible but no better than the LP-guided
    /// greedy warm start, which was kept instead.
    NotBetter,
    /// The repair pass produced an infeasible point (defensive check — the
    /// projection is feasible by construction); the greedy warm start was
    /// kept.
    RepairFail,
}

/// Solve statistics surfaced to experiment logs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolveStats {
    pub objective: f64,
    pub gap: f64,
    pub nodes: usize,
    pub optimal: bool,
    /// The solve budget ran out: the schedule decodes the best incumbent,
    /// not a proven (near-)optimum.
    #[serde(default)]
    pub degraded: bool,
    /// Incumbent trajectory `(nodes_solved, objective, gap)` in install
    /// order — the convergence signature surfaced by the per-slot decision
    /// provenance record. Empty for schedules that bypassed branch and
    /// bound (cache hits carry a single synthetic point).
    #[serde(default)]
    pub incumbents: Vec<(u64, f64, f64)>,
}

/// Everything that varies slot-to-slot and enters the lowered model: the
/// exact fingerprint of a [`SlotProblem::build`] call's inputs, stored in
/// lowering order (DESIGN.md §13).
///
/// Two equal `SlotInputs` (plus an equal `statics_digest`, which pins the
/// catalog coefficient statics) lower to bitwise-identical models — the
/// invariant the delta path rests on. `f64` inputs are stored as IEEE-754
/// bit patterns so equality is exact and the checkpoint round-trip (JSON
/// integers are lossless for `u64`) cannot perturb them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotInputs {
    /// Slot index (metadata only: no variable or row name contains it).
    pub t: usize,
    pub num_apps: usize,
    pub num_edges: usize,
    pub num_models: usize,
    /// Serial (OAEI) vs batched lowering.
    pub serial: bool,
    /// Batch bound in serial mode (unused when batched).
    pub max_serial: u32,
    /// Objective penalty per unserved request, as a bit pattern.
    pub drop_penalty_bits: u64,
    /// Owning app index of each model (pins the serve-row structure).
    pub model_app: Vec<usize>,
    /// Demand `r[i][k]`, row-major by app.
    pub supply: Vec<u32>,
    /// Quarantine mask per edge.
    pub mask: Vec<bool>,
    /// TIR `eta` estimates per (edge, model), row-major, as bit patterns.
    pub tir_eta_bits: Vec<u64>,
    /// TIR `beta` estimates per (edge, model), row-major.
    pub tir_beta: Vec<u32>,
    /// `x^{t-1}`: whether (edge, model) was deployed in the previous slot.
    pub prev_dep: Vec<bool>,
    /// Per-edge memory budgets, as bit patterns.
    pub mem_budget_bits: Vec<u64>,
    /// Per-edge network budgets, as bit patterns.
    pub net_budget_bits: Vec<u64>,
    /// Per-slot compute budget, as a bit pattern.
    pub slot_ms_bits: u64,
    /// Shard-coupling prices `λ_i` per app, as bit patterns; empty means
    /// no coupling (the monolithic lowering).
    #[serde(default)]
    pub coupling_price_bits: Vec<u64>,
    /// Import capacity per app (demand outside this cluster); empty iff
    /// `coupling_price_bits` is.
    #[serde(default)]
    pub coupling_outside: Vec<u32>,
    /// FNV-1a digest of the catalog coefficient statics the lowering reads
    /// (losses, memory/transfer sizes, request sizes, gamma tables, app
    /// ownership). A mismatch means the catalog changed under the model.
    pub statics_digest: u64,
}

impl SlotInputs {
    #[inline]
    fn supply(&self, i: usize, k: usize) -> u32 {
        self.supply[i * self.num_edges + k]
    }

    /// Total demand of app `i` (same u64 summation as the builder).
    fn app_total(&self, i: usize) -> f64 {
        (0..self.num_edges)
            .map(|k| self.supply(i, k) as u64)
            .sum::<u64>() as f64
    }

    /// Upper bound of an `in[i][k]` column: everything the fleet could
    /// possibly route here. Under shard coupling that includes the demand
    /// held outside the cluster (importable via `imp[i]`); uncoupled it is
    /// exactly the app total, keeping the monolithic lowering bitwise
    /// unchanged.
    fn inn_cap(&self, i: usize) -> f64 {
        self.app_total(i) + self.coupling_outside.get(i).copied().unwrap_or(0) as f64
    }

    fn batch_cap(&self, e: usize, m: usize) -> u32 {
        if self.serial {
            self.max_serial.max(1)
        } else {
            self.tir_beta[e * self.num_models + m].clamp(1, MAX_BATCH)
        }
    }

    fn eta(&self, e: usize, m: usize) -> f64 {
        f64::from_bits(self.tir_eta_bits[e * self.num_models + m])
    }

    /// Fields no delta can absorb: a mismatch forces a full rebuild.
    fn same_structure(&self, other: &SlotInputs) -> bool {
        self.num_apps == other.num_apps
            && self.num_edges == other.num_edges
            && self.num_models == other.num_models
            && self.serial == other.serial
            && self.max_serial == other.max_serial
            && self.drop_penalty_bits == other.drop_penalty_bits
            && self.model_app == other.model_app
            && self.statics_digest == other.statics_digest
            // Coupling columns exist iff prices do: turning coupling on or
            // off changes the variable set and forces a rebuild.
            && self.coupling_price_bits.len() == other.coupling_price_bits.len()
    }

    /// The typed edits turning a model lowered from `self` into one
    /// lowered from `new`. Requires [`same_structure`](Self::same_structure).
    fn diff(&self, new: &SlotInputs) -> Vec<SlotDelta> {
        let (na, ne, nm) = (self.num_apps, self.num_edges, self.num_models);
        let mut ds = Vec::new();
        for i in 0..na {
            if self.supply[i * ne..(i + 1) * ne] != new.supply[i * ne..(i + 1) * ne] {
                ds.push(SlotDelta::DemandDrift { app: i });
            }
        }
        for e in 0..ne {
            if self.mask[e] != new.mask[e] {
                ds.push(SlotDelta::QuarantineMask {
                    edge: e,
                    masked: new.mask[e],
                });
            }
        }
        // TIR estimates only enter the batched lowering (serial batch caps
        // come from `max_serial`), so estimate drift is a no-op there.
        if !new.serial {
            for e in 0..ne {
                for m in 0..nm {
                    let j = e * nm + m;
                    if self.tir_eta_bits[j] != new.tir_eta_bits[j]
                        || self.tir_beta[j] != new.tir_beta[j]
                    {
                        ds.push(SlotDelta::TirChange { edge: e, model: m });
                    }
                }
            }
        }
        for e in 0..ne {
            for m in 0..nm {
                let j = e * nm + m;
                if self.prev_dep[j] != new.prev_dep[j] {
                    ds.push(SlotDelta::PrevDeploy {
                        edge: e,
                        model: m,
                        deployed: new.prev_dep[j],
                    });
                }
            }
        }
        if self.mem_budget_bits != new.mem_budget_bits
            || self.net_budget_bits != new.net_budget_bits
            || self.slot_ms_bits != new.slot_ms_bits
        {
            ds.push(SlotDelta::BudgetChange);
        }
        for i in 0..self.coupling_price_bits.len() {
            if self.coupling_price_bits[i] != new.coupling_price_bits[i] {
                ds.push(SlotDelta::CouplingPrice { app: i });
            }
            if self.coupling_outside[i] != new.coupling_outside[i] {
                ds.push(SlotDelta::CouplingBound { app: i });
            }
        }
        ds
    }
}

/// One typed edit between consecutive slot fingerprints (DESIGN.md §13).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotDelta {
    /// App `app`'s demand row moved: flow-row RHS updates plus
    /// `local`/`out`/`in`/overflow bound updates.
    DemandDrift { app: usize },
    /// Edge `edge` entered or left quarantine: bound fixes on every column
    /// the mask pins (`x`, `b`, `local`, `in`).
    QuarantineMask { edge: usize, masked: bool },
    /// An `(eta, beta)` estimate moved: batch bound, coupling-row and
    /// compute-row coefficient updates.
    TirChange { edge: usize, model: usize },
    /// `x^{t-1}` flipped for (edge, model): the model-transfer charge
    /// appears in or vanishes from the network row.
    PrevDeploy {
        edge: usize,
        model: usize,
        deployed: bool,
    },
    /// Memory/network/compute budgets moved: RHS updates on budget rows.
    BudgetChange,
    /// The Lagrangian price `λ_app` moved: objective-coefficient updates
    /// on `exp[app]`/`imp[app]` (the price-edit delta of the sharded
    /// decomposition's dual loop, DESIGN.md §14).
    CouplingPrice { app: usize },
    /// The outside-demand import cap of `app` moved: bound update on
    /// `imp[app]`.
    CouplingBound { app: usize },
}

/// Per-kind counts of the deltas one refresh applied.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaSummary {
    pub demand: usize,
    pub mask: usize,
    pub tir: usize,
    pub prev_deploy: usize,
    pub budget: usize,
    pub coupling: usize,
}

impl DeltaSummary {
    pub fn total(&self) -> usize {
        self.demand + self.mask + self.tir + self.prev_deploy + self.budget + self.coupling
    }
}

/// Why a refresh fell back to a full rebuild instead of applying deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebuildReason {
    /// No persistent model existed yet (first slot, or none restored).
    FirstBuild,
    /// The delta path is disabled (`--no-reuse`).
    Disabled,
    /// A structural input changed (execution mode, drop penalty, serial
    /// batch bound) — the lowering differs beyond what deltas cover.
    StructureChanged,
    /// The catalog changed under the model (dimensions, app ownership or
    /// coefficient statics — the column add/remove fingerprint).
    CatalogChanged,
}

/// What [`SlotProblem::refresh_with_reuse`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaOutcome {
    /// The persistent model absorbed the slot as typed deltas.
    Applied(DeltaSummary),
    /// The model was rebuilt from scratch.
    Rebuilt(RebuildReason),
}

thread_local! {
    /// Test-only fault injection: when armed, the next demand-drift
    /// application deliberately leaves one flow-row RHS stale (one-shot).
    /// Exists so the differential suites can prove they catch a buggy
    /// delta applier; never armed outside tests.
    static DELTA_FAULT_STALE_RHS: Cell<bool> = const { Cell::new(false) };
}

/// Test-only: arm (or disarm) the stale-RHS delta fault. While armed, the
/// next [`SlotDelta::DemandDrift`] application skips the first flow-row
/// RHS update it should have made, then disarms itself.
#[doc(hidden)]
pub fn delta_fault_stale_rhs(armed: bool) {
    DELTA_FAULT_STALE_RHS.with(|c| c.set(armed));
}

/// The lowered per-slot problem plus the variable maps needed to decode.
///
/// ## Routing aggregation
///
/// The paper's `y[i][k][k']` tensor only ever enters the constraints as
/// per-edge sums — outbound `Σ_{k'} y[i][k][k']`, arriving
/// `Σ_k y[i][k][k']`, and the network charge on both. The builder therefore
/// lowers three aggregate variables per (app, edge) instead of `K^2` flows:
///
/// * `local[i][k]` — served where generated,
/// * `out[i][k]` — shipped away from `k`,
/// * `inn[i][k]` — received by `k` from elsewhere,
///
/// with a per-app balance `Σ_k out = Σ_k inn`. This shrinks the large-scale
/// problem by ~90 integer variables and is exactly equivalent: `decode`
/// reconstructs a pairwise routing with the same sums (any such routing has
/// identical loss, memory, compute and network behaviour).
pub struct SlotProblem {
    model: Model,
    t: usize,
    num_apps: usize,
    num_edges: usize,
    num_models: usize,
    serial: bool,
    /// Owning app of each model (decode lookup).
    model_app: Vec<birp_models::AppId>,
    x: Vec<Vec<VarId>>,
    b: Vec<Vec<VarId>>,
    local: Vec<Vec<VarId>>,
    out: Vec<Vec<VarId>>,
    inn: Vec<Vec<VarId>>,
    o: Vec<Vec<VarId>>,
    /// Shard-coupling export/import columns per app; empty without
    /// coupling (the monolithic lowering adds no columns).
    exp: Vec<VarId>,
    imp: Vec<VarId>,
    /// Feasible-by-construction warm start (loss-greedy local packing)
    /// computed at build time; branch and bound starts from its objective
    /// as the incumbent cutoff.
    warm: Vec<f64>,
    /// Objective of the root LP relaxation, captured from the warm-start
    /// guide solve (the dual bound any integer point is certified against).
    root_obj: Option<f64>,
    /// Outcome of the temporal-reuse repair pass, when one ran.
    reuse_outcome: Option<ReuseOutcome>,
    /// Objective coefficient per variable (point-evaluation without
    /// re-lowering the model).
    obj_coeffs: Vec<f64>,
    /// The input fingerprint this model was lowered from; the baseline the
    /// next slot is diffed against (DESIGN.md §13).
    inputs: SlotInputs,
    /// Row handles for the delta appliers. Rows without a handle
    /// (`balance`, `serve`) are static under every delta kind.
    flow_rows: Vec<Vec<RowId>>,
    cap_rows: Vec<Vec<RowId>>,
    mem_rows: Vec<RowId>,
    compute_rows: Vec<RowId>,
    net_rows: Vec<RowId>,
}

impl SlotProblem {
    /// Lower the slot-`t` problem. `prev` supplies `x^{t-1}` (Eqs. 13/14);
    /// `tir` supplies the `(eta, beta)` estimates of Eq. 12.
    pub fn build(
        catalog: &Catalog,
        t: usize,
        demand: &DemandMatrix,
        tir: &TirMatrix,
        prev: Option<&Schedule>,
        cfg: &ProblemConfig,
    ) -> SlotProblem {
        Self::build_with_reuse(catalog, t, demand, tir, prev, cfg, None)
    }

    /// [`build`](Self::build), plus a temporal-reuse candidate: `reuse` is
    /// the previous slot's executed schedule, repaired onto this slot's
    /// constraints (current demand, masks and TIR estimates) by replaying
    /// its routing/deployment structure through the same budget-disciplined
    /// packing that produces the greedy warm start. Whichever point is
    /// better becomes the installed incumbent; [`reuse_outcome`]
    /// (Self::reuse_outcome) reports what happened.
    pub fn build_with_reuse(
        catalog: &Catalog,
        t: usize,
        demand: &DemandMatrix,
        tir: &TirMatrix,
        prev: Option<&Schedule>,
        cfg: &ProblemConfig,
        reuse: Option<&Schedule>,
    ) -> SlotProblem {
        Self::build_inner(catalog, t, demand, tir, prev, cfg, reuse, true)
    }

    /// [`build_with_reuse`](Self::build_with_reuse) without the guide-LP
    /// solve. The heuristic-regime skip path (DESIGN.md §11) only needs the
    /// repaired candidate checked against current-slot feasibility and the
    /// greedy warm floor — paying for the root relaxation on a slot that
    /// will never run branch and bound is pure overhead. The floor here is
    /// the *unguided* greedy packing and [`root_bound`](Self::root_bound)
    /// is `None`, so certification-based paths are unavailable on a lean
    /// problem; callers that end up solving must rebuild with
    /// [`build_with_reuse`](Self::build_with_reuse).
    pub fn build_reuse_lean(
        catalog: &Catalog,
        t: usize,
        demand: &DemandMatrix,
        tir: &TirMatrix,
        prev: Option<&Schedule>,
        cfg: &ProblemConfig,
        reuse: Option<&Schedule>,
    ) -> SlotProblem {
        Self::build_inner(catalog, t, demand, tir, prev, cfg, reuse, false)
    }

    #[allow(clippy::too_many_arguments)]
    fn build_inner(
        catalog: &Catalog,
        t: usize,
        demand: &DemandMatrix,
        tir: &TirMatrix,
        prev: Option<&Schedule>,
        cfg: &ProblemConfig,
        reuse: Option<&Schedule>,
        guide_lp: bool,
    ) -> SlotProblem {
        let _build_span = telemetry::span("problem.build");
        let inputs = Self::compute_inputs(catalog, t, demand, tir, prev, cfg);
        let mut p = Self::construct(catalog, inputs);
        p.derive(catalog, reuse, guide_lp);
        p
    }

    /// Absorb slot `t` into the persistent model as typed deltas instead
    /// of rebuilding it (DESIGN.md §13). The new inputs are fingerprinted
    /// and diffed against the fingerprint this model was lowered from;
    /// each difference becomes a targeted RHS/bound/coefficient edit that
    /// lands the model exactly where a fresh [`build_with_reuse`]
    /// (Self::build_with_reuse) would have — same lowering (bitwise), same
    /// warm start, same root bound, same reuse outcome, which the delta
    /// differential suites pin down. A structural mismatch (mode change,
    /// catalog change) cannot be expressed as deltas; the model is rebuilt
    /// from scratch and the reason reported.
    #[allow(clippy::too_many_arguments)]
    pub fn refresh_with_reuse(
        &mut self,
        catalog: &Catalog,
        t: usize,
        demand: &DemandMatrix,
        tir: &TirMatrix,
        prev: Option<&Schedule>,
        cfg: &ProblemConfig,
        reuse: Option<&Schedule>,
        guide_lp: bool,
    ) -> DeltaOutcome {
        let new = Self::compute_inputs(catalog, t, demand, tir, prev, cfg);
        if !self.inputs.same_structure(&new) {
            let catalog_changed = self.inputs.statics_digest != new.statics_digest
                || self.inputs.num_apps != new.num_apps
                || self.inputs.num_edges != new.num_edges
                || self.inputs.num_models != new.num_models
                || self.inputs.model_app != new.model_app;
            let reason = if catalog_changed {
                RebuildReason::CatalogChanged
            } else {
                RebuildReason::StructureChanged
            };
            *self = Self::build_inner(catalog, t, demand, tir, prev, cfg, reuse, guide_lp);
            return DeltaOutcome::Rebuilt(reason);
        }
        let _refresh_span = telemetry::span("problem.refresh");
        let deltas = self.inputs.diff(&new);
        self.inputs = new;
        self.t = t;
        let mut summary = DeltaSummary::default();
        for d in &deltas {
            match *d {
                SlotDelta::DemandDrift { app } => {
                    summary.demand += 1;
                    self.apply_demand_drift(app);
                }
                SlotDelta::QuarantineMask { edge, masked } => {
                    summary.mask += 1;
                    self.apply_mask(edge, masked);
                }
                SlotDelta::TirChange { edge, model } => {
                    summary.tir += 1;
                    self.apply_tir(catalog, edge, model);
                }
                SlotDelta::PrevDeploy {
                    edge,
                    model,
                    deployed,
                } => {
                    summary.prev_deploy += 1;
                    self.apply_prev_deploy(catalog, edge, model, deployed);
                }
                SlotDelta::BudgetChange => {
                    summary.budget += 1;
                    self.apply_budgets();
                }
                SlotDelta::CouplingPrice { app } => {
                    summary.coupling += 1;
                    self.apply_coupling_price(app);
                }
                SlotDelta::CouplingBound { app } => {
                    summary.coupling += 1;
                    self.apply_coupling_bound(app);
                }
            }
        }
        // Even a zero-delta slot re-derives: the warm start and reuse
        // outcome depend on the reuse candidate, which changes every slot.
        self.derive(catalog, reuse, guide_lp);
        DeltaOutcome::Applied(summary)
    }

    /// [`SlotDelta::DemandDrift`]: re-point app `i`'s flow-row RHS and the
    /// supply-derived bounds at the stored (new) inputs, replicating the
    /// builder's formulas — including the mask overrides on `local`/`in`.
    fn apply_demand_drift(&mut self, i: usize) {
        let mut fault = DELTA_FAULT_STALE_RHS.with(|c| c.get());
        let inn_cap = self.inputs.inn_cap(i);
        for k in 0..self.num_edges {
            let supply = self.inputs.supply(i, k) as f64;
            let masked = self.inputs.mask[k];
            if fault && self.model.rhs(self.flow_rows[i][k]) != supply {
                // Armed fault: leave this one RHS stale, then disarm.
                fault = false;
                DELTA_FAULT_STALE_RHS.with(|c| c.set(false));
            } else {
                self.model.set_rhs(self.flow_rows[i][k], supply);
            }
            self.model
                .set_bounds(self.local[i][k], 0.0, if masked { 0.0 } else { supply });
            self.model.set_bounds(self.out[i][k], 0.0, supply);
            self.model.set_bounds(self.o[i][k], 0.0, supply);
            self.model
                .set_bounds(self.inn[i][k], 0.0, if masked { 0.0 } else { inn_cap });
        }
        if let Some(&e) = self.exp.get(i) {
            // The export column's capacity is the cluster's own supply.
            self.model.set_bounds(e, 0.0, self.inputs.app_total(i));
        }
    }

    /// [`SlotDelta::QuarantineMask`]: pin (or release) every column the
    /// mask fixes on edge `e`. Rows are untouched — the builder masks
    /// through bounds only.
    fn apply_mask(&mut self, e: usize, masked: bool) {
        for m in 0..self.num_models {
            if masked {
                self.model.set_bounds(self.x[e][m], 0.0, 0.0);
                self.model.set_bounds(self.b[e][m], 0.0, 0.0);
            } else {
                self.model.set_bounds(self.x[e][m], 0.0, 1.0);
                self.model
                    .set_bounds(self.b[e][m], 0.0, self.inputs.batch_cap(e, m) as f64);
            }
        }
        for i in 0..self.num_apps {
            let supply = self.inputs.supply(i, e) as f64;
            let inn_cap = self.inputs.inn_cap(i);
            self.model
                .set_bounds(self.local[i][e], 0.0, if masked { 0.0 } else { supply });
            self.model
                .set_bounds(self.inn[i][e], 0.0, if masked { 0.0 } else { inn_cap });
        }
    }

    /// [`SlotDelta::TirChange`]: the `beta` estimate moves the batch bound
    /// and the coupling-row coefficient, the `eta` estimate moves the
    /// Taylor-linearised compute coefficients.
    fn apply_tir(&mut self, catalog: &Catalog, e: usize, m: usize) {
        let cap = self.inputs.batch_cap(e, m) as f64;
        let masked = self.inputs.mask[e];
        self.model
            .set_bounds(self.b[e][m], 0.0, if masked { 0.0 } else { cap });
        self.model
            .set_row_coeff(self.cap_rows[e][m], self.x[e][m], -cap);
        if !self.serial {
            let gamma = catalog.edges[e].gamma_ms[m];
            let (slope, intercept) = linear_coeffs(gamma, self.inputs.eta(e, m));
            self.model
                .set_row_coeff(self.compute_rows[e], self.b[e][m], slope);
            self.model
                .set_row_coeff(self.compute_rows[e], self.x[e][m], intercept);
        }
    }

    /// [`SlotDelta::PrevDeploy`]: the `[x^t - x^{t-1}]^+` transfer charge
    /// is `compressed_mb` exactly when the model was *not* deployed last
    /// slot; a zero coefficient is removed from the row, matching the
    /// builder (which never lowers zero terms).
    fn apply_prev_deploy(&mut self, catalog: &Catalog, k: usize, m: usize, deployed: bool) {
        let c = if deployed {
            0.0
        } else {
            catalog.models[m].compressed_mb
        };
        self.model.set_row_coeff(self.net_rows[k], self.x[k][m], c);
    }

    /// [`SlotDelta::BudgetChange`]: RHS updates on the three budget row
    /// families.
    fn apply_budgets(&mut self) {
        for e in 0..self.num_edges {
            self.model.set_rhs(
                self.mem_rows[e],
                f64::from_bits(self.inputs.mem_budget_bits[e]),
            );
            self.model.set_rhs(
                self.net_rows[e],
                f64::from_bits(self.inputs.net_budget_bits[e]),
            );
            self.model.set_rhs(
                self.compute_rows[e],
                f64::from_bits(self.inputs.slot_ms_bits),
            );
        }
    }

    /// [`SlotDelta::CouplingPrice`]: the dual loop moved `λ_app`; only the
    /// objective coefficients of the coupling columns change.
    fn apply_coupling_price(&mut self, i: usize) {
        let price = f64::from_bits(self.inputs.coupling_price_bits[i]);
        self.model.set_objective(self.exp[i], price);
        self.model.set_objective(self.imp[i], -price);
    }

    /// [`SlotDelta::CouplingBound`]: the rest of the fleet's demand for
    /// `app` moved; the import cap changes, and with it every `in[i][k]`
    /// column cap (imports arrive through `in`).
    fn apply_coupling_bound(&mut self, i: usize) {
        self.model
            .set_bounds(self.imp[i], 0.0, self.inputs.coupling_outside[i] as f64);
        let inn_cap = self.inputs.inn_cap(i);
        for k in 0..self.num_edges {
            if !self.inputs.mask[k] {
                self.model.set_bounds(self.inn[i][k], 0.0, inn_cap);
            }
        }
    }

    /// Fingerprint one slot's inputs (the delta-diff baseline).
    fn compute_inputs(
        catalog: &Catalog,
        t: usize,
        demand: &DemandMatrix,
        tir: &TirMatrix,
        prev: Option<&Schedule>,
        cfg: &ProblemConfig,
    ) -> SlotInputs {
        let na = catalog.num_apps();
        let ne = catalog.num_edges();
        let nm = catalog.num_models();
        let (serial, max_serial) = match cfg.mode {
            ExecutionMode::Batched => (false, 0),
            ExecutionMode::Serial { max_serial } => (true, max_serial),
        };
        let masked = |k: usize| -> bool {
            cfg.masked_edges
                .as_ref()
                .is_some_and(|m| m.get(k).copied().unwrap_or(false))
        };
        let mut supply = Vec::with_capacity(na * ne);
        for i in 0..na {
            for k in 0..ne {
                supply.push(demand.get(birp_models::AppId(i), EdgeId(k)));
            }
        }
        let mut tir_eta_bits = Vec::with_capacity(ne * nm);
        let mut tir_beta = Vec::with_capacity(ne * nm);
        let mut prev_dep = Vec::with_capacity(ne * nm);
        for e in 0..ne {
            for m in 0..nm {
                let p = tir.get(EdgeId(e), ModelId(m));
                tir_eta_bits.push(p.eta.to_bits());
                tir_beta.push(p.beta);
                prev_dep.push(prev.is_some_and(|s| s.is_deployed(EdgeId(e), ModelId(m))));
            }
        }
        SlotInputs {
            t,
            num_apps: na,
            num_edges: ne,
            num_models: nm,
            serial,
            max_serial,
            drop_penalty_bits: cfg.drop_penalty.to_bits(),
            model_app: catalog.models.iter().map(|m| m.app.index()).collect(),
            supply,
            mask: (0..ne).map(masked).collect(),
            tir_eta_bits,
            tir_beta,
            prev_dep,
            mem_budget_bits: catalog
                .edges
                .iter()
                .map(|e| e.memory_mb.to_bits())
                .collect(),
            net_budget_bits: catalog
                .edges
                .iter()
                .map(|e| e.network_budget_mb.to_bits())
                .collect(),
            slot_ms_bits: catalog.slot_ms.to_bits(),
            coupling_price_bits: cfg
                .coupling
                .as_ref()
                .map(|c| c.prices.iter().map(|p| p.to_bits()).collect())
                .unwrap_or_default(),
            coupling_outside: cfg
                .coupling
                .as_ref()
                .map(|c| c.outside_demand.clone())
                .unwrap_or_default(),
            statics_digest: Self::statics_digest(catalog),
        }
    }

    /// FNV-1a over every catalog coefficient the lowering reads but the
    /// fingerprint does not store verbatim.
    fn statics_digest(catalog: &Catalog) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |x: u64| {
            for byte in x.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0100_0000_01b3);
            }
        };
        eat(catalog.num_apps() as u64);
        eat(catalog.num_edges() as u64);
        eat(catalog.num_models() as u64);
        eat(MAX_BATCH as u64);
        for m in &catalog.models {
            eat(m.app.index() as u64);
            eat(m.loss.to_bits());
            eat(m.weight_mb.to_bits());
            eat(m.intermediate_mb.to_bits());
            eat(m.compressed_mb.to_bits());
        }
        for a in &catalog.apps {
            eat(a.request_mb.to_bits());
        }
        for e in &catalog.edges {
            for &g in &e.gamma_ms {
                eat(g.to_bits());
            }
        }
        h
    }

    /// Lower the model skeleton from an input fingerprint. A pure function
    /// of `(catalog statics, inputs)`: the fresh-build path and the
    /// checkpoint-restore path both come through here, which is what makes
    /// "refresh equals rebuild" checkable by fingerprint comparison alone.
    /// The derived state (warm start, root bound, objective coefficients)
    /// is left empty; [`derive`](Self::derive) fills it.
    fn construct(catalog: &Catalog, inputs: SlotInputs) -> SlotProblem {
        let na = inputs.num_apps;
        let ne = inputs.num_edges;
        let nm = inputs.num_models;
        let mut model = Model::new();

        let serial = inputs.serial;
        let drop_penalty = f64::from_bits(inputs.drop_penalty_bits);
        let batch_cap = |e: usize, m: usize| -> u32 { inputs.batch_cap(e, m) };

        // --- variables ----------------------------------------------------
        let x: Vec<Vec<VarId>> = (0..ne)
            .map(|e| {
                (0..nm)
                    .map(|m| model.add_binary(&format!("x[{e}][{m}]"), 0.0))
                    .collect()
            })
            .collect();
        let b: Vec<Vec<VarId>> = (0..ne)
            .map(|e| {
                (0..nm)
                    .map(|m| {
                        model.add_var(
                            &format!("b[{e}][{m}]"),
                            VarKind::Integer,
                            0.0,
                            batch_cap(e, m) as f64,
                            catalog.models[m].loss, // objective: loss * b
                        )
                    })
                    .collect()
            })
            .collect();
        let mut local = Vec::with_capacity(na);
        let mut out = Vec::with_capacity(na);
        let mut inn = Vec::with_capacity(na);
        for i in 0..na {
            let inn_cap = inputs.inn_cap(i);
            let mut l_row = Vec::with_capacity(ne);
            let mut o_row = Vec::with_capacity(ne);
            let mut i_row = Vec::with_capacity(ne);
            for k in 0..ne {
                let supply = inputs.supply(i, k) as f64;
                l_row.push(model.add_var(
                    &format!("local[{i}][{k}]"),
                    VarKind::Integer,
                    0.0,
                    supply,
                    0.0,
                ));
                o_row.push(model.add_var(
                    &format!("out[{i}][{k}]"),
                    VarKind::Integer,
                    0.0,
                    supply,
                    0.0,
                ));
                i_row.push(model.add_var(
                    &format!("in[{i}][{k}]"),
                    VarKind::Integer,
                    0.0,
                    inn_cap,
                    0.0,
                ));
            }
            local.push(l_row);
            out.push(o_row);
            inn.push(i_row);
        }
        let o: Vec<Vec<VarId>> = (0..na)
            .map(|i| {
                (0..ne)
                    .map(|k| {
                        let supply = inputs.supply(i, k);
                        model.add_var(
                            &format!("o[{i}][{k}]"),
                            VarKind::Integer,
                            0.0,
                            supply as f64,
                            drop_penalty,
                        )
                    })
                    .collect()
            })
            .collect();
        // Shard-coupling columns (DESIGN.md §14), appended after every
        // monolithic column so coupling-off lowerings are bitwise
        // unchanged. `exp[i]` can export at most the cluster's own supply;
        // `imp[i]` can import at most the demand outside the cluster.
        let mut exp = Vec::new();
        let mut imp = Vec::new();
        for i in 0..inputs.coupling_price_bits.len() {
            let price = f64::from_bits(inputs.coupling_price_bits[i]);
            exp.push(model.add_var(
                &format!("exp[{i}]"),
                VarKind::Integer,
                0.0,
                inputs.app_total(i),
                price,
            ));
            imp.push(model.add_var(
                &format!("imp[{i}]"),
                VarKind::Integer,
                0.0,
                inputs.coupling_outside[i] as f64,
                -price,
            ));
        }

        // --- quarantine mask -----------------------------------------------
        // A masked edge hosts nothing and receives nothing; its own supply
        // keeps `out`/`o` open so the flow rows stay feasible.
        let masked = |k: usize| -> bool { inputs.mask[k] };
        for e in (0..ne).filter(|&e| masked(e)) {
            for m in 0..nm {
                model.set_bounds(x[e][m], 0.0, 0.0);
                model.set_bounds(b[e][m], 0.0, 0.0);
            }
            for i in 0..na {
                model.set_bounds(local[i][e], 0.0, 0.0);
                model.set_bounds(inn[i][e], 0.0, 0.0);
            }
        }

        // --- Eq. 3: flow conservation + overflow ---------------------------
        // local + out + o = r per (app, edge).
        let mut flow_rows = Vec::with_capacity(na);
        for i in 0..na {
            let mut handles = Vec::with_capacity(ne);
            for k in 0..ne {
                let supply = inputs.supply(i, k);
                let expr = local[i][k] + out[i][k] + o[i][k];
                handles.push(model.add_eq(&format!("flow[{i}][{k}]"), expr, supply as f64));
            }
            flow_rows.push(handles);
        }

        // Per-app routing balance: everything shipped is received somewhere.
        // With shard coupling the cluster may also export to / import from
        // the rest of the fleet: `Σout − Σin − exp + imp = 0`. The row is
        // static under every delta kind (price edits touch only objective
        // coefficients), so it still needs no handle.
        for i in 0..na {
            let mut expr =
                LinExpr::sum(out[i].iter().copied()) - LinExpr::sum(inn[i].iter().copied());
            if let Some(&ev) = exp.get(i) {
                expr.add_term(ev, -1.0);
                expr.add_term(imp[i], 1.0);
            }
            model.add_eq(&format!("balance[{i}]"), expr, 0.0);
        }

        // --- Eq. 4: deployment/batch coupling ------------------------------
        // Only `b <= cap * x` is lowered; the paper's `b >= x` merely forbids
        // idle deployments (x = 1, b = 0), which are weakly dominated and
        // pruned at decode time — dropping the row halves the coupling
        // constraints.
        let mut cap_rows = Vec::with_capacity(ne);
        for e in 0..ne {
            let mut handles = Vec::with_capacity(nm);
            for m in 0..nm {
                let cap = batch_cap(e, m) as f64;
                handles.push(model.add_le(
                    &format!("cap[{e}][{m}]"),
                    LinExpr::term(b[e][m], 1.0) - LinExpr::term(x[e][m], cap),
                    0.0,
                ));
            }
            cap_rows.push(handles);
        }

        // --- Eq. 5: batches equal arriving workload ------------------------
        // Σ_j b[k][j of app i] = local[i][k] + in[i][k].
        for i in 0..na {
            for k in 0..ne {
                let mut expr = LinExpr::new();
                for &m in catalog.models_of(birp_models::AppId(i)) {
                    expr.add_term(b[k][m.index()], 1.0);
                }
                expr.add_term(local[i][k], -1.0);
                expr.add_term(inn[i][k], -1.0);
                model.add_eq(&format!("serve[{i}][{k}]"), expr, 0.0);
            }
        }

        // --- Eq. 6: memory --------------------------------------------------
        let mut mem_rows = Vec::with_capacity(ne);
        for e in 0..ne {
            let mut expr = LinExpr::new();
            for m in 0..nm {
                let mv = &catalog.models[m];
                if serial {
                    // One request's intermediates at a time.
                    expr.add_term(x[e][m], mv.weight_mb + mv.intermediate_mb);
                } else {
                    expr.add_term(x[e][m], mv.weight_mb);
                    expr.add_term(b[e][m], mv.intermediate_mb);
                }
            }
            mem_rows.push(model.add_le(
                &format!("mem[{e}]"),
                expr,
                f64::from_bits(inputs.mem_budget_bits[e]),
            ));
        }

        // --- Eqs. 12/24/25: compute -----------------------------------------
        let mut compute_rows = Vec::with_capacity(ne);
        for e in 0..ne {
            let mut expr = LinExpr::new();
            for m in 0..nm {
                let gamma = catalog.edges[e].gamma_ms[m];
                if serial {
                    expr.add_term(b[e][m], gamma);
                } else {
                    // x * h(b) = gamma[(1-eta) b + eta x] using x*b = b.
                    let (slope, intercept) = linear_coeffs(gamma, inputs.eta(e, m));
                    expr.add_term(b[e][m], slope);
                    expr.add_term(x[e][m], intercept);
                }
            }
            compute_rows.push(model.add_le(
                &format!("compute[{e}]"),
                expr,
                f64::from_bits(inputs.slot_ms_bits),
            ));
        }

        // --- Eqs. 9/13/14: network -------------------------------------------
        let mut net_rows = Vec::with_capacity(ne);
        for k in 0..ne {
            let mut expr = LinExpr::new();
            for i in 0..na {
                let zeta = catalog.apps[i].request_mb;
                expr.add_term(out[i][k], zeta);
                expr.add_term(inn[i][k], zeta);
            }
            for (m, &xkm) in x[k].iter().enumerate() {
                if !inputs.prev_dep[k * nm + m] {
                    // [x^t - x^{t-1}]^+ = x^t when x^{t-1} = 0, else 0.
                    expr.add_term(xkm, catalog.models[m].compressed_mb);
                }
            }
            net_rows.push(model.add_le(
                &format!("net[{k}]"),
                expr,
                f64::from_bits(inputs.net_budget_bits[k]),
            ));
        }

        SlotProblem {
            model,
            t: inputs.t,
            num_apps: na,
            num_edges: ne,
            num_models: nm,
            serial,
            model_app: catalog.models.iter().map(|m| m.app).collect(),
            x,
            b,
            local,
            out,
            inn,
            o,
            exp,
            imp,
            warm: Vec::new(),
            root_obj: None,
            reuse_outcome: None,
            obj_coeffs: Vec::new(),
            inputs,
            flow_rows,
            cap_rows,
            mem_rows,
            compute_rows,
            net_rows,
        }
    }

    /// Recompute the derived state — guide-LP root bound, packed warm
    /// start, objective coefficients, temporal-reuse repair outcome — on
    /// the current model. Reads only the lowered model, the stored input
    /// fingerprint, the catalog statics and its own arguments, so a
    /// refreshed model derives exactly what a fresh build would (the LP
    /// guide stays a cold solve on purpose: warm-starting it could land on
    /// a different optimal vertex and break bitwise reproducibility).
    fn derive(&mut self, catalog: &Catalog, reuse: Option<&Schedule>, guide_lp: bool) {
        // --- warm start: LP-guided greedy packing with redistribution ---
        // The LP relaxation knows the right *structure* (which models carry
        // which cell's traffic, what ships where); the greedy `place()`
        // machinery adds the integrality and budget discipline the LP
        // lacks. Feasible by construction — the incumbent cutoff branch
        // and bound starts from.
        let lp_root = if guide_lp {
            let _guide_span = telemetry::span("problem.guide_lp");
            self.model
                .solve_relaxation()
                .ok()
                .filter(|s| s.status == birp_solver::LpStatus::Optimal)
        } else {
            None
        };
        self.root_obj = lp_root.as_ref().map(|s| s.objective);
        let lp_guide: Option<Vec<f64>> = lp_root.map(|s| s.x);
        let mut warm = self.packed_point(catalog, lp_guide.as_ref());

        // Point objective without re-lowering: `Σ loss·b + penalty·o` (the
        // only variables with objective coefficients).
        let drop_penalty = f64::from_bits(self.inputs.drop_penalty_bits);
        let mut obj_coeffs = vec![0.0; self.model.num_vars()];
        for e in 0..self.num_edges {
            for m in 0..self.num_models {
                obj_coeffs[self.b[e][m].index()] = catalog.models[m].loss;
            }
        }
        for row in &self.o {
            for &ov in row {
                obj_coeffs[ov.index()] = drop_penalty;
            }
        }
        for (i, &ev) in self.exp.iter().enumerate() {
            let price = f64::from_bits(self.inputs.coupling_price_bits[i]);
            obj_coeffs[ev.index()] = price;
            obj_coeffs[self.imp[i].index()] = -price;
        }
        let point_obj = |p: &[f64]| -> f64 { obj_coeffs.iter().zip(p).map(|(&c, &v)| c * v).sum() };

        // --- temporal reuse: repair the previous schedule into a candidate -
        // Encode the reused schedule into this slot's variable space and
        // run it through the same packing passes: stale structure (masked
        // edges, shrunken batch caps, vanished demand) is projected onto
        // the current constraints instead of carried over verbatim.
        self.reuse_outcome = None;
        if let Some(reused) = reuse.filter(|r| r.serial == self.serial) {
            let mut g = vec![0.0; self.model.num_vars()];
            for (e, ds) in reused.deployments.iter().enumerate().take(self.num_edges) {
                for d in ds {
                    let m = d.model.index();
                    if m < self.num_models {
                        g[self.x[e][m].index()] = 1.0;
                        g[self.b[e][m].index()] += d.batch as f64;
                    }
                }
            }
            for i in 0..self.num_apps.min(reused.unserved.len()) {
                let app = birp_models::AppId(i);
                for src in 0..self.num_edges {
                    for dst in 0..self.num_edges {
                        let r = reused.routing.get(app, EdgeId(src), EdgeId(dst)) as f64;
                        if r == 0.0 {
                            continue;
                        }
                        if src == dst {
                            g[self.local[i][src].index()] += r;
                        } else {
                            g[self.out[i][src].index()] += r;
                            g[self.inn[i][dst].index()] += r;
                        }
                    }
                }
            }
            let temporal = self.packed_point(catalog, Some(&g));
            let violation = self.model.max_violation(&temporal);
            self.reuse_outcome = Some(if violation >= 1e-6 {
                ReuseOutcome::RepairFail
            } else if point_obj(&temporal) <= point_obj(&warm) + 1e-12 {
                warm = temporal;
                ReuseOutcome::Installed
            } else {
                ReuseOutcome::NotBetter
            });
        }
        self.warm = warm;
        self.obj_coeffs = obj_coeffs;
    }

    /// Guide-driven greedy packing, shared by the LP warm start and the
    /// temporal-reuse repair pass: the guide says which models should
    /// carry which cell's traffic and what ships where; the passes add
    /// the integrality and budget discipline, so the result is feasible
    /// by construction whatever the guide. Pass 1 serves locally following
    /// the guide's local shares and model preferences, pass 2 ships
    /// leftovers to the guide's preferred receivers, pass 3 mops up
    /// anywhere with spare compute.
    fn packed_point(&self, catalog: &Catalog, guide_vec: Option<&Vec<f64>>) -> Vec<f64> {
        let na = self.num_apps;
        let ne = self.num_edges;
        let nm = self.num_models;
        let serial = self.serial;
        let inputs = &self.inputs;
        let (x, b, local, out, inn, o) =
            (&self.x, &self.b, &self.local, &self.out, &self.inn, &self.o);
        let masked = |k: usize| -> bool { inputs.mask[k] };
        let batch_cap = |e: usize, m: usize| -> u32 { inputs.batch_cap(e, m) };

        let mut warm = vec![0.0; self.model.num_vars()];
        let guide = |v: VarId| -> f64 { guide_vec.map_or(0.0, |g| g[v.index()]) };
        let mut mem_left: Vec<f64> = (0..ne)
            .map(|e| f64::from_bits(inputs.mem_budget_bits[e]))
            .collect();
        let mut compute_left = vec![f64::from_bits(inputs.slot_ms_bits); ne];
        let mut net_left: Vec<f64> = (0..ne)
            .map(|e| f64::from_bits(inputs.net_budget_bits[e]))
            .collect();
        let mut batches = vec![vec![0u32; nm]; ne];

        // Place up to `want` requests of `app` on edge `k`; returns the
        // number placed. Most accurate (lowest loss) versions first.
        let place = |k: usize,
                     app: birp_models::AppId,
                     want: u32,
                     mem_left: &mut [f64],
                     compute_left: &mut [f64],
                     net_left: &mut [f64],
                     batches: &mut [Vec<u32>]|
         -> u32 {
            if masked(k) {
                return 0;
            }
            let mut left = want;
            // Guide-preferred models first (largest fractional batch),
            // then by accuracy.
            let mut order: Vec<ModelId> = catalog.models_of(app).to_vec();
            order.sort_by(|ma, mb| {
                let ga = guide(b[k][ma.index()]);
                let gb = guide(b[k][mb.index()]);
                gb.partial_cmp(&ga).unwrap().then_with(|| {
                    catalog
                        .model(*ma)
                        .loss
                        .partial_cmp(&catalog.model(*mb).loss)
                        .unwrap()
                })
            });
            for mid in order {
                let m = mid.index();
                let mv = &catalog.models[m];
                let cap = batch_cap(k, m);
                let gamma = catalog.edges[k].gamma_ms[m];
                while left > 0 && batches[k][m] < cap {
                    let fresh = batches[k][m] == 0;
                    let (dc, dm);
                    if serial {
                        dc = gamma;
                        dm = if fresh {
                            mv.weight_mb + mv.intermediate_mb
                        } else {
                            0.0
                        };
                    } else {
                        let (slope, intercept) = linear_coeffs(gamma, inputs.eta(k, m));
                        dc = slope + if fresh { intercept } else { 0.0 };
                        dm = if fresh {
                            mv.weight_mb + mv.intermediate_mb
                        } else {
                            mv.intermediate_mb
                        };
                    }
                    let dn = if fresh && !inputs.prev_dep[k * nm + m] {
                        mv.compressed_mb
                    } else {
                        0.0
                    };
                    if dc <= compute_left[k] && dm <= mem_left[k] && dn <= net_left[k] {
                        compute_left[k] -= dc;
                        mem_left[k] -= dm;
                        net_left[k] -= dn;
                        batches[k][m] += 1;
                        left -= 1;
                    } else {
                        break;
                    }
                }
            }
            want - left
        };

        // Pass 1: local service, following the guide's local share for the
        // cell (leave the guide's shipped share for pass 2, so receiving
        // edges' capacity is not consumed by greedy local overreach).
        let mut leftover = vec![vec![0u32; ne]; na];
        for k in 0..ne {
            for i in 0..na {
                let app = birp_models::AppId(i);
                let d = inputs.supply(i, k);
                let want = if guide_vec.is_some() {
                    d.min((guide(local[i][k]) + 0.999).floor() as u32)
                } else {
                    d
                };
                let served = place(
                    k,
                    app,
                    want,
                    &mut mem_left,
                    &mut compute_left,
                    &mut net_left,
                    &mut batches,
                );
                warm[local[i][k].index()] = served as f64;
                leftover[i][k] = d - served;
            }
        }

        // Pass 2 ships leftovers to the guide's preferred receivers; pass 3
        // retries everything left: more local service, then any edge
        // with spare compute.
        for pass in [2, 3] {
            for i in 0..na {
                let app = birp_models::AppId(i);
                let zeta = catalog.apps[i].request_mb;
                for src in 0..ne {
                    if pass == 3 && leftover[i][src] > 0 {
                        // Extra local service beyond the guide's share.
                        let extra = place(
                            src,
                            app,
                            leftover[i][src],
                            &mut mem_left,
                            &mut compute_left,
                            &mut net_left,
                            &mut batches,
                        );
                        warm[local[i][src].index()] += extra as f64;
                        leftover[i][src] -= extra;
                    }
                    while leftover[i][src] > 0 {
                        let mut order: Vec<usize> = (0..ne).filter(|&d| d != src).collect();
                        if pass == 2 {
                            // Guide's receivers first.
                            order.sort_by(|&a, &c| {
                                guide(inn[i][c]).partial_cmp(&guide(inn[i][a])).unwrap()
                            });
                        } else {
                            order.sort_by(|&a, &c| {
                                compute_left[c].partial_cmp(&compute_left[a]).unwrap()
                            });
                        }
                        let mut moved_any = false;
                        for dest in order {
                            if pass == 2 && guide(inn[i][dest]) < 0.5 {
                                continue; // not a guide receiver
                            }
                            let net_cap = ((net_left[src] / zeta).min(net_left[dest] / zeta))
                                .floor()
                                .max(0.0) as u32;
                            let block = leftover[i][src].min(net_cap);
                            if block == 0 {
                                continue;
                            }
                            // Reserve the forwarding budget before
                            // placing: `place` may also spend
                            // `net_left[dest]` on a fresh model transfer,
                            // and deducting the forwarding cost only
                            // afterwards let the two overdraw the edge's
                            // network budget (making the "feasible by
                            // construction" warm start infeasible).
                            let reserve = zeta * block as f64;
                            net_left[src] -= reserve;
                            net_left[dest] -= reserve;
                            let placed = place(
                                dest,
                                app,
                                block,
                                &mut mem_left,
                                &mut compute_left,
                                &mut net_left,
                                &mut batches,
                            );
                            let refund = zeta * (block - placed) as f64;
                            net_left[src] += refund;
                            net_left[dest] += refund;
                            if placed > 0 {
                                warm[out[i][src].index()] += placed as f64;
                                warm[inn[i][dest].index()] += placed as f64;
                                leftover[i][src] -= placed;
                                moved_any = true;
                                break;
                            }
                        }
                        if !moved_any {
                            break;
                        }
                    }
                    if pass == 3 {
                        warm[o[i][src].index()] = leftover[i][src] as f64;
                    }
                }
            }
        }

        for k in 0..ne {
            for m in 0..nm {
                if batches[k][m] > 0 {
                    warm[x[k][m].index()] = 1.0;
                    warm[b[k][m].index()] = batches[k][m] as f64;
                }
            }
        }
        warm
    }

    pub fn num_vars(&self) -> usize {
        self.model.num_vars()
    }

    pub fn num_constraints(&self) -> usize {
        self.model.num_constraints()
    }

    /// What the temporal-reuse repair pass did (`None` when
    /// [`build`](Self::build) ran without a reuse candidate).
    pub fn reuse_outcome(&self) -> Option<ReuseOutcome> {
        self.reuse_outcome
    }

    /// Objective of the root LP relaxation — a lower bound on every
    /// feasible integer point. `None` when the guide LP failed.
    pub fn root_bound(&self) -> Option<f64> {
        self.root_obj
    }

    /// The slot-varying input fingerprint this model was lowered from —
    /// the snapshot half of the persistent-model checkpoint.
    pub fn inputs(&self) -> &SlotInputs {
        &self.inputs
    }

    /// Rebuild the model skeleton from a checkpointed fingerprint — the
    /// restore half of the persistent-model checkpoint. Derived state
    /// (warm start, root bound, reuse outcome) is *not* reconstructed: the
    /// first [`refresh_with_reuse`](Self::refresh_with_reuse) on the
    /// restored problem recomputes it, exactly as the uninterrupted run's
    /// refresh would have. Callers must refresh before solving.
    pub fn from_inputs(catalog: &Catalog, inputs: SlotInputs) -> SlotProblem {
        Self::construct(catalog, inputs)
    }

    /// The packed warm-start point (debug/differential-test accessor).
    pub fn warm_point(&self) -> &[f64] {
        &self.warm
    }

    // --- sharded-decomposition support (DESIGN.md §14) -----------------
    // The coordinator stitches cluster solutions into the monolithic
    // variable space and repairs them there, so it needs the column maps
    // and the guide-driven packing pass.

    pub(crate) fn vid_x(&self, e: usize, m: usize) -> VarId {
        self.x[e][m]
    }

    pub(crate) fn vid_b(&self, e: usize, m: usize) -> VarId {
        self.b[e][m]
    }

    pub(crate) fn vid_local(&self, i: usize, k: usize) -> VarId {
        self.local[i][k]
    }

    pub(crate) fn vid_out(&self, i: usize, k: usize) -> VarId {
        self.out[i][k]
    }

    pub(crate) fn vid_inn(&self, i: usize, k: usize) -> VarId {
        self.inn[i][k]
    }

    pub(crate) fn vid_o(&self, i: usize, k: usize) -> VarId {
        self.o[i][k]
    }

    /// Project a (possibly infeasible) guide point onto feasibility via
    /// the same budget-disciplined greedy packing that builds the warm
    /// start — the primal-repair step of the sharded coordinator.
    pub(crate) fn repair_point(&self, catalog: &Catalog, guide: Vec<f64>) -> Vec<f64> {
        self.packed_point(catalog, Some(&guide))
    }

    /// Solve and return the raw solver [`Solution`] without decoding — the
    /// per-cluster entry point of the sharded coordinator, which needs the
    /// dual bound and raw column values (a coupled cluster's `out`/`in`
    /// sums need not balance edge-to-edge, so [`decode`](Self::decode)
    /// does not apply).
    pub fn solve_raw(&self, solver_cfg: &SolverConfig) -> Result<Solution, SolverError> {
        self.model.solve_warm(solver_cfg, Some(self.warm.clone()))
    }

    /// Direct (un-repaired) encoding of a schedule into this problem's
    /// variable space. No projection is applied: a schedule built for a
    /// different slot state encodes verbatim and will fail
    /// [`violation_at`](Self::violation_at) — exactly how stale cache
    /// entries are caught.
    pub fn encode_schedule(&self, s: &Schedule) -> Vec<f64> {
        let mut p = vec![0.0; self.model.num_vars()];
        for (e, ds) in s.deployments.iter().enumerate().take(self.num_edges) {
            for d in ds {
                let m = d.model.index();
                if m < self.num_models {
                    p[self.x[e][m].index()] = 1.0;
                    p[self.b[e][m].index()] += d.batch as f64;
                }
            }
        }
        for i in 0..self.num_apps {
            let app = birp_models::AppId(i);
            for src in 0..self.num_edges {
                for dst in 0..self.num_edges {
                    let r = s.routing.get(app, EdgeId(src), EdgeId(dst)) as f64;
                    if r == 0.0 {
                        continue;
                    }
                    if src == dst {
                        p[self.local[i][src].index()] += r;
                    } else {
                        p[self.out[i][src].index()] += r;
                        p[self.inn[i][dst].index()] += r;
                    }
                }
            }
            for (k, &u) in s
                .unserved
                .get(i)
                .map_or(&[][..], |row| row)
                .iter()
                .enumerate()
            {
                if k < self.num_edges {
                    p[self.o[i][k].index()] = u as f64;
                }
            }
        }
        p
    }

    /// Objective value of a point in this problem's variable space.
    pub fn point_objective(&self, p: &[f64]) -> f64 {
        self.obj_coeffs.iter().zip(p).map(|(&c, &v)| c * v).sum()
    }

    /// Maximum constraint/bound violation at a point (0 = feasible).
    pub fn violation_at(&self, p: &[f64]) -> f64 {
        self.model.max_violation(p)
    }

    /// Certify a candidate schedule against this problem without solving
    /// it: the direct encoding must be feasible here, and its objective
    /// must sit within relative tolerance `tol` of the LP root bound — the
    /// same `(objective - bound) / max(1, |objective|)` criterion branch
    /// and bound terminates on. On success returns `(objective, gap)`;
    /// `None` means the candidate is stale or not provably good enough and
    /// the caller must solve.
    pub fn certify_schedule(&self, s: &Schedule, tol: f64) -> Option<(f64, f64)> {
        let root = self.root_obj?;
        let p = self.encode_schedule(s);
        if self.model.max_violation(&p) >= 1e-6 {
            return None;
        }
        let obj = self.point_objective(&p);
        let gap = (obj - root).max(0.0) / obj.abs().max(1.0);
        (gap <= tol + 1e-12).then_some((obj, gap))
    }

    /// Certify the already-built warm-start point against the LP root
    /// bound and, on success, decode it into a schedule without running
    /// branch and bound at all. This is the incumbent-skip lever of the
    /// temporal-reuse layer (DESIGN.md §11): when slot `t-1`'s repaired
    /// schedule is already within the solver's own termination gap of the
    /// root bound, any branch and bound run would accept it and stop — so
    /// the search is pure overhead. Returns `None` when the warm point is
    /// not provably good enough (the caller must solve) or the root LP
    /// failed.
    pub fn certified_warm(&self, tol: f64) -> Option<(Schedule, SolveStats)> {
        let root = self.root_obj?;
        if self.model.max_violation(&self.warm) >= 1e-6 {
            return None;
        }
        let obj = self.point_objective(&self.warm);
        let gap = (obj - root).max(0.0) / obj.abs().max(1.0);
        if gap > tol + 1e-12 {
            return None;
        }
        let sol = Solution {
            status: ModelStatus::Optimal,
            objective: obj,
            values: self.warm.clone(),
            bound: root,
            gap,
            nodes: 0,
            degraded: false,
            incumbents: vec![(0, obj, gap)],
        };
        let stats = SolveStats {
            objective: obj,
            gap,
            nodes: 0,
            optimal: true,
            degraded: false,
            incumbents: vec![(0, obj, gap)],
        };
        Some((self.decode(&sol), stats))
    }

    /// Decode the built warm-start point into a schedule *without* running
    /// branch and bound or certifying anything: the greedy packing, improved
    /// by the repaired previous-slot schedule whenever that carried a lower
    /// objective ([`ReuseOutcome::Installed`]). This point is feasible by
    /// construction and is exactly the floor a budget-exhausted
    /// branch-and-bound run falls back to, which is why the heuristic-regime
    /// skip path (DESIGN.md §11) may serve it while the solver is returning
    /// degraded incumbents anyway. The returned stats carry the honest
    /// (possibly large, or unbounded on a lean build) gap against the LP
    /// root bound and are never marked optimal — this is a floor, not a
    /// proof.
    pub fn warm_schedule(&self) -> (Schedule, SolveStats) {
        let obj = self.point_objective(&self.warm);
        let gap = self.root_obj.map_or(f64::INFINITY, |root| {
            (obj - root).max(0.0) / obj.abs().max(1.0)
        });
        let sol = Solution {
            status: ModelStatus::Feasible,
            objective: obj,
            values: self.warm.clone(),
            bound: self.root_obj.unwrap_or(f64::NEG_INFINITY),
            gap,
            nodes: 0,
            degraded: false,
            incumbents: vec![(0, obj, gap)],
        };
        let stats = SolveStats {
            objective: obj,
            gap,
            nodes: 0,
            optimal: false,
            degraded: false,
            incumbents: vec![(0, obj, gap)],
        };
        (self.decode(&sol), stats)
    }

    /// Solve and decode into a schedule. The loss-greedy warm start built
    /// alongside the model guarantees branch and bound always holds a
    /// usable incumbent, even under the tightest node budgets.
    pub fn solve(&self, solver_cfg: &SolverConfig) -> Result<(Schedule, SolveStats), SolverError> {
        let sol = self.model.solve_warm(solver_cfg, Some(self.warm.clone()))?;
        let stats = SolveStats {
            objective: sol.objective,
            gap: sol.gap,
            nodes: sol.nodes,
            optimal: sol.status == ModelStatus::Optimal,
            degraded: sol.degraded,
            incumbents: sol.incumbents.clone(),
        };
        Ok((self.decode(&sol), stats))
    }

    /// Fractional deployment variables of the LP relaxation — the input to
    /// OAEI's randomised rounding.
    pub fn relaxation_x(&self) -> Result<Vec<Vec<f64>>, SolverError> {
        let lp = self.model.solve_relaxation()?;
        match lp.status {
            birp_solver::LpStatus::Optimal => Ok((0..self.num_edges)
                .map(|e| {
                    (0..self.num_models)
                        .map(|m| lp.x[self.x[e][m].index()])
                        .collect()
                })
                .collect()),
            birp_solver::LpStatus::Infeasible => Err(SolverError::Infeasible),
            birp_solver::LpStatus::Unbounded => Err(SolverError::Unbounded),
        }
    }

    /// Solve with the deployment variables pinned to `fixed` (OAEI's second
    /// stage after rounding).
    pub fn solve_with_fixed_x(
        &self,
        fixed: &[Vec<bool>],
        solver_cfg: &SolverConfig,
    ) -> Result<(Schedule, SolveStats), SolverError> {
        let mut pinned = self.model.clone();
        // Warm start consistent with the pinned deployments: serve nothing,
        // overflow everything (valid whenever the pinned deployments fit in
        // memory/network on their own; if they do not, the pinned problem
        // is infeasible and the caller's fallback path takes over).
        let mut warm = vec![0.0; pinned.num_vars()];
        for e in 0..self.num_edges {
            for m in 0..self.num_models {
                let v = if fixed[e][m] { 1.0 } else { 0.0 };
                pinned.set_bounds(self.x[e][m], v, v);
                warm[self.x[e][m].index()] = v;
            }
        }
        for row in &self.o {
            for &ov in row {
                warm[ov.index()] = pinned.bounds(ov).1;
            }
        }
        let sol = pinned.solve_warm(solver_cfg, Some(warm))?;
        let stats = SolveStats {
            objective: sol.objective,
            gap: sol.gap,
            nodes: sol.nodes,
            optimal: sol.status == ModelStatus::Optimal,
            degraded: sol.degraded,
            incumbents: sol.incumbents.clone(),
        };
        Ok((self.decode(&sol), stats))
    }

    /// Translate a solver point into a [`Schedule`].
    ///
    /// Deployments with `x = 1, b = 0` are pruned (see the Eq. 4 note in
    /// `build`). The aggregate `local/out/in` solution is expanded into a
    /// concrete pairwise routing: same-edge out/in pairs are first cancelled
    /// into local service (never worse — it only releases network budget),
    /// then sources and sinks are matched greedily in index order. Any such
    /// matching realises exactly the aggregate sums the constraints were
    /// enforced on.
    pub fn decode(&self, sol: &Solution) -> Schedule {
        let mut schedule = Schedule::empty(self.t, self.num_apps, self.num_edges);
        schedule.serial = self.serial;
        for e in 0..self.num_edges {
            for m in 0..self.num_models {
                let deployed = sol.int_value(self.x[e][m]) == 1;
                let batch = sol.int_value(self.b[e][m]).max(0) as u32;
                if deployed && batch > 0 {
                    schedule.deployments[e].push(Deployment {
                        app: self.model_app[m],
                        model: ModelId(m),
                        batch,
                    });
                }
            }
        }
        for i in 0..self.num_apps {
            let app = birp_models::AppId(i);
            let ne = self.num_edges;
            let mut local: Vec<i64> = (0..ne)
                .map(|k| sol.int_value(self.local[i][k]).max(0))
                .collect();
            let mut out: Vec<i64> = (0..ne)
                .map(|k| sol.int_value(self.out[i][k]).max(0))
                .collect();
            let mut inn: Vec<i64> = (0..ne)
                .map(|k| sol.int_value(self.inn[i][k]).max(0))
                .collect();

            // Cancel same-edge ship-and-receive into local service.
            for k in 0..ne {
                let c = out[k].min(inn[k]);
                if c > 0 {
                    local[k] += c;
                    out[k] -= c;
                    inn[k] -= c;
                }
            }
            for (k, &lk) in local.iter().enumerate() {
                if lk > 0 {
                    schedule.routing.set(app, EdgeId(k), EdgeId(k), lk as u32);
                }
                schedule.unserved[i][k] = sol.int_value(self.o[i][k]).max(0) as u32;
            }
            // Greedy source/sink matching (disjoint after cancellation).
            // Indexing is clearer than iterators here: `out`/`inn` advance
            // on different cursors and are both mutated.
            let mut sink = 0usize;
            #[allow(clippy::needless_range_loop)]
            for src in 0..ne {
                while out[src] > 0 {
                    while sink < ne && inn[sink] == 0 {
                        sink += 1;
                    }
                    if sink >= ne {
                        break; // sums matched by the balance row; defensive
                    }
                    let amount = out[src].min(inn[sink]);
                    schedule
                        .routing
                        .add(app, EdgeId(src), EdgeId(sink), amount as u32);
                    out[src] -= amount;
                    inn[sink] -= amount;
                }
            }
        }
        schedule
    }
}

impl SlotProblem {
    /// Debug-only: the lowered MILP (used by diagnostics examples).
    pub fn debug_milp(&self) -> birp_solver::MilpProblem {
        self.model.to_milp().unwrap()
    }

    /// Debug-only: warm-start objective and max violation.
    pub fn debug_warm(&self) -> (f64, f64) {
        let milp = self.model.to_milp().unwrap();
        (
            milp.lp.objective_at(&self.warm),
            milp.lp.max_violation(&self.warm),
        )
    }

    /// Debug-only: named rows and column bounds the warm start violates by
    /// more than `tol`, as `(name, violation)` pairs.
    pub fn debug_warm_violations(&self, tol: f64) -> Vec<(String, f64)> {
        let milp = self.model.to_milp().unwrap();
        let named = self.model.num_constraints();
        let mut out = Vec::new();
        for (i, row) in milp.lp.rows.iter().enumerate() {
            let v = row.violation(&self.warm);
            if v > tol {
                let name = if i < named {
                    self.model.constraint_name(i).to_string()
                } else {
                    format!("row{i}")
                };
                out.push((name, v));
            }
        }
        for j in 0..milp.lp.num_cols() {
            let w = self.warm[j];
            let v = (milp.lp.lower[j] - w).max(w - milp.lp.upper[j]);
            if v > tol {
                out.push((
                    format!("bound:{}", self.model.var_name(VarId::from_index(j))),
                    v,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use birp_models::AppId;
    use birp_sim::schedule::validate_against_trace;
    use birp_workload::Trace;

    fn demand_of(catalog: &Catalog, cells: &[(usize, usize, u32)]) -> DemandMatrix {
        let mut d = DemandMatrix::zeros(catalog.num_apps(), catalog.num_edges());
        for &(i, k, v) in cells {
            d.set(AppId(i), EdgeId(k), v);
        }
        d
    }

    fn trace_of(catalog: &Catalog, t: usize, d: &DemandMatrix) -> Trace {
        let mut tr = Trace::zeros(t + 1, catalog.num_apps(), catalog.num_edges());
        for i in 0..catalog.num_apps() {
            for k in 0..catalog.num_edges() {
                tr.set_demand(t, AppId(i), EdgeId(k), d.get(AppId(i), EdgeId(k)));
            }
        }
        tr
    }

    #[test]
    fn batched_problem_serves_everything_under_light_load() {
        let catalog = Catalog::small_scale(42);
        let demand = demand_of(&catalog, &[(0, 0, 6), (0, 3, 4)]);
        let tir = TirMatrix::oracle(&catalog);
        let p = SlotProblem::build(&catalog, 0, &demand, &tir, None, &ProblemConfig::default());
        let (schedule, stats) = p.solve(&SolverConfig::default()).unwrap();
        assert_eq!(
            schedule.total_unserved(),
            0,
            "light load must be fully served"
        );
        assert_eq!(schedule.served(), 10);
        assert!(stats.objective > 0.0);
        // The decoded schedule satisfies every structural constraint.
        let trace = trace_of(&catalog, 0, &demand);
        validate_against_trace(&catalog, &trace, &schedule, None).unwrap();
    }

    #[test]
    fn light_load_prefers_accurate_models() {
        // With tiny demand and ample compute, the lowest-loss model should
        // carry the traffic.
        let catalog = Catalog::small_scale(42);
        let demand = demand_of(&catalog, &[(0, 0, 2)]);
        let tir = TirMatrix::oracle(&catalog);
        let p = SlotProblem::build(&catalog, 0, &demand, &tir, None, &ProblemConfig::default());
        let (schedule, _) = p.solve(&SolverConfig::default()).unwrap();
        let best_loss = catalog
            .models
            .iter()
            .map(|m| m.loss)
            .fold(f64::INFINITY, f64::min);
        let expected = best_loss * 2.0;
        assert!(
            (schedule.loss(&catalog) - expected).abs() < 1e-6,
            "loss {} vs expected {expected}",
            schedule.loss(&catalog)
        );
    }

    #[test]
    fn heavy_load_spills_to_other_edges_or_overflow() {
        let catalog = Catalog::small_scale(42);
        // Far beyond one edge's capacity: must redistribute.
        let demand = demand_of(&catalog, &[(0, 2, 40)]);
        let tir = TirMatrix::oracle(&catalog);
        let p = SlotProblem::build(&catalog, 0, &demand, &tir, None, &ProblemConfig::default());
        let (schedule, _) = p.solve(&SolverConfig::scheduling()).unwrap();
        let moved: u32 = (0..catalog.num_edges())
            .filter(|&k2| k2 != 2)
            .map(|k2| schedule.routing.get(AppId(0), EdgeId(2), EdgeId(k2)))
            .sum();
        assert!(moved > 0, "expected redistribution away from the hot edge");
        let trace = trace_of(&catalog, 0, &demand);
        validate_against_trace(&catalog, &trace, &schedule, None).unwrap();
    }

    #[test]
    fn batch_sizes_respect_beta_estimates() {
        let catalog = Catalog::small_scale(42);
        let demand = demand_of(&catalog, &[(0, 0, 30)]);
        // Pessimistic estimates: beta = 2 everywhere.
        let tir = TirMatrix::from_fn(catalog.num_edges(), catalog.num_models(), |_, _| {
            TirParams::consistent(0.2, 2)
        });
        let p = SlotProblem::build(&catalog, 0, &demand, &tir, None, &ProblemConfig::default());
        let (schedule, _) = p.solve(&SolverConfig::scheduling()).unwrap();
        for d in schedule.deployments.iter().flatten() {
            assert!(d.batch <= 2, "batch {} exceeds beta estimate", d.batch);
        }
    }

    #[test]
    fn serial_mode_produces_serial_schedule() {
        let catalog = Catalog::small_scale(42);
        let demand = demand_of(&catalog, &[(0, 0, 12)]);
        let tir = TirMatrix::initial(&catalog);
        let cfg = ProblemConfig {
            mode: ExecutionMode::Serial { max_serial: 256 },
            ..Default::default()
        };
        let p = SlotProblem::build(&catalog, 0, &demand, &tir, None, &cfg);
        let (schedule, _) = p.solve(&SolverConfig::scheduling()).unwrap();
        assert!(schedule.serial);
        assert_eq!(schedule.served() + schedule.total_unserved(), 12);
        let trace = trace_of(&catalog, 0, &demand);
        validate_against_trace(&catalog, &trace, &schedule, None).unwrap();
    }

    #[test]
    fn network_constraint_limits_model_churn() {
        let catalog = Catalog::small_scale(42);
        let demand = demand_of(&catalog, &[(0, 0, 4)]);
        let tir = TirMatrix::oracle(&catalog);
        // Previous slot deployed model 0 on edge 0; redeploying it is free,
        // any other model pays its compressed weight.
        let mut prev = Schedule::empty(0, catalog.num_apps(), catalog.num_edges());
        prev.deployments[0].push(Deployment {
            app: AppId(0),
            model: ModelId(0),
            batch: 1,
        });
        let p = SlotProblem::build(
            &catalog,
            1,
            &demand,
            &tir,
            Some(&prev),
            &ProblemConfig::default(),
        );
        let (schedule, _) = p.solve(&SolverConfig::default()).unwrap();
        let trace = trace_of(&catalog, 1, &demand);
        validate_against_trace(&catalog, &trace, &schedule, Some(&prev)).unwrap();
    }

    #[test]
    fn zero_demand_yields_empty_schedule() {
        let catalog = Catalog::small_scale(42);
        let demand = DemandMatrix::zeros(catalog.num_apps(), catalog.num_edges());
        let tir = TirMatrix::initial(&catalog);
        let p = SlotProblem::build(&catalog, 0, &demand, &tir, None, &ProblemConfig::default());
        let (schedule, stats) = p.solve(&SolverConfig::default()).unwrap();
        assert_eq!(schedule.served(), 0);
        assert_eq!(schedule.total_unserved(), 0);
        assert!(schedule.deployments.iter().all(|d| d.is_empty()));
        assert!(stats.objective.abs() < 1e-9);
    }

    #[test]
    fn masked_edge_hosts_nothing_and_receives_nothing() {
        let catalog = Catalog::small_scale(42);
        // Demand on the masked edge itself and on a healthy neighbour.
        let demand = demand_of(&catalog, &[(0, 2, 8), (0, 0, 5)]);
        let tir = TirMatrix::oracle(&catalog);
        let mut mask = vec![false; catalog.num_edges()];
        mask[2] = true;
        let cfg = ProblemConfig {
            masked_edges: Some(mask),
            ..Default::default()
        };
        let p = SlotProblem::build(&catalog, 0, &demand, &tir, None, &cfg);
        let (schedule, _) = p.solve(&SolverConfig::scheduling()).unwrap();
        assert!(
            schedule.deployments[2].is_empty(),
            "masked edge must deploy nothing"
        );
        for i in 0..catalog.num_apps() {
            for src in 0..catalog.num_edges() {
                assert_eq!(
                    schedule.routing.get(AppId(i), EdgeId(src), EdgeId(2)),
                    0,
                    "no route into the masked edge"
                );
            }
        }
        // The masked edge's own arrivals are shipped out or dropped, never
        // lost from the accounting.
        let trace = trace_of(&catalog, 0, &demand);
        validate_against_trace(&catalog, &trace, &schedule, None).unwrap();
        assert_eq!(schedule.served() + schedule.total_unserved(), 13);
    }

    // --- delta-path differential tests (DESIGN.md §13) ------------------

    /// The full "refresh equals rebuild" contract: bitwise-equal lowering
    /// plus equal derived state.
    fn assert_same_problem(a: &SlotProblem, b: &SlotProblem) {
        assert_eq!(a.debug_milp(), b.debug_milp(), "lowering diverged");
        assert_eq!(a.warm_point(), b.warm_point(), "warm start diverged");
        assert_eq!(a.root_bound(), b.root_bound(), "root bound diverged");
        assert_eq!(
            a.reuse_outcome(),
            b.reuse_outcome(),
            "reuse outcome diverged"
        );
        assert_eq!(a.inputs(), b.inputs(), "fingerprint diverged");
    }

    #[test]
    fn refresh_demand_drift_matches_rebuild_bitwise() {
        let catalog = Catalog::small_scale(42);
        let tir = TirMatrix::oracle(&catalog);
        let cfg = ProblemConfig::default();
        let d0 = demand_of(&catalog, &[(0, 0, 6), (0, 3, 4)]);
        let mut p = SlotProblem::build(&catalog, 0, &d0, &tir, None, &cfg);
        let (s0, _) = p.solve(&SolverConfig::default()).unwrap();

        let d1 = demand_of(&catalog, &[(0, 0, 9), (0, 3, 4), (0, 1, 5)]);
        let out = p.refresh_with_reuse(&catalog, 1, &d1, &tir, Some(&s0), &cfg, Some(&s0), true);
        match out {
            DeltaOutcome::Applied(s) => {
                assert!(s.demand >= 1, "expected demand deltas, got {s:?}")
            }
            other => panic!("expected Applied, got {other:?}"),
        }
        let fresh =
            SlotProblem::build_with_reuse(&catalog, 1, &d1, &tir, Some(&s0), &cfg, Some(&s0));
        assert_same_problem(&p, &fresh);
    }

    #[test]
    fn refresh_composed_deltas_match_rebuild_bitwise() {
        let catalog = Catalog::small_scale(7);
        let tir0 = TirMatrix::initial(&catalog);
        let cfg0 = ProblemConfig::default();
        let d0 = demand_of(&catalog, &[(0, 0, 5), (0, 2, 7)]);
        let mut p = SlotProblem::build(&catalog, 0, &d0, &tir0, None, &cfg0);
        let (s0, _) = p.solve(&SolverConfig::scheduling()).unwrap();

        // Slot 1 composes four delta kinds: demand drift, a quarantined
        // edge, TIR estimate drift on edge 0 and the x^{t-1} flips from
        // the executed schedule.
        let d1 = demand_of(&catalog, &[(0, 0, 11), (0, 2, 7), (0, 4, 3)]);
        let tir1 = TirMatrix::from_fn(catalog.num_edges(), catalog.num_models(), |e, _| {
            if e == 0 {
                TirParams::consistent(0.3, 4)
            } else {
                TirParams::paper_initial()
            }
        });
        let mut mask = vec![false; catalog.num_edges()];
        mask[3] = true;
        let cfg1 = ProblemConfig {
            masked_edges: Some(mask),
            ..Default::default()
        };
        let out = p.refresh_with_reuse(&catalog, 1, &d1, &tir1, Some(&s0), &cfg1, Some(&s0), true);
        let summary = match out {
            DeltaOutcome::Applied(s) => s,
            other => panic!("expected Applied, got {other:?}"),
        };
        assert!(
            summary.demand >= 1 && summary.mask == 1 && summary.tir >= 1,
            "expected composed deltas, got {summary:?}"
        );
        let fresh =
            SlotProblem::build_with_reuse(&catalog, 1, &d1, &tir1, Some(&s0), &cfg1, Some(&s0));
        assert_same_problem(&p, &fresh);

        // Slot 2 lifts the mask again and refreshes the already-refreshed
        // model (chained edits, lean build this time).
        let d2 = demand_of(&catalog, &[(0, 0, 2)]);
        let (s1, _) = fresh.solve(&SolverConfig::scheduling()).unwrap();
        let out2 =
            p.refresh_with_reuse(&catalog, 2, &d2, &tir1, Some(&s1), &cfg0, Some(&s1), false);
        assert!(matches!(out2, DeltaOutcome::Applied(_)));
        let fresh2 =
            SlotProblem::build_reuse_lean(&catalog, 2, &d2, &tir1, Some(&s1), &cfg0, Some(&s1));
        assert_same_problem(&p, &fresh2);
    }

    #[test]
    fn refresh_budget_change_matches_rebuild_bitwise() {
        let catalog = Catalog::small_scale(42);
        let tir = TirMatrix::oracle(&catalog);
        let cfg = ProblemConfig::default();
        let d = demand_of(&catalog, &[(0, 0, 6)]);
        let mut p = SlotProblem::build(&catalog, 0, &d, &tir, None, &cfg);

        let mut tight = catalog.clone();
        for e in &mut tight.edges {
            e.memory_mb *= 0.5;
            e.network_budget_mb *= 0.75;
        }
        let out = p.refresh_with_reuse(&tight, 1, &d, &tir, None, &cfg, None, true);
        match out {
            DeltaOutcome::Applied(s) => assert_eq!(s.budget, 1, "expected a budget delta"),
            other => panic!("expected Applied, got {other:?}"),
        }
        let fresh = SlotProblem::build(&tight, 1, &d, &tir, None, &cfg);
        assert_same_problem(&p, &fresh);
    }

    #[test]
    fn refresh_rebuilds_on_catalog_or_mode_change() {
        let catalog = Catalog::small_scale(42);
        let tir = TirMatrix::oracle(&catalog);
        let cfg = ProblemConfig::default();
        let d = demand_of(&catalog, &[(0, 0, 6)]);
        let mut p = SlotProblem::build(&catalog, 0, &d, &tir, None, &cfg);

        // A coefficient-statics change (the catalog column fingerprint)
        // cannot be expressed as a delta.
        let mut altered = catalog.clone();
        altered.models[0].loss += 0.01;
        let out = p.refresh_with_reuse(&altered, 1, &d, &tir, None, &cfg, None, true);
        assert_eq!(out, DeltaOutcome::Rebuilt(RebuildReason::CatalogChanged));
        let fresh = SlotProblem::build(&altered, 1, &d, &tir, None, &cfg);
        assert_same_problem(&p, &fresh);

        // An execution-mode flip is structural, not a delta.
        let serial_cfg = ProblemConfig {
            mode: ExecutionMode::Serial { max_serial: 64 },
            ..Default::default()
        };
        let out = p.refresh_with_reuse(&altered, 2, &d, &tir, None, &serial_cfg, None, true);
        assert_eq!(out, DeltaOutcome::Rebuilt(RebuildReason::StructureChanged));
        let fresh = SlotProblem::build(&altered, 2, &d, &tir, None, &serial_cfg);
        assert_same_problem(&p, &fresh);
    }

    #[test]
    fn restore_from_inputs_then_refresh_matches_uninterrupted() {
        let catalog = Catalog::small_scale(42);
        let tir = TirMatrix::oracle(&catalog);
        let cfg = ProblemConfig::default();
        let d0 = demand_of(&catalog, &[(0, 0, 6), (0, 3, 4)]);
        let mut live = SlotProblem::build(&catalog, 0, &d0, &tir, None, &cfg);
        let (s0, _) = live.solve(&SolverConfig::default()).unwrap();

        // Checkpoint: only the fingerprint survives the kill.
        let snapshot = live.inputs().clone();
        let mut restored = SlotProblem::from_inputs(&catalog, snapshot);

        let d1 = demand_of(&catalog, &[(0, 0, 3), (0, 5, 9)]);
        let a = live.refresh_with_reuse(&catalog, 1, &d1, &tir, Some(&s0), &cfg, Some(&s0), true);
        let b =
            restored.refresh_with_reuse(&catalog, 1, &d1, &tir, Some(&s0), &cfg, Some(&s0), true);
        assert_eq!(a, b, "restored refresh must take the same path");
        assert_same_problem(&live, &restored);
    }

    #[test]
    fn refresh_coupling_deltas_match_rebuild_bitwise() {
        let catalog = Catalog::small_scale(42);
        let tir = TirMatrix::oracle(&catalog);
        let d = demand_of(&catalog, &[(0, 0, 6), (0, 3, 4)]);
        let coupled = |prices: Vec<f64>, outside: Vec<u32>| ProblemConfig {
            coupling: Some(ShardCoupling {
                prices,
                outside_demand: outside,
            }),
            ..Default::default()
        };
        let cfg0 = coupled(vec![0.0], vec![5]);
        let mut p = SlotProblem::build(&catalog, 0, &d, &tir, None, &cfg0);

        // A dual-price edit alone — the per-iteration update the sharded
        // coordinator performs between subgradient steps.
        let cfg1 = coupled(vec![0.35], vec![5]);
        let out = p.refresh_with_reuse(&catalog, 0, &d, &tir, None, &cfg1, None, true);
        match out {
            DeltaOutcome::Applied(s) => {
                assert_eq!(s.coupling, 1, "expected one coupling delta, got {s:?}")
            }
            other => panic!("expected Applied, got {other:?}"),
        }
        let fresh = SlotProblem::build(&catalog, 0, &d, &tir, None, &cfg1);
        assert_same_problem(&p, &fresh);

        // Price and outside-demand edits together — a new slot under new
        // duals, refreshed lean as the coordinator does.
        let cfg2 = coupled(vec![0.1], vec![9]);
        let out = p.refresh_with_reuse(&catalog, 1, &d, &tir, None, &cfg2, None, false);
        match out {
            DeltaOutcome::Applied(s) => {
                assert_eq!(s.coupling, 2, "expected two coupling deltas, got {s:?}")
            }
            other => panic!("expected Applied, got {other:?}"),
        }
        let fresh2 = SlotProblem::build_reuse_lean(&catalog, 1, &d, &tir, None, &cfg2, None);
        assert_same_problem(&p, &fresh2);

        // Attaching or detaching coupling entirely is structural.
        let out = p.refresh_with_reuse(
            &catalog,
            2,
            &d,
            &tir,
            None,
            &ProblemConfig::default(),
            None,
            true,
        );
        assert_eq!(out, DeltaOutcome::Rebuilt(RebuildReason::StructureChanged));
        let fresh3 = SlotProblem::build(&catalog, 2, &d, &tir, None, &ProblemConfig::default());
        assert_same_problem(&p, &fresh3);
    }

    #[test]
    fn stale_rhs_fault_makes_refresh_diverge_from_rebuild() {
        let catalog = Catalog::small_scale(42);
        let tir = TirMatrix::oracle(&catalog);
        let cfg = ProblemConfig::default();
        let d0 = demand_of(&catalog, &[(0, 0, 6)]);
        let mut p = SlotProblem::build(&catalog, 0, &d0, &tir, None, &cfg);
        let d1 = demand_of(&catalog, &[(0, 0, 9)]);
        super::delta_fault_stale_rhs(true);
        let out = p.refresh_with_reuse(&catalog, 1, &d1, &tir, None, &cfg, None, true);
        super::delta_fault_stale_rhs(false);
        assert!(matches!(out, DeltaOutcome::Applied(_)));
        let fresh = SlotProblem::build(&catalog, 1, &d1, &tir, None, &cfg);
        assert_ne!(
            p.debug_milp(),
            fresh.debug_milp(),
            "armed fault must leave a stale RHS the differential suite can catch"
        );
    }

    #[test]
    fn problem_dimensions_scale_with_catalog() {
        let catalog = Catalog::small_scale(42);
        let demand = DemandMatrix::zeros(catalog.num_apps(), catalog.num_edges());
        let tir = TirMatrix::initial(&catalog);
        let p = SlotProblem::build(&catalog, 0, &demand, &tir, None, &ProblemConfig::default());
        // x: 18, b: 18, local/out/in: 3 x 6, o: 6.
        assert_eq!(p.num_vars(), 18 + 18 + 18 + 6);
        assert!(p.num_constraints() > 0);
    }
}
