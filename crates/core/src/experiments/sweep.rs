//! Figs. 4 & 5 reproduction: the (eps1, eps2) preset-parameter sweep.
//!
//! For every grid point the sweep runs BIRP with `MabConfig(eps1, eps2)`
//! on the small-scale scenario and reports, at the requested checkpoint
//! slots,
//!
//! * `ΔLoss(t) = Σ_{t' <= t} (loss_BIRP - loss_BIRP-OFF)` (Fig. 4), and
//! * the SLO failure rate `p%` up to `t` (Fig. 5).
//!
//! BIRP-OFF is trace-deterministic, so it runs once and is shared across
//! the grid; the grid itself fans out with rayon.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use birp_mab::MabConfig;
use birp_models::Catalog;
use birp_workload::TraceConfig;

use crate::runner::{run_scheduler, RunConfig};
use crate::schedulers::{Birp, BirpOff};

/// Sweep configuration. The paper's grid is `eps1 in {0.01..0.07}` (x-axis,
/// 10^-2 units) by `eps2 in {0.04..0.10}` (10^-1 units).
#[derive(Debug, Clone)]
pub struct SweepConfig {
    pub catalog: Catalog,
    pub trace: TraceConfig,
    pub eps1_grid: Vec<f64>,
    pub eps2_grid: Vec<f64>,
    /// Slots at which ΔLoss / p% are sampled (paper: 10/100 and 100/300).
    pub checkpoints: Vec<usize>,
    pub run: RunConfig,
}

impl SweepConfig {
    /// The paper's full grid on the small-scale scenario.
    pub fn paper(seed: u64, slots: usize) -> Self {
        SweepConfig {
            catalog: Catalog::small_scale(seed),
            trace: TraceConfig {
                num_slots: slots,
                ..TraceConfig::small_scale(seed)
            },
            eps1_grid: (1..=7).map(|i| i as f64 * 0.01).collect(),
            eps2_grid: (4..=10).map(|i| i as f64 * 0.01).collect(),
            checkpoints: vec![10, 100, 300],
            run: RunConfig::default(),
        }
    }

    /// A scaled-down grid for tests and benches.
    pub fn quick(seed: u64, slots: usize) -> Self {
        SweepConfig {
            catalog: Catalog::small_scale(seed),
            trace: TraceConfig {
                num_slots: slots,
                ..TraceConfig::small_scale(seed)
            },
            eps1_grid: vec![0.01, 0.04, 0.07],
            eps2_grid: vec![0.04, 0.07, 0.10],
            checkpoints: vec![slots / 2, slots - 1],
            run: RunConfig::default(),
        }
    }
}

/// One grid point's measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    pub eps1: f64,
    pub eps2: f64,
    /// `(checkpoint, delta_loss)` pairs.
    pub delta_loss: Vec<(usize, f64)>,
    /// `(checkpoint, p%)` pairs.
    pub failure_pct: Vec<(usize, f64)>,
}

/// The whole sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    pub points: Vec<SweepPoint>,
    pub checkpoints: Vec<usize>,
    /// The shared BIRP-OFF reference cumulative loss at each checkpoint.
    pub off_loss: Vec<(usize, f64)>,
}

/// Run the sweep.
pub fn epsilon_sweep(cfg: &SweepConfig) -> SweepResult {
    let trace = cfg.trace.generate();
    let checkpoints: Vec<usize> = cfg
        .checkpoints
        .iter()
        .map(|&c| c.min(trace.num_slots().saturating_sub(1)))
        .collect();

    // Shared BIRP-OFF reference.
    let mut off = BirpOff::new(cfg.catalog.clone());
    let off_run = run_scheduler(&cfg.catalog, &trace, &mut off, &cfg.run);
    let off_loss: Vec<(usize, f64)> = checkpoints
        .iter()
        .map(|&t| (t, off_run.metrics.cumulative_loss_at(t)))
        .collect();

    let grid: Vec<(f64, f64)> = cfg
        .eps1_grid
        .iter()
        .flat_map(|&e1| cfg.eps2_grid.iter().map(move |&e2| (e1, e2)))
        .collect();

    let points: Vec<SweepPoint> = grid
        .par_iter()
        .map(|&(eps1, eps2)| {
            let mut birp = Birp::new(cfg.catalog.clone(), MabConfig::new(eps1, eps2));
            let run = run_scheduler(&cfg.catalog, &trace, &mut birp, &cfg.run);
            let delta_loss = checkpoints
                .iter()
                .map(|&t| {
                    let off_at = off_loss.iter().find(|(ot, _)| *ot == t).unwrap().1;
                    (t, run.metrics.cumulative_loss_at(t) - off_at)
                })
                .collect();
            let failure_pct = checkpoints
                .iter()
                .map(|&t| (t, run.metrics.failure_rate_pct_at(t)))
                .collect();
            SweepPoint {
                eps1,
                eps2,
                delta_loss,
                failure_pct,
            }
        })
        .collect();

    SweepResult {
        points,
        checkpoints,
        off_loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_covers_grid() {
        let mut cfg = SweepConfig::quick(42, 10);
        cfg.eps1_grid = vec![0.02, 0.06];
        cfg.eps2_grid = vec![0.05, 0.09];
        cfg.trace.mean_rate = 4.0;
        let result = epsilon_sweep(&cfg);
        assert_eq!(result.points.len(), 4);
        for p in &result.points {
            assert_eq!(p.delta_loss.len(), 2);
            assert_eq!(p.failure_pct.len(), 2);
            for &(_, pct) in &p.failure_pct {
                assert!((0.0..=100.0).contains(&pct));
            }
            // Delta loss is finite and not absurd.
            for &(_, d) in &p.delta_loss {
                assert!(d.is_finite());
            }
        }
    }

    #[test]
    fn checkpoints_are_clamped_to_horizon() {
        let mut cfg = SweepConfig::quick(42, 6);
        cfg.checkpoints = vec![3, 999];
        cfg.eps1_grid = vec![0.04];
        cfg.eps2_grid = vec![0.07];
        cfg.trace.mean_rate = 4.0;
        let result = epsilon_sweep(&cfg);
        assert_eq!(result.checkpoints, vec![3, 5]);
    }
}
