//! Process-level chaos harness (DESIGN.md §12).
//!
//! Injects the failure modes the durability layer claims to survive —
//! scheduler panics, kill–resume cycles at arbitrary slots, checkpoint
//! corruption, deaths mid-checkpoint-write, telemetry sink IO failures —
//! into short real runs and verifies the crash-safety contract leg by leg:
//!
//! | leg | injected fault | must hold |
//! |-----|----------------|-----------|
//! | `panic-isolation` | `decide` panics on random slots | run completes, conservation holds, every panic counted |
//! | `kill-resume` | shutdown at random slot boundaries | resumed result identical to the uninterrupted run |
//! | `corruption` | bit flips / truncations of the file | typed [`ResumeError`], never a panic |
//! | `mid-write-kill` | stale garbage `.tmp` from a torn write | previous checkpoint still loads; next save recovers |
//! | `sink-io-failure` | telemetry writer that always errors | sink degrades to memory, no event lost |
//!
//! The harness is deliberately in-process (fast, deterministic, no
//! subprocess scaffolding); the CLI integration tests add the true
//! process-level SIGTERM leg on top.

use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

use birp_models::Catalog;
use birp_sim::{Schedule, SlotOutcome};
use birp_telemetry::{DegradingSink, Event, Level, Sink};
use birp_workload::{Trace, TraceConfig};
use serde::{DeError, Deserialize, Serialize, Value};

use crate::checkpoint::{self, RunCheckpoint};
use crate::demand::DemandMatrix;
use crate::runner::{
    run_scheduler, run_scheduler_resumable, CheckpointPolicy, RunConfig, RunOutcome, RunResult,
};
use crate::schedulers::{BirpOff, Scheduler};

/// Chaos harness tuning.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    pub seed: u64,
    /// Trace length for the injected runs.
    pub slots: usize,
    /// Kill–resume cycles (each at a different derived slot).
    pub kills: usize,
    /// Panic injections in the isolation leg.
    pub panics: usize,
    /// Corrupted-checkpoint mutations to fuzz.
    pub corruptions: usize,
    /// Scratch directory for checkpoint files (created, then removed).
    pub dir: PathBuf,
}

impl ChaosConfig {
    pub fn quick(seed: u64) -> Self {
        ChaosConfig {
            seed,
            slots: 10,
            kills: 4,
            panics: 3,
            corruptions: 32,
            dir: std::env::temp_dir().join(format!("birp-chaos-{}-{seed}", std::process::id())),
        }
    }
}

/// One verified failure-injection leg.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosLeg {
    pub name: String,
    pub passed: bool,
    /// What was injected and what was observed (one line, human-readable).
    pub detail: String,
}

/// Full harness outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosReport {
    pub legs: Vec<ChaosLeg>,
}

impl ChaosReport {
    pub fn all_passed(&self) -> bool {
        self.legs.iter().all(|l| l.passed)
    }
}

/// Small deterministic generator (splitmix64) so legs derive independent
/// fault points from the seed without dragging a full RNG dependency in.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn setup(cfg: &ChaosConfig) -> (Catalog, Trace) {
    let catalog = Catalog::small_scale(cfg.seed);
    let trace = TraceConfig {
        num_slots: cfg.slots,
        mean_rate: 5.0,
        ..TraceConfig::small_scale(cfg.seed.wrapping_add(1))
    }
    .generate();
    (catalog, trace)
}

/// Wrapper that panics on the chosen slots (the injected fault for the
/// isolation leg) and raises the shutdown flag on another (the injected
/// SIGTERM for the kill legs).
struct Saboteur {
    inner: BirpOff,
    panic_on: Vec<usize>,
    kill_at: Option<usize>,
    flag: std::sync::Arc<AtomicBool>,
}

impl Scheduler for Saboteur {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn decide(&mut self, t: usize, demand: &DemandMatrix, prev: Option<&Schedule>) -> Schedule {
        if self.kill_at == Some(t) {
            self.flag.store(true, Ordering::SeqCst);
        }
        assert!(
            !self.panic_on.contains(&t),
            "chaos: injected panic at t={t}"
        );
        self.inner.decide(t, demand, prev)
    }
    fn observe(&mut self, outcome: &SlotOutcome) {
        self.inner.observe(outcome);
    }
    fn set_edge_mask(&mut self, mask: Option<&[bool]>) {
        self.inner.set_edge_mask(mask);
    }
    fn export_state(&self) -> Value {
        self.inner.export_state()
    }
    fn import_state(&mut self, state: &Value) -> Result<(), DeError> {
        self.inner.import_state(state)
    }
}

fn saboteur(catalog: &Catalog) -> Saboteur {
    Saboteur {
        inner: BirpOff::new(catalog.clone()),
        panic_on: Vec::new(),
        kill_at: None,
        flag: std::sync::Arc::new(AtomicBool::new(false)),
    }
}

/// Compare the parts of a result that are deterministic (telemetry carries
/// wall-clock latencies, so the full record is excluded by design).
fn deterministic_digest(r: &RunResult) -> String {
    serde_json::to_string(&Value::Object(vec![
        ("scheduler".into(), Value::Str(r.scheduler.clone())),
        ("metrics".into(), Serialize::to_value(&r.metrics)),
        ("health".into(), Serialize::to_value(&r.health)),
        ("offered".into(), r.offered.into()),
    ]))
    .expect("Value serialization cannot fail")
}

/// Run every chaos leg and report what survived.
pub fn chaos_experiment(cfg: &ChaosConfig) -> ChaosReport {
    std::fs::create_dir_all(&cfg.dir).ok();
    // Isolated panics unwind through the default hook, which would spray
    // backtrace banners over the report; silence it for the harness run.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut mix = Mix(cfg.seed ^ 0xC4A05);
    let (catalog, trace) = setup(cfg);
    let run_cfg = RunConfig::default();
    let baseline = run_scheduler(
        &catalog,
        &trace,
        &mut BirpOff::new(catalog.clone()),
        &run_cfg,
    );
    let expected = deterministic_digest(&baseline);
    let mut legs = Vec::new();

    // --- leg 1: panic isolation -------------------------------------------
    {
        let mut panic_on = Vec::new();
        while panic_on.len() < cfg.panics.min(cfg.slots.saturating_sub(1)) {
            let t = mix.below(cfg.slots.saturating_sub(1).max(1));
            if !panic_on.contains(&t) {
                panic_on.push(t);
            }
        }
        let path = cfg.dir.join("panic.ckpt");
        let policy = CheckpointPolicy {
            path: path.clone(),
            every: 1,
            spec: Value::Null,
        };
        let mut s = saboteur(&catalog);
        s.panic_on = panic_on.clone();
        let outcome = run_scheduler_resumable(
            &catalog,
            &trace,
            &mut s,
            &run_cfg,
            Some(&policy),
            None,
            None,
        );
        let (passed, detail) = match outcome {
            Ok(RunOutcome::Complete(r)) => {
                let conserved = r.metrics.served + r.metrics.dropped == r.offered;
                // The last periodic checkpoint (top of the final slot) has
                // seen every injected panic: none were placed on the final
                // slot.
                let counted = checkpoint::load(&path)
                    .map(|ck| ck.runner.panic_isolated)
                    .unwrap_or(0);
                (
                    conserved && counted == panic_on.len() as u64,
                    format!(
                        "injected {} panic(s) at slots {:?}; run completed, {} isolated, conservation {}",
                        panic_on.len(),
                        panic_on,
                        counted,
                        if conserved { "held" } else { "BROKEN" },
                    ),
                )
            }
            Ok(RunOutcome::Interrupted { .. }) => (false, "run interrupted unexpectedly".into()),
            Err(e) => (false, format!("run failed: {e}")),
        };
        legs.push(ChaosLeg {
            name: "panic-isolation".into(),
            passed,
            detail,
        });
    }

    // --- leg 2: kill–resume cycles ----------------------------------------
    {
        let mut passed = true;
        let mut details = Vec::new();
        for i in 0..cfg.kills {
            let kill_at = mix.below(cfg.slots.saturating_sub(1).max(1));
            let path = cfg.dir.join(format!("kill-{i}.ckpt"));
            let policy = CheckpointPolicy {
                path: path.clone(),
                every: 0,
                spec: Value::Null,
            };
            let mut s = saboteur(&catalog);
            s.kill_at = Some(kill_at);
            let flag = std::sync::Arc::clone(&s.flag);
            let first = run_scheduler_resumable(
                &catalog,
                &trace,
                &mut s,
                &run_cfg,
                Some(&policy),
                None,
                Some(&flag),
            );
            match first {
                Ok(RunOutcome::Interrupted { next_slot }) => {
                    let resumed = checkpoint::load(&path).and_then(|ck| {
                        run_scheduler_resumable(
                            &catalog,
                            &trace,
                            &mut BirpOff::new(catalog.clone()),
                            &run_cfg,
                            None,
                            Some(ck.runner),
                            None,
                        )
                    });
                    match resumed {
                        Ok(RunOutcome::Complete(r)) if deterministic_digest(&r) == expected => {
                            details.push(format!("t={next_slot} ok"));
                        }
                        Ok(RunOutcome::Complete(_)) => {
                            passed = false;
                            details.push(format!("t={next_slot} DIVERGED"));
                        }
                        Ok(RunOutcome::Interrupted { .. }) | Err(_) => {
                            passed = false;
                            details.push(format!("t={next_slot} resume failed"));
                        }
                    }
                }
                _ => {
                    passed = false;
                    details.push(format!("kill at {kill_at} never interrupted"));
                }
            }
        }
        legs.push(ChaosLeg {
            name: "kill-resume".into(),
            passed,
            detail: format!(
                "{} cycle(s), resumed runs vs uninterrupted baseline: [{}]",
                cfg.kills,
                details.join(", ")
            ),
        });
    }

    // --- leg 3: corrupted checkpoints -------------------------------------
    {
        let path = cfg.dir.join("corrupt.ckpt");
        let ck = RunCheckpoint {
            spec: Value::Null,
            runner: crate::runner::RunnerCheckpoint::fresh(catalog.num_apps(), catalog.num_edges()),
        };
        let (mut passed, mut survived, mut detail) = (true, 0usize, String::new());
        if let Err(e) = checkpoint::save(&path, &ck) {
            passed = false;
            detail = format!("seed checkpoint save failed: {e}");
        } else {
            let bytes = std::fs::read(&path).unwrap_or_default();
            for _ in 0..cfg.corruptions {
                let mutated = if mix.below(2) == 0 {
                    let mut m = bytes.clone();
                    let at = mix.below(m.len());
                    m[at] ^= 1 << mix.below(8);
                    m
                } else {
                    bytes[..mix.below(bytes.len())].to_vec()
                };
                // `parse` must return a typed error — and must not panic
                // even if it has a bug (that is what this leg exists to
                // catch).
                let outcome = std::panic::catch_unwind(|| checkpoint::parse(&mutated));
                match outcome {
                    Ok(Err(_)) => survived += 1,
                    Ok(Ok(_)) => {
                        // A mutation that still parses is possible only if
                        // it left header + payload semantically intact;
                        // flips and truncations here never do.
                        passed = false;
                        detail = "a corrupted checkpoint parsed successfully".into();
                    }
                    Err(_) => {
                        passed = false;
                        detail = "checkpoint parser panicked on corrupted input".into();
                    }
                }
            }
            if passed {
                detail = format!(
                    "{survived}/{} mutation(s) (bit flips + truncations) rejected with typed errors",
                    cfg.corruptions
                );
            }
        }
        legs.push(ChaosLeg {
            name: "corruption".into(),
            passed,
            detail,
        });
    }

    // --- leg 4: death mid-checkpoint-write --------------------------------
    {
        let path = cfg.dir.join("midwrite.ckpt");
        let ck = RunCheckpoint {
            spec: Value::Null,
            runner: crate::runner::RunnerCheckpoint::fresh(catalog.num_apps(), catalog.num_edges()),
        };
        let run = || -> Result<(), String> {
            checkpoint::save(&path, &ck).map_err(|e| e.to_string())?;
            // A process killed mid-write leaves a torn `.tmp`; the real file
            // must be untouched and the next save must recover.
            std::fs::write(checkpoint::tmp_path(&path), b"torn partial write")
                .map_err(|e| e.to_string())?;
            checkpoint::load(&path).map_err(|e| format!("previous checkpoint lost: {e}"))?;
            checkpoint::save(&path, &ck).map_err(|e| format!("save over torn tmp: {e}"))?;
            if checkpoint::tmp_path(&path).exists() {
                return Err("temp file survived the recovering save".into());
            }
            checkpoint::load(&path).map_err(|e| format!("recovered checkpoint invalid: {e}"))?;
            Ok(())
        };
        let (passed, detail) = match run() {
            Ok(()) => (
                true,
                "torn .tmp ignored; prior checkpoint intact; next save recovered atomically".into(),
            ),
            Err(e) => (false, e),
        };
        legs.push(ChaosLeg {
            name: "mid-write-kill".into(),
            passed,
            detail,
        });
    }

    // --- leg 5: telemetry sink IO failure ---------------------------------
    {
        struct BrokenPipe;
        impl Write for BrokenPipe {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::from(std::io::ErrorKind::BrokenPipe))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = DegradingSink::from_writer(Box::new(BrokenPipe));
        for i in 0..3u64 {
            sink.record(&Event {
                level: Level::Info,
                name: "chaos.probe".to_string(),
                t_ms: i as f64,
                fields: vec![("i", i.into())],
            });
        }
        let degraded = sink.is_degraded();
        let kept = sink.drain_fallback().len();
        legs.push(ChaosLeg {
            name: "sink-io-failure".into(),
            passed: degraded && kept == 3,
            detail: format!(
                "writer failed on first record; degraded={degraded}, {kept}/3 event(s) preserved in memory"
            ),
        });
    }

    std::panic::set_hook(prev_hook);
    let _ = std::fs::remove_dir_all(&cfg.dir);
    ChaosReport { legs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_harness_passes_every_leg() {
        let report = chaos_experiment(&ChaosConfig {
            dir: std::env::temp_dir().join(format!("birp-chaos-test-{}", std::process::id())),
            ..ChaosConfig::quick(13)
        });
        for leg in &report.legs {
            assert!(leg.passed, "{}: {}", leg.name, leg.detail);
        }
        assert_eq!(report.legs.len(), 5);
    }
}
