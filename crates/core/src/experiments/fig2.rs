//! Fig. 2 reproduction: TIR raw data and piecewise fits for
//! LeNet / GoogLeNet / ResNet-18 on a Jetson Nano.
//!
//! The experiment mirrors the paper's procedure: for every batch size
//! `b in 1..=16`, run the batch `reps` times (the paper uses 5), compute
//! the throughput ratio against the measured batch-1 baseline, then fit
//! the piecewise power/constant model to the samples.

use birp_models::{AppId, Catalog, EdgeId, ModelId};
use birp_sim::{Deployment, EdgeSim, Schedule, SimConfig};
use birp_tir::{fit_piecewise, FitResult, TirParams, TirSample};
use serde::{Deserialize, Serialize};

/// Fit result for one model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Result {
    pub model: String,
    /// Raw `(batch, TIR)` measurements (the blue dots of Fig. 2).
    pub samples: Vec<TirSample>,
    /// The fitted piecewise function (the red/green lines of Fig. 2).
    pub fit: FitResult,
    /// Ground truth the simulator executed (the paper's published fit).
    pub truth: TirParams,
}

/// Execute one (model, batch) run on the Fig. 2 testbed and return the
/// measured execution time.
fn measure_exec_ms(sim: &EdgeSim, model: usize, batch: u32, rep: usize) -> f64 {
    let catalog = sim.catalog();
    let mut s = Schedule::empty(rep, catalog.num_apps(), catalog.num_edges());
    s.routing.set(AppId(0), EdgeId(0), EdgeId(0), batch);
    s.deployments[0].push(Deployment {
        app: AppId(0),
        model: ModelId(model),
        batch,
    });
    let out = sim.execute_slot(&s, None);
    out.batches[0].exec_ms
}

/// Run the Fig. 2 profiling sweep.
pub fn fig2_experiment(seed: u64, max_batch: u32, reps: usize) -> Vec<Fig2Result> {
    let catalog = Catalog::fig2(seed);
    // Profiling runs on an otherwise idle device: low measurement noise,
    // like the paper's 5-repetition offline sweep.
    let sim = EdgeSim::new(
        catalog.clone(),
        SimConfig {
            seed,
            exec_noise_sigma: 0.01,
            ..Default::default()
        },
    );
    let mut results = Vec::new();
    for m in 0..catalog.num_models() {
        // Baseline throughput at batch 1 (mean over reps).
        let base_ms: f64 = (0..reps)
            .map(|r| measure_exec_ms(&sim, m, 1, r * 1000 + 1))
            .sum::<f64>()
            / reps as f64;
        let thr1 = 1.0 / base_ms;

        let mut samples = Vec::new();
        for b in 1..=max_batch {
            for r in 0..reps {
                let exec = measure_exec_ms(&sim, m, b, (b as usize) * 100 + r);
                let thr_b = b as f64 / exec;
                samples.push(TirSample::new(b, thr_b / thr1));
            }
        }
        let fit = fit_piecewise(&samples).expect("fig2 sweep always identifiable");
        results.push(Fig2Result {
            model: catalog.model(ModelId(m)).name.clone(),
            samples,
            fit,
            truth: catalog.edges[0].tir_truth[m],
        });
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_recover_paper_parameters() {
        let results = fig2_experiment(11, 16, 5);
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!(
                (r.fit.params.eta - r.truth.eta).abs() < 0.06,
                "{}: eta {} vs truth {}",
                r.model,
                r.fit.params.eta,
                r.truth.eta
            );
            assert!(
                (r.fit.params.beta as i64 - r.truth.beta as i64).abs() <= 2,
                "{}: beta {} vs truth {}",
                r.model,
                r.fit.params.beta,
                r.truth.beta
            );
        }
    }

    #[test]
    fn lenet_batches_best() {
        // Fig. 2's qualitative story: LeNet (smallest) gains the most from
        // batching (eta 0.32 vs 0.12).
        let results = fig2_experiment(11, 16, 5);
        let lenet = results.iter().find(|r| r.model == "LeNet").unwrap();
        let resnet = results.iter().find(|r| r.model == "ResNet-18").unwrap();
        assert!(lenet.fit.params.eta > resnet.fit.params.eta + 0.1);
    }

    #[test]
    fn sample_counts() {
        let results = fig2_experiment(1, 8, 3);
        for r in &results {
            assert_eq!(r.samples.len(), 8 * 3);
        }
    }
}
