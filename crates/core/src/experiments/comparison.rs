//! Figs. 6 & 7 reproduction: head-to-head scheduler comparison.
//!
//! Small scale (Fig. 6): 1 application, 3 models, offline-profiled TIR,
//! schedulers BIRP / BIRP-OFF / OAEI / MAX. Large scale (Fig. 7): 5
//! applications, 25 models, schedulers BIRP / OAEI / MAX (the paper drops
//! BIRP-OFF at scale because offline profiling 25 models x 3 device kinds
//! "takes a long time").

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use birp_mab::MabConfig;
use birp_models::Catalog;
use birp_solver::SolverConfig;
use birp_workload::{Trace, TraceConfig};

use crate::runner::{run_scheduler, RunConfig, RunResult};
use crate::schedulers::{Birp, BirpOff, MaxBatch, Oaei, Scheduler, ShardConfig, TemporalReuse};

/// Which algorithm to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerKind {
    Birp,
    BirpOff,
    Oaei,
    Max,
}

impl SchedulerKind {
    pub fn build(
        self,
        catalog: &Catalog,
        mab: MabConfig,
        seed: u64,
        solver: &SolverConfig,
    ) -> Box<dyn Scheduler + Send> {
        self.build_with_reuse(catalog, mab, seed, solver, &TemporalReuse::default())
    }

    pub fn build_with_reuse(
        self,
        catalog: &Catalog,
        mab: MabConfig,
        seed: u64,
        solver: &SolverConfig,
        reuse: &TemporalReuse,
    ) -> Box<dyn Scheduler + Send> {
        self.build_sharded(catalog, mab, seed, solver, reuse, None)
    }

    /// Like [`build_with_reuse`](Self::build_with_reuse) but optionally
    /// wiring the MILP schedulers to the sharded decomposition coordinator.
    /// Non-MILP schedulers ignore the shard config.
    pub fn build_sharded(
        self,
        catalog: &Catalog,
        mab: MabConfig,
        seed: u64,
        solver: &SolverConfig,
        reuse: &TemporalReuse,
        shards: Option<ShardConfig>,
    ) -> Box<dyn Scheduler + Send> {
        match self {
            SchedulerKind::Birp => {
                let mut s = Birp::new(catalog.clone(), mab)
                    .with_solver(solver.clone())
                    .with_reuse(reuse.clone());
                if let Some(cfg) = shards {
                    s = s.with_shards(cfg);
                }
                Box::new(s)
            }
            SchedulerKind::BirpOff => {
                let mut s = BirpOff::new(catalog.clone())
                    .with_solver(solver.clone())
                    .with_reuse(reuse.clone());
                if let Some(cfg) = shards {
                    s = s.with_shards(cfg);
                }
                Box::new(s)
            }
            SchedulerKind::Oaei => {
                Box::new(Oaei::new(catalog.clone(), seed).with_solver(solver.clone()))
            }
            SchedulerKind::Max => Box::new(MaxBatch::paper_default(catalog.clone())),
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::Birp => "BIRP",
            SchedulerKind::BirpOff => "BIRP-OFF",
            SchedulerKind::Oaei => "OAEI",
            SchedulerKind::Max => "MAX",
        }
    }
}

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct ComparisonConfig {
    pub catalog: Catalog,
    pub trace: TraceConfig,
    pub schedulers: Vec<SchedulerKind>,
    pub mab: MabConfig,
    pub run: RunConfig,
    /// Branch-and-bound budget for the MILP-based schedulers. The
    /// large-scale preset uses a smaller node budget: the LP-guided warm
    /// start already lands within a few percent of optimal and node LPs
    /// are ~10x more expensive at 25 models.
    pub solver: SolverConfig,
    pub seed: u64,
}

impl ComparisonConfig {
    /// The paper's small-scale setup (Fig. 6) with a configurable horizon.
    pub fn small_scale(seed: u64, slots: usize) -> Self {
        ComparisonConfig {
            catalog: Catalog::small_scale(seed),
            trace: TraceConfig {
                num_slots: slots,
                ..TraceConfig::small_scale(seed)
            },
            schedulers: vec![
                SchedulerKind::BirpOff,
                SchedulerKind::Birp,
                SchedulerKind::Oaei,
                SchedulerKind::Max,
            ],
            mab: MabConfig::paper_preset(),
            run: RunConfig::default(),
            solver: SolverConfig::scheduling(),
            seed,
        }
    }

    /// The paper's large-scale setup (Fig. 7).
    pub fn large_scale(seed: u64, slots: usize) -> Self {
        ComparisonConfig {
            catalog: Catalog::large_scale(seed),
            trace: TraceConfig {
                num_slots: slots,
                ..TraceConfig::large_scale(seed)
            },
            schedulers: vec![SchedulerKind::Birp, SchedulerKind::Oaei, SchedulerKind::Max],
            mab: MabConfig::paper_preset(),
            run: RunConfig::default(),
            solver: SolverConfig {
                node_limit: 16,
                root_dive: false,
                ..SolverConfig::scheduling()
            },
            seed,
        }
    }
}

/// One scheduler's results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComparisonResult {
    pub kind: SchedulerKind,
    pub run: RunResult,
}

/// Run every configured scheduler over the same trace (rayon-parallel —
/// each run is independent).
pub fn compare_schedulers(cfg: &ComparisonConfig) -> Vec<ComparisonResult> {
    let trace: Trace = cfg.trace.generate();
    cfg.schedulers
        .par_iter()
        .map(|&kind| {
            let mut scheduler =
                kind.build_with_reuse(&cfg.catalog, cfg.mab, cfg.seed, &cfg.solver, &cfg.run.reuse);
            let run = run_scheduler(&cfg.catalog, &trace, scheduler.as_mut(), &cfg.run);
            ComparisonResult { kind, run }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down Fig. 6 must already show the paper's ordering:
    /// batch-aware schedulers lose less accuracy than serial OAEI, and MAX
    /// loses the most.
    #[test]
    fn small_scale_ordering_holds_on_short_run() {
        let mut cfg = ComparisonConfig::small_scale(42, 30);
        cfg.trace.mean_rate = 8.0;
        let results = compare_schedulers(&cfg);
        assert_eq!(results.len(), 4);
        let loss = |k: SchedulerKind| {
            results
                .iter()
                .find(|r| r.kind == k)
                .unwrap()
                .run
                .metrics
                .total_loss
        };
        let birp = loss(SchedulerKind::Birp);
        let max = loss(SchedulerKind::Max);
        assert!(
            birp < max,
            "BIRP loss {birp} should beat MAX {max} (small models only)"
        );
        // All runs conserve requests.
        for r in &results {
            assert_eq!(
                r.run.metrics.served + r.run.metrics.dropped,
                r.run.offered,
                "{}",
                r.run.scheduler
            );
        }
    }

    #[test]
    fn labels_match_kinds() {
        assert_eq!(SchedulerKind::Birp.label(), "BIRP");
        assert_eq!(SchedulerKind::BirpOff.label(), "BIRP-OFF");
        assert_eq!(SchedulerKind::Oaei.label(), "OAEI");
        assert_eq!(SchedulerKind::Max.label(), "MAX");
    }
}
