//! Resilience head-to-head: BIRP with and without the failure-detection /
//! quarantine-and-reroute layer under a canned fault plan.
//!
//! Three runs over the same trace:
//!
//! 1. **blind** — BIRP with faults injected, resilience off (the
//!    pre-robustness behaviour: the scheduler keeps planning onto dark
//!    edges),
//! 2. **resilient** — same faults, [`RunConfig::resilience`] on,
//! 3. **fault-free** — no faults, resilience on (the false-positive
//!    control: the detector must stay silent).
//!
//! The headline numbers are SLO failures *inside* vs *outside* the plan's
//! down-windows, the detection latency in slots, and the false-positive
//! quarantine count. Only this experiment code reads the [`FaultPlan`] —
//! to split metrics by window after the fact; the detector and schedulers
//! never see it.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use birp_mab::MabConfig;
use birp_models::{Catalog, EdgeId};
use birp_sim::{FaultPlan, SimConfig};
use birp_solver::SolverConfig;
use birp_workload::{Trace, TraceConfig};

use crate::health::HealthConfig;
use crate::runner::{run_scheduler, RunConfig, RunResult};
use crate::schedulers::{Birp, Scheduler};

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    pub catalog: Catalog,
    pub trace: TraceConfig,
    /// The injected faults (executor-side only).
    pub faults: FaultPlan,
    /// Detector tuning for the resilient runs.
    pub health: HealthConfig,
    pub mab: MabConfig,
    pub solver: SolverConfig,
    pub seed: u64,
    /// The edge whose hard outage anchors the detection-latency metric.
    pub outage_edge: EdgeId,
    /// First slot of that outage.
    pub outage_from: usize,
}

impl ResilienceConfig {
    /// The canned plan, scaled to `slots`: a hard outage on edge 2 for the
    /// second quarter of the horizon, a degraded link into edge 3 inside
    /// that window, and a flaky (intermittent) edge 4 later on.
    pub fn with_horizon(seed: u64, slots: usize) -> Self {
        let outage_from = slots / 4;
        let outage_to = slots / 2;
        let flaky_from = slots * 5 / 8;
        let flaky_to = slots * 7 / 8;
        let faults = FaultPlan::default()
            .with_outage(EdgeId(2), outage_from, outage_to)
            .with_link_fault(EdgeId(1), EdgeId(3), outage_from + 2, outage_to, 0.25)
            .with_flaky(EdgeId(4), flaky_from, flaky_to, 3, 2);
        ResilienceConfig {
            catalog: Catalog::small_scale(seed),
            trace: TraceConfig {
                num_slots: slots,
                mean_rate: 8.0,
                ..TraceConfig::small_scale(seed)
            },
            faults,
            health: HealthConfig::default(),
            mab: MabConfig::paper_preset(),
            // Serial node evaluation: the experiment's bitwise-reproducible
            // guarantee must not ride on wave scheduling order.
            solver: SolverConfig {
                parallel: false,
                ..SolverConfig::scheduling()
            },
            seed,
            outage_edge: EdgeId(2),
            outage_from,
        }
    }

    /// Full horizon (48 slots — outage [12,24), flaky [30,42)).
    pub fn paper_preset(seed: u64) -> Self {
        Self::with_horizon(seed, 48)
    }

    /// CI-sized horizon (28 slots).
    pub fn smoke(seed: u64) -> Self {
        Self::with_horizon(seed, 28)
    }
}

/// One run's headline figures.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunSummary {
    pub label: String,
    pub total_loss: f64,
    pub failure_rate_pct: f64,
    /// SLO failures during slots where the plan has some edge down.
    pub slo_failures_in_window: u64,
    /// SLO failures in fault-free slots.
    pub slo_failures_out_window: u64,
    pub served: u64,
    pub dropped: u64,
    pub offered: u64,
    /// Requests moved off masked edges (0 when resilience is off).
    pub rerouted: u64,
    /// Recovery probes placed (0 when resilience is off).
    pub probes: u64,
    pub quarantine_events: usize,
}

/// The experiment's serialisable record (written to `results/resilience.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResilienceResult {
    pub slots: usize,
    pub seed: u64,
    /// Slots in which the plan has at least one edge down.
    pub in_window_slots: usize,
    pub blind: RunSummary,
    pub resilient: RunSummary,
    pub fault_free: RunSummary,
    /// Slots from the anchor outage's start to its quarantine (`None` =
    /// never detected).
    pub detection_latency_slots: Option<usize>,
    /// Quarantine episodes on the fault-free control run (must be 0).
    pub false_positive_quarantines: usize,
}

fn summarize(label: &str, run: &RunResult, in_window: &[bool]) -> RunSummary {
    let mut inside = 0u64;
    let mut outside = 0u64;
    for (t, &f) in run.metrics.failures_by_slot.iter().enumerate() {
        if in_window.get(t).copied().unwrap_or(false) {
            inside += f;
        } else {
            outside += f;
        }
    }
    let health = run.health.as_ref();
    RunSummary {
        label: label.to_string(),
        total_loss: run.metrics.total_loss,
        failure_rate_pct: run.metrics.failure_rate_pct,
        slo_failures_in_window: inside,
        slo_failures_out_window: outside,
        served: run.metrics.served,
        dropped: run.metrics.dropped,
        offered: run.offered,
        rerouted: health.map_or(0, |h| h.rerouted),
        probes: health.map_or(0, |h| h.probes),
        quarantine_events: health.map_or(0, |h| h.events.len()),
    }
}

/// Run the three-way comparison.
pub fn resilience_experiment(cfg: &ResilienceConfig) -> ResilienceResult {
    let trace: Trace = cfg.trace.generate();
    let slots = cfg.trace.num_slots;
    let ne = cfg.catalog.num_edges();
    // Post-hoc window split — experiment bookkeeping, never scheduler input.
    let in_window: Vec<bool> = (0..slots)
        .map(|t| (0..ne).any(|k| cfg.faults.is_down(EdgeId(k), t)))
        .collect();

    let variants: [(&str, bool, bool); 3] = [
        ("BIRP (fault-blind)", true, false),
        ("BIRP + resilience", true, true),
        ("BIRP + resilience (fault-free)", false, true),
    ];
    let runs: Vec<RunResult> = variants
        .par_iter()
        .map(|&(_, faulted, resilient)| {
            let run_cfg = RunConfig {
                sim: SimConfig {
                    faults: if faulted {
                        cfg.faults.clone()
                    } else {
                        FaultPlan::default()
                    },
                    seed: cfg.seed,
                    ..SimConfig::default()
                },
                resilience: resilient.then_some(cfg.health),
                ..RunConfig::default()
            };
            let mut scheduler: Box<dyn Scheduler + Send> =
                Box::new(Birp::new(cfg.catalog.clone(), cfg.mab).with_solver(cfg.solver.clone()));
            run_scheduler(&cfg.catalog, &trace, scheduler.as_mut(), &run_cfg)
        })
        .collect();

    let detection_latency_slots = runs[1].health.as_ref().and_then(|h| {
        h.events
            .iter()
            .find(|e| e.edge == cfg.outage_edge && e.entered >= cfg.outage_from)
            .map(|e| e.entered - cfg.outage_from)
    });
    let false_positive_quarantines = runs[2].health.as_ref().map_or(0, |h| h.events.len());

    ResilienceResult {
        slots,
        seed: cfg.seed,
        in_window_slots: in_window.iter().filter(|&&w| w).count(),
        blind: summarize(variants[0].0, &runs[0], &in_window),
        resilient: summarize(variants[1].0, &runs[1], &in_window),
        fault_free: summarize(variants[2].0, &runs[2], &in_window),
        detection_latency_slots,
        false_positive_quarantines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resilience_reduces_in_window_slo_failures() {
        let cfg = ResilienceConfig::smoke(42);
        let r = resilience_experiment(&cfg);
        assert!(
            r.resilient.slo_failures_in_window < r.blind.slo_failures_in_window,
            "resilient BIRP must strictly beat fault-blind BIRP inside fault \
             windows: resilient={} blind={}",
            r.resilient.slo_failures_in_window,
            r.blind.slo_failures_in_window
        );
        assert_eq!(
            r.false_positive_quarantines, 0,
            "the fault-free control run must never quarantine"
        );
        let latency = r
            .detection_latency_slots
            .expect("the anchor outage must be detected");
        assert!(latency <= 4, "detection took {latency} slots");
        for s in [&r.blind, &r.resilient, &r.fault_free] {
            assert_eq!(s.served + s.dropped, s.offered, "{}", s.label);
        }
    }

    #[test]
    fn resilience_experiment_is_bitwise_reproducible() {
        let cfg = ResilienceConfig::smoke(7);
        let a = serde_json::to_string(&resilience_experiment(&cfg)).unwrap();
        let b = serde_json::to_string(&resilience_experiment(&cfg)).unwrap();
        assert_eq!(a, b, "same seed must reproduce the exact result");
    }
}
