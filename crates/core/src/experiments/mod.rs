//! One entry point per paper table / figure.
//!
//! Every function returns a serialisable record; the `birp-bench` crate's
//! `repro-*` binaries print them as the rows/series the paper reports, and
//! the integration tests assert the qualitative claims on scaled-down runs.
//!
//! | module | reproduces |
//! |--------|------------|
//! | [`table1`] | Table 1 — serial utilisation + FPS |
//! | [`fig2`] | Fig. 2 — TIR raw data + piecewise fits |
//! | [`sweep`] | Figs. 4 & 5 — (eps1, eps2) grids of ΔLoss and p% |
//! | [`comparison`] | Figs. 6 & 7 — CDF / per-slot loss / cumulative loss |
//! | [`resilience`] | DESIGN.md §10 — BIRP ± resilience under a canned fault plan |
//! | [`chaos`] | DESIGN.md §12 — failure-injection legs over the durability layer |

pub mod chaos;
pub mod comparison;
pub mod fig2;
pub mod resilience;
pub mod sweep;
pub mod table1;

pub use chaos::{chaos_experiment, ChaosConfig, ChaosLeg, ChaosReport};
pub use comparison::{compare_schedulers, ComparisonConfig, ComparisonResult, SchedulerKind};
pub use fig2::{fig2_experiment, Fig2Result};
pub use resilience::{resilience_experiment, ResilienceConfig, ResilienceResult, RunSummary};
pub use sweep::{epsilon_sweep, SweepConfig, SweepPoint, SweepResult};
pub use table1::{table1_experiment, Table1Result};
