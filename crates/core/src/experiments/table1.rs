//! Table 1 reproduction: serial-execution utilisation and FPS.

use birp_models::{Catalog, EdgeId, ModelId};
use birp_sim::{measure_utilization, UtilSample};
use serde::{Deserialize, Serialize};

/// One measured row plus the paper's published reference values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Result {
    pub model: String,
    pub device: String,
    pub measured: UtilSample,
    pub reference_fps: f64,
    pub reference_cpu_pct: f64,
}

/// Re-measure every row of paper Table 1 in simulation.
pub fn table1_experiment(seed: u64, windows: usize) -> Vec<Table1Result> {
    let catalog = Catalog::table1(seed);
    let reference = birp_models::table1_reference();
    let mut rows = Vec::new();
    for e in 0..catalog.num_edges() {
        for m in 0..catalog.num_models() {
            let edge = catalog.edge(EdgeId(e));
            let model = catalog.model(ModelId(m));
            let measured = measure_utilization(&catalog, EdgeId(e), ModelId(m), windows, seed);
            let refrow = reference
                .iter()
                .find(|r| r.model == model.name && r.device == edge.kind)
                .expect("reference row");
            rows.push(Table1Result {
                model: model.name.clone(),
                device: edge.kind.name().to_string(),
                measured,
                reference_fps: refrow.avg_fps,
                reference_cpu_pct: refrow.util.cpu_pct,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_eight_rows_near_reference() {
        let rows = table1_experiment(3, 300);
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(
                (r.measured.avg_fps - r.reference_fps).abs() / r.reference_fps < 0.05,
                "{} on {}: fps {} vs ref {}",
                r.model,
                r.device,
                r.measured.avg_fps,
                r.reference_fps
            );
        }
    }

    #[test]
    fn motivation_holds_small_models_underutilise() {
        let rows = table1_experiment(3, 300);
        let yolo_nano = rows
            .iter()
            .find(|r| r.model == "Yolov4-t" && r.device == "Jetson Nano")
            .unwrap();
        assert!(
            yolo_nano.measured.gpu_pct < 78.0,
            "gpu {}",
            yolo_nano.measured.gpu_pct
        );
        let bert_nano = rows
            .iter()
            .find(|r| r.model == "BERT" && r.device == "Jetson Nano")
            .unwrap();
        assert!(bert_nano.measured.cpu_pct < 50.0);
    }
}
