//! Per-edge failure detection from executor outcomes only.
//!
//! The monitor never sees the injected `FaultPlan` — exactly the
//! information asymmetry a real redistribution controller faces (and the
//! same one the MAB tuner exploits for TIR estimation, Eqs. 15–23). Its
//! only inputs are the per-batch outcomes of executed slots:
//!
//! * **completion blowups** — a dark edge's batches come back at the
//!   [`birp_sim::OUTAGE_COMPLETION`] sentinel (8.0× the slot), far past
//!   anything a merely slow edge produces,
//! * **collapsed observed TIR** — those same batches report
//!   `observed_tir == 0`, which no healthy execution can.
//!
//! Each edge carries a *suspicion* score: an EWMA of the per-slot fraction
//! of its batches that look blown up. Hysteresis thresholds drive the state
//! machine
//!
//! ```text
//! Healthy --(s >= suspect_enter)--> Suspect --(s >= quarantine_enter)--> Quarantined
//!    ^            |                                                          |
//!    |            +--(s <= suspect_exit)------------------------------------+|
//!    |                                                              probe ok ||
//!    |                                                                       v|
//!    +--(probation_required consecutive probe successes)------- Probation <--+
//!                                      (probe failure sends Probation back)
//! ```
//!
//! Quarantined and probation edges are masked out of planning (see
//! [`crate::problem::ProblemConfig::masked_edges`]); the runner places a
//! periodic single-request *probe* batch on them so recovery is observable
//! at all — a masked edge otherwise never executes anything again.

use birp_models::EdgeId;
use birp_sim::SlotOutcome;
use birp_telemetry as telemetry;
use serde::{Deserialize, Serialize};

/// Detector tuning. The defaults are chosen against the simulator's fault
/// repertoire: a full outage (every batch at the 8.0 sentinel) crosses
/// `quarantine_enter` on the second bad slot, while a ≤3.5× degradation
/// never reaches `blowup_threshold` at all — zero false positives on
/// merely-slow edges.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HealthConfig {
    /// Weight of the newest per-slot bad-batch fraction in the EWMA.
    pub ewma_alpha: f64,
    /// Normalised completion time at or above which a batch counts as
    /// blown up (0.75 × the outage sentinel by default).
    pub blowup_threshold: f64,
    /// Suspicion at which a healthy edge becomes suspect.
    pub suspect_enter: f64,
    /// Suspicion at or below which a suspect edge is cleared (hysteresis:
    /// strictly below `suspect_enter`).
    pub suspect_exit: f64,
    /// Suspicion at which an edge is quarantined.
    pub quarantine_enter: f64,
    /// Slots between recovery probes while quarantined (probation probes
    /// every slot).
    pub probe_interval: usize,
    /// Consecutive successful probes required to leave probation.
    pub probation_required: usize,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            ewma_alpha: 0.5,
            blowup_threshold: 0.75 * birp_sim::OUTAGE_COMPLETION,
            suspect_enter: 0.3,
            suspect_exit: 0.15,
            quarantine_enter: 0.7,
            probe_interval: 3,
            probation_required: 2,
        }
    }
}

/// Detector state of one edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthState {
    Healthy,
    /// Elevated suspicion; still scheduled normally.
    Suspect,
    /// Masked out of planning; probed every `probe_interval` slots.
    Quarantined,
    /// Still masked; probed every slot until `probation_required`
    /// consecutive successes confirm recovery.
    Probation,
}

/// One quarantine episode (closed when the edge returns to healthy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineEvent {
    pub edge: EdgeId,
    /// Slot at which the edge entered quarantine.
    pub entered: usize,
    /// Slot at which it was confirmed healthy again (`None` = still out).
    pub released: Option<usize>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct EdgeHealth {
    state: HealthState,
    suspicion: f64,
    /// Consecutive successful probes while in probation.
    probe_successes: usize,
    /// Slot of the most recent probe placement.
    last_probe: Option<usize>,
}

impl EdgeHealth {
    fn new() -> Self {
        EdgeHealth {
            state: HealthState::Healthy,
            suspicion: 0.0,
            probe_successes: 0,
            last_probe: None,
        }
    }
}

/// The per-run health monitor. Owned by the runner; fed every executed
/// slot's outcome, queried for the planning mask and due probes.
///
/// Serializable as a whole: the suspicion EWMAs, the quarantine/probation
/// FSM and the episode log are exactly the state a crash would otherwise
/// lose, so the checkpoint layer persists the monitor verbatim.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HealthMonitor {
    cfg: HealthConfig,
    edges: Vec<EdgeHealth>,
    events: Vec<QuarantineEvent>,
}

impl HealthMonitor {
    pub fn new(num_edges: usize, cfg: HealthConfig) -> Self {
        HealthMonitor {
            cfg,
            edges: vec![EdgeHealth::new(); num_edges],
            events: Vec::new(),
        }
    }

    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    pub fn state(&self, edge: EdgeId) -> HealthState {
        self.edges[edge.index()].state
    }

    pub fn suspicion(&self, edge: EdgeId) -> f64 {
        self.edges[edge.index()].suspicion
    }

    /// Is `edge` excluded from planning this slot?
    pub fn is_masked(&self, edge: EdgeId) -> bool {
        matches!(
            self.edges[edge.index()].state,
            HealthState::Quarantined | HealthState::Probation
        )
    }

    /// Planning mask for the schedulers; `None` when every edge is in play
    /// (so mask-free runs take exactly the pre-resilience code path).
    pub fn mask(&self) -> Option<Vec<bool>> {
        if self
            .edges
            .iter()
            .any(|e| matches!(e.state, HealthState::Quarantined | HealthState::Probation))
        {
            Some(
                (0..self.edges.len())
                    .map(|k| self.is_masked(EdgeId(k)))
                    .collect(),
            )
        } else {
            None
        }
    }

    /// Edges owed a recovery probe at slot `t`: probation edges every slot,
    /// quarantined edges every `probe_interval` slots since their last probe.
    pub fn probes_due(&self, t: usize) -> Vec<EdgeId> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| match e.state {
                HealthState::Probation => true,
                HealthState::Quarantined => e
                    .last_probe
                    .is_none_or(|lp| t >= lp + self.cfg.probe_interval.max(1)),
                _ => false,
            })
            .map(|(k, _)| EdgeId(k))
            .collect()
    }

    /// Record that the runner placed a probe on `edge` at slot `t`.
    pub fn mark_probed(&mut self, edge: EdgeId, t: usize) {
        self.edges[edge.index()].last_probe = Some(t);
        telemetry::counter("health.probe", 1);
        if telemetry::enabled() {
            telemetry::event(
                telemetry::Level::Debug,
                "health.probe",
                &[("t", (t as u64).into()), ("edge", (edge.0 as u64).into())],
            );
        }
    }

    /// Digest one executed slot. For healthy/suspect edges this updates the
    /// suspicion EWMA from the fraction of blown-up batches; for masked
    /// edges the only batches present are the runner's probes, whose
    /// success or failure drives the recovery ladder.
    pub fn observe(&mut self, outcome: &SlotOutcome) {
        let t = outcome.t;
        for (k, eh) in self.edges.iter_mut().enumerate() {
            let mut total = 0u32;
            let mut bad = 0u32;
            for b in outcome.batches.iter().filter(|b| b.edge.index() == k) {
                total += 1;
                let blown = b.completion_norm >= self.cfg.blowup_threshold || b.observed_tir <= 0.0;
                if blown {
                    bad += 1;
                }
            }
            if total == 0 {
                continue; // nothing executed here: no evidence either way
            }
            let frac = bad as f64 / total as f64;
            eh.suspicion += self.cfg.ewma_alpha * (frac - eh.suspicion);
            telemetry::observe("health.suspicion", eh.suspicion);

            match eh.state {
                HealthState::Healthy | HealthState::Suspect => {
                    if eh.suspicion >= self.cfg.quarantine_enter {
                        eh.state = HealthState::Quarantined;
                        eh.probe_successes = 0;
                        eh.last_probe = None;
                        self.events.push(QuarantineEvent {
                            edge: EdgeId(k),
                            entered: t,
                            released: None,
                        });
                        telemetry::counter("health.quarantined", 1);
                        if telemetry::enabled() {
                            telemetry::event(
                                telemetry::Level::Warn,
                                "health.quarantined",
                                &[
                                    ("t", (t as u64).into()),
                                    ("edge", (k as u64).into()),
                                    ("suspicion", eh.suspicion.into()),
                                ],
                            );
                        }
                    } else if eh.suspicion >= self.cfg.suspect_enter {
                        eh.state = HealthState::Suspect;
                    } else if eh.suspicion <= self.cfg.suspect_exit {
                        eh.state = HealthState::Healthy;
                    }
                }
                HealthState::Quarantined | HealthState::Probation => {
                    // Masked edge: these batches are probes.
                    let probe_ok = bad == 0;
                    if probe_ok {
                        eh.probe_successes += 1;
                        if eh.state == HealthState::Quarantined {
                            eh.state = HealthState::Probation;
                        }
                        if eh.probe_successes >= self.cfg.probation_required.max(1) {
                            eh.state = HealthState::Healthy;
                            eh.suspicion = 0.0;
                            eh.probe_successes = 0;
                            if let Some(ev) = self
                                .events
                                .iter_mut()
                                .rev()
                                .find(|ev| ev.edge.index() == k && ev.released.is_none())
                            {
                                ev.released = Some(t);
                            }
                            telemetry::counter("health.recovered", 1);
                            if telemetry::enabled() {
                                telemetry::event(
                                    telemetry::Level::Info,
                                    "health.recovered",
                                    &[("t", (t as u64).into()), ("edge", (k as u64).into())],
                                );
                            }
                        }
                    } else {
                        eh.state = HealthState::Quarantined;
                        eh.probe_successes = 0;
                    }
                }
            }
        }
    }

    /// Every quarantine episode so far (open and closed).
    pub fn events(&self) -> &[QuarantineEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use birp_models::{AppId, ModelId};
    use birp_sim::{BatchOutcome, OUTAGE_COMPLETION};

    fn outcome(t: usize, batches: Vec<BatchOutcome>) -> SlotOutcome {
        SlotOutcome {
            t,
            batches,
            loss: 0.0,
            compute_used_ms: vec![],
            network_used_mb: vec![],
            served: 0,
            unserved: 0,
            slo_violations: 0,
        }
    }

    fn batch(edge: usize, completion_norm: f64, observed_tir: f64) -> BatchOutcome {
        BatchOutcome {
            edge: EdgeId(edge),
            app: AppId(0),
            model: ModelId(0),
            batch: 4,
            start_ms: 0.0,
            exec_ms: 10.0,
            completion_norm,
            observed_tir,
        }
    }

    fn dark(edge: usize) -> BatchOutcome {
        batch(edge, OUTAGE_COMPLETION, 0.0)
    }

    fn healthy(edge: usize) -> BatchOutcome {
        batch(edge, 0.4, 2.0)
    }

    #[test]
    fn outage_quarantines_within_two_bad_slots() {
        let mut m = HealthMonitor::new(3, HealthConfig::default());
        m.observe(&outcome(0, vec![dark(1), healthy(0)]));
        assert_eq!(m.state(EdgeId(1)), HealthState::Suspect);
        assert_eq!(m.state(EdgeId(0)), HealthState::Healthy);
        m.observe(&outcome(1, vec![dark(1), healthy(0)]));
        assert_eq!(m.state(EdgeId(1)), HealthState::Quarantined);
        assert!(m.is_masked(EdgeId(1)));
        assert!(!m.is_masked(EdgeId(0)));
        let mask = m.mask().expect("one edge is masked");
        assert_eq!(mask, vec![false, true, false]);
        assert_eq!(m.events().len(), 1);
        assert_eq!(m.events()[0].entered, 1);
        assert_eq!(m.events()[0].released, None);
    }

    #[test]
    fn moderate_slowdowns_never_quarantine() {
        // A 3.5x degradation yields completions well under the blowup
        // threshold (6.0): suspicion must stay at zero.
        let mut m = HealthMonitor::new(1, HealthConfig::default());
        for t in 0..50 {
            m.observe(&outcome(t, vec![batch(0, 3.5, 0.9)]));
        }
        assert_eq!(m.state(EdgeId(0)), HealthState::Healthy);
        assert_eq!(m.suspicion(EdgeId(0)), 0.0);
        assert!(m.events().is_empty());
        assert!(m.mask().is_none());
    }

    #[test]
    fn no_batches_means_no_evidence() {
        let mut m = HealthMonitor::new(2, HealthConfig::default());
        m.observe(&outcome(0, vec![dark(0)]));
        let s = m.suspicion(EdgeId(0));
        // Idle slots must not decay or grow suspicion.
        m.observe(&outcome(1, vec![]));
        assert_eq!(m.suspicion(EdgeId(0)), s);
    }

    #[test]
    fn probe_ladder_recovers_through_probation() {
        let cfg = HealthConfig::default();
        let mut m = HealthMonitor::new(1, cfg);
        m.observe(&outcome(0, vec![dark(0)]));
        m.observe(&outcome(1, vec![dark(0)]));
        assert_eq!(m.state(EdgeId(0)), HealthState::Quarantined);
        // Quarantined edge owes a probe immediately (never probed).
        assert_eq!(m.probes_due(2), vec![EdgeId(0)]);
        m.mark_probed(EdgeId(0), 2);
        // ... and then not again until the interval elapses.
        assert!(m.probes_due(3).is_empty());
        assert!(m.probes_due(4).is_empty());
        assert_eq!(m.probes_due(5), vec![EdgeId(0)]);
        // First successful probe -> probation (probed every slot).
        m.observe(&outcome(5, vec![healthy(0)]));
        assert_eq!(m.state(EdgeId(0)), HealthState::Probation);
        assert!(m.is_masked(EdgeId(0)));
        assert_eq!(m.probes_due(6), vec![EdgeId(0)]);
        // Second consecutive success confirms recovery.
        m.observe(&outcome(6, vec![healthy(0)]));
        assert_eq!(m.state(EdgeId(0)), HealthState::Healthy);
        assert_eq!(m.suspicion(EdgeId(0)), 0.0);
        assert_eq!(m.events()[0].released, Some(6));
        assert!(m.mask().is_none());
    }

    #[test]
    fn failed_probe_resets_probation() {
        let mut m = HealthMonitor::new(1, HealthConfig::default());
        m.observe(&outcome(0, vec![dark(0)]));
        m.observe(&outcome(1, vec![dark(0)]));
        m.observe(&outcome(2, vec![healthy(0)])); // probe ok -> probation
        assert_eq!(m.state(EdgeId(0)), HealthState::Probation);
        m.observe(&outcome(3, vec![dark(0)])); // probe fails
        assert_eq!(m.state(EdgeId(0)), HealthState::Quarantined);
        assert_eq!(m.events().len(), 1, "same episode stays open");
        assert_eq!(m.events()[0].released, None);
    }

    #[test]
    fn probe_interval_zero_clamps_to_every_slot() {
        // A zero interval would otherwise make `t >= last_probe + 0` true
        // forever — the `.max(1)` clamp turns it into every-slot probing
        // instead of a degenerate config footgun.
        let cfg = HealthConfig {
            probe_interval: 0,
            ..HealthConfig::default()
        };
        let mut m = HealthMonitor::new(1, cfg);
        m.observe(&outcome(0, vec![dark(0)]));
        m.observe(&outcome(1, vec![dark(0)]));
        assert_eq!(m.state(EdgeId(0)), HealthState::Quarantined);
        m.mark_probed(EdgeId(0), 2);
        assert!(m.probes_due(2).is_empty(), "not due twice within one slot");
        assert_eq!(m.probes_due(3), vec![EdgeId(0)]);
    }

    #[test]
    fn probe_interval_one_probes_every_slot() {
        let cfg = HealthConfig {
            probe_interval: 1,
            ..HealthConfig::default()
        };
        let mut m = HealthMonitor::new(1, cfg);
        m.observe(&outcome(0, vec![dark(0)]));
        m.observe(&outcome(1, vec![dark(0)]));
        assert_eq!(m.state(EdgeId(0)), HealthState::Quarantined);
        m.mark_probed(EdgeId(0), 2);
        assert_eq!(m.probes_due(3), vec![EdgeId(0)]);
        m.mark_probed(EdgeId(0), 3);
        assert_eq!(m.probes_due(4), vec![EdgeId(0)]);
    }

    #[test]
    fn probation_relapse_then_full_recovery() {
        // Quarantine -> probation -> relapse -> and the ladder must still
        // be climbable afterwards: two fresh consecutive successes close
        // the same (single) episode.
        let mut m = HealthMonitor::new(1, HealthConfig::default());
        m.observe(&outcome(0, vec![dark(0)]));
        m.observe(&outcome(1, vec![dark(0)]));
        m.observe(&outcome(2, vec![healthy(0)])); // probe ok -> probation
        assert_eq!(m.state(EdgeId(0)), HealthState::Probation);
        m.observe(&outcome(3, vec![dark(0)])); // relapse
        assert_eq!(m.state(EdgeId(0)), HealthState::Quarantined);
        // The relapse must also have reset the consecutive-success count:
        // one success now only reaches probation, not healthy.
        m.observe(&outcome(4, vec![healthy(0)]));
        assert_eq!(m.state(EdgeId(0)), HealthState::Probation);
        assert!(m.is_masked(EdgeId(0)));
        m.observe(&outcome(5, vec![healthy(0)]));
        assert_eq!(m.state(EdgeId(0)), HealthState::Healthy);
        assert_eq!(m.suspicion(EdgeId(0)), 0.0);
        assert_eq!(m.events().len(), 1, "relapse stays within one episode");
        assert_eq!(m.events()[0].released, Some(5));
    }

    #[test]
    fn quarantine_on_the_very_first_slot() {
        // With alpha = 1 the EWMA adopts the first observation outright, so
        // a fully dark first slot quarantines at t = 0 — and the edge is
        // immediately owed a probe (it has never been probed).
        let cfg = HealthConfig {
            ewma_alpha: 1.0,
            ..HealthConfig::default()
        };
        let mut m = HealthMonitor::new(2, cfg);
        m.observe(&outcome(0, vec![dark(0), healthy(1)]));
        assert_eq!(m.state(EdgeId(0)), HealthState::Quarantined);
        assert_eq!(m.events()[0].entered, 0);
        assert_eq!(m.mask(), Some(vec![true, false]));
        assert_eq!(m.probes_due(0), vec![EdgeId(0)]);
    }

    #[test]
    fn suspect_clears_after_good_slots() {
        let mut m = HealthMonitor::new(1, HealthConfig::default());
        m.observe(&outcome(0, vec![dark(0)]));
        assert_eq!(m.state(EdgeId(0)), HealthState::Suspect);
        // Healthy batches wash the suspicion back down.
        for t in 1..5 {
            m.observe(&outcome(t, vec![healthy(0)]));
        }
        assert_eq!(m.state(EdgeId(0)), HealthState::Healthy);
        assert!(m.events().is_empty());
    }
}
