//! # birp-core
//!
//! The BIRP scheduler and its comparison baselines — the paper's primary
//! contribution (Sections 3–4), built on the substrate crates:
//!
//! * [`problem`] — the per-slot optimisation problem `P1^t` / `P2^t`
//!   (paper Section 4.1): decision variables `x`, `b`, `y`, the memory /
//!   compute / network constraints with the Taylor-linearised TIR term
//!   (Eq. 24/25), lowered to a [`birp_solver::Model`] and decoded back into
//!   a [`birp_sim::Schedule`],
//! * [`schedulers`] — the four algorithms of Section 5.2:
//!   [`schedulers::Birp`] (MAB-tuned, batch-aware),
//!   [`schedulers::BirpOff`] (oracle TIR, no tuning),
//!   [`schedulers::Oaei`] (serial, model-selection, online latency
//!   learning plus randomised rounding) and [`schedulers::MaxBatch`]
//!   (fixed large batches),
//! * [`runner`] — drives a scheduler over a trace slot by slot, with
//!   carry-over of unserved requests, full metric collection, per-slot
//!   panic isolation, and opt-in durable checkpointing,
//! * [`checkpoint`] — the versioned, checksummed on-disk checkpoint format
//!   and its typed load/parse errors (DESIGN.md §12),
//! * [`health`] — outcome-only failure detection: per-edge suspicion
//!   scores, quarantine-and-probe state machine (DESIGN.md §10); the
//!   runner uses it to mask failed edges out of planning,
//! * [`experiments`] — one entry point per paper table/figure, producing
//!   serialisable result records the bench harness prints.

pub mod checkpoint;
pub mod demand;
pub mod experiments;
pub mod health;
pub mod problem;
pub mod runner;
pub mod schedulers;

pub use checkpoint::{ResumeError, RunCheckpoint};
pub use demand::DemandMatrix;
pub use health::{HealthConfig, HealthMonitor, HealthState, QuarantineEvent};
pub use problem::{
    DeltaOutcome, DeltaSummary, ExecutionMode, ProblemConfig, RebuildReason, ReuseOutcome,
    ShardCoupling, SlotDelta, SlotInputs, SlotProblem, TirMatrix,
};
pub use runner::{
    run_scheduler, run_scheduler_resumable, CheckpointPolicy, RunConfig, RunOutcome, RunResult,
    RunnerCheckpoint,
};
pub use schedulers::{
    shard_fault_stale_price, Birp, BirpOff, LocalOnly, MaxBatch, Oaei, Scheduler, ShardConfig,
    ShardCoordinator, ShardOutcome, TemporalReuse,
};
