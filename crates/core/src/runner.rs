//! Drives a scheduler over a trace, slot by slot.
//!
//! Responsibilities beyond calling `decide` / `execute_slot` / `observe`:
//!
//! * **carry-over** — requests a schedule leaves unserved re-enter the next
//!   slot's demand (FIFO, oldest first); their eventual completion time is
//!   `age + within-slot completion`, which is where the CDF mass beyond 1.0
//!   in paper Figs. 6a/7a comes from. Requests older than
//!   [`RunConfig::max_carryover`] slots are dropped and counted as SLO
//!   failures,
//! * **validation** — every schedule is checked against the structural
//!   constraints before execution (a scheduler bug fails fast, loudly),
//! * **resilience** (opt-in via [`RunConfig::resilience`]) — a
//!   [`HealthMonitor`] watches executor outcomes, masks quarantined edges
//!   out of planning, reroutes demand stranded on them back into the
//!   global queue, and places single-request recovery probes (DESIGN.md
//!   §10). The monitor never sees the fault plan — outcomes only,
//! * **metrics** — per-slot loss, cumulative loss, completion CDF, `p%`,
//! * **durability** (opt-in via [`CheckpointPolicy`]) — periodic atomic
//!   checkpoints plus a cooperative shutdown flag, so a killed run resumes
//!   mid-trace with bitwise-identical remaining output (DESIGN.md §12).
//!   This includes the MILP schedulers' persistent slot model: its input
//!   fingerprint rides in the exported scheduler state, so a resumed run
//!   re-lowers once and continues the interrupted delta sequence
//!   (DESIGN.md §13) exactly as the uninterrupted run would,
//! * **panic isolation** (on by default) — a panicking `decide` is caught,
//!   the slot falls back to the loss-greedy strictly-local packing, and the
//!   run continues instead of taking the process down.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Instant;

use birp_models::{AppId, Catalog, EdgeId, ModelId};
use birp_sim::{
    network_usage_mb, validate, Deployment, EdgeSim, MetricsCollector, RunMetrics, Schedule,
    SimConfig,
};
use birp_telemetry as telemetry;
use birp_telemetry::{HistogramSummary, Level, LogHistogram};
use birp_tir::TirParams;
use birp_workload::Trace;
use serde::{Deserialize, Serialize, Value};

use crate::checkpoint::{self, ResumeError, RunCheckpoint};
use crate::demand::DemandMatrix;
use crate::health::{HealthConfig, HealthMonitor, QuarantineEvent};
use crate::schedulers::{greedy_local, Scheduler, TemporalReuse};

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    pub sim: SimConfig,
    /// Maximum whole slots a request may wait before it is dropped.
    pub max_carryover: usize,
    /// Panic on structurally invalid schedules (on by default; experiments
    /// should never proceed on garbage decisions).
    pub strict: bool,
    /// Enable the failure detector / quarantine-and-reroute layer with the
    /// given tuning. `None` (the default) runs fault-blind: the exact
    /// pre-resilience behaviour.
    pub resilience: Option<HealthConfig>,
    /// Cross-slot temporal reuse for the MILP schedulers (DESIGN.md §11).
    /// The runner itself never reads this — it is the canonical place an
    /// experiment carries the knob so scheduler builders (and the CLI's
    /// `--no-reuse`) agree on one setting.
    pub reuse: TemporalReuse,
    /// Catch panics escaping `scheduler.decide` and serve the slot with the
    /// greedy-LOCAL fallback instead of aborting the run (on by default).
    /// The runner's own strict-validation panic is *not* isolated — an
    /// invalid schedule is a bug, not a transient.
    pub isolate_panics: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            sim: SimConfig::default(),
            max_carryover: 1,
            strict: true,
            resilience: None,
            reuse: TemporalReuse::default(),
            isolate_panics: true,
        }
    }
}

/// When and where [`run_scheduler_resumable`] persists checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Checkpoint file path (written atomically: `<path>.tmp` + rename).
    pub path: PathBuf,
    /// Write after every `every`-th slot, on the *absolute* slot index, so
    /// the cadence is stable across kill–resume cycles. `0` disables
    /// periodic writes (the shutdown flag still triggers one).
    pub every: usize,
    /// Opaque embedder spec stored verbatim in the file — whatever the
    /// caller needs to rebuild catalog/trace/scheduler for `resume`.
    pub spec: Value,
}

/// How a resumable run ended.
#[derive(Debug)]
pub enum RunOutcome {
    /// The trace ran to completion.
    Complete(Box<RunResult>),
    /// The shutdown flag was observed; state up to (not including)
    /// `next_slot` was checkpointed and the run stopped early.
    Interrupted { next_slot: usize },
}

/// Output of one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    pub scheduler: String,
    pub metrics: RunMetrics,
    pub slots: usize,
    /// Total requests the trace generated.
    pub offered: u64,
    /// Per-run observability aggregates; `None` when the telemetry facade
    /// was disabled during the run (results serialized before this field
    /// existed also deserialize to `None`).
    pub telemetry: Option<RunTelemetry>,
    /// Resilience-layer summary; `None` when [`RunConfig::resilience`] was
    /// off (older serialized results also deserialize to `None`).
    pub health: Option<HealthReport>,
}

/// What the resilience layer did over one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HealthReport {
    /// Every quarantine episode (open episodes have `released == None`).
    pub events: Vec<QuarantineEvent>,
    /// Requests moved off masked edges back into the global queue.
    pub rerouted: u64,
    /// Single-request recovery probes placed.
    pub probes: u64,
}

/// Runner-level telemetry aggregated over one run. Unlike the global
/// registry (which accumulates across every run in the process), these
/// figures cover exactly this `run_scheduler` call.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunTelemetry {
    /// Wall-clock latency of `scheduler.decide` per slot (ms).
    pub decide_ms: HistogramSummary,
    /// Wall-clock latency of `sim.execute_slot` per slot (ms).
    pub execute_ms: HistogramSummary,
    /// Total requests shipped between edges over the run (`Σ y`).
    pub redistributed: u64,
    /// Requests dropped after exceeding the carry-over budget.
    pub dropped: u64,
    /// Largest carry-over queue depth observed at any slot start.
    pub carried_peak: u64,
    /// Slots whose `decide` panicked and were served by the greedy-LOCAL
    /// fallback instead (`RunConfig::isolate_panics`). Older serialized
    /// results deserialize to `0`.
    #[serde(default)]
    pub panic_isolated: u64,
}

/// Requests waiting at (app, edge), grouped by age in slots.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PendingCell {
    /// `by_age[a]` = requests that have already waited `a+1` slots... index 0
    /// holds requests that arrived in the previous slot.
    pub by_age: Vec<u32>,
}

impl PendingCell {
    fn total(&self) -> u32 {
        self.by_age.iter().sum()
    }
}

/// The runner's complete mid-trace state: everything
/// [`run_scheduler_resumable`] mutates across slots, snapshotted at the
/// *top* of slot `next_slot` (before demand assembly). Resuming from it on
/// freshly rebuilt catalog/trace/scheduler reproduces the uninterrupted
/// run's remaining trace bitwise — the kill–resume property the proptests
/// certify.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunnerCheckpoint {
    /// First slot the resumed run will execute.
    pub next_slot: usize,
    /// Carry-over queues, `[app][edge]`.
    pub pending: Vec<Vec<PendingCell>>,
    /// The previous slot's *executed* schedule (drives transfer costs).
    pub prev: Option<Schedule>,
    /// Streaming metric state (losses, CDF, drop counts).
    pub collector: MetricsCollector,
    /// Health-monitor FSM, present iff the run had resilience on.
    pub monitor: Option<HealthMonitor>,
    pub decide_hist: LogHistogram,
    pub execute_hist: LogHistogram,
    pub total_redistributed: u64,
    pub total_dropped: u64,
    pub carried_peak: u64,
    pub total_rerouted: u64,
    pub total_probes: u64,
    #[serde(default)]
    pub panic_isolated: u64,
    /// Name of the scheduler that produced `scheduler_state`; resume
    /// refuses a different scheduler (empty = fresh, matches any).
    pub scheduler_name: String,
    /// The scheduler's own exported state ([`Scheduler::export_state`]).
    pub scheduler_state: Value,
}

impl RunnerCheckpoint {
    /// The state of a run that has not executed any slot yet.
    pub fn fresh(num_apps: usize, num_edges: usize) -> Self {
        RunnerCheckpoint {
            next_slot: 0,
            pending: vec![vec![PendingCell::default(); num_edges]; num_apps],
            prev: None,
            collector: MetricsCollector::new(),
            monitor: None,
            decide_hist: LogHistogram::new(),
            execute_hist: LogHistogram::new(),
            total_redistributed: 0,
            total_dropped: 0,
            carried_peak: 0,
            total_rerouted: 0,
            total_probes: 0,
            panic_isolated: 0,
            scheduler_name: String::new(),
            scheduler_state: Value::Null,
        }
    }
}

/// Snapshot the loop state at the top of `next_slot`.
#[allow(clippy::too_many_arguments)]
fn snapshot(
    next_slot: usize,
    pending: &[Vec<PendingCell>],
    prev: Option<&Schedule>,
    collector: &MetricsCollector,
    monitor: Option<&HealthMonitor>,
    decide_hist: &LogHistogram,
    execute_hist: &LogHistogram,
    aggregates: [u64; 6],
    scheduler: &dyn Scheduler,
) -> RunnerCheckpoint {
    let [total_redistributed, total_dropped, carried_peak, total_rerouted, total_probes, panic_isolated] =
        aggregates;
    RunnerCheckpoint {
        next_slot,
        pending: pending.to_vec(),
        prev: prev.cloned(),
        collector: collector.clone(),
        monitor: monitor.cloned(),
        decide_hist: decide_hist.clone(),
        execute_hist: execute_hist.clone(),
        total_redistributed,
        total_dropped,
        carried_peak,
        total_rerouted,
        total_probes,
        panic_isolated,
        scheduler_name: scheduler.name().to_string(),
        scheduler_state: scheduler.export_state(),
    }
}

/// Background writer for *periodic* checkpoints: Value conversion, JSON,
/// the atomic write protocol, and the fsync all run off the slot loop's
/// critical path — the loop only pays for the in-memory [`snapshot`]
/// (~tens of µs) instead of the full save (~ms, fsync-dominated). A single
/// worker applies saves in submission order, so the file on disk is always
/// the latest fully-written snapshot. *Shutdown* saves stay synchronous:
/// the process is about to exit and durability beats latency there.
struct AsyncCheckpointer {
    tx: Option<mpsc::Sender<RunCheckpoint>>,
    worker: Option<thread::JoinHandle<()>>,
    /// Last write error; taken by the loop and surfaced as a warn event
    /// (one save late — the warn-and-continue semantics are unchanged).
    error: Arc<Mutex<Option<String>>>,
}

impl AsyncCheckpointer {
    fn new(path: PathBuf) -> Self {
        let (tx, rx) = mpsc::channel::<RunCheckpoint>();
        let error = Arc::new(Mutex::new(None));
        let slot = Arc::clone(&error);
        let worker = thread::spawn(move || {
            while let Ok(ck) = rx.recv() {
                if let Err(e) = checkpoint::save(&path, &ck) {
                    *slot.lock().unwrap() = Some(e.to_string());
                }
            }
        });
        AsyncCheckpointer {
            tx: Some(tx),
            worker: Some(worker),
            error,
        }
    }

    fn submit(&self, ck: RunCheckpoint) {
        // A send only fails if the worker died; the error slot then already
        // carries the diagnosis from its last save.
        if let Some(tx) = &self.tx {
            let _ = tx.send(ck);
        }
    }

    fn take_error(&self) -> Option<String> {
        self.error.lock().unwrap().take()
    }

    /// Drain queued saves, join the worker, and report its last error.
    fn finish(mut self) -> Option<String> {
        drop(self.tx.take());
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
        self.error.lock().unwrap().take()
    }
}

/// Run `scheduler` over the full `trace`.
pub fn run_scheduler(
    catalog: &Catalog,
    trace: &Trace,
    scheduler: &mut dyn Scheduler,
    cfg: &RunConfig,
) -> RunResult {
    match run_scheduler_resumable(catalog, trace, scheduler, cfg, None, None, None) {
        Ok(RunOutcome::Complete(r)) => *r,
        Ok(RunOutcome::Interrupted { .. }) => {
            unreachable!("no shutdown flag was supplied")
        }
        Err(e) => unreachable!("checkpointing was off but failed: {e}"),
    }
}

/// Run `scheduler` over `trace`, optionally writing durable checkpoints
/// (`policy`), starting from a prior checkpoint (`resume`), and honouring a
/// cooperative shutdown flag (`shutdown`, e.g. set from a SIGTERM handler).
///
/// With all three `None` this is exactly [`run_scheduler`]. On shutdown the
/// state is checkpointed (when a policy is given) and
/// [`RunOutcome::Interrupted`] returned; a failed *shutdown* save is an
/// error (the state would be lost), while a failed *periodic* save only
/// warns and continues (the run itself is still healthy).
///
/// Periodic saves are written by a background thread ([`AsyncCheckpointer`])
/// so the slot loop only pays for the in-memory snapshot; the writer is
/// joined before this function returns, so callers always observe the final
/// fully-written checkpoint on disk.
pub fn run_scheduler_resumable(
    catalog: &Catalog,
    trace: &Trace,
    scheduler: &mut dyn Scheduler,
    cfg: &RunConfig,
    policy: Option<&CheckpointPolicy>,
    resume: Option<RunnerCheckpoint>,
    shutdown: Option<&AtomicBool>,
) -> Result<RunOutcome, ResumeError> {
    assert_eq!(
        trace.num_apps(),
        catalog.num_apps(),
        "trace/catalog app mismatch"
    );
    assert_eq!(
        trace.num_edges(),
        catalog.num_edges(),
        "trace/catalog edge mismatch"
    );

    let na = catalog.num_apps();
    let ne = catalog.num_edges();
    let sim = EdgeSim::new(catalog.clone(), cfg.sim.clone());

    // Resume (or start fresh). Validation order: cheap structural checks
    // first, then the scheduler's own state import — so a checkpoint from a
    // different run shape fails with a `SpecMismatch` before any state is
    // half-applied.
    let resumed = resume.is_some();
    let ck = match resume {
        Some(ck) => {
            if !ck.scheduler_name.is_empty() && ck.scheduler_name != scheduler.name() {
                return Err(ResumeError::SpecMismatch(format!(
                    "checkpoint was written by scheduler {:?}, resuming with {:?}",
                    ck.scheduler_name,
                    scheduler.name()
                )));
            }
            if ck.pending.len() != na || ck.pending.iter().any(|row| row.len() != ne) {
                return Err(ResumeError::SpecMismatch(format!(
                    "checkpoint queue shape {}x{} does not match catalog {na}x{ne}",
                    ck.pending.len(),
                    ck.pending.first().map_or(0, Vec::len),
                )));
            }
            if ck.next_slot > trace.num_slots() {
                return Err(ResumeError::SpecMismatch(format!(
                    "checkpoint next_slot {} exceeds trace length {}",
                    ck.next_slot,
                    trace.num_slots()
                )));
            }
            if ck.monitor.is_some() != cfg.resilience.is_some() {
                return Err(ResumeError::SpecMismatch(
                    "checkpoint and run disagree on resilience (health monitor presence)".into(),
                ));
            }
            scheduler.import_state(&ck.scheduler_state)?;
            ck
        }
        None => RunnerCheckpoint::fresh(na, ne),
    };
    let start = ck.next_slot;
    let mut pending = ck.pending;
    let mut prev = ck.prev;
    let mut collector = ck.collector;
    // Resilience layer (opt-in). The monitor only ever sees executed
    // outcomes — never `cfg.sim.faults`. A resumed run continues the
    // checkpointed monitor FSM rather than re-learning health from scratch.
    let mut monitor = if resumed {
        ck.monitor
    } else {
        cfg.resilience.map(|hc| HealthMonitor::new(ne, hc))
    };

    // Per-run observability state. Only touched when the global facade is
    // enabled, so a disabled run takes the exact same decision path.
    let instrument = telemetry::enabled();
    let mut decide_hist = ck.decide_hist;
    let mut execute_hist = ck.execute_hist;
    let mut total_redistributed = ck.total_redistributed;
    let mut total_dropped = ck.total_dropped;
    let mut carried_peak = ck.carried_peak;
    let mut total_rerouted = ck.total_rerouted;
    let mut total_probes = ck.total_probes;
    let mut panic_isolated = ck.panic_isolated;

    // Spawned lazily at the first periodic save; joined before returning so
    // the on-disk checkpoint is final when the caller regains control.
    let mut writer: Option<AsyncCheckpointer> = None;

    for t in start..trace.num_slots() {
        // --- cooperative shutdown ------------------------------------------
        // Checked at the slot boundary: the checkpoint always captures a
        // whole number of executed slots, never a torn slot.
        if shutdown.is_some_and(|s| s.load(Ordering::SeqCst)) {
            if let Some(p) = policy {
                // Flush any in-flight periodic save first so the synchronous
                // shutdown save below lands last (and therefore wins).
                if let Some(e) = writer.take().and_then(AsyncCheckpointer::finish) {
                    telemetry::event(
                        Level::Warn,
                        "runner.checkpoint_failed",
                        &[("t", (t as u64).into()), ("error", e.into())],
                    );
                }
                checkpoint::save(
                    &p.path,
                    &RunCheckpoint {
                        spec: p.spec.clone(),
                        runner: snapshot(
                            t,
                            &pending,
                            prev.as_ref(),
                            &collector,
                            monitor.as_ref(),
                            &decide_hist,
                            &execute_hist,
                            [
                                total_redistributed,
                                total_dropped,
                                carried_peak,
                                total_rerouted,
                                total_probes,
                                panic_isolated,
                            ],
                            scheduler,
                        ),
                    },
                )?;
            }
            return Ok(RunOutcome::Interrupted { next_slot: t });
        }
        // --- quarantine: mask planning, reroute stranded work --------------
        let mask = monitor.as_ref().and_then(|m| m.mask());
        scheduler.set_edge_mask(mask.as_deref());

        // --- assemble demand: fresh + carried over -------------------------
        let mut demand = DemandMatrix::from_trace(trace, t);
        if let Some(mask) = &mask {
            let healthy: Vec<usize> = (0..ne).filter(|&k| !mask[k]).collect();
            if !healthy.is_empty() {
                let mut moved = 0u64;
                for k in (0..ne).filter(|&k| mask[k]) {
                    for i in 0..na {
                        let dest = healthy[(i + k + t) % healthy.len()];
                        // Fresh arrivals at a masked edge enter the global
                        // queue at a healthy edge instead.
                        let fresh = demand.get(AppId(i), EdgeId(k));
                        if fresh > 0 {
                            demand.set(AppId(i), EdgeId(k), 0);
                            demand.add(AppId(i), EdgeId(dest), fresh);
                            moved += fresh as u64;
                        }
                        // Carried requests stranded on the masked edge
                        // follow, keeping their ages (they would otherwise
                        // wait out the quarantine and age into drops).
                        let cell = std::mem::take(&mut pending[i][k]);
                        if cell.total() > 0 {
                            moved += cell.total() as u64;
                            let dst = &mut pending[i][dest];
                            if dst.by_age.len() < cell.by_age.len() {
                                dst.by_age.resize(cell.by_age.len(), 0);
                            }
                            for (age, c) in cell.by_age.into_iter().enumerate() {
                                dst.by_age[age] += c;
                            }
                        }
                    }
                }
                if moved > 0 {
                    total_rerouted += moved;
                    telemetry::counter("runner.rerouted", moved);
                }
            }
        }
        let mut carried_total = 0u64;
        for (i, row) in pending.iter().enumerate() {
            for (k, cell) in row.iter().enumerate() {
                let carried = cell.total();
                if carried > 0 {
                    carried_total += carried as u64;
                    demand.add(AppId(i), EdgeId(k), carried);
                }
            }
        }
        carried_peak = carried_peak.max(carried_total);

        // --- decide + validate ---------------------------------------------
        let decide_start = instrument.then(Instant::now);
        let schedule = if cfg.isolate_panics {
            // A panicking scheduler loses this slot's optimisation, not the
            // run: fall back to the loss-greedy strictly-local packing (the
            // same engine LocalOnly uses) and keep going. The provenance
            // event carries the panic message so `birp report` can attribute
            // the fallback decision.
            let caught = catch_unwind(AssertUnwindSafe(|| {
                let _decide_span = telemetry::span("runner.decide");
                scheduler.decide(t, &demand, prev.as_ref())
            }));
            match caught {
                Ok(s) => s,
                Err(payload) => {
                    panic_isolated += 1;
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    telemetry::counter("runner.panic_isolated", 1);
                    telemetry::event(
                        Level::Warn,
                        "runner.panic_isolated",
                        &[
                            ("t", (t as u64).into()),
                            ("scheduler", scheduler.name().to_string().into()),
                            ("panic", msg.into()),
                        ],
                    );
                    greedy_local(
                        catalog,
                        &TirParams::paper_initial(),
                        t,
                        &demand,
                        prev.as_ref(),
                        mask.as_deref(),
                    )
                }
            }
        } else {
            // Root of the per-slot causal trace: everything the scheduler
            // does (reuse probes, problem build, branch and bound) nests
            // under this span.
            let _decide_span = telemetry::span("runner.decide");
            scheduler.decide(t, &demand, prev.as_ref())
        };
        let decide_ms = decide_start.map_or(0.0, |s| s.elapsed().as_secs_f64() * 1000.0);
        let demand_fn = |a: AppId, e: EdgeId| demand.get(a, e);
        if let Err(err) = validate(catalog, &demand_fn, &schedule, prev.as_ref()) {
            if cfg.strict {
                panic!(
                    "{} produced an invalid schedule at t={t}: {err}",
                    scheduler.name()
                );
            }
        }

        // --- recovery probes -------------------------------------------------
        // Masked edges execute nothing, so recovery would be unobservable;
        // place a single-request batch of the edge's cheapest model on each
        // edge owed a probe. Probes ride the executed schedule only — the
        // scheduler's decision (already validated) is untouched.
        let probe_edges: Vec<EdgeId> = monitor.as_ref().map_or_else(Vec::new, |m| m.probes_due(t));
        let exec_schedule = if probe_edges.is_empty() {
            None
        } else {
            let mut s = schedule.clone();
            for &pe in &probe_edges {
                let k = pe.index();
                let m = (0..catalog.num_models())
                    .min_by(|&a, &b| {
                        catalog.edges[k].gamma_ms[a]
                            .partial_cmp(&catalog.edges[k].gamma_ms[b])
                            .unwrap()
                    })
                    .expect("catalog has at least one model");
                s.deployments[k].push(Deployment {
                    app: catalog.models[m].app,
                    model: ModelId(m),
                    batch: 1,
                });
                monitor.as_mut().unwrap().mark_probed(pe, t);
                total_probes += 1;
            }
            Some(s)
        };

        // --- execute ---------------------------------------------------------
        let execute_start = instrument.then(Instant::now);
        let outcome = {
            let _execute_span = telemetry::span("runner.execute");
            sim.execute_slot(exec_schedule.as_ref().unwrap_or(&schedule), prev.as_ref())
        };
        let execute_ms = execute_start.map_or(0.0, |s| s.elapsed().as_secs_f64() * 1000.0);
        // The monitor digests the full outcome (probe batches included —
        // they are its recovery evidence) ...
        if let Some(mon) = monitor.as_mut() {
            mon.observe(&outcome);
        }
        // ... but probes are diagnostics, not served traffic: strip them
        // before anything that feeds metrics or scheduler feedback.
        let outcome = if probe_edges.is_empty() {
            outcome
        } else {
            let mut o = outcome;
            o.batches.retain(|b| !probe_edges.contains(&b.edge));
            o.loss = schedule.loss(catalog);
            o.slo_violations = o
                .batches
                .iter()
                .filter(|b| b.completion_norm > 1.0)
                .map(|b| b.batch as u64)
                .sum();
            o
        };
        scheduler.observe(&outcome);
        collector.begin_slot();
        collector.record_loss(outcome.loss);

        let mut slot_dropped = 0u64;
        let redistributed: u64 = if instrument {
            (0..na)
                .flat_map(|i| (0..ne).map(move |k| (i, k)))
                .map(|(i, k)| schedule.routing.outbound(AppId(i), EdgeId(k)) as u64)
                .sum()
        } else {
            0
        };

        // --- attribute completions to request ages ---------------------------
        // Per app: pool this slot's completion samples, serve the oldest
        // waiting requests with the earliest completions (schedulers
        // prioritise aged requests implicitly through FIFO consumption).
        for (i, pending_row) in pending.iter_mut().enumerate() {
            let mut samples: Vec<f64> = outcome
                .batches
                .iter()
                .filter(|b| b.app == AppId(i))
                .flat_map(|b| std::iter::repeat_n(b.completion_norm, b.batch as usize))
                .collect();
            samples.sort_by(|a, b| a.partial_cmp(b).unwrap());

            // Build the served-age profile: for each edge, served = demand -
            // unserved; consume pending oldest-first, remainder is fresh.
            let mut age_counts: Vec<(usize, u32)> = Vec::new(); // (age, count)
            for (k, cell) in pending_row.iter_mut().enumerate() {
                let d = demand.get(AppId(i), EdgeId(k));
                let unserved = schedule.unserved[i][k];
                let mut served = d - unserved.min(d);
                // Oldest first: highest age index first.
                for age_ix in (0..cell.by_age.len()).rev() {
                    let take = cell.by_age[age_ix].min(served);
                    if take > 0 {
                        age_counts.push((age_ix + 1, take));
                        cell.by_age[age_ix] -= take;
                        served -= take;
                    }
                }
                if served > 0 {
                    age_counts.push((0, served));
                }
                // Whatever remains waiting ages by one slot; too-old drops.
                // Service is FIFO, so `unserved` splits into old requests
                // not consumed above (they keep their incremented age) and
                // the youngest fresh arrivals (entering at age index 0).
                let leftover_old: u32 = cell.by_age.iter().sum();
                let fresh_unserved = unserved.min(d) - leftover_old.min(unserved.min(d));
                let mut next = vec![0u32; cell.by_age.len() + 1];
                next[0] = fresh_unserved;
                for (age_ix, &cnt) in cell.by_age.iter().enumerate() {
                    if cnt > 0 {
                        next[age_ix + 1] = cnt;
                    }
                }
                // Drop anything beyond the carry-over budget.
                while next.len() > cfg.max_carryover {
                    let dropped = next.pop().unwrap();
                    if dropped > 0 {
                        slot_dropped += dropped as u64;
                        collector.record_dropped(dropped as u64);
                    }
                }
                cell.by_age = next;
            }

            // Oldest requests get the earliest completions.
            age_counts.sort_by_key(|&(age, _)| std::cmp::Reverse(age));
            let mut s = samples.into_iter();
            for (age, count) in age_counts {
                for _ in 0..count {
                    match s.next() {
                        Some(c) => collector.record_completion(age as f64 + c),
                        None => break,
                    }
                }
            }
        }

        if instrument {
            decide_hist.observe(decide_ms);
            execute_hist.observe(execute_ms);
            total_redistributed += redistributed;
            total_dropped += slot_dropped;
            telemetry::observe("runner.decide_ms", decide_ms);
            telemetry::observe("runner.execute_ms", execute_ms);
            telemetry::observe("runner.carryover_depth", carried_total as f64);
            telemetry::counter("runner.slots", 1);
            telemetry::counter("runner.redistributed", redistributed);
            telemetry::counter("runner.dropped", slot_dropped);
            telemetry::event(
                Level::Info,
                "runner.slot",
                &[
                    ("t", (t as u64).into()),
                    ("demand", demand.total().into()),
                    ("served", schedule.served().into()),
                    ("unserved", schedule.total_unserved().into()),
                    ("carried", carried_total.into()),
                    ("redistributed", redistributed.into()),
                    ("dropped", slot_dropped.into()),
                    ("loss", outcome.loss.into()),
                    ("decide_ms", decide_ms.into()),
                    ("execute_ms", execute_ms.into()),
                ],
            );
            audit_slot(catalog, &schedule, prev.as_ref());
        }

        // Next slot's transfer accounting must see what actually ran —
        // including probe deployments.
        prev = Some(exec_schedule.unwrap_or(schedule));

        // --- periodic checkpoint -------------------------------------------
        // Cadence on the *absolute* slot index so it is identical across
        // kill–resume cycles; skipped on the final slot (the run result is
        // about to land anyway). Only the in-memory snapshot happens here —
        // serialisation and the fsynced atomic write run on the background
        // writer. A failed periodic save must not kill a healthy run: warn
        // and carry on.
        if let Some(p) = policy {
            if p.every > 0 && (t + 1) % p.every == 0 && t + 1 < trace.num_slots() {
                let ck = RunCheckpoint {
                    spec: p.spec.clone(),
                    runner: snapshot(
                        t + 1,
                        &pending,
                        prev.as_ref(),
                        &collector,
                        monitor.as_ref(),
                        &decide_hist,
                        &execute_hist,
                        [
                            total_redistributed,
                            total_dropped,
                            carried_peak,
                            total_rerouted,
                            total_probes,
                            panic_isolated,
                        ],
                        scheduler,
                    ),
                };
                let w = writer.get_or_insert_with(|| AsyncCheckpointer::new(p.path.clone()));
                w.submit(ck);
                if let Some(e) = w.take_error() {
                    telemetry::event(
                        Level::Warn,
                        "runner.checkpoint_failed",
                        &[("t", (t as u64).into()), ("error", e.into())],
                    );
                }
            }
        }
    }

    // Join the writer: when this function returns the checkpoint on disk is
    // the last periodic snapshot, fully written.
    if let Some(e) = writer.and_then(AsyncCheckpointer::finish) {
        telemetry::event(
            Level::Warn,
            "runner.checkpoint_failed",
            &[("error", e.into())],
        );
    }

    // Anything still waiting at the end of the horizon was never served.
    for row in &pending {
        for cell in row {
            let left = cell.total();
            if left > 0 {
                if instrument {
                    total_dropped += left as u64;
                    telemetry::counter("runner.dropped", left as u64);
                }
                collector.record_dropped(left as u64);
            }
        }
    }

    Ok(RunOutcome::Complete(Box::new(RunResult {
        scheduler: scheduler.name().to_string(),
        metrics: collector.finish(),
        slots: trace.num_slots(),
        offered: trace.total(),
        telemetry: instrument.then(|| RunTelemetry {
            decide_ms: decide_hist.summarize(),
            execute_ms: execute_hist.summarize(),
            redistributed: total_redistributed,
            dropped: total_dropped,
            carried_peak,
            panic_isolated,
        }),
        health: monitor.map(|m| HealthReport {
            events: m.events().to_vec(),
            rerouted: total_rerouted,
            probes: total_probes,
        }),
    })))
}

/// Emit the per-slot decision audit record: the chosen `x`/`b` digest and
/// which capacity constraints the decision is pressed up against. Debug
/// level — enable `--log-level debug` to capture these.
fn audit_slot(catalog: &Catalog, schedule: &Schedule, prev: Option<&Schedule>) {
    if (Level::Debug as u8) < (telemetry::min_level() as u8) {
        return;
    }
    // Digest: "e0:m2b8;e1:m0b4;..." — one entry per deployment.
    let mut digest = String::new();
    for (k, deps) in schedule.deployments.iter().enumerate() {
        for d in deps {
            if !digest.is_empty() {
                digest.push(';');
            }
            digest.push_str(&format!("e{k}:m{}b{}", d.model.index(), d.batch));
        }
    }
    // Binding constraints: memory/network loaded to >= 95% of budget.
    let mut binding = String::new();
    for k in 0..catalog.num_edges() {
        let edge = EdgeId(k);
        let mem_used: f64 = schedule.deployments[k]
            .iter()
            .map(|d| {
                let eff_batch = if schedule.serial { 1 } else { d.batch };
                catalog.model(d.model).memory_mb(eff_batch)
            })
            .sum();
        let net_used = network_usage_mb(catalog, schedule, prev, edge);
        for (name, used, cap) in [
            ("mem", mem_used, catalog.edge(edge).memory_mb),
            ("net", net_used, catalog.edge(edge).network_budget_mb),
        ] {
            if cap > 0.0 && used >= 0.95 * cap {
                if !binding.is_empty() {
                    binding.push(',');
                }
                binding.push_str(&format!("{name}[{k}]"));
            }
        }
    }
    telemetry::event(
        Level::Debug,
        "runner.audit",
        &[
            ("t", (schedule.t as u64).into()),
            ("deployments", digest.into()),
            ("binding", binding.into()),
            ("serial", schedule.serial.into()),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedulers::{Birp, BirpOff, MaxBatch, Oaei};
    use birp_mab::MabConfig;
    use birp_workload::TraceConfig;

    fn small_trace(slots: usize, rate: f64) -> (Catalog, Trace) {
        let catalog = Catalog::small_scale(42);
        let trace = TraceConfig {
            num_slots: slots,
            mean_rate: rate,
            ..TraceConfig::small_scale(7)
        }
        .generate();
        (catalog, trace)
    }

    #[test]
    fn birp_run_conserves_requests() {
        let (catalog, trace) = small_trace(12, 6.0);
        let mut birp = Birp::new(catalog.clone(), MabConfig::paper_preset());
        let r = run_scheduler(&catalog, &trace, &mut birp, &RunConfig::default());
        // served + dropped == offered
        assert_eq!(
            r.metrics.served + r.metrics.dropped,
            r.offered,
            "request conservation broken"
        );
        assert_eq!(r.metrics.loss_per_slot.len(), 12);
        assert!(r.metrics.total_loss > 0.0);
    }

    #[test]
    fn all_schedulers_complete_a_short_run() {
        let (catalog, trace) = small_trace(6, 5.0);
        let cfg = RunConfig::default();
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(Birp::new(catalog.clone(), MabConfig::paper_preset())),
            Box::new(BirpOff::new(catalog.clone())),
            Box::new(Oaei::new(catalog.clone(), 3)),
            Box::new(MaxBatch::paper_default(catalog.clone())),
        ];
        for s in schedulers.iter_mut() {
            let r = run_scheduler(&catalog, &trace, s.as_mut(), &cfg);
            assert_eq!(
                r.metrics.served + r.metrics.dropped,
                r.offered,
                "{}",
                r.scheduler
            );
            assert!(r.metrics.failure_rate_pct >= 0.0);
        }
    }

    #[test]
    fn carried_requests_age_in_the_cdf() {
        // Overload then idle: slot 0 floods one edge, slot 1 is empty, so
        // carried requests complete with age >= 1.
        let catalog = Catalog::small_scale(42);
        let mut trace = Trace::zeros(3, 1, catalog.num_edges());
        trace.set_demand(0, AppId(0), EdgeId(2), 60);
        let mut birp = BirpOff::new(catalog.clone());
        let r = run_scheduler(&catalog, &trace, &mut birp, &RunConfig::default());
        // Some requests must have completed with completion > 1.0.
        assert!(
            r.metrics.cdf.at(1.0) < 1.0 || r.metrics.dropped > 0,
            "expected aged completions or drops under overload"
        );
        assert_eq!(r.metrics.served + r.metrics.dropped, 60);
    }

    #[test]
    fn resilience_quarantines_outage_and_conserves_requests() {
        let (catalog, trace) = small_trace(24, 6.0);
        let cfg = RunConfig {
            sim: SimConfig {
                faults: birp_sim::FaultPlan::default().with_outage(EdgeId(2), 4, 16),
                ..SimConfig::default()
            },
            resilience: Some(HealthConfig::default()),
            ..RunConfig::default()
        };
        let mut birp = BirpOff::new(catalog.clone());
        let r = run_scheduler(&catalog, &trace, &mut birp, &cfg);
        assert_eq!(
            r.metrics.served + r.metrics.dropped,
            r.offered,
            "conservation must hold under quarantine-and-reroute"
        );
        let health = r.health.expect("resilience was on");
        assert!(
            health.events.iter().any(|e| e.edge == EdgeId(2)),
            "outage edge never quarantined: {:?}",
            health.events
        );
        assert!(health.probes > 0, "quarantined edge was never probed");
    }

    #[test]
    fn resilience_fault_free_run_never_quarantines() {
        let (catalog, trace) = small_trace(16, 6.0);
        let cfg = RunConfig {
            resilience: Some(HealthConfig::default()),
            ..RunConfig::default()
        };
        let mut birp = BirpOff::new(catalog.clone());
        let r = run_scheduler(&catalog, &trace, &mut birp, &cfg);
        let health = r.health.expect("resilience was on");
        assert!(
            health.events.is_empty(),
            "false-positive quarantine on a fault-free run: {:?}",
            health.events
        );
        assert_eq!(health.rerouted, 0);
        assert_eq!(health.probes, 0);
    }

    #[test]
    fn resilience_off_reports_no_health() {
        let (catalog, trace) = small_trace(4, 4.0);
        let mut birp = BirpOff::new(catalog.clone());
        let r = run_scheduler(&catalog, &trace, &mut birp, &RunConfig::default());
        assert!(r.health.is_none());
    }

    #[test]
    fn empty_trace_runs_cleanly() {
        let catalog = Catalog::small_scale(42);
        let trace = Trace::zeros(4, 1, catalog.num_edges());
        let mut birp = Birp::new(catalog.clone(), MabConfig::paper_preset());
        let r = run_scheduler(&catalog, &trace, &mut birp, &RunConfig::default());
        assert_eq!(r.metrics.served, 0);
        assert_eq!(r.metrics.total_loss, 0.0);
        assert_eq!(r.metrics.failure_rate_pct, 0.0);
    }
}
