//! Durable run checkpoints (DESIGN.md §12).
//!
//! A checkpoint is a single file carrying everything [`crate::runner`]
//! needs to resume a run mid-trace with bitwise-identical remaining output:
//! the next slot index, carry-over queues, the previous executed schedule,
//! metric accumulators, the health monitor's FSM, and the scheduler's own
//! exported state (MAB posteriors, schedule cache, RNG position, and the
//! persistent slot model's input fingerprint — the lowered model itself is
//! recomputed on resume, see DESIGN.md §13). The
//! embedder (the CLI) additionally stores an opaque *spec* — the invocation
//! parameters needed to rebuild the catalog, trace and scheduler — so
//! `birp resume <path>` is self-contained.
//!
//! ## On-disk format
//!
//! ```text
//! BIRPCKPT v<version> crc32=<8 hex digits> len=<payload bytes>\n
//! <payload: one JSON document>
//! ```
//!
//! The header is a fixed-shape ASCII line; the CRC-32 (IEEE, reflected —
//! the zlib/PNG polynomial) covers exactly the `len` payload bytes that
//! follow the newline. Anything that does not parse down this path —
//! truncation, bit flips, a future version — surfaces as a typed
//! [`ResumeError`], never a panic: corrupted checkpoints are an expected
//! input (that is the point of the chaos harness), not a programming error.
//!
//! ## Atomic write protocol
//!
//! [`save`] writes the full file to `<path>.tmp`, fsyncs it, then renames
//! over `<path>`. A crash mid-write therefore leaves either the previous
//! complete checkpoint or the new complete checkpoint at `<path>` — never a
//! torn file (the stale `.tmp` is ignored and overwritten by the next
//! save). Payload tolerance follows the `FaultPlan` convention: unknown
//! JSON fields are ignored and missing optional sections default, so older
//! readers reject only on version, not on shape drift within a version.

use std::fmt;
use std::io::Write;
use std::path::Path;

use serde::{DeError, Deserialize, Serialize, Value};

use crate::runner::RunnerCheckpoint;

/// File magic; first bytes of every checkpoint.
pub const MAGIC: &str = "BIRPCKPT";

/// Current checkpoint format version. Bump on any payload change an older
/// reader could misinterpret silently.
pub const VERSION: u32 = 1;

/// Why a checkpoint could not be loaded or a resume could not proceed.
///
/// Every variant is a *clean* failure: the CLI maps them to a non-zero exit
/// code and a one-line diagnosis. No input byte sequence may panic the
/// loader — the corruption fuzz suite holds it to that.
#[derive(Debug)]
pub enum ResumeError {
    /// Filesystem-level failure (missing file, permissions, short read).
    Io(std::io::Error),
    /// File ends before the header or the declared payload length.
    Truncated,
    /// The file does not start with [`MAGIC`] — not a checkpoint at all.
    BadMagic,
    /// A checkpoint, but written by an incompatible format version.
    WrongVersion { found: u32 },
    /// Payload bytes do not hash to the header's CRC — bit rot or a torn
    /// copy (the atomic-rename protocol makes this impossible for crashes,
    /// so it indicates external corruption).
    ChecksumMismatch { expected: u32, found: u32 },
    /// The payload is not the JSON document the version promises.
    Parse(String),
    /// The checkpoint is internally valid but does not match the run it is
    /// being resumed into (different scheduler, catalog shape, slot count).
    SpecMismatch(String),
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::Io(e) => write!(f, "checkpoint io error: {e}"),
            ResumeError::Truncated => write!(f, "checkpoint truncated"),
            ResumeError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            ResumeError::WrongVersion { found } => {
                write!(
                    f,
                    "unsupported checkpoint version {found} (supported: {VERSION})"
                )
            }
            ResumeError::ChecksumMismatch { expected, found } => write!(
                f,
                "checkpoint checksum mismatch (header {expected:08x}, payload {found:08x})"
            ),
            ResumeError::Parse(msg) => write!(f, "checkpoint payload malformed: {msg}"),
            ResumeError::SpecMismatch(msg) => write!(f, "checkpoint does not match run: {msg}"),
        }
    }
}

impl std::error::Error for ResumeError {}

impl From<std::io::Error> for ResumeError {
    fn from(e: std::io::Error) -> Self {
        ResumeError::Io(e)
    }
}

impl From<DeError> for ResumeError {
    fn from(e: DeError) -> Self {
        ResumeError::Parse(e.0)
    }
}

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFFFFFF`) — the zlib/PNG
/// checksum, computed bitwise. Checkpoints are written at most once every
/// few slots, so a table-free loop is plenty.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// A complete checkpoint: the embedder's opaque run spec plus the runner's
/// own resumable state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunCheckpoint {
    /// Whatever the embedder needs to rebuild catalog/trace/scheduler —
    /// the CLI stores its resolved invocation here. `Null` for library
    /// callers that rebuild from their own context.
    #[serde(default)]
    pub spec: Value,
    /// The runner's mid-trace state.
    pub runner: RunnerCheckpoint,
}

/// Serialize `ckpt` and write it durably to `path` via the atomic
/// temp-file + fsync + rename protocol.
pub fn save(path: &Path, ckpt: &RunCheckpoint) -> std::io::Result<()> {
    let payload =
        serde_json::to_string(&Serialize::to_value(ckpt)).expect("Value serialization cannot fail");
    let header = format!(
        "{MAGIC} v{VERSION} crc32={:08x} len={}\n",
        crc32(payload.as_bytes()),
        payload.len()
    );
    let tmp = tmp_path(path);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(header.as_bytes())?;
        f.write_all(payload.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// The sibling temp file [`save`] stages into before the rename.
pub fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    std::path::PathBuf::from(os)
}

/// Load and fully verify a checkpoint file.
pub fn load(path: &Path) -> Result<RunCheckpoint, ResumeError> {
    let bytes = std::fs::read(path)?;
    parse(&bytes)
}

/// Parse checkpoint bytes (separated from [`load`] so the fuzz suite can
/// feed adversarial buffers without touching the filesystem).
pub fn parse(bytes: &[u8]) -> Result<RunCheckpoint, ResumeError> {
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or(ResumeError::Truncated)?;
    let header = std::str::from_utf8(&bytes[..nl]).map_err(|_| ResumeError::BadMagic)?;
    let mut parts = header.split_ascii_whitespace();
    if parts.next() != Some(MAGIC) {
        return Err(ResumeError::BadMagic);
    }
    let version = parts
        .next()
        .and_then(|v| v.strip_prefix('v'))
        .and_then(|v| v.parse::<u32>().ok())
        .ok_or(ResumeError::BadMagic)?;
    if version != VERSION {
        return Err(ResumeError::WrongVersion { found: version });
    }
    let expected_crc = parts
        .next()
        .and_then(|v| v.strip_prefix("crc32="))
        .and_then(|v| u32::from_str_radix(v, 16).ok())
        .ok_or(ResumeError::Truncated)?;
    let len = parts
        .next()
        .and_then(|v| v.strip_prefix("len="))
        .and_then(|v| v.parse::<usize>().ok())
        .ok_or(ResumeError::Truncated)?;
    let payload = bytes
        .get(nl + 1..nl + 1 + len)
        .ok_or(ResumeError::Truncated)?;
    let found_crc = crc32(payload);
    if found_crc != expected_crc {
        return Err(ResumeError::ChecksumMismatch {
            expected: expected_crc,
            found: found_crc,
        });
    }
    let text = std::str::from_utf8(payload)
        .map_err(|_| ResumeError::Parse("payload is not UTF-8".into()))?;
    let value: Value = serde_json::from_str(text).map_err(|e| ResumeError::Parse(e.to_string()))?;
    Ok(RunCheckpoint::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vector for the IEEE/zlib polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn tiny_checkpoint() -> RunCheckpoint {
        RunCheckpoint {
            spec: Value::Object(vec![("scale".into(), Value::Str("small".into()))]),
            runner: crate::runner::RunnerCheckpoint::fresh(1, 1),
        }
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("birp-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let ckpt = tiny_checkpoint();
        save(&path, &ckpt).unwrap();
        assert!(!tmp_path(&path).exists(), "temp file must not survive save");
        let back = load(&path).unwrap();
        assert_eq!(
            back.spec.get("scale").and_then(Value::as_str),
            Some("small")
        );
        assert_eq!(back.runner.next_slot, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_and_corrupt_inputs_fail_cleanly() {
        let ckpt = tiny_checkpoint();
        let payload = serde_json::to_string(&Serialize::to_value(&ckpt)).unwrap();
        let header = format!(
            "{MAGIC} v{VERSION} crc32={:08x} len={}\n",
            crc32(payload.as_bytes()),
            payload.len()
        );
        let full: Vec<u8> = header.bytes().chain(payload.bytes()).collect();

        assert!(parse(&full).is_ok());
        assert!(matches!(parse(b""), Err(ResumeError::Truncated)));
        assert!(matches!(parse(b"garbage\n"), Err(ResumeError::BadMagic)));
        assert!(matches!(
            parse(&full[..full.len() - 3]),
            Err(ResumeError::Truncated)
        ));
        let mut flipped = full.clone();
        let ix = header.len() + 5;
        flipped[ix] ^= 0x40;
        assert!(matches!(
            parse(&flipped),
            Err(ResumeError::ChecksumMismatch { .. })
        ));
        let hdr2 = header.replacen(&format!("v{VERSION}"), "v999", 1);
        let bad: Vec<u8> = hdr2.bytes().chain(payload.bytes()).collect();
        assert!(matches!(
            parse(&bad),
            Err(ResumeError::WrongVersion { found: 999 })
        ));
    }
}
