//! The four scheduling algorithms of the paper's evaluation (Section 5.2).
//!
//! | scheduler | execution | TIR knowledge | solve method |
//! |-----------|-----------|---------------|--------------|
//! | [`Birp`] | batched | MAB-tuned LCB estimates (Eqs. 15–23) | MILP |
//! | [`BirpOff`] | batched | offline-profiled ground truth | MILP |
//! | [`Oaei`] | serial | — (learns latency online) | LP + randomised rounding |
//! | [`MaxBatch`] | batched at fixed `B0` | — | greedy |
//!
//! Two ablation variants beyond the paper's four:
//! [`Birp::without_lcb`] ("BIRP-MEAN") plans with raw running means instead
//! of lower-confidence bounds, and [`LocalOnly`] batches without ever
//! redistributing.

mod birp;
mod local;
mod max;
mod oaei;
mod sharded;

pub use birp::{Birp, BirpOff, TemporalReuse};
pub(crate) use local::greedy_local;
pub use local::LocalOnly;
pub use max::MaxBatch;
pub use oaei::Oaei;
pub use sharded::{
    edge_clusters, restrict_demand, restrict_prev, restrict_tir, shard_fault_stale_price,
    ShardConfig, ShardCoordinator, ShardOutcome,
};

use birp_sim::{Schedule, SlotOutcome};
use serde::{DeError, Value};

use crate::demand::DemandMatrix;

/// A per-slot decision maker.
pub trait Scheduler {
    /// Display name (used in experiment records and plots).
    fn name(&self) -> &'static str;

    /// Decide slot `t`'s schedule. `demand` includes requests carried over
    /// from earlier slots; `prev` is the previous slot's schedule (drives
    /// the model-transfer network term, paper Eqs. 13/14).
    fn decide(&mut self, t: usize, demand: &DemandMatrix, prev: Option<&Schedule>) -> Schedule;

    /// Feedback after the slot executed (observed TIRs, latencies).
    fn observe(&mut self, _outcome: &SlotOutcome) {}

    /// Exclude edges from planning (`mask[k] == true` ⇒ edge `k` deploys
    /// nothing and receives no redistributed work). Set by the runner's
    /// health monitor before each `decide`; `None` clears the mask. The
    /// default implementation ignores the mask, so mask-unaware schedulers
    /// keep their original behaviour.
    fn set_edge_mask(&mut self, _mask: Option<&[bool]>) {}

    /// Serializable snapshot of every piece of state this scheduler mutates
    /// across slots (learned estimates, caches, streaks, RNG position, the
    /// stored quarantine mask). The checkpoint layer persists it so
    /// [`import_state`](Self::import_state) on a freshly built scheduler
    /// resumes the exact decision trajectory. Stateless schedulers return
    /// [`Value::Null`], which imports as a no-op.
    fn export_state(&self) -> Value {
        Value::Null
    }

    /// Restore a snapshot produced by [`export_state`](Self::export_state)
    /// on a scheduler built with the *same* constructor parameters.
    /// `Value::Null` always succeeds (the stateless case).
    fn import_state(&mut self, state: &Value) -> Result<(), DeError> {
        if state.is_null() {
            Ok(())
        } else {
            Err(DeError::custom(format!(
                "{}: unexpected scheduler state (this scheduler is stateless)",
                self.name()
            )))
        }
    }
}

/// A safe fallback when a solver hiccups: serve nothing, carry everything.
pub(crate) fn all_unserved(t: usize, demand: &DemandMatrix) -> Schedule {
    let mut s = Schedule::empty(t, demand.num_apps(), demand.num_edges());
    for i in 0..demand.num_apps() {
        for k in 0..demand.num_edges() {
            s.unserved[i][k] = demand.get(birp_models::AppId(i), birp_models::EdgeId(k));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use birp_models::{AppId, EdgeId};

    #[test]
    fn all_unserved_balances_demand() {
        let mut d = DemandMatrix::zeros(2, 3);
        d.set(AppId(0), EdgeId(1), 7);
        d.set(AppId(1), EdgeId(2), 3);
        let s = all_unserved(5, &d);
        assert_eq!(s.t, 5);
        assert_eq!(s.total_unserved(), 10);
        assert_eq!(s.served(), 0);
        assert_eq!(s.unserved[0][1], 7);
        assert_eq!(s.unserved[1][2], 3);
    }
}
