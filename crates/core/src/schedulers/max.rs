//! The MAX baseline: utilisation-maximising fixed-size batching.
//!
//! Paper Section 5.2: "set a large batch size `B0` which can optimize
//! resource utilization, and when performing workload redistribution, the
//! inference batch transfer must be followed according to `B0`."
//!
//! MAX greedily packs each edge with batches of the *highest-throughput*
//! (smallest) models — maximising utilisation at the cost of accuracy —
//! and moves overflow between edges only in whole `B0` blocks. It plans
//! with the paper's conservative initial TIR estimate (Eq. 23) rather than
//! any learned curve.

use birp_models::catalog::MAX_BATCH;
use birp_models::{AppId, Catalog, EdgeId, ModelId};
use birp_sim::{Deployment, Schedule};
use birp_tir::TirParams;

use crate::demand::DemandMatrix;
use crate::schedulers::Scheduler;

pub struct MaxBatch {
    catalog: Catalog,
    b0: u32,
    /// Models of each app sorted by ascending latency (highest throughput
    /// first) — the utilisation-maximising fill order.
    fill_order: Vec<Vec<ModelId>>,
    planning_tir: TirParams,
    mask: Option<Vec<bool>>,
}

struct EdgeState {
    compute_left: f64,
    mem_left: f64,
    net_left: f64,
    batches: Vec<u32>,
}

impl MaxBatch {
    pub fn new(catalog: Catalog, b0: u32) -> Self {
        let fill_order = catalog
            .apps
            .iter()
            .map(|app| {
                let mut ms: Vec<ModelId> = app.models.clone();
                ms.sort_by(|a, b| {
                    catalog
                        .model(*a)
                        .gamma_base_ms
                        .partial_cmp(&catalog.model(*b).gamma_base_ms)
                        .unwrap()
                });
                ms
            })
            .collect();
        MaxBatch {
            catalog,
            b0: b0.clamp(1, MAX_BATCH),
            fill_order,
            planning_tir: TirParams::paper_initial(),
            mask: None,
        }
    }

    fn masked(&self, e: usize) -> bool {
        self.mask
            .as_ref()
            .is_some_and(|m| m.get(e).copied().unwrap_or(false))
    }

    /// The paper's default `B0 = 16`.
    pub fn paper_default(catalog: Catalog) -> Self {
        Self::new(catalog, 16)
    }

    fn est_latency(&self, e: usize, m: usize, b: u32) -> f64 {
        birp_tir::latency(self.catalog.edges[e].gamma_ms[m], b, &self.planning_tir)
    }

    /// Greedily assign up to `count` requests of `app` to edge `e`,
    /// respecting compute / memory / (deployment) network budgets.
    /// Returns the number actually placed.
    fn try_assign(
        &self,
        st: &mut EdgeState,
        e: usize,
        app: AppId,
        count: u32,
        prev: Option<&Schedule>,
    ) -> u32 {
        let mut left = count;
        for &mid in &self.fill_order[app.index()] {
            let m = mid.index();
            let mv = &self.catalog.models[m];
            while left > 0 && st.batches[m] < self.b0 {
                let b = st.batches[m];
                let delta_compute = self.est_latency(e, m, b + 1) - self.est_latency(e, m, b);
                let fresh = b == 0;
                let delta_mem = if fresh {
                    mv.weight_mb + mv.intermediate_mb
                } else {
                    mv.intermediate_mb
                };
                let deploy_net = if fresh && !prev.is_some_and(|p| p.is_deployed(EdgeId(e), mid)) {
                    mv.compressed_mb
                } else {
                    0.0
                };
                if delta_compute <= st.compute_left
                    && delta_mem <= st.mem_left
                    && deploy_net <= st.net_left
                {
                    st.compute_left -= delta_compute;
                    st.mem_left -= delta_mem;
                    st.net_left -= deploy_net;
                    st.batches[m] = b + 1;
                    left -= 1;
                } else {
                    break;
                }
            }
        }
        count - left
    }
}

impl Scheduler for MaxBatch {
    fn name(&self) -> &'static str {
        "MAX"
    }

    fn decide(&mut self, t: usize, demand: &DemandMatrix, prev: Option<&Schedule>) -> Schedule {
        let na = self.catalog.num_apps();
        let ne = self.catalog.num_edges();
        let nm = self.catalog.num_models();
        let mut schedule = Schedule::empty(t, na, ne);

        let mut states: Vec<EdgeState> = (0..ne)
            .map(|e| EdgeState {
                compute_left: self.catalog.slot_ms,
                mem_left: self.catalog.edges[e].memory_mb,
                net_left: self.catalog.edges[e].network_budget_mb,
                batches: vec![0; nm],
            })
            .collect();

        // Pass 1: serve locally.
        let mut remaining = vec![vec![0u32; ne]; na];
        for (i, rem_row) in remaining.iter_mut().enumerate() {
            for (e, rem) in rem_row.iter_mut().enumerate() {
                let d = demand.get(AppId(i), EdgeId(e));
                if d == 0 {
                    continue;
                }
                if self.masked(e) {
                    *rem = d;
                    continue;
                }
                let placed = self.try_assign(&mut states[e], e, AppId(i), d, prev);
                if placed > 0 {
                    schedule.routing.set(AppId(i), EdgeId(e), EdgeId(e), placed);
                }
                *rem = d - placed;
            }
        }

        // Pass 2: move overflow in whole B0 blocks to the emptiest edges.
        for (i, rem_row) in remaining.iter_mut().enumerate() {
            let zeta = self.catalog.apps[i].request_mb;
            for (src, rem) in rem_row.iter_mut().enumerate() {
                'blocks: while *rem >= self.b0 {
                    // Destinations ordered by remaining compute.
                    let mut order: Vec<usize> =
                        (0..ne).filter(|&d| d != src && !self.masked(d)).collect();
                    order.sort_by(|&a, &b| {
                        states[b]
                            .compute_left
                            .partial_cmp(&states[a].compute_left)
                            .unwrap()
                    });
                    for dest in order {
                        // Network pre-check on both sides.
                        let max_by_net = (states[src].net_left / zeta)
                            .min(states[dest].net_left / zeta)
                            .floor()
                            .max(0.0) as u32;
                        let block = self.b0.min(max_by_net);
                        if block == 0 {
                            continue;
                        }
                        let placed =
                            self.try_assign(&mut states[dest], dest, AppId(i), block, prev);
                        if placed > 0 {
                            let cost = zeta * placed as f64;
                            states[src].net_left -= cost;
                            states[dest].net_left -= cost;
                            schedule
                                .routing
                                .add(AppId(i), EdgeId(src), EdgeId(dest), placed);
                            *rem -= placed;
                            continue 'blocks;
                        }
                    }
                    break; // no destination accepted anything
                }
                schedule.unserved[i][src] = *rem;
            }
        }

        // Materialise deployments.
        for (e, st) in states.iter().enumerate() {
            for m in 0..nm {
                if st.batches[m] > 0 {
                    schedule.deployments[e].push(Deployment {
                        app: self.catalog.models[m].app,
                        model: ModelId(m),
                        batch: st.batches[m],
                    });
                }
            }
        }
        schedule
    }

    fn set_edge_mask(&mut self, mask: Option<&[bool]>) {
        self.mask = mask.map(|m| m.to_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(catalog: &Catalog, cells: &[(usize, usize, u32)]) -> DemandMatrix {
        let mut d = DemandMatrix::zeros(catalog.num_apps(), catalog.num_edges());
        for &(i, k, v) in cells {
            d.set(AppId(i), EdgeId(k), v);
        }
        d
    }

    #[test]
    fn max_prefers_small_models() {
        let catalog = Catalog::small_scale(42);
        let mut max = MaxBatch::paper_default(catalog.clone());
        let d = demand(&catalog, &[(0, 0, 10)]);
        let s = max.decide(0, &d, None);
        // Everything lands on the smallest (highest-loss) model.
        let dep = &s.deployments[0];
        assert_eq!(dep.len(), 1);
        assert_eq!(dep[0].model, ModelId(0));
        assert_eq!(dep[0].batch, 10);
    }

    #[test]
    fn max_schedule_is_structurally_valid() {
        let catalog = Catalog::small_scale(42);
        let mut max = MaxBatch::paper_default(catalog.clone());
        let d = demand(&catalog, &[(0, 0, 45), (0, 1, 3), (0, 5, 20)]);
        let s = max.decide(0, &d, None);
        let demand_fn = |a: AppId, e: EdgeId| d.get(a, e);
        birp_sim::validate(&catalog, &demand_fn, &s, None).unwrap();
    }

    #[test]
    fn overflow_moves_in_b0_blocks() {
        let catalog = Catalog::small_scale(42);
        let b0 = 8;
        let mut max = MaxBatch::new(catalog.clone(), b0);
        // Saturate edge 0 so overflow must move.
        let d = demand(&catalog, &[(0, 0, 200)]);
        let s = max.decide(0, &d, None);
        let moved: u32 = (1..catalog.num_edges())
            .map(|k| s.routing.get(AppId(0), EdgeId(0), EdgeId(k)))
            .sum();
        assert!(moved > 0, "expected overflow redistribution");
        // No single deployed batch exceeds B0.
        for dep in s.deployments.iter().flatten() {
            assert!(dep.batch <= b0);
        }
    }

    #[test]
    fn served_plus_unserved_equals_demand() {
        let catalog = Catalog::large_scale(42);
        let mut max = MaxBatch::paper_default(catalog.clone());
        let mut d = DemandMatrix::zeros(catalog.num_apps(), catalog.num_edges());
        for i in 0..catalog.num_apps() {
            for e in 0..catalog.num_edges() {
                d.set(AppId(i), EdgeId(e), ((i * 7 + e * 3) % 20) as u32);
            }
        }
        let s = max.decide(0, &d, None);
        assert_eq!(s.served() + s.total_unserved(), d.total());
        let demand_fn = |a: AppId, e: EdgeId| d.get(a, e);
        birp_sim::validate(&catalog, &demand_fn, &s, None).unwrap();
    }

    #[test]
    fn b0_is_clamped_to_max_batch() {
        let catalog = Catalog::small_scale(1);
        let max = MaxBatch::new(catalog, 999);
        assert_eq!(max.b0, MAX_BATCH);
    }
}
