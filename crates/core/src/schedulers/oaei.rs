//! The OAEI baseline [19]: serial, model-selection-based workload
//! redistribution via online learning and randomised rounding.
//!
//! Faithful to how the paper uses it as a comparator:
//!
//! * **serial execution** — no batching benefit; requests run one at a time
//!   (`Schedule::serial = true`),
//! * **online learning** — OAEI does not know device-specific latencies; it
//!   starts from the model zoo's published reference latency and learns each
//!   (edge, model) latency from observed executions with an EWMA,
//! * **randomised rounding** — the per-slot problem's LP relaxation is
//!   solved, the fractional deployment variables `x` are rounded to `{0,1}`
//!   Bernoulli-proportionally, and the remaining (routing, volume) problem
//!   is re-solved with `x` pinned.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use birp_models::Catalog;
use birp_sim::{Schedule, SlotOutcome};
use birp_solver::SolverConfig;
use serde::{DeError, Deserialize, Serialize, Value};

use crate::demand::DemandMatrix;
use crate::problem::{ExecutionMode, ProblemConfig, SlotProblem, TirMatrix};
use crate::schedulers::{all_unserved, Scheduler};

/// EWMA weight on new latency observations.
const LEARN_RATE: f64 = 0.3;
/// Upper bound on per-model serial request count per slot.
const MAX_SERIAL: u32 = 128;

pub struct Oaei {
    catalog: Catalog,
    /// Learned single-request latency per `[edge][model]`, ms.
    gamma_est: Vec<Vec<f64>>,
    solver_cfg: SolverConfig,
    rng: StdRng,
    mask: Option<Vec<bool>>,
}

/// OAEI's cross-slot mutable state: the learned latencies and the exact
/// position of the rounding RNG stream (the raw xoshiro256++ words, so a
/// resumed run draws the same Bernoulli sequence the uninterrupted run
/// would).
#[derive(Serialize, Deserialize)]
struct OaeiState {
    gamma_est: Vec<Vec<f64>>,
    rng: Vec<u64>,
}

impl Oaei {
    pub fn new(catalog: Catalog, seed: u64) -> Self {
        // Prior: the reference latency from the public model card — what an
        // operator knows before ever running the model on this device class.
        let gamma_est = (0..catalog.num_edges())
            .map(|_| catalog.models.iter().map(|m| m.gamma_base_ms).collect())
            .collect();
        Oaei {
            catalog,
            gamma_est,
            solver_cfg: SolverConfig::scheduling(),
            rng: StdRng::seed_from_u64(seed),
            mask: None,
        }
    }

    pub fn with_solver(mut self, cfg: SolverConfig) -> Self {
        self.solver_cfg = cfg;
        self
    }

    /// Current latency estimate (diagnostics and tests).
    pub fn gamma_estimate(&self, edge: usize, model: usize) -> f64 {
        self.gamma_est[edge][model]
    }

    /// Catalog clone carrying the learned latencies instead of ground truth.
    fn estimated_catalog(&self) -> Catalog {
        let mut cat = self.catalog.clone();
        for (e, edge) in cat.edges.iter_mut().enumerate() {
            edge.gamma_ms.clone_from(&self.gamma_est[e]);
        }
        cat
    }
}

impl Scheduler for Oaei {
    fn name(&self) -> &'static str {
        "OAEI"
    }

    fn decide(&mut self, t: usize, demand: &DemandMatrix, prev: Option<&Schedule>) -> Schedule {
        let cat = self.estimated_catalog();
        let cfg = ProblemConfig {
            mode: ExecutionMode::Serial {
                max_serial: MAX_SERIAL,
            },
            masked_edges: self.mask.clone(),
            ..Default::default()
        };
        // TIR estimates are irrelevant in serial mode but required by the
        // builder's signature.
        let tir = TirMatrix::initial(&cat);
        let problem = SlotProblem::build(&cat, t, demand, &tir, prev, &cfg);

        // Stage 1: LP relaxation -> fractional deployments.
        let Ok(frac_x) = problem.relaxation_x() else {
            return all_unserved(t, demand);
        };
        // Stage 2: randomised rounding.
        let fixed: Vec<Vec<bool>> = frac_x
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&f| {
                        let p = f.clamp(0.0, 1.0);
                        // Deterministic extremes avoid wasting randomness.
                        if p > 0.999 {
                            true
                        } else if p < 1e-3 {
                            false
                        } else {
                            self.rng.random_range(0.0..1.0) < p
                        }
                    })
                    .collect()
            })
            .collect();
        // Stage 3: re-solve with x pinned; fall back to the unpinned MILP,
        // then to carrying everything over.
        match problem.solve_with_fixed_x(&fixed, &self.solver_cfg) {
            Ok((schedule, _)) => schedule,
            Err(_) => match problem.solve(&self.solver_cfg) {
                Ok((schedule, _)) => schedule,
                Err(_) => all_unserved(t, demand),
            },
        }
    }

    fn observe(&mut self, outcome: &SlotOutcome) {
        // Serial executions expose single-request latency directly.
        for b in &outcome.batches {
            if b.batch == 1 {
                let est = &mut self.gamma_est[b.edge.index()][b.model.index()];
                *est += LEARN_RATE * (b.exec_ms - *est);
            }
        }
    }

    fn set_edge_mask(&mut self, mask: Option<&[bool]>) {
        self.mask = mask.map(|m| m.to_vec());
    }

    fn export_state(&self) -> Value {
        Serialize::to_value(&OaeiState {
            gamma_est: self.gamma_est.clone(),
            rng: self.rng.to_state().to_vec(),
        })
    }

    fn import_state(&mut self, state: &Value) -> Result<(), DeError> {
        if state.is_null() {
            return Ok(());
        }
        let s = OaeiState::from_value(state)?;
        if s.gamma_est.len() != self.gamma_est.len()
            || s.gamma_est
                .iter()
                .zip(&self.gamma_est)
                .any(|(a, b)| a.len() != b.len())
        {
            return Err(DeError::custom(
                "OAEI state gamma_est shape does not match catalog",
            ));
        }
        let rng: [u64; 4] = s
            .rng
            .as_slice()
            .try_into()
            .map_err(|_| DeError::custom("OAEI rng state must be 4 words"))?;
        self.gamma_est = s.gamma_est;
        self.rng = StdRng::from_state(rng);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use birp_models::{AppId, EdgeId};
    use birp_sim::{EdgeSim, SimConfig};

    fn demand(catalog: &Catalog, cells: &[(usize, usize, u32)]) -> DemandMatrix {
        let mut d = DemandMatrix::zeros(catalog.num_apps(), catalog.num_edges());
        for &(i, k, v) in cells {
            d.set(AppId(i), EdgeId(k), v);
        }
        d
    }

    #[test]
    fn oaei_produces_serial_schedules() {
        let catalog = Catalog::small_scale(42);
        let mut oaei = Oaei::new(catalog.clone(), 1);
        let d = demand(&catalog, &[(0, 0, 8), (0, 4, 5)]);
        let s = oaei.decide(0, &d, None);
        assert!(s.serial);
        assert_eq!(s.served() + s.total_unserved(), 13);
    }

    #[test]
    fn oaei_learns_latency_from_observations() {
        // OAEI chooses which (edge, model) pairs to run; assert that every
        // pair it actually executed has its estimate pulled toward the
        // ground truth, and that at least one estimate moved.
        let catalog = Catalog::small_scale(42);
        let mut oaei = Oaei::new(catalog.clone(), 1);
        let priors: Vec<Vec<f64>> = (0..catalog.num_edges())
            .map(|e| {
                (0..catalog.num_models())
                    .map(|m| oaei.gamma_estimate(e, m))
                    .collect()
            })
            .collect();

        let mut d = DemandMatrix::zeros(catalog.num_apps(), catalog.num_edges());
        d.set(AppId(0), EdgeId(2), 6);
        d.set(AppId(0), EdgeId(4), 6);
        let sim = EdgeSim::new(
            catalog.clone(),
            SimConfig {
                exec_noise_sigma: 0.0,
                ..Default::default()
            },
        );
        let mut executed = std::collections::HashSet::new();
        for t in 0..25 {
            let s = oaei.decide(t, &d, None);
            let out = sim.execute_slot(&s, None);
            for b in &out.batches {
                executed.insert((b.edge.index(), b.model.index()));
            }
            oaei.observe(&out);
        }
        assert!(!executed.is_empty(), "OAEI served nothing");
        let mut moved = 0;
        for &(e, m) in &executed {
            let truth = catalog.edges[e].gamma_ms[m];
            let prior = priors[e][m];
            let learned = oaei.gamma_estimate(e, m);
            assert!(
                (learned - truth).abs() <= (prior - truth).abs() + 1e-9,
                "estimate for ({e},{m}) moved away: prior {prior}, learned {learned}, truth {truth}"
            );
            if (learned - prior).abs() > 1e-9 {
                moved += 1;
            }
        }
        assert!(
            moved > 0,
            "no estimate moved despite {} executed pairs",
            executed.len()
        );
    }

    #[test]
    fn oaei_is_deterministic_per_seed() {
        let catalog = Catalog::small_scale(42);
        let d = demand(&catalog, &[(0, 0, 10)]);
        let s1 = Oaei::new(catalog.clone(), 7).decide(0, &d, None);
        let s2 = Oaei::new(catalog.clone(), 7).decide(0, &d, None);
        assert_eq!(s1, s2);
    }

    #[test]
    fn oaei_name() {
        let catalog = Catalog::small_scale(1);
        assert_eq!(Oaei::new(catalog, 0).name(), "OAEI");
    }
}
