//! BIRP and its offline-oracle variant.
//!
//! BIRP (paper Fig. 3) per slot:
//!
//! 1. read the MAB tuner's lower-confidence-bound estimates of every
//!    (edge, model) TIR curve,
//! 2. build the batch-aware problem `P1^t`/`P2^t` with the Taylor-linearised
//!    compute constraint,
//! 3. solve the resulting MILP (the paper calls Gurobi; we call
//!    `birp_solver`),
//! 4. dispatch, then feed the observed per-batch TIRs back into the tuner
//!    (Eqs. 15–23).
//!
//! BIRP-OFF seeds the same machinery with offline-profiled ground truth and
//! disables tuning (paper Section 5.2).

use birp_mab::{MabConfig, Tuner};
use birp_models::{AppId, Catalog, EdgeId, ModelId};
use birp_sim::{Schedule, SlotOutcome};
use birp_solver::SolverConfig;
use birp_telemetry as telemetry;
use birp_tir::TirParams;
use serde::{DeError, Deserialize, Serialize, Value};

use crate::demand::DemandMatrix;
use crate::problem::{
    DeltaOutcome, ExecutionMode, ProblemConfig, RebuildReason, ReuseOutcome, SlotInputs,
    SlotProblem, SolveStats, TirMatrix,
};
use crate::schedulers::local::greedy_local;
use crate::schedulers::sharded::{edge_clusters, ShardConfig, ShardCoordinator};
use crate::schedulers::Scheduler;

/// Cross-slot temporal reuse knobs (DESIGN.md §11).
///
/// Consecutive slots differ by smooth demand drift and occasional MAB
/// updates, so the previous slot's schedule is almost always a strong
/// starting incumbent — and, when the slot state recurs exactly, the
/// finished answer. Both levers are verification-gated, so behaviour
/// stays equivalent to solving from scratch (the conformance layer's
/// `temporal_differential` suite and the reuse-on goldens hold it there).
#[derive(Debug, Clone)]
pub struct TemporalReuse {
    /// Master switch (`--no-reuse` from the CLI). Off reproduces the
    /// pre-reuse decision path exactly.
    pub enabled: bool,
    /// Cache admission tolerance: a cached schedule is returned without
    /// branch and bound only if its relative gap to the current LP root
    /// bound is at most this. `None` uses the solver's `rel_gap` — the
    /// same criterion branch and bound itself terminates on.
    pub cache_tolerance: Option<f64>,
    /// Schedule-cache entries kept (oldest evicted).
    pub cache_capacity: usize,
    /// Maximum consecutive slots the heuristic-regime skip may serve from
    /// the repaired previous-slot schedule before a true solve is forced.
    /// The skip only ever activates while the budgeted solver is returning
    /// degraded (budget-truncated) incumbents — in a regime where the
    /// solver proves optimality it is structurally inert, so `0` is only
    /// needed to ablate it explicitly.
    pub max_skip_streak: usize,
    /// Incremental re-solve (DESIGN.md §13): keep one persistent
    /// [`SlotProblem`] alive across slots and absorb each new slot as typed
    /// deltas (demand drift, quarantine mask, TIR estimate moves, previous
    /// deployments, budgets) instead of lowering from scratch. The refreshed
    /// model is bitwise-identical to a rebuild (the `temporal_differential`
    /// delta suite pins this), so this is purely a build-cost lever.
    pub deltas: bool,
}

impl Default for TemporalReuse {
    fn default() -> Self {
        TemporalReuse {
            enabled: true,
            cache_tolerance: None,
            cache_capacity: 16,
            max_skip_streak: 3,
            deltas: true,
        }
    }
}

impl TemporalReuse {
    /// The escape hatch (`--no-reuse`): no warm-start install, no cache,
    /// and no persistent slot model — every slot lowers from scratch.
    pub fn disabled() -> Self {
        TemporalReuse {
            enabled: false,
            deltas: false,
            ..TemporalReuse::default()
        }
    }
}

/// Exact fingerprint of everything that shapes one slot's problem: the
/// demand matrix, the quarantine mask, the planner's (eta, beta) estimates
/// (quantised at machine precision via the eta bit pattern) and the full
/// previous executed schedule (its deployment set enters the network
/// constraint; its routing shapes the installed incumbent). Two equal keys
/// lower to byte-identical problems, so a cached answer is the answer the
/// deterministic solver would recompute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SlotKey {
    demand: Vec<u32>,
    mask: Vec<bool>,
    tir: Vec<u64>,
    prev: Vec<u64>,
}

impl SlotKey {
    fn new(
        demand: &DemandMatrix,
        mask: Option<&[bool]>,
        tir: &TirMatrix,
        prev: Option<&Schedule>,
        num_models: usize,
    ) -> Self {
        let (na, ne) = (demand.num_apps(), demand.num_edges());
        let mut d = Vec::with_capacity(na * ne);
        for i in 0..na {
            for k in 0..ne {
                d.push(demand.get(AppId(i), EdgeId(k)));
            }
        }
        let mut t = Vec::with_capacity(ne * num_models * 3);
        for e in 0..ne {
            for m in 0..num_models {
                let p = tir.get(EdgeId(e), ModelId(m));
                t.extend([p.eta.to_bits(), u64::from(p.beta), p.c.to_bits()]);
            }
        }
        SlotKey {
            demand: d,
            mask: mask.map(<[bool]>::to_vec).unwrap_or_default(),
            tir: t,
            prev: schedule_digest(prev, na, ne),
        }
    }
}

#[derive(Serialize, Deserialize)]
struct CacheEntry {
    key: SlotKey,
    schedule: Schedule,
}

/// Everything [`Birp`] mutates across slots, in serializable form — the
/// scheduler half of a run checkpoint (DESIGN.md §12). The stored quarantine
/// `mask` is part of it deliberately: [`Birp::set_edge_mask`] resets the
/// skip streak on mask *change*, so a resumed scheduler must remember the
/// mask it last planned under or the first post-resume slot would spuriously
/// re-anchor.
#[derive(Serialize, Deserialize)]
struct BirpState {
    tuner: Tuner,
    cum_regret: f64,
    mask: Option<Vec<bool>>,
    skip_streak: usize,
    heuristic_regime: bool,
    cache: Vec<CacheEntry>,
    /// Input fingerprint of the persistent slot model (DESIGN.md §13), when
    /// one was alive at checkpoint time. Restore re-lowers the skeleton from
    /// it and lets the first post-resume refresh recompute the derived
    /// state — so a resumed run diffs against exactly the inputs the
    /// uninterrupted run would have diffed against. `default` keeps
    /// pre-delta checkpoints readable (absent field → no persistent model).
    #[serde(default)]
    slot_inputs: Option<SlotInputs>,
    /// Dual prices of the sharded coordinator as IEEE-754 bit patterns
    /// (DESIGN.md §14), when sharding is active. Cluster models need no
    /// snapshot: refresh ≡ rebuild bitwise, and a cluster's slot inputs
    /// are fully determined by (demand, TIR, prev, mask, prices) — all of
    /// which the resumed run reproduces. `default` keeps pre-shard
    /// checkpoints readable.
    #[serde(default)]
    shard_prices: Option<Vec<u64>>,
}

/// Canonical digest of a schedule for [`SlotKey::prev`]: deployments,
/// non-zero routing entries, unserved counts and the serial flag. The
/// digest covers the *full* schedule, not just the deployed set, because
/// the previous routing seeds the repaired incumbent and thereby the
/// branch-and-bound trajectory.
fn schedule_digest(s: Option<&Schedule>, num_apps: usize, num_edges: usize) -> Vec<u64> {
    let Some(s) = s else { return Vec::new() };
    let mut d = vec![u64::from(s.serial)];
    for (e, ds) in s.deployments.iter().enumerate() {
        let mut ds: Vec<_> = ds
            .iter()
            .map(|d| (d.app.index(), d.model.index(), d.batch))
            .collect();
        ds.sort_unstable();
        for (a, m, batch) in ds {
            d.extend([e as u64, a as u64, m as u64, u64::from(batch)]);
        }
    }
    d.push(u64::MAX); // section separator
    for i in 0..num_apps {
        for src in 0..num_edges {
            for dst in 0..num_edges {
                let r = s.routing.get(AppId(i), EdgeId(src), EdgeId(dst));
                if r > 0 {
                    d.extend([i as u64, src as u64, dst as u64, u64::from(r)]);
                }
            }
        }
    }
    d.push(u64::MAX);
    for row in &s.unserved {
        for &u in row {
            d.push(u64::from(u));
        }
    }
    d
}

/// Warm/cold LP counter values at decide entry, for per-slot deltas in the
/// provenance record.
fn lp_counter_snapshot() -> (u64, u64) {
    (
        telemetry::counter_value("solver.lp_warm").unwrap_or(0),
        telemetry::counter_value("solver.lp_cold").unwrap_or(0),
    )
}

/// Emit the per-slot decision provenance record: exactly one Info-level
/// `birp.provenance` event per decide, tagged with the path that produced
/// the schedule (`skip` | `repair` | `cache_hit` | `full_solve` |
/// `fallback`) plus the evidence behind it — objective/gap/node counts,
/// warm/cold LP deltas since decide entry, the quarantine mask in force and
/// the incumbent trajectory. The path tag is mirrored into a `reuse.<path>`
/// counter so aggregate reports cross-check against the per-slot records.
fn emit_provenance(
    t: usize,
    path: &'static str,
    stats: Option<&SolveStats>,
    mask: Option<&[bool]>,
    lp0: (u64, u64),
) {
    if !telemetry::enabled() {
        return;
    }
    telemetry::counter(&format!("reuse.{path}"), 1);
    let lp_warm = telemetry::counter_value("solver.lp_warm")
        .unwrap_or(0)
        .saturating_sub(lp0.0);
    let lp_cold = telemetry::counter_value("solver.lp_cold")
        .unwrap_or(0)
        .saturating_sub(lp0.1);
    let masked = mask.map_or(0, |m| m.iter().filter(|&&q| q).count()) as u64;
    let num = |v: Option<f64>| v.map_or(telemetry::Value::Null, telemetry::Value::Float);
    let incumbents = telemetry::Value::Array(
        stats
            .map(|s| s.incumbents.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(|&(n, obj, gap)| {
                telemetry::Value::Array(vec![
                    telemetry::Value::UInt(n),
                    telemetry::Value::Float(obj),
                    telemetry::Value::Float(gap),
                ])
            })
            .collect(),
    );
    telemetry::event(
        telemetry::Level::Info,
        "birp.provenance",
        &[
            ("slot", (t as u64).into()),
            ("path", path.into()),
            ("objective", num(stats.map(|s| s.objective))),
            ("gap", num(stats.map(|s| s.gap))),
            (
                "nodes",
                telemetry::Value::UInt(stats.map_or(0, |s| s.nodes as u64)),
            ),
            ("optimal", stats.is_some_and(|s| s.optimal).into()),
            ("degraded", stats.is_some_and(|s| s.degraded).into()),
            ("lp_warm", telemetry::Value::UInt(lp_warm)),
            ("lp_cold", telemetry::Value::UInt(lp_cold)),
            ("masked_edges", telemetry::Value::UInt(masked)),
            ("incumbents", incumbents),
        ],
    );
}

/// Emit the per-slot delta provenance record (DESIGN.md §13): exactly one
/// `birp.delta` event per decide saying how this slot's problem came to be —
/// `path: "delta"` with per-kind edit counts when the persistent model
/// absorbed the slot, `path: "rebuild"` with the reason when it was lowered
/// from scratch. Mirrored into the `solver.delta_applied` /
/// `solver.full_rebuild` counters so aggregate reports cross-check against
/// the per-slot records.
fn emit_delta(t: usize, outcome: &DeltaOutcome) {
    match outcome {
        DeltaOutcome::Applied(s) => {
            telemetry::counter("solver.delta_applied", 1);
            if telemetry::enabled() {
                telemetry::event(
                    telemetry::Level::Info,
                    "birp.delta",
                    &[
                        ("slot", (t as u64).into()),
                        ("path", "delta".into()),
                        ("demand", (s.demand as u64).into()),
                        ("mask", (s.mask as u64).into()),
                        ("tir", (s.tir as u64).into()),
                        ("prev_deploy", (s.prev_deploy as u64).into()),
                        ("budget", (s.budget as u64).into()),
                        ("total", (s.total() as u64).into()),
                    ],
                );
            }
        }
        DeltaOutcome::Rebuilt(reason) => {
            telemetry::counter("solver.full_rebuild", 1);
            if telemetry::enabled() {
                let reason = match reason {
                    RebuildReason::FirstBuild => "first_build",
                    RebuildReason::Disabled => "disabled",
                    RebuildReason::StructureChanged => "structure_changed",
                    RebuildReason::CatalogChanged => "catalog_changed",
                };
                telemetry::event(
                    telemetry::Level::Info,
                    "birp.delta",
                    &[
                        ("slot", (t as u64).into()),
                        ("path", "rebuild".into()),
                        ("reason", reason.into()),
                    ],
                );
            }
        }
    }
}

/// The batch-aware, MAB-tuned scheduler (the paper's contribution).
pub struct Birp {
    catalog: Catalog,
    tuner: Tuner,
    solver_cfg: SolverConfig,
    problem_cfg: ProblemConfig,
    /// When false the tuner is frozen (BIRP-OFF behaviour).
    tune: bool,
    /// When false, plan with the running-mean estimates instead of the
    /// lower-confidence bounds — the exploration-ablation variant
    /// ("BIRP-MEAN"). The paper's Eq. 17/22 argue the LCB avoids local
    /// optima; this switch lets the benches quantify that.
    use_lcb: bool,
    /// Quarantine mask from the runner's health monitor (see
    /// [`Scheduler::set_edge_mask`]).
    mask: Option<Vec<bool>>,
    /// Cross-slot temporal reuse configuration (DESIGN.md §11).
    reuse: TemporalReuse,
    /// Schedule cache: exact slot fingerprints of past solved slots and the
    /// schedule branch and bound produced for them, newest last.
    cache: Vec<CacheEntry>,
    /// Consecutive slots served by the heuristic-regime skip since the last
    /// true solve (bounded by [`TemporalReuse::max_skip_streak`]).
    skip_streak: usize,
    /// True while the budgeted solver is returning degraded
    /// (budget-truncated) incumbents — the only regime in which the
    /// heuristic-regime skip is allowed to fire.
    heuristic_regime: bool,
    /// The persistent slot model (DESIGN.md §13): lowered once, then
    /// refreshed in place with typed deltas each slot while
    /// [`TemporalReuse::deltas`] is on. `None` until the first decide, and
    /// whenever the delta path is off.
    slot_model: Option<SlotProblem>,
    /// Input fingerprint restored from a checkpoint, consumed by the first
    /// decide after resume to re-lower the persistent model skeleton.
    restored_inputs: Option<SlotInputs>,
    /// Sharded-decomposition coordinator (DESIGN.md §14). `Some` only when
    /// [`with_shards`](Self::with_shards) produced at least two clusters —
    /// a single-cluster partition is the monolithic problem and falls
    /// through to the ordinary decide path bitwise.
    shard: Option<ShardCoordinator>,
    /// Solve statistics of the most recent slot (for experiment logs).
    pub last_stats: Option<SolveStats>,
    /// Cumulative absolute TIR estimation error (LCB estimate vs ground
    /// truth, evaluated at each executed batch size) — the tuner's regret
    /// trajectory. Only meaningful while tuning.
    pub cum_regret: f64,
}

impl Birp {
    /// Standard BIRP with the paper's initial estimates (Eq. 23).
    pub fn new(catalog: Catalog, mab: MabConfig) -> Self {
        let tuner = Tuner::new(catalog.num_edges(), catalog.num_models(), mab);
        Birp {
            catalog,
            tuner,
            solver_cfg: SolverConfig::scheduling(),
            problem_cfg: ProblemConfig {
                mode: ExecutionMode::Batched,
                ..Default::default()
            },
            tune: true,
            use_lcb: true,
            mask: None,
            reuse: TemporalReuse::default(),
            cache: Vec::new(),
            skip_streak: 0,
            heuristic_regime: false,
            slot_model: None,
            restored_inputs: None,
            shard: None,
            last_stats: None,
            cum_regret: 0.0,
        }
    }

    /// The exploration-ablation variant: identical machinery but planning
    /// with the running-mean TIR estimates instead of the LCBs.
    pub fn without_lcb(catalog: Catalog, mab: MabConfig) -> Self {
        let mut s = Self::new(catalog, mab);
        s.use_lcb = false;
        s
    }

    /// Override the branch-and-bound configuration.
    pub fn with_solver(mut self, cfg: SolverConfig) -> Self {
        self.solver_cfg = cfg;
        self
    }

    /// Override the temporal-reuse configuration (e.g. [`TemporalReuse::disabled`]).
    pub fn with_reuse(mut self, reuse: TemporalReuse) -> Self {
        self.reuse = reuse;
        self.cache.clear();
        self.skip_streak = 0;
        self.heuristic_regime = false;
        self.slot_model = None;
        self.restored_inputs = None;
        self
    }

    /// Enable the sharded decomposition scheduler (DESIGN.md §14): the
    /// fleet is partitioned into clusters of `cfg.cluster_size` edges and
    /// each slot is decided by the Lagrangian dual-price loop. A partition
    /// with fewer than two clusters (cluster size 0, or at least the fleet
    /// size) leaves the monolithic path in place, bitwise.
    pub fn with_shards(mut self, cfg: ShardConfig) -> Self {
        let clusters = if cfg.cluster_size == 0 {
            1
        } else {
            edge_clusters(self.catalog.num_edges(), cfg.cluster_size).len()
        };
        self.shard = (clusters >= 2).then(|| ShardCoordinator::new(&self.catalog, cfg));
        self
    }

    /// The sharded coordinator, when one is active (diagnostics/tests).
    pub fn shard_coordinator(&self) -> Option<&ShardCoordinator> {
        self.shard.as_ref()
    }

    /// Access the tuner (diagnostics and tests).
    pub fn tuner(&self) -> &Tuner {
        &self.tuner
    }

    fn estimates(&self) -> TirMatrix {
        TirMatrix::from_fn(
            self.catalog.num_edges(),
            self.catalog.num_models(),
            |e, m| {
                if self.use_lcb {
                    self.tuner.estimate(e, m)
                } else {
                    self.tuner.arm(e, m).mean_estimate()
                }
            },
        )
    }

    /// Produce this slot's lowered problem. While the delta path is on
    /// ([`TemporalReuse::deltas`]) the persistent model is refreshed in
    /// place — consecutive slots are diffed into typed deltas and a full
    /// rebuild only happens on a structure/catalog fingerprint mismatch.
    /// Otherwise (or on the very first slot) the problem is lowered from
    /// scratch, exactly as the pre-delta decision path did. Also the
    /// restore half of the persistent-model checkpoint: a fingerprint
    /// imported by [`Scheduler::import_state`] is re-lowered here, and the
    /// refresh that follows recomputes the derived state just as the
    /// uninterrupted run's refresh would have.
    #[allow(clippy::too_many_arguments)]
    fn acquire_problem(
        &mut self,
        t: usize,
        demand: &DemandMatrix,
        tir: &TirMatrix,
        prev: Option<&Schedule>,
        cfg: &ProblemConfig,
        reuse: Option<&Schedule>,
        guide_lp: bool,
    ) -> (SlotProblem, DeltaOutcome) {
        let deltas_on = self.reuse.enabled && self.reuse.deltas;
        if deltas_on {
            if self.slot_model.is_none() {
                if let Some(inputs) = self.restored_inputs.take() {
                    // Dimension guard: a fingerprint from a checkpoint taken
                    // under a different catalog cannot be re-lowered (the
                    // refresh would reject it anyway via the statics digest).
                    if inputs.num_apps == self.catalog.num_apps()
                        && inputs.num_edges == self.catalog.num_edges()
                        && inputs.num_models == self.catalog.num_models()
                    {
                        self.slot_model = Some(SlotProblem::from_inputs(&self.catalog, inputs));
                    }
                }
            }
            if let Some(mut model) = self.slot_model.take() {
                let outcome = model.refresh_with_reuse(
                    &self.catalog,
                    t,
                    demand,
                    tir,
                    prev,
                    cfg,
                    reuse,
                    guide_lp,
                );
                return (model, outcome);
            }
        } else {
            self.slot_model = None;
            self.restored_inputs = None;
        }
        let problem = if guide_lp {
            SlotProblem::build_with_reuse(&self.catalog, t, demand, tir, prev, cfg, reuse)
        } else {
            SlotProblem::build_reuse_lean(&self.catalog, t, demand, tir, prev, cfg, reuse)
        };
        let reason = if deltas_on {
            RebuildReason::FirstBuild
        } else {
            RebuildReason::Disabled
        };
        (problem, DeltaOutcome::Rebuilt(reason))
    }

    /// Sharded decide path: delegate the slot to the dual-price
    /// coordinator. The reuse/cache/skip machinery is bypassed — cluster
    /// models already persist (and delta-refresh) inside the coordinator,
    /// which is the sharded path's own incremental machinery.
    fn decide_sharded(
        &mut self,
        t: usize,
        demand: &DemandMatrix,
        prev: Option<&Schedule>,
    ) -> Schedule {
        let tir = self.estimates();
        let lp0 = lp_counter_snapshot();
        let cfg = ProblemConfig {
            masked_edges: self.mask.clone(),
            ..self.problem_cfg.clone()
        };
        // Take the coordinator out to split the borrow against `catalog`.
        let mut coord = self
            .shard
            .take()
            .expect("decide_sharded without coordinator");
        let out = coord.decide(&self.catalog, t, demand, &tir, prev, &cfg, &self.solver_cfg);
        self.shard = Some(coord);
        let path = if out.fallback_used {
            "shard_fallback"
        } else {
            "shard"
        };
        emit_provenance(t, path, Some(&out.stats), self.mask.as_deref(), lp0);
        self.last_stats = Some(out.stats);
        out.schedule
    }

    fn decide_inner(
        &mut self,
        t: usize,
        demand: &DemandMatrix,
        prev: Option<&Schedule>,
    ) -> Schedule {
        if self.shard.is_some() {
            return self.decide_sharded(t, demand, prev);
        }
        let tir = self.estimates();
        let lp0 = lp_counter_snapshot();
        let cfg = ProblemConfig {
            masked_edges: self.mask.clone(),
            ..self.problem_cfg.clone()
        };
        // Heuristic-regime skip: while the budgeted solver is returning
        // degraded (budget-truncated) incumbents, its output carries no
        // optimality proof — its guaranteed floor is the warm-start point
        // it was handed. A lean refresh (no guide-LP solve — the skip path
        // never certifies and never branches, so the root relaxation is
        // pure overhead here) produces exactly that floor: the greedy
        // packing, improved by the repaired previous-slot schedule whenever
        // that carries a lower objective. Serve it directly and save the
        // whole branch-and-bound run. The streak bound forces a true
        // re-solve every few slots so quality re-anchors on fresh search,
        // and the gate is structurally inert wherever the solver proves
        // optimality (no degraded solves → no skips), which is what keeps
        // the certifying-config differential suite exact.
        let skip = self.reuse.enabled
            && self.heuristic_regime
            && self.skip_streak < self.reuse.max_skip_streak;
        let candidate = if self.reuse.enabled { prev } else { None };
        let (problem, delta) = self.acquire_problem(t, demand, &tir, prev, &cfg, candidate, !skip);
        emit_delta(t, &delta);
        if skip {
            match problem.reuse_outcome() {
                Some(ReuseOutcome::Installed) => telemetry::counter("scheduler.reuse_install", 1),
                Some(ReuseOutcome::RepairFail) => {
                    telemetry::counter("scheduler.reuse_repair_fail", 1);
                }
                _ => {}
            }
            let (schedule, stats) = problem.warm_schedule();
            self.skip_streak += 1;
            telemetry::counter("scheduler.reuse_budget_skip", 1);
            if telemetry::enabled() {
                telemetry::event(
                    telemetry::Level::Debug,
                    "birp.slot_reused",
                    &[
                        ("t", (t as u64).into()),
                        ("objective", stats.objective.into()),
                        ("gap", stats.gap.into()),
                    ],
                );
            }
            emit_provenance(t, "skip", Some(&stats), self.mask.as_deref(), lp0);
            self.last_stats = Some(stats);
            self.slot_model = Some(problem);
            return schedule;
        }

        match problem.reuse_outcome() {
            Some(ReuseOutcome::Installed) => telemetry::counter("scheduler.reuse_install", 1),
            Some(ReuseOutcome::RepairFail) => telemetry::counter("scheduler.reuse_repair_fail", 1),
            _ => {}
        }

        let tol = self
            .reuse
            .cache_tolerance
            .unwrap_or(self.solver_cfg.rel_gap);

        // The certification probes below (warm-incumbent gap check, cache
        // lookup + re-certify) are one causal step of the decide trace.
        let probe_span = telemetry::span("birp.reuse_probe");

        // Incumbent skip: when a temporal candidate was repaired into the
        // warm start and that point already sits within the solver's own
        // termination gap of the LP root bound, branch and bound would
        // accept it on arrival — skip the search.
        if self.reuse.enabled && problem.reuse_outcome().is_some() {
            if let Some((schedule, stats)) = problem.certified_warm(tol) {
                telemetry::counter("scheduler.reuse_warm_skip", 1);
                if telemetry::enabled() {
                    telemetry::event(
                        telemetry::Level::Debug,
                        "birp.slot_reused",
                        &[
                            ("t", (t as u64).into()),
                            ("objective", stats.objective.into()),
                            ("gap", stats.gap.into()),
                        ],
                    );
                }
                emit_provenance(t, "repair", Some(&stats), self.mask.as_deref(), lp0);
                self.last_stats = Some(stats);
                self.slot_model = Some(problem);
                return schedule;
            }
        }

        // Schedule cache: when this slot's exact fingerprint (demand, mask,
        // TIR estimates, full previous schedule) was solved before, the
        // deterministic solver would retrace the same search — so return the
        // cached schedule, provided it re-certifies against *this* problem's
        // LP root bound within the solver's own optimality tolerance.
        let key = (self.reuse.enabled && self.reuse.cache_capacity > 0).then(|| {
            SlotKey::new(
                demand,
                self.mask.as_deref(),
                &tir,
                prev,
                self.catalog.num_models(),
            )
        });
        if let Some(key) = &key {
            if let Some(entry) = self.cache.iter().find(|e| &e.key == key) {
                match problem.certify_schedule(&entry.schedule, tol) {
                    Some((objective, gap)) => {
                        telemetry::counter("scheduler.reuse_cache_hit", 1);
                        if telemetry::enabled() {
                            telemetry::event(
                                telemetry::Level::Debug,
                                "birp.slot_reused",
                                &[
                                    ("t", (t as u64).into()),
                                    ("objective", objective.into()),
                                    ("gap", gap.into()),
                                ],
                            );
                        }
                        let stats = SolveStats {
                            objective,
                            gap,
                            nodes: 0,
                            optimal: true,
                            degraded: false,
                            incumbents: vec![(0, objective, gap)],
                        };
                        emit_provenance(t, "cache_hit", Some(&stats), self.mask.as_deref(), lp0);
                        self.last_stats = Some(stats);
                        let mut schedule = entry.schedule.clone();
                        schedule.t = t;
                        self.slot_model = Some(problem);
                        return schedule;
                    }
                    None => telemetry::counter("scheduler.reuse_cache_reject", 1),
                }
            }
        }

        drop(probe_span);

        // When the repair pass installed the previous slot's schedule as the
        // incumbent, branch and bound no longer needs its diving heuristics
        // (their only role is incumbent supply, and they dominate the LP
        // count under the scheduling node budget) — trust the incumbent and
        // spend the whole budget on the tree.
        let mut solver_cfg = self.solver_cfg.clone();
        if matches!(problem.reuse_outcome(), Some(ReuseOutcome::Installed)) {
            solver_cfg.trust_warm = true;
        }
        match problem.solve(&solver_cfg) {
            Ok((schedule, stats)) => {
                if telemetry::enabled() {
                    telemetry::event(
                        telemetry::Level::Debug,
                        "birp.slot_solved",
                        &[
                            ("t", (t as u64).into()),
                            ("objective", stats.objective.into()),
                            ("gap", stats.gap.into()),
                            ("nodes", (stats.nodes as u64).into()),
                            ("optimal", stats.optimal.into()),
                        ],
                    );
                }
                emit_provenance(t, "full_solve", Some(&stats), self.mask.as_deref(), lp0);
                self.skip_streak = 0;
                self.heuristic_regime = stats.degraded;
                if let Some(key) = key {
                    // Only proven (non-degraded) answers are worth replaying;
                    // a budget-truncated incumbent would freeze a weak
                    // schedule into every recurrence of this slot state.
                    if !stats.degraded {
                        if self.cache.len() >= self.reuse.cache_capacity {
                            self.cache.remove(0);
                        }
                        self.cache.push(CacheEntry {
                            key,
                            schedule: schedule.clone(),
                        });
                    }
                }
                self.last_stats = Some(stats);
                self.slot_model = Some(problem);
                schedule
            }
            Err(err) => {
                // The problem is always feasible (overflow absorbs demand);
                // reaching this means the solve budget produced no incumbent.
                // Degrade to the loss-greedy strictly-local packing — still a
                // valid, demand-balanced schedule — rather than stall a slot.
                self.skip_streak = 0;
                self.heuristic_regime = false;
                telemetry::counter("birp.fallback_local", 1);
                if telemetry::enabled() {
                    telemetry::event(
                        telemetry::Level::Warn,
                        "birp.fallback_local",
                        &[
                            ("t", (t as u64).into()),
                            ("error", format!("{err:?}").into()),
                        ],
                    );
                }
                emit_provenance(t, "fallback", None, self.mask.as_deref(), lp0);
                self.last_stats = None;
                self.slot_model = Some(problem);
                greedy_local(
                    &self.catalog,
                    &TirParams::paper_initial(),
                    t,
                    demand,
                    prev,
                    self.mask.as_deref(),
                )
            }
        }
    }

    fn observe_inner(&mut self, outcome: &SlotOutcome) {
        if !self.tune {
            return;
        }
        for b in &outcome.batches {
            if b.batch >= 2 {
                let (e, m) = (b.edge.index(), b.model.index());
                // Regret sample: how far the planning estimate was from the
                // ground-truth TIR at the batch size actually executed.
                let est = if self.use_lcb {
                    self.tuner.estimate(e, m)
                } else {
                    self.tuner.arm(e, m).mean_estimate()
                };
                let truth = self.catalog.edges[e].tir_truth[m];
                self.cum_regret += (est.tir(b.batch) - truth.tir(b.batch)).abs();
                self.tuner
                    .observe(outcome.t as u64, e, m, b.batch, b.observed_tir);
            }
        }
        if telemetry::enabled() {
            // Mean absolute parameter error across all arms vs ground truth
            // — the convergence trajectory of the (eta, beta, C) estimates.
            let (mut eta_err, mut beta_err, mut c_err) = (0.0f64, 0.0f64, 0.0f64);
            let (ne, nm) = (self.catalog.num_edges(), self.catalog.num_models());
            for e in 0..ne {
                for m in 0..nm {
                    let est = self.tuner.arm(e, m).mean_estimate();
                    let truth = self.catalog.edges[e].tir_truth[m];
                    eta_err += (est.eta - truth.eta).abs();
                    beta_err += (est.beta as f64 - truth.beta as f64).abs();
                    c_err += (est.c - truth.c).abs();
                }
            }
            let arms = (ne * nm) as f64;
            telemetry::event(
                telemetry::Level::Debug,
                "mab.slot",
                &[
                    ("t", (outcome.t as u64).into()),
                    ("cum_regret", self.cum_regret.into()),
                    ("mean_abs_eta_err", (eta_err / arms).into()),
                    ("mean_abs_beta_err", (beta_err / arms).into()),
                    ("mean_abs_c_err", (c_err / arms).into()),
                ],
            );
        }
    }
}

impl Scheduler for Birp {
    fn name(&self) -> &'static str {
        if self.use_lcb {
            "BIRP"
        } else {
            "BIRP-MEAN"
        }
    }

    fn decide(&mut self, t: usize, demand: &DemandMatrix, prev: Option<&Schedule>) -> Schedule {
        self.decide_inner(t, demand, prev)
    }

    fn observe(&mut self, outcome: &SlotOutcome) {
        self.observe_inner(outcome);
    }

    fn set_edge_mask(&mut self, mask: Option<&[bool]>) {
        let mask = mask.map(|m| m.to_vec());
        if mask != self.mask {
            // A quarantine change is a structural break: the previous
            // slot's schedule was planned for a different edge set, so
            // cross-slot continuity — the whole premise of the
            // heuristic-regime skip — no longer holds. Force a true solve.
            self.heuristic_regime = false;
            self.skip_streak = 0;
        }
        self.mask = mask;
    }

    fn export_state(&self) -> Value {
        Serialize::to_value(&BirpState {
            tuner: self.tuner.clone(),
            cum_regret: self.cum_regret,
            mask: self.mask.clone(),
            skip_streak: self.skip_streak,
            heuristic_regime: self.heuristic_regime,
            cache: self
                .cache
                .iter()
                .map(|e| CacheEntry {
                    key: e.key.clone(),
                    schedule: e.schedule.clone(),
                })
                .collect(),
            slot_inputs: self.slot_model.as_ref().map(|p| p.inputs().clone()),
            shard_prices: self
                .shard
                .as_ref()
                .map(|c| c.prices().iter().map(|p| p.to_bits()).collect()),
        })
    }

    fn import_state(&mut self, state: &Value) -> Result<(), DeError> {
        if state.is_null() {
            return Ok(());
        }
        let s = BirpState::from_value(state)?;
        if s.tuner.num_arms() != self.tuner.num_arms() {
            return Err(DeError::custom(format!(
                "BIRP state arm count {} does not match catalog ({} arms)",
                s.tuner.num_arms(),
                self.tuner.num_arms()
            )));
        }
        self.tuner = s.tuner;
        self.cum_regret = s.cum_regret;
        self.mask = s.mask;
        self.skip_streak = s.skip_streak;
        self.heuristic_regime = s.heuristic_regime;
        self.cache = s.cache;
        self.slot_model = None;
        self.restored_inputs = s.slot_inputs;
        if let (Some(coord), Some(bits)) = (self.shard.as_mut(), s.shard_prices) {
            coord.set_prices(bits.into_iter().map(f64::from_bits).collect());
        }
        self.last_stats = None;
        Ok(())
    }
}

/// BIRP with offline-profiled (oracle) TIR curves and no online tuning.
pub struct BirpOff {
    inner: Birp,
}

impl BirpOff {
    pub fn new(catalog: Catalog) -> Self {
        let tuner = Tuner::with_ground_truth(
            catalog.num_edges(),
            catalog.num_models(),
            MabConfig::paper_preset(),
            |e, m| catalog.edges[e].tir_truth[m],
        );
        let mut inner = Birp::new(catalog, MabConfig::paper_preset());
        inner.tuner = tuner;
        inner.tune = false;
        BirpOff { inner }
    }

    pub fn with_solver(mut self, cfg: SolverConfig) -> Self {
        self.inner.solver_cfg = cfg;
        self
    }

    /// Override the temporal-reuse configuration (e.g. [`TemporalReuse::disabled`]).
    pub fn with_reuse(mut self, reuse: TemporalReuse) -> Self {
        self.inner = self.inner.with_reuse(reuse);
        self
    }

    /// Enable the sharded decomposition scheduler (see [`Birp::with_shards`]).
    pub fn with_shards(mut self, cfg: ShardConfig) -> Self {
        self.inner = self.inner.with_shards(cfg);
        self
    }

    pub fn last_stats(&self) -> Option<&SolveStats> {
        self.inner.last_stats.as_ref()
    }
}

impl Scheduler for BirpOff {
    fn name(&self) -> &'static str {
        "BIRP-OFF"
    }

    fn decide(&mut self, t: usize, demand: &DemandMatrix, prev: Option<&Schedule>) -> Schedule {
        self.inner.decide_inner(t, demand, prev)
    }

    fn observe(&mut self, _outcome: &SlotOutcome) {
        // Oracle mode: nothing to learn.
    }

    fn set_edge_mask(&mut self, mask: Option<&[bool]>) {
        self.inner.set_edge_mask(mask);
    }

    fn export_state(&self) -> Value {
        self.inner.export_state()
    }

    fn import_state(&mut self, state: &Value) -> Result<(), DeError> {
        self.inner.import_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use birp_models::{AppId, EdgeId};
    use birp_sim::{EdgeSim, SimConfig};

    fn demand(catalog: &Catalog, cells: &[(usize, usize, u32)]) -> DemandMatrix {
        let mut d = DemandMatrix::zeros(catalog.num_apps(), catalog.num_edges());
        for &(i, k, v) in cells {
            d.set(AppId(i), EdgeId(k), v);
        }
        d
    }

    #[test]
    fn birp_serves_demand_and_batches() {
        let catalog = Catalog::small_scale(42);
        let mut birp = Birp::new(catalog.clone(), MabConfig::paper_preset());
        let d = demand(&catalog, &[(0, 0, 10), (0, 1, 6)]);
        let s = birp.decide(0, &d, None);
        assert!(!s.serial);
        assert_eq!(s.served() + s.total_unserved(), 16);
        assert!(s.served() > 0);
        assert!(birp.last_stats.is_some());
    }

    #[test]
    fn observe_updates_tuner_state() {
        let catalog = Catalog::small_scale(42);
        let mut birp = Birp::new(catalog.clone(), MabConfig::paper_preset());
        let d = demand(&catalog, &[(0, 0, 12)]);
        let s = birp.decide(0, &d, None);
        let sim = EdgeSim::new(catalog, SimConfig::default());
        let out = sim.execute_slot(&s, None);
        let before: Vec<u64> = (0..birp.tuner().num_arms()).map(|_| 0).collect();
        birp.observe(&out);
        // At least one arm observed a batch >= 2 under this demand.
        let touched = (0..6)
            .flat_map(|e| (0..3).map(move |m| (e, m)))
            .any(|(e, m)| {
                let a = birp.tuner().arm(e, m);
                a.n1 + a.n2 > 0
            });
        assert!(touched, "no arm updated (before: {before:?})");
    }

    #[test]
    fn birp_off_never_learns() {
        let catalog = Catalog::small_scale(42);
        let mut off = BirpOff::new(catalog.clone());
        let d = demand(&catalog, &[(0, 0, 10)]);
        let s = off.decide(0, &d, None);
        let sim = EdgeSim::new(catalog.clone(), SimConfig::default());
        let out = sim.execute_slot(&s, None);
        off.observe(&out);
        for e in 0..catalog.num_edges() {
            for m in 0..catalog.num_models() {
                let a = off.inner.tuner().arm(e, m);
                assert_eq!(a.n1 + a.n2, 0);
                // Oracle arms carry the ground truth.
                assert_eq!(a.estimate(), catalog.edges[e].tir_truth[m]);
            }
        }
    }

    #[test]
    fn scheduler_names() {
        let catalog = Catalog::small_scale(1);
        assert_eq!(
            Birp::new(catalog.clone(), MabConfig::paper_preset()).name(),
            "BIRP"
        );
        assert_eq!(
            Birp::without_lcb(catalog.clone(), MabConfig::paper_preset()).name(),
            "BIRP-MEAN"
        );
        assert_eq!(BirpOff::new(catalog).name(), "BIRP-OFF");
    }

    #[test]
    fn mean_variant_plans_with_means() {
        let catalog = Catalog::small_scale(42);
        let mean = Birp::without_lcb(catalog.clone(), MabConfig::paper_preset());
        // Fresh arms: mean estimate equals the Eq. 23 initialisation.
        let est = mean.estimates();
        let m0 = est.get(EdgeId(0), birp_models::ModelId(0));
        assert_eq!(m0.beta, 16);
        assert!((m0.eta - 0.1).abs() < 1e-12);
    }
}
