//! BIRP and its offline-oracle variant.
//!
//! BIRP (paper Fig. 3) per slot:
//!
//! 1. read the MAB tuner's lower-confidence-bound estimates of every
//!    (edge, model) TIR curve,
//! 2. build the batch-aware problem `P1^t`/`P2^t` with the Taylor-linearised
//!    compute constraint,
//! 3. solve the resulting MILP (the paper calls Gurobi; we call
//!    `birp_solver`),
//! 4. dispatch, then feed the observed per-batch TIRs back into the tuner
//!    (Eqs. 15–23).
//!
//! BIRP-OFF seeds the same machinery with offline-profiled ground truth and
//! disables tuning (paper Section 5.2).

use birp_mab::{MabConfig, Tuner};
use birp_models::Catalog;
use birp_sim::{Schedule, SlotOutcome};
use birp_solver::SolverConfig;
use birp_telemetry as telemetry;
use birp_tir::TirParams;

use crate::demand::DemandMatrix;
use crate::problem::{ExecutionMode, ProblemConfig, SlotProblem, SolveStats, TirMatrix};
use crate::schedulers::local::greedy_local;
use crate::schedulers::Scheduler;

/// The batch-aware, MAB-tuned scheduler (the paper's contribution).
pub struct Birp {
    catalog: Catalog,
    tuner: Tuner,
    solver_cfg: SolverConfig,
    problem_cfg: ProblemConfig,
    /// When false the tuner is frozen (BIRP-OFF behaviour).
    tune: bool,
    /// When false, plan with the running-mean estimates instead of the
    /// lower-confidence bounds — the exploration-ablation variant
    /// ("BIRP-MEAN"). The paper's Eq. 17/22 argue the LCB avoids local
    /// optima; this switch lets the benches quantify that.
    use_lcb: bool,
    /// Quarantine mask from the runner's health monitor (see
    /// [`Scheduler::set_edge_mask`]).
    mask: Option<Vec<bool>>,
    /// Solve statistics of the most recent slot (for experiment logs).
    pub last_stats: Option<SolveStats>,
    /// Cumulative absolute TIR estimation error (LCB estimate vs ground
    /// truth, evaluated at each executed batch size) — the tuner's regret
    /// trajectory. Only meaningful while tuning.
    pub cum_regret: f64,
}

impl Birp {
    /// Standard BIRP with the paper's initial estimates (Eq. 23).
    pub fn new(catalog: Catalog, mab: MabConfig) -> Self {
        let tuner = Tuner::new(catalog.num_edges(), catalog.num_models(), mab);
        Birp {
            catalog,
            tuner,
            solver_cfg: SolverConfig::scheduling(),
            problem_cfg: ProblemConfig {
                mode: ExecutionMode::Batched,
                ..Default::default()
            },
            tune: true,
            use_lcb: true,
            mask: None,
            last_stats: None,
            cum_regret: 0.0,
        }
    }

    /// The exploration-ablation variant: identical machinery but planning
    /// with the running-mean TIR estimates instead of the LCBs.
    pub fn without_lcb(catalog: Catalog, mab: MabConfig) -> Self {
        let mut s = Self::new(catalog, mab);
        s.use_lcb = false;
        s
    }

    /// Override the branch-and-bound configuration.
    pub fn with_solver(mut self, cfg: SolverConfig) -> Self {
        self.solver_cfg = cfg;
        self
    }

    /// Access the tuner (diagnostics and tests).
    pub fn tuner(&self) -> &Tuner {
        &self.tuner
    }

    fn estimates(&self) -> TirMatrix {
        TirMatrix::from_fn(
            self.catalog.num_edges(),
            self.catalog.num_models(),
            |e, m| {
                if self.use_lcb {
                    self.tuner.estimate(e, m)
                } else {
                    self.tuner.arm(e, m).mean_estimate()
                }
            },
        )
    }

    fn decide_inner(
        &mut self,
        t: usize,
        demand: &DemandMatrix,
        prev: Option<&Schedule>,
    ) -> Schedule {
        let tir = self.estimates();
        let cfg = ProblemConfig {
            masked_edges: self.mask.clone(),
            ..self.problem_cfg.clone()
        };
        let problem = SlotProblem::build(&self.catalog, t, demand, &tir, prev, &cfg);
        match problem.solve(&self.solver_cfg) {
            Ok((schedule, stats)) => {
                if telemetry::enabled() {
                    telemetry::event(
                        telemetry::Level::Debug,
                        "birp.slot_solved",
                        &[
                            ("t", (t as u64).into()),
                            ("objective", stats.objective.into()),
                            ("gap", stats.gap.into()),
                            ("nodes", (stats.nodes as u64).into()),
                            ("optimal", stats.optimal.into()),
                        ],
                    );
                }
                self.last_stats = Some(stats);
                schedule
            }
            Err(err) => {
                // The problem is always feasible (overflow absorbs demand);
                // reaching this means the solve budget produced no incumbent.
                // Degrade to the loss-greedy strictly-local packing — still a
                // valid, demand-balanced schedule — rather than stall a slot.
                telemetry::counter("birp.fallback_local", 1);
                if telemetry::enabled() {
                    telemetry::event(
                        telemetry::Level::Warn,
                        "birp.fallback_local",
                        &[
                            ("t", (t as u64).into()),
                            ("error", format!("{err:?}").into()),
                        ],
                    );
                }
                self.last_stats = None;
                greedy_local(
                    &self.catalog,
                    &TirParams::paper_initial(),
                    t,
                    demand,
                    prev,
                    self.mask.as_deref(),
                )
            }
        }
    }

    fn observe_inner(&mut self, outcome: &SlotOutcome) {
        if !self.tune {
            return;
        }
        for b in &outcome.batches {
            if b.batch >= 2 {
                let (e, m) = (b.edge.index(), b.model.index());
                // Regret sample: how far the planning estimate was from the
                // ground-truth TIR at the batch size actually executed.
                let est = if self.use_lcb {
                    self.tuner.estimate(e, m)
                } else {
                    self.tuner.arm(e, m).mean_estimate()
                };
                let truth = self.catalog.edges[e].tir_truth[m];
                self.cum_regret += (est.tir(b.batch) - truth.tir(b.batch)).abs();
                self.tuner
                    .observe(outcome.t as u64, e, m, b.batch, b.observed_tir);
            }
        }
        if telemetry::enabled() {
            // Mean absolute parameter error across all arms vs ground truth
            // — the convergence trajectory of the (eta, beta, C) estimates.
            let (mut eta_err, mut beta_err, mut c_err) = (0.0f64, 0.0f64, 0.0f64);
            let (ne, nm) = (self.catalog.num_edges(), self.catalog.num_models());
            for e in 0..ne {
                for m in 0..nm {
                    let est = self.tuner.arm(e, m).mean_estimate();
                    let truth = self.catalog.edges[e].tir_truth[m];
                    eta_err += (est.eta - truth.eta).abs();
                    beta_err += (est.beta as f64 - truth.beta as f64).abs();
                    c_err += (est.c - truth.c).abs();
                }
            }
            let arms = (ne * nm) as f64;
            telemetry::event(
                telemetry::Level::Debug,
                "mab.slot",
                &[
                    ("t", (outcome.t as u64).into()),
                    ("cum_regret", self.cum_regret.into()),
                    ("mean_abs_eta_err", (eta_err / arms).into()),
                    ("mean_abs_beta_err", (beta_err / arms).into()),
                    ("mean_abs_c_err", (c_err / arms).into()),
                ],
            );
        }
    }
}

impl Scheduler for Birp {
    fn name(&self) -> &'static str {
        if self.use_lcb {
            "BIRP"
        } else {
            "BIRP-MEAN"
        }
    }

    fn decide(&mut self, t: usize, demand: &DemandMatrix, prev: Option<&Schedule>) -> Schedule {
        self.decide_inner(t, demand, prev)
    }

    fn observe(&mut self, outcome: &SlotOutcome) {
        self.observe_inner(outcome);
    }

    fn set_edge_mask(&mut self, mask: Option<&[bool]>) {
        self.mask = mask.map(|m| m.to_vec());
    }
}

/// BIRP with offline-profiled (oracle) TIR curves and no online tuning.
pub struct BirpOff {
    inner: Birp,
}

impl BirpOff {
    pub fn new(catalog: Catalog) -> Self {
        let tuner = Tuner::with_ground_truth(
            catalog.num_edges(),
            catalog.num_models(),
            MabConfig::paper_preset(),
            |e, m| catalog.edges[e].tir_truth[m],
        );
        let mut inner = Birp::new(catalog, MabConfig::paper_preset());
        inner.tuner = tuner;
        inner.tune = false;
        BirpOff { inner }
    }

    pub fn with_solver(mut self, cfg: SolverConfig) -> Self {
        self.inner.solver_cfg = cfg;
        self
    }

    pub fn last_stats(&self) -> Option<&SolveStats> {
        self.inner.last_stats.as_ref()
    }
}

impl Scheduler for BirpOff {
    fn name(&self) -> &'static str {
        "BIRP-OFF"
    }

    fn decide(&mut self, t: usize, demand: &DemandMatrix, prev: Option<&Schedule>) -> Schedule {
        self.inner.decide_inner(t, demand, prev)
    }

    fn observe(&mut self, _outcome: &SlotOutcome) {
        // Oracle mode: nothing to learn.
    }

    fn set_edge_mask(&mut self, mask: Option<&[bool]>) {
        self.inner.set_edge_mask(mask);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use birp_models::{AppId, EdgeId};
    use birp_sim::{EdgeSim, SimConfig};

    fn demand(catalog: &Catalog, cells: &[(usize, usize, u32)]) -> DemandMatrix {
        let mut d = DemandMatrix::zeros(catalog.num_apps(), catalog.num_edges());
        for &(i, k, v) in cells {
            d.set(AppId(i), EdgeId(k), v);
        }
        d
    }

    #[test]
    fn birp_serves_demand_and_batches() {
        let catalog = Catalog::small_scale(42);
        let mut birp = Birp::new(catalog.clone(), MabConfig::paper_preset());
        let d = demand(&catalog, &[(0, 0, 10), (0, 1, 6)]);
        let s = birp.decide(0, &d, None);
        assert!(!s.serial);
        assert_eq!(s.served() + s.total_unserved(), 16);
        assert!(s.served() > 0);
        assert!(birp.last_stats.is_some());
    }

    #[test]
    fn observe_updates_tuner_state() {
        let catalog = Catalog::small_scale(42);
        let mut birp = Birp::new(catalog.clone(), MabConfig::paper_preset());
        let d = demand(&catalog, &[(0, 0, 12)]);
        let s = birp.decide(0, &d, None);
        let sim = EdgeSim::new(catalog, SimConfig::default());
        let out = sim.execute_slot(&s, None);
        let before: Vec<u64> = (0..birp.tuner().num_arms()).map(|_| 0).collect();
        birp.observe(&out);
        // At least one arm observed a batch >= 2 under this demand.
        let touched = (0..6)
            .flat_map(|e| (0..3).map(move |m| (e, m)))
            .any(|(e, m)| {
                let a = birp.tuner().arm(e, m);
                a.n1 + a.n2 > 0
            });
        assert!(touched, "no arm updated (before: {before:?})");
    }

    #[test]
    fn birp_off_never_learns() {
        let catalog = Catalog::small_scale(42);
        let mut off = BirpOff::new(catalog.clone());
        let d = demand(&catalog, &[(0, 0, 10)]);
        let s = off.decide(0, &d, None);
        let sim = EdgeSim::new(catalog.clone(), SimConfig::default());
        let out = sim.execute_slot(&s, None);
        off.observe(&out);
        for e in 0..catalog.num_edges() {
            for m in 0..catalog.num_models() {
                let a = off.inner.tuner().arm(e, m);
                assert_eq!(a.n1 + a.n2, 0);
                // Oracle arms carry the ground truth.
                assert_eq!(a.estimate(), catalog.edges[e].tir_truth[m]);
            }
        }
    }

    #[test]
    fn scheduler_names() {
        let catalog = Catalog::small_scale(1);
        assert_eq!(
            Birp::new(catalog.clone(), MabConfig::paper_preset()).name(),
            "BIRP"
        );
        assert_eq!(
            Birp::without_lcb(catalog.clone(), MabConfig::paper_preset()).name(),
            "BIRP-MEAN"
        );
        assert_eq!(BirpOff::new(catalog).name(), "BIRP-OFF");
    }

    #[test]
    fn mean_variant_plans_with_means() {
        let catalog = Catalog::small_scale(42);
        let mean = Birp::without_lcb(catalog.clone(), MabConfig::paper_preset());
        // Fresh arms: mean estimate equals the Eq. 23 initialisation.
        let est = mean.estimates();
        let m0 = est.get(EdgeId(0), birp_models::ModelId(0));
        assert_eq!(m0.beta, 16);
        assert!((m0.eta - 0.1).abs() < 1e-12);
    }
}
