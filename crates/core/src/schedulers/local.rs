//! The no-redistribution ablation baseline.
//!
//! Serves every (app, edge) cell strictly locally with a loss-greedy
//! batched packing — i.e. BIRP's batching without its redistribution.
//! Quantifies how much of BIRP's advantage comes from moving work versus
//! batching it (an ablation the paper motivates but does not plot).
//!
//! The packing itself is exposed as [`greedy_local`]: it is also the
//! degradation floor every MILP-backed scheduler falls back to when its
//! solve budget runs out without an incumbent — always feasible, never
//! panics, costs one linear pass.

use birp_models::catalog::MAX_BATCH;
use birp_models::{AppId, Catalog, EdgeId, ModelId};
use birp_sim::{Deployment, Schedule};
use birp_tir::TirParams;

use crate::demand::DemandMatrix;
use crate::schedulers::Scheduler;

/// Loss-greedy strictly-local packing. A masked edge serves nothing: its
/// entire demand lands in `unserved` (the runner reroutes or carries it).
pub(crate) fn greedy_local(
    catalog: &Catalog,
    planning_tir: &TirParams,
    t: usize,
    demand: &DemandMatrix,
    prev: Option<&Schedule>,
    mask: Option<&[bool]>,
) -> Schedule {
    let na = catalog.num_apps();
    let ne = catalog.num_edges();
    let nm = catalog.num_models();
    let mut schedule = Schedule::empty(t, na, ne);
    for k in 0..ne {
        if mask.is_some_and(|m| m.get(k).copied().unwrap_or(false)) {
            for i in 0..na {
                schedule.unserved[i][k] = demand.get(AppId(i), EdgeId(k));
            }
            continue;
        }
        let edge = &catalog.edges[k];
        let mut compute_left = catalog.slot_ms;
        let mut mem_left = edge.memory_mb;
        let mut net_left = edge.network_budget_mb;
        let mut batches = vec![0u32; nm];
        for i in 0..na {
            let app = AppId(i);
            let mut left = demand.get(app, EdgeId(k));
            let mut order: Vec<ModelId> = catalog.models_of(app).to_vec();
            order.sort_by(|a, b| {
                catalog
                    .model(*a)
                    .loss
                    .partial_cmp(&catalog.model(*b).loss)
                    .unwrap()
            });
            let mut served = 0u32;
            for mid in order {
                let m = mid.index();
                let mv = &catalog.models[m];
                let cap = planning_tir.beta.min(MAX_BATCH);
                let gamma = edge.gamma_ms[m];
                while left > 0 && batches[m] < cap {
                    let fresh = batches[m] == 0;
                    let (slope, intercept) = birp_tir::linear_coeffs(gamma, planning_tir.eta);
                    let dc = slope + if fresh { intercept } else { 0.0 };
                    let dm = if fresh {
                        mv.weight_mb + mv.intermediate_mb
                    } else {
                        mv.intermediate_mb
                    };
                    let dn = if fresh && !prev.is_some_and(|p| p.is_deployed(EdgeId(k), mid)) {
                        mv.compressed_mb
                    } else {
                        0.0
                    };
                    if dc <= compute_left && dm <= mem_left && dn <= net_left {
                        compute_left -= dc;
                        mem_left -= dm;
                        net_left -= dn;
                        batches[m] += 1;
                        left -= 1;
                        served += 1;
                    } else {
                        break;
                    }
                }
            }
            if served > 0 {
                schedule.routing.set(app, EdgeId(k), EdgeId(k), served);
            }
            schedule.unserved[i][k] = left;
        }
        for (m, &bm) in batches.iter().enumerate() {
            if bm > 0 {
                schedule.deployments[k].push(Deployment {
                    app: catalog.models[m].app,
                    model: ModelId(m),
                    batch: bm,
                });
            }
        }
    }
    schedule
}

pub struct LocalOnly {
    catalog: Catalog,
    /// Planning TIR estimate (conservative paper initialisation).
    planning_tir: TirParams,
    mask: Option<Vec<bool>>,
}

impl LocalOnly {
    pub fn new(catalog: Catalog) -> Self {
        LocalOnly {
            catalog,
            planning_tir: TirParams::paper_initial(),
            mask: None,
        }
    }
}

impl Scheduler for LocalOnly {
    fn name(&self) -> &'static str {
        "LOCAL"
    }

    fn decide(&mut self, t: usize, demand: &DemandMatrix, prev: Option<&Schedule>) -> Schedule {
        greedy_local(
            &self.catalog,
            &self.planning_tir,
            t,
            demand,
            prev,
            self.mask.as_deref(),
        )
    }

    fn set_edge_mask(&mut self, mask: Option<&[bool]>) {
        self.mask = mask.map(|m| m.to_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_only_never_ships() {
        let catalog = Catalog::small_scale(42);
        let mut s = LocalOnly::new(catalog.clone());
        let mut d = DemandMatrix::zeros(1, 6);
        d.set(AppId(0), EdgeId(0), 50);
        d.set(AppId(0), EdgeId(3), 5);
        let schedule = s.decide(0, &d, None);
        for k in 0..6 {
            assert_eq!(schedule.routing.outbound(AppId(0), EdgeId(k)), 0);
            assert_eq!(schedule.routing.inbound(AppId(0), EdgeId(k)), 0);
        }
        let demand_fn = |a: AppId, e: EdgeId| d.get(a, e);
        birp_sim::validate(&catalog, &demand_fn, &schedule, None).unwrap();
        // The hot edge overflows (that's the point of this baseline).
        assert!(
            schedule.unserved[0][0] > 0,
            "hot edge should overflow without redistribution"
        );
        assert_eq!(schedule.unserved[0][3], 0);
    }

    #[test]
    fn light_load_served_with_best_model() {
        let catalog = Catalog::small_scale(42);
        let mut s = LocalOnly::new(catalog.clone());
        let mut d = DemandMatrix::zeros(1, 6);
        d.set(AppId(0), EdgeId(1), 3);
        let schedule = s.decide(0, &d, None);
        assert_eq!(schedule.total_unserved(), 0);
        let best_loss = catalog
            .models
            .iter()
            .map(|m| m.loss)
            .fold(f64::INFINITY, f64::min);
        assert!((schedule.loss(&catalog) - 3.0 * best_loss).abs() < 1e-9);
    }

    #[test]
    fn masked_edge_serves_nothing_locally() {
        let catalog = Catalog::small_scale(42);
        let mut s = LocalOnly::new(catalog.clone());
        let mut d = DemandMatrix::zeros(1, 6);
        d.set(AppId(0), EdgeId(1), 3);
        d.set(AppId(0), EdgeId(2), 4);
        s.set_edge_mask(Some(&[false, true, false, false, false, false]));
        let schedule = s.decide(0, &d, None);
        assert!(schedule.deployments[1].is_empty());
        assert_eq!(schedule.unserved[0][1], 3);
        assert_eq!(schedule.unserved[0][2], 0);
        // Clearing the mask restores service.
        s.set_edge_mask(None);
        let schedule = s.decide(1, &d, None);
        assert_eq!(schedule.total_unserved(), 0);
    }
}
