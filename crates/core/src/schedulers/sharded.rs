//! Sharded Lagrangian decomposition of the per-slot MILP (DESIGN.md §14).
//!
//! The monolithic lowering couples edges through exactly one row family:
//! the per-app routing balance `Σ_k out[i][k] = Σ_k in[i][k]`. Every other
//! row (flow, cap, serve, memory, compute, network) is per-edge. Partition
//! the fleet into contiguous clusters and relax that single coupling with
//! per-app Lagrangian bandwidth prices `λ_i`, and the slot decomposes into
//! independent cluster sub-MILPs:
//!
//! * each cluster gains two integer columns per app — `exp[i]` (requests
//!   exported to the rest of the fleet, priced `+λ_i`) and `imp[i]`
//!   (requests imported, credited `−λ_i`) — and its balance row becomes
//!   `Σout − Σin − exp + imp = 0`;
//! * the coordinator runs a dual loop: solve all clusters concurrently
//!   (rayon, on the solver's existing thread-local engine pools), read the
//!   per-app imbalance `g_i = Σ_c (exp_c − imp_c)` off the cluster flows,
//!   and take a Polyak subgradient step `λ += step·g` clamped to
//!   `[0, drop_penalty]` (exporting can never be priced above the cost of
//!   simply dropping the request, so higher prices are never active);
//! * primal recovery stitches the cluster points into the monolithic
//!   variable space; when every `g_i = 0` the stitched point is globally
//!   feasible as-is (cluster balances sum to the global balance), otherwise
//!   it is repaired by the same budget-disciplined greedy packing that
//!   builds warm starts, using the stitched point as the guide.
//!
//! `Σ_c bound_c ≤ Σ_c min_c = L(λ) ≤ OPT` holds even when cluster solves
//! are budget-degraded, so the reported duality gap is a true certificate.
//! Each cluster keeps its own persistent [`SlotProblem`] across price
//! iterations and slots; a price move is a pure objective-coefficient edit
//! ([`SlotDelta::CouplingPrice`]), so the per-iteration refresh cost is a
//! handful of typed deltas, not a rebuild.

use std::cell::Cell;
use std::ops::Range;

use birp_models::{AppId, Catalog, EdgeId, ModelId};
use birp_sim::Schedule;
use birp_solver::{ModelStatus, Solution, SolverConfig};
use birp_telemetry as telemetry;
use rayon::prelude::*;

use crate::demand::DemandMatrix;
use crate::problem::{ProblemConfig, ShardCoupling, SlotProblem, SolveStats, TirMatrix};

#[allow(unused_imports)]
use crate::problem::SlotDelta; // doc links

/// Knobs of the sharded decomposition scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardConfig {
    /// Edges per cluster (contiguous partition). `0` disables sharding; a
    /// partition with fewer than two clusters falls through to the
    /// monolithic path bitwise.
    pub cluster_size: usize,
    /// Dual-price iterations per slot.
    pub max_iters: usize,
    /// Relative duality-gap target; the dual loop stops early once
    /// `(UB − LB) / max(1, |UB|)` reaches it.
    pub gap_tol: f64,
    /// When the loop ends above `gap_tol`, fall back to one monolithic
    /// solve instead of shipping the repaired primal point.
    pub fallback: bool,
}

impl ShardConfig {
    pub fn new(cluster_size: usize) -> Self {
        ShardConfig {
            cluster_size,
            max_iters: 4,
            gap_tol: 0.05,
            fallback: true,
        }
    }
}

/// One slot decision of the sharded coordinator, with its gap certificate.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    pub schedule: Schedule,
    pub stats: SolveStats,
    /// Dual iterations actually run.
    pub iterations: usize,
    /// Final `(UB − LB) / max(1, |UB|)`.
    pub duality_gap: f64,
    /// Best Lagrangian lower bound `max_it Σ_c bound_c`.
    pub lower_bound: f64,
    /// Best feasible (primal) objective found.
    pub upper_bound: f64,
    /// Iterations whose stitched point was globally feasible unrepaired.
    pub stitched_feasible: usize,
    /// Iterations that needed the greedy feasibility repair.
    pub repair_used: usize,
    /// The decision came from the monolithic fallback solve.
    pub fallback_used: bool,
}

thread_local! {
    /// Test-only fault injection: while armed, every cluster refresh uses
    /// the prices the coordinator held at the *start* of the decide — the
    /// dual updates never reach the cluster models. Exists so the shard
    /// parity suite can prove it catches a stale-price bug; never armed
    /// outside tests.
    static SHARD_FAULT_STALE_PRICE: Cell<bool> = const { Cell::new(false) };
}

/// Test-only: arm (or disarm) the stale-coupling-price fault. While armed,
/// cluster models are refreshed with the decide-entry prices regardless of
/// how the dual loop moves them.
#[doc(hidden)]
pub fn shard_fault_stale_price(armed: bool) {
    SHARD_FAULT_STALE_PRICE.with(|c| c.set(armed));
}

/// Contiguous partition of `0..num_edges` into clusters of `cluster_size`
/// (the last cluster takes the remainder).
pub fn edge_clusters(num_edges: usize, cluster_size: usize) -> Vec<Range<usize>> {
    let size = cluster_size.max(1);
    (0..num_edges)
        .step_by(size)
        .map(|s| s..(s + size).min(num_edges))
        .collect()
}

/// Demand restricted to a cluster's edges (dense re-index).
pub fn restrict_demand(demand: &DemandMatrix, edges: &Range<usize>) -> DemandMatrix {
    let mut d = DemandMatrix::zeros(demand.num_apps(), edges.len());
    for i in 0..demand.num_apps() {
        for (le, ge) in edges.clone().enumerate() {
            d.set(AppId(i), EdgeId(le), demand.get(AppId(i), EdgeId(ge)));
        }
    }
    d
}

/// TIR estimates restricted to a cluster's edges.
pub fn restrict_tir(tir: &TirMatrix, num_models: usize, edges: &Range<usize>) -> TirMatrix {
    TirMatrix::from_fn(edges.len(), num_models, |e, m| {
        *tir.get(EdgeId(edges.start + e), ModelId(m))
    })
}

/// Previous schedule restricted to a cluster's edges. Only deployments
/// matter downstream (they drive the `x^{t-1}` model-transfer term);
/// routing and unserved counts are not read by the problem builder.
pub fn restrict_prev(prev: &Schedule, num_apps: usize, edges: &Range<usize>) -> Schedule {
    let mut s = Schedule::empty(prev.t, num_apps, edges.len());
    s.serial = prev.serial;
    for (le, ge) in edges.clone().enumerate() {
        if let Some(ds) = prev.deployments.get(ge) {
            s.deployments[le] = ds.clone();
        }
    }
    s
}

fn restrict_mask(mask: Option<&Vec<bool>>, edges: &Range<usize>) -> Option<Vec<bool>> {
    mask.map(|m| {
        edges
            .clone()
            .map(|ge| m.get(ge).copied().unwrap_or(false))
            .collect()
    })
}

/// One cluster: its global edge range, verbatim sub-catalog and persistent
/// slot model (refreshed via typed deltas across price iterations/slots).
struct Cluster {
    edges: Range<usize>,
    catalog: Catalog,
    model: Option<SlotProblem>,
}

/// Per-decide slot context of one cluster (everything that changes per
/// slot but not per price iteration).
struct ClusterCtx {
    demand: DemandMatrix,
    tir: TirMatrix,
    prev: Option<Schedule>,
    mask: Option<Vec<bool>>,
    /// Import cap per app: fleet demand outside this cluster.
    outside: Vec<u32>,
}

/// The dual-price coordinator of the sharded decomposition.
pub struct ShardCoordinator {
    cfg: ShardConfig,
    /// Per-app Lagrangian prices, persisted across slots (warm dual start;
    /// checkpointed as IEEE-754 bits by the scheduler state).
    prices: Vec<f64>,
    clusters: Vec<Cluster>,
}

impl ShardCoordinator {
    pub fn new(catalog: &Catalog, cfg: ShardConfig) -> Self {
        let clusters = edge_clusters(catalog.num_edges(), cfg.cluster_size)
            .into_iter()
            .map(|r| Cluster {
                catalog: catalog.restrict_edges(r.clone()),
                edges: r,
                model: None,
            })
            .collect();
        ShardCoordinator {
            cfg,
            prices: vec![0.0; catalog.num_apps()],
            clusters,
        }
    }

    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    pub fn config(&self) -> &ShardConfig {
        &self.cfg
    }

    /// Current dual prices (checkpoint export).
    pub fn prices(&self) -> &[f64] {
        &self.prices
    }

    /// Restore dual prices from a checkpoint. Ignored on length mismatch
    /// (defensive: a coordinator built for a different catalog).
    pub fn set_prices(&mut self, prices: Vec<f64>) {
        if prices.len() == self.prices.len() {
            self.prices = prices;
        }
    }

    /// Build each cluster's per-slot context.
    fn contexts(
        &self,
        demand: &DemandMatrix,
        tir: &TirMatrix,
        prev: Option<&Schedule>,
        cfg: &ProblemConfig,
        num_models: usize,
    ) -> Vec<ClusterCtx> {
        let na = demand.num_apps();
        self.clusters
            .iter()
            .map(|cl| {
                let d = restrict_demand(demand, &cl.edges);
                let outside = (0..na)
                    .map(|i| {
                        let total = demand.app_total(AppId(i));
                        let inside = d.app_total(AppId(i));
                        (total - inside).min(u32::MAX as u64) as u32
                    })
                    .collect();
                ClusterCtx {
                    tir: restrict_tir(tir, num_models, &cl.edges),
                    prev: prev.map(|p| restrict_prev(p, na, &cl.edges)),
                    mask: restrict_mask(cfg.masked_edges.as_ref(), &cl.edges),
                    outside,
                    demand: d,
                }
            })
            .collect()
    }

    /// Decide slot `t` via the dual-price loop. Never fails: the repaired
    /// primal point is feasible by construction, so there is always a
    /// schedule to decode.
    #[allow(clippy::too_many_arguments)]
    pub fn decide(
        &mut self,
        catalog: &Catalog,
        t: usize,
        demand: &DemandMatrix,
        tir: &TirMatrix,
        prev: Option<&Schedule>,
        cfg: &ProblemConfig,
        solver_cfg: &SolverConfig,
    ) -> ShardOutcome {
        let _span = telemetry::span("shard.decide");
        let na = catalog.num_apps();
        let nm = catalog.num_models();
        // Read once on the coordinator thread: cluster refreshes run on
        // rayon workers, whose own thread-local flag is never armed.
        let fault_stale = SHARD_FAULT_STALE_PRICE.with(|c| c.get());
        let frozen = self.prices.clone();

        let mono_cfg = ProblemConfig {
            coupling: None,
            ..cfg.clone()
        };
        // Monolithic lean model: primal floor, stitch target, feasibility
        // repairer, UB evaluator and final decoder. Rebuilt per decide —
        // it never runs branch and bound on the non-fallback path.
        let mono = SlotProblem::build_reuse_lean(catalog, t, demand, tir, prev, &mono_cfg, None);
        let mut best = mono.warm_point().to_vec();
        let mut ub = mono.point_objective(&best);
        let mut lb = f64::NEG_INFINITY;
        let mut gap = f64::INFINITY;
        let mut iterations = 0usize;
        let mut stitched_feasible = 0usize;
        let mut repair_used = 0usize;
        let mut nodes_total = 0usize;
        let mut cluster_failed = false;

        let ctxs = self.contexts(demand, tir, prev, cfg, nm);

        for it in 0..self.cfg.max_iters.max(1) {
            iterations = it + 1;
            let used_prices = if fault_stale {
                frozen.clone()
            } else {
                self.prices.clone()
            };
            let sols: Vec<Option<Solution>> = self
                .clusters
                .par_iter_mut()
                .enumerate()
                .map(|(ci, cl)| {
                    let ctx = &ctxs[ci];
                    let sub_cfg = ProblemConfig {
                        mode: cfg.mode,
                        drop_penalty: cfg.drop_penalty,
                        masked_edges: ctx.mask.clone(),
                        coupling: Some(ShardCoupling {
                            prices: used_prices.clone(),
                            outside_demand: ctx.outside.clone(),
                        }),
                    };
                    match cl.model.as_mut() {
                        Some(m) => {
                            m.refresh_with_reuse(
                                &cl.catalog,
                                t,
                                &ctx.demand,
                                &ctx.tir,
                                ctx.prev.as_ref(),
                                &sub_cfg,
                                None,
                                false,
                            );
                        }
                        None => {
                            cl.model = Some(SlotProblem::build_reuse_lean(
                                &cl.catalog,
                                t,
                                &ctx.demand,
                                &ctx.tir,
                                ctx.prev.as_ref(),
                                &sub_cfg,
                                None,
                            ));
                        }
                    }
                    cl.model.as_ref().unwrap().solve_raw(solver_cfg).ok()
                })
                .collect();
            let Some(sols) = sols.into_iter().collect::<Option<Vec<_>>>() else {
                // A cluster solve failed outright (defensive — warm starts
                // make this unreachable in practice). The stitched-point
                // machinery has nothing to stitch; take the fallback.
                cluster_failed = true;
                break;
            };

            // Valid Lagrangian lower bound even under budget degradation:
            // each cluster's dual bound under-estimates its true minimum.
            let lb_it: f64 = sols.iter().map(|s| s.bound).sum();
            lb = lb.max(lb_it);

            // Stitch cluster points into the monolithic variable space and
            // read the per-app export/import imbalance off the flows
            // (`exp − imp = Σout − Σin` by the cluster balance row).
            let mut point = vec![0.0; mono.num_vars()];
            let mut g = vec![0i64; na];
            for (cl, sol) in self.clusters.iter().zip(&sols) {
                nodes_total += sol.nodes;
                let pm = cl.model.as_ref().unwrap();
                for (le, ge) in cl.edges.clone().enumerate() {
                    for m in 0..nm {
                        point[mono.vid_x(ge, m).index()] =
                            sol.int_value(pm.vid_x(le, m)).max(0) as f64;
                        point[mono.vid_b(ge, m).index()] =
                            sol.int_value(pm.vid_b(le, m)).max(0) as f64;
                    }
                    for i in 0..na {
                        point[mono.vid_local(i, ge).index()] =
                            sol.int_value(pm.vid_local(i, le)).max(0) as f64;
                        point[mono.vid_out(i, ge).index()] =
                            sol.int_value(pm.vid_out(i, le)).max(0) as f64;
                        point[mono.vid_inn(i, ge).index()] =
                            sol.int_value(pm.vid_inn(i, le)).max(0) as f64;
                        point[mono.vid_o(i, ge).index()] =
                            sol.int_value(pm.vid_o(i, le)).max(0) as f64;
                        g[i] += sol.int_value(pm.vid_out(i, le)) - sol.int_value(pm.vid_inn(i, le));
                    }
                }
            }

            // Primal recovery: balanced stitches are feasible as-is; the
            // rest go through the greedy repair with the stitch as guide.
            let balanced = g.iter().all(|&v| v == 0);
            let cand = if balanced && mono.violation_at(&point) < 1e-6 {
                stitched_feasible += 1;
                point
            } else {
                repair_used += 1;
                mono.repair_point(catalog, point)
            };
            let cand_obj = mono.point_objective(&cand);
            if cand_obj < ub - 1e-12 {
                ub = cand_obj;
                best = cand;
            }

            gap = (ub - lb).max(0.0) / ub.abs().max(1.0);
            if gap <= self.cfg.gap_tol {
                break;
            }
            // Polyak subgradient step towards the current primal level.
            // Skipped on the final iteration so the invariant "cluster
            // models reflect the coordinator's prices" holds at exit —
            // the property the stale-price teeth test pins down.
            if it + 1 < self.cfg.max_iters {
                let g2: f64 = g.iter().map(|&v| (v as f64) * (v as f64)).sum();
                if g2 > 0.0 {
                    let step = (ub - lb_it).max(0.0) / g2;
                    for (price, &gi) in self.prices.iter_mut().zip(&g) {
                        *price = (*price + step * gi as f64).clamp(0.0, cfg.drop_penalty);
                    }
                }
            }
        }

        let fallback_used = cluster_failed || (gap > self.cfg.gap_tol && self.cfg.fallback);
        let (schedule, stats) = if fallback_used {
            let full =
                SlotProblem::build_with_reuse(catalog, t, demand, tir, prev, &mono_cfg, None);
            match full.solve(solver_cfg) {
                Ok(pair) => pair,
                // Defensive: fall back to the repaired primal point, which
                // is always feasible.
                Err(_) => Self::decode_best(&mono, best.clone(), ub, lb, gap, nodes_total),
            }
        } else {
            Self::decode_best(&mono, best, ub, lb, gap, nodes_total)
        };

        telemetry::counter("shard.iterations", iterations as u64);
        telemetry::observe("shard.duality_gap", gap.min(1.0));
        telemetry::counter("shard.stitched_feasible", stitched_feasible as u64);
        telemetry::counter("shard.repair_used", repair_used as u64);
        if fallback_used {
            telemetry::counter("shard.fallback", 1);
        }

        ShardOutcome {
            schedule,
            stats,
            iterations,
            duality_gap: gap,
            lower_bound: lb,
            upper_bound: ub,
            stitched_feasible,
            repair_used,
            fallback_used,
        }
    }

    fn decode_best(
        mono: &SlotProblem,
        best: Vec<f64>,
        ub: f64,
        lb: f64,
        gap: f64,
        nodes: usize,
    ) -> (Schedule, SolveStats) {
        let degraded = !gap.is_finite() || gap > 1e-9;
        let sol = Solution {
            status: if degraded {
                ModelStatus::Feasible
            } else {
                ModelStatus::Optimal
            },
            objective: ub,
            values: best,
            bound: lb,
            gap,
            nodes,
            degraded,
            incumbents: vec![(nodes as u64, ub, gap)],
        };
        let schedule = mono.decode(&sol);
        let stats = SolveStats {
            objective: ub,
            gap,
            nodes,
            optimal: !degraded,
            degraded,
            incumbents: sol.incumbents.clone(),
        };
        (schedule, stats)
    }

    /// Test support: does every persistent cluster model match a fresh
    /// lowering of the same slot under the coordinator's *current* prices,
    /// bitwise? After a healthy [`decide`](Self::decide) this holds by the
    /// price-update invariant (the final iteration refreshes before any
    /// further dual step); under the armed stale-price fault it breaks as
    /// soon as one dual update has happened.
    #[doc(hidden)]
    pub fn clusters_match_fresh_build(
        &self,
        t: usize,
        demand: &DemandMatrix,
        tir: &TirMatrix,
        prev: Option<&Schedule>,
        cfg: &ProblemConfig,
        num_models: usize,
    ) -> bool {
        let ctxs = self.contexts(demand, tir, prev, cfg, num_models);
        self.clusters.iter().zip(&ctxs).all(|(cl, ctx)| {
            let Some(model) = cl.model.as_ref() else {
                return false;
            };
            let sub_cfg = ProblemConfig {
                mode: cfg.mode,
                drop_penalty: cfg.drop_penalty,
                masked_edges: ctx.mask.clone(),
                coupling: Some(ShardCoupling {
                    prices: self.prices.to_vec(),
                    outside_demand: ctx.outside.clone(),
                }),
            };
            let fresh = SlotProblem::build(
                &cl.catalog,
                t,
                &ctx.demand,
                &ctx.tir,
                ctx.prev.as_ref(),
                &sub_cfg,
            );
            model.debug_milp() == fresh.debug_milp()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_clusters_partition_is_contiguous_and_complete() {
        let cs = edge_clusters(10, 3);
        assert_eq!(cs, vec![0..3, 3..6, 6..9, 9..10]);
        assert_eq!(edge_clusters(6, 6), vec![0..6]);
        assert_eq!(edge_clusters(6, 100), vec![0..6]);
        // cluster_size 0 degrades to singleton-free single pass
        assert_eq!(edge_clusters(3, 0), vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn restrict_demand_reindexes_densely() {
        let mut d = DemandMatrix::zeros(2, 6);
        d.set(AppId(0), EdgeId(4), 7);
        d.set(AppId(1), EdgeId(2), 3);
        let sub = restrict_demand(&d, &(2..5));
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(sub.get(AppId(0), EdgeId(2)), 7);
        assert_eq!(sub.get(AppId(1), EdgeId(0)), 3);
        assert_eq!(sub.total(), 10);
    }

    #[test]
    fn sharded_decide_serves_light_load_and_conserves_demand() {
        let catalog = Catalog::small_scale(42);
        let mut demand = DemandMatrix::zeros(catalog.num_apps(), catalog.num_edges());
        demand.set(AppId(0), EdgeId(0), 4);
        demand.set(AppId(0), EdgeId(3), 3);
        let tir = crate::TirMatrix::oracle(&catalog);
        let cfg = ProblemConfig::default();
        let mut coord = ShardCoordinator::new(&catalog, ShardConfig::new(2));
        let out = coord.decide(
            &catalog,
            0,
            &demand,
            &tir,
            None,
            &cfg,
            &SolverConfig::scheduling(),
        );
        assert_eq!(
            out.schedule.served() + out.schedule.total_unserved(),
            7,
            "demand conservation"
        );
        assert!(out.iterations >= 1);
        assert!(out.upper_bound + 1e-9 >= out.lower_bound || out.fallback_used);
        // Light load on decoupled edges: first stitched point is feasible.
        assert!(out.stitched_feasible + out.repair_used >= 1 || out.fallback_used);
    }
}
