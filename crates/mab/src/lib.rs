//! # birp-mab
//!
//! Online tuning of the TIR hyper-parameters `(eta, beta, C)` with a
//! Multi-Armed-Bandit scheme — paper Section 4.2, Eqs. 15–23.
//!
//! Each (edge device, model version) pair is an *arm* holding running-mean
//! *historical estimates* and the *lower-confidence-bound* (LCB) values the
//! planner actually uses. After every slot the scheduler feeds back the
//! observed TIR of the batch it executed; the arm then:
//!
//! 1. decides whether the observation is *beyond the threshold*
//!    (`TIR_hat >= (1 + eps1) * C_bar`, Eq. 15) or *within* it,
//! 2. beyond: moves `beta_bar`, `C_bar` toward the observation with weight
//!    `1/(n2+1)` (Eq. 16) and bumps `n2` (Eq. 18),
//!    within: moves `eta_bar` toward `ln TIR / ln b` with weight
//!    `1/(n1+1)` (Eqs. 19–21) and bumps `n1`,
//! 3. recomputes the LCBs by shrinking the means by the padding factor
//!    `sqrt(eps2 ln(t+1) / (n2+1))` (Eqs. 17 and 22) — the
//!    exploration/exploitation balance: a rarely-updated arm is pushed to
//!    optimistic *small* `beta`/`eta`, making its compute constraint
//!    conservative until evidence accumulates.
//!
//! Initial values follow Eq. 23: `eta = 0.1, beta = 16, C = 16^0.1`.

use birp_telemetry as telemetry;
use birp_tir::TirParams;
use serde::{Deserialize, Serialize};

/// The two preset exploration parameters of BIRP (paper Section 5.3 selects
/// `eps1 = 0.04`, `eps2 = 0.07` after the Fig. 4/5 sweep).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MabConfig {
    /// Tolerance band above `C_bar` before an observation counts as
    /// beyond-threshold evidence (Eq. 15).
    pub eps1: f64,
    /// Scale of the confidence-interval padding (Eqs. 17, 22).
    pub eps2: f64,
}

impl MabConfig {
    pub fn new(eps1: f64, eps2: f64) -> Self {
        MabConfig { eps1, eps2 }
    }

    /// The values the paper settles on (Section 5.3).
    pub fn paper_preset() -> Self {
        MabConfig {
            eps1: 0.04,
            eps2: 0.07,
        }
    }
}

impl Default for MabConfig {
    fn default() -> Self {
        Self::paper_preset()
    }
}

/// Which update branch an observation triggered (useful for tests and
/// diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateKind {
    /// Eq. 15 fired: `beta_bar`/`C_bar` adjusted.
    BeyondThreshold,
    /// `eta_bar` adjusted.
    WithinThreshold,
    /// Observation unusable (batch <= 1 or non-positive TIR): counts only.
    Skipped,
}

/// Per-(device, model) bandit state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArmState {
    /// Historical (running-mean) estimates — the "bar" quantities.
    pub eta_bar: f64,
    pub beta_bar: f64,
    pub c_bar: f64,
    /// Times an observation fell within / beyond the threshold.
    pub n1: u64,
    pub n2: u64,
    /// LCB values handed to the planner — the "underline" quantities.
    eta_lcb: f64,
    beta_lcb: u32,
    c_lcb: f64,
}

impl ArmState {
    /// Fresh arm with the paper's conservative initialisation (Eq. 23).
    pub fn new() -> Self {
        Self::with_initial(TirParams::paper_initial())
    }

    /// Fresh arm seeded with explicit initial parameters (used by tests and
    /// by BIRP-OFF, which seeds arms with offline-profiled ground truth).
    pub fn with_initial(init: TirParams) -> Self {
        ArmState {
            eta_bar: init.eta,
            beta_bar: init.beta as f64,
            c_bar: init.c,
            n1: 0,
            n2: 0,
            eta_lcb: init.eta,
            beta_lcb: init.beta,
            c_lcb: init.c,
        }
    }

    /// The LCB parameters the planner should use this slot.
    pub fn estimate(&self) -> TirParams {
        TirParams {
            eta: self.eta_lcb,
            beta: self.beta_lcb,
            c: self.c_lcb,
        }
    }

    /// The raw running-mean parameters (no exploration padding).
    pub fn mean_estimate(&self) -> TirParams {
        TirParams {
            eta: self.eta_bar,
            beta: (self.beta_bar.round() as u32).max(1),
            c: self.c_bar,
        }
    }

    /// Confidence-interval padding ratio (shared by Eqs. 17 and 22).
    fn padding(&self, t: u64, eps2: f64) -> f64 {
        let raw = (eps2 * ((t + 1) as f64).ln() / (self.n2 + 1) as f64).sqrt();
        raw.clamp(0.0, 0.95)
    }

    /// Feed back an observed TIR for the batch size `b` executed at slot `t`.
    pub fn observe(&mut self, t: u64, b: u32, tir_hat: f64, cfg: &MabConfig) -> UpdateKind {
        if b <= 1 || !tir_hat.is_finite() || tir_hat <= 0.0 {
            return UpdateKind::Skipped;
        }
        let kind = if tir_hat >= (1.0 + cfg.eps1) * self.c_bar {
            // --- beyond threshold: Eq. 16 ---------------------------------
            let w = 1.0 / (self.n2 + 1) as f64;
            self.beta_bar += w * (b as f64 - self.beta_bar);
            self.c_bar += w * (tir_hat - self.c_bar);
            self.n2 += 1; // Eq. 18
            UpdateKind::BeyondThreshold
        } else {
            // --- within threshold: Eqs. 19-21 -----------------------------
            if let Some(eta_hat) = TirParams::observed_eta(b, tir_hat) {
                let w = 1.0 / (self.n1 + 1) as f64;
                self.eta_bar += w * (eta_hat.clamp(0.0, 1.0) - self.eta_bar);
            }
            self.n1 += 1; // Eq. 20
            UpdateKind::WithinThreshold
        };
        // --- recompute LCBs: Eqs. 17 and 22 ---------------------------------
        let pad = self.padding(t, cfg.eps2);
        self.eta_lcb = (self.eta_bar * (1.0 - pad)).max(0.0);
        self.beta_lcb = ((self.beta_bar * (1.0 - pad)).ceil() as u32).max(1);
        self.c_lcb = (self.c_bar * (1.0 - pad)).max(1.0);
        kind
    }
}

impl Default for ArmState {
    fn default() -> Self {
        Self::new()
    }
}

/// Bank of arms indexed by `(device, model)` over dense ranges.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tuner {
    pub cfg: MabConfig,
    num_models: usize,
    arms: Vec<ArmState>,
}

impl Tuner {
    /// A tuner for `num_devices x num_models` arms, all at the paper's
    /// initial estimates.
    pub fn new(num_devices: usize, num_models: usize, cfg: MabConfig) -> Self {
        Tuner {
            cfg,
            num_models,
            arms: (0..num_devices * num_models)
                .map(|_| ArmState::new())
                .collect(),
        }
    }

    /// A tuner seeded with per-arm ground truth (BIRP-OFF / oracle mode).
    pub fn with_ground_truth(
        num_devices: usize,
        num_models: usize,
        cfg: MabConfig,
        truth: impl Fn(usize, usize) -> TirParams,
    ) -> Self {
        let mut arms = Vec::with_capacity(num_devices * num_models);
        for d in 0..num_devices {
            for m in 0..num_models {
                arms.push(ArmState::with_initial(truth(d, m)));
            }
        }
        Tuner {
            cfg,
            num_models,
            arms,
        }
    }

    #[inline]
    fn idx(&self, device: usize, model: usize) -> usize {
        debug_assert!(model < self.num_models);
        device * self.num_models + model
    }

    pub fn arm(&self, device: usize, model: usize) -> &ArmState {
        &self.arms[self.idx(device, model)]
    }

    /// LCB estimate for a (device, model) arm.
    pub fn estimate(&self, device: usize, model: usize) -> TirParams {
        self.arm(device, model).estimate()
    }

    /// Feed back one observation.
    pub fn observe(
        &mut self,
        t: u64,
        device: usize,
        model: usize,
        batch: u32,
        tir_hat: f64,
    ) -> UpdateKind {
        let cfg = self.cfg;
        let i = self.idx(device, model);
        let kind = self.arms[i].observe(t, batch, tir_hat, &cfg);
        if telemetry::enabled() {
            telemetry::counter("mab.pulls", 1);
            telemetry::counter(
                match kind {
                    UpdateKind::BeyondThreshold => "mab.beyond_threshold",
                    UpdateKind::WithinThreshold => "mab.within_threshold",
                    UpdateKind::Skipped => "mab.skipped",
                },
                1,
            );
            // Relative width of the exploration interval on C — the padding
            // of Eqs. 17/22 actually in effect for this arm. Shrinks toward
            // 0 as evidence accumulates.
            let arm = &self.arms[i];
            if arm.c_bar > 0.0 {
                let width = (arm.c_bar - arm.estimate().c).max(0.0) / arm.c_bar;
                telemetry::observe("mab.lcb_rel_width", width);
            }
        }
        kind
    }

    pub fn num_arms(&self) -> usize {
        self.arms.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initialisation_matches_eq23() {
        let a = ArmState::new();
        let e = a.estimate();
        assert_eq!(e.eta, 0.1);
        assert_eq!(e.beta, 16);
        assert!((e.c - 1.31).abs() < 0.01);
    }

    #[test]
    fn beyond_threshold_branch_updates_beta_and_c() {
        let mut a = ArmState::new();
        let cfg = MabConfig::paper_preset();
        // Observed TIR well above C_bar (1.31): Eq. 15 fires.
        let kind = a.observe(0, 8, 2.0, &cfg);
        assert_eq!(kind, UpdateKind::BeyondThreshold);
        assert_eq!(a.n2, 1);
        assert_eq!(a.n1, 0);
        // Running means moved toward the observation with weight 1.
        assert!((a.beta_bar - 8.0).abs() < 1e-12);
        assert!((a.c_bar - 2.0).abs() < 1e-12);
    }

    #[test]
    fn within_threshold_branch_updates_eta() {
        let mut a = ArmState::new();
        let cfg = MabConfig::paper_preset();
        // TIR = 4^0.3 ~= 1.516 > (1+eps1)*1.31 would be beyond... pick a
        // lower observation: TIR = 4^0.15 = 1.231 < 1.04 * 1.31 = 1.363.
        let tir = 4.0_f64.powf(0.15);
        let kind = a.observe(0, 4, tir, &cfg);
        assert_eq!(kind, UpdateKind::WithinThreshold);
        assert_eq!(a.n1, 1);
        // eta_bar moved fully (weight 1) to the observed exponent 0.15.
        assert!((a.eta_bar - 0.15).abs() < 1e-9);
    }

    #[test]
    fn running_mean_weights_shrink() {
        let mut a = ArmState::new();
        let cfg = MabConfig::new(0.04, 0.0); // no padding: LCB = mean
                                             // All observed TIRs stay below (1 + eps1) * C_bar = 1.363, so every
                                             // observation lands in the within-threshold branch.
        let tir = |eta: f64, b: u32| (b as f64).powf(eta);
        a.observe(0, 4, tir(0.1, 4), &cfg);
        assert!((a.eta_bar - 0.1).abs() < 1e-9);
        a.observe(1, 4, tir(0.2, 4), &cfg);
        // mean of 0.1 and 0.2
        assert!((a.eta_bar - 0.15).abs() < 1e-9);
        a.observe(2, 4, tir(0.15, 4), &cfg);
        assert!((a.eta_bar - 0.15).abs() < 1e-9);
    }

    #[test]
    fn skipped_observations_do_not_change_state() {
        let mut a = ArmState::new();
        let before = a.clone();
        let cfg = MabConfig::paper_preset();
        assert_eq!(a.observe(5, 1, 1.0, &cfg), UpdateKind::Skipped);
        assert_eq!(a.observe(5, 0, 1.0, &cfg), UpdateKind::Skipped);
        assert_eq!(a.observe(5, 4, -2.0, &cfg), UpdateKind::Skipped);
        assert_eq!(a.observe(5, 4, f64::NAN, &cfg), UpdateKind::Skipped);
        assert_eq!(a.eta_bar, before.eta_bar);
        assert_eq!(a.n1, 0);
        assert_eq!(a.n2, 0);
    }

    #[test]
    fn padding_shrinks_with_evidence() {
        let mut a = ArmState::new();
        // eps1 = 0 keeps every TIR = C_bar observation in the
        // beyond-threshold branch, so n2 grows each slot.
        let cfg = MabConfig::new(0.0, 0.5);
        // One beyond observation at late t: big padding, floored LCB.
        a.observe(100, 8, 3.0, &cfg);
        let early = a.estimate();
        // Many more observations grow n2 faster than ln(t+1), shrinking the
        // padding; the LCB approaches the mean from below.
        for t in 101..160 {
            a.observe(t, 8, 3.0, &cfg);
        }
        let late = a.estimate();
        assert!(
            late.c > early.c,
            "LCB should rise: {} -> {}",
            early.c,
            late.c
        );
        assert!(late.beta >= early.beta);
    }

    #[test]
    fn converges_to_planted_truth() {
        // Simulate a ground-truth TIR curve and feed noiseless observations;
        // the mean estimates must converge to the truth.
        let truth = TirParams::consistent(0.28, 9);
        let mut a = ArmState::new();
        let cfg = MabConfig::paper_preset();
        for t in 0..400u64 {
            let b = 2 + (t % 12) as u32; // sweep batches 2..=13
            a.observe(t, b, truth.tir(b), &cfg);
        }
        let m = a.mean_estimate();
        assert!((m.eta - 0.28).abs() < 0.05, "eta_bar={}", m.eta);
        // C_bar should be near the plateau value beta^eta ~ 1.85.
        assert!((a.c_bar - truth.c).abs() < 0.25, "c_bar={}", a.c_bar);
    }

    #[test]
    fn lcb_is_never_above_mean() {
        let mut a = ArmState::new();
        let cfg = MabConfig::new(0.04, 0.3);
        for t in 0..50u64 {
            a.observe(t, 2 + (t % 10) as u32, 1.0 + 0.1 * ((t % 7) as f64), &cfg);
            let e = a.estimate();
            assert!(e.eta <= a.eta_bar + 1e-12);
            assert!(e.c <= a.c_bar.max(1.0) + 1e-12);
        }
    }

    #[test]
    fn tuner_indexes_arms_independently() {
        let mut t = Tuner::new(3, 2, MabConfig::paper_preset());
        assert_eq!(t.num_arms(), 6);
        t.observe(0, 2, 1, 8, 2.5);
        assert_eq!(t.arm(2, 1).n2, 1);
        assert_eq!(t.arm(0, 0).n2, 0);
        assert_eq!(t.arm(2, 0).n2, 0);
    }

    #[test]
    fn ground_truth_seeding() {
        let t = Tuner::with_ground_truth(2, 2, MabConfig::paper_preset(), |d, m| {
            TirParams::consistent(0.1 + 0.1 * d as f64, 4 + m as u32)
        });
        assert_eq!(t.estimate(1, 1).beta, 5);
        assert!((t.estimate(1, 0).eta - 0.2).abs() < 1e-12);
    }
}
