//! Property-based tests for the MAB tuner: convergence toward arbitrary
//! planted TIR curves and state-machine invariants.

use birp_mab::{ArmState, MabConfig, UpdateKind};
use birp_tir::TirParams;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With noiseless observations sweeping the batch range, the running
    /// mean of eta converges to the planted exponent.
    #[test]
    fn eta_converges(eta in 0.1f64..0.35, beta in 5u32..14) {
        let truth = TirParams::consistent(eta, beta);
        let mut arm = ArmState::new();
        let cfg = MabConfig::paper_preset();
        for t in 0..300u64 {
            let b = 2 + (t % (beta as u64)) as u32;
            arm.observe(t, b, truth.tir(b), &cfg);
        }
        prop_assert!((arm.eta_bar - eta).abs() < 0.08,
            "eta_bar {} vs planted {}", arm.eta_bar, eta);
    }

    /// Counters n1/n2 sum to the number of usable observations.
    #[test]
    fn counters_account_for_observations(obs in proptest::collection::vec((2u32..16, 0.5f64..3.0), 1..60)) {
        let mut arm = ArmState::new();
        let cfg = MabConfig::paper_preset();
        let mut usable = 0u64;
        for (t, (b, tir)) in obs.into_iter().enumerate() {
            match arm.observe(t as u64, b, tir, &cfg) {
                UpdateKind::Skipped => {}
                _ => usable += 1,
            }
        }
        prop_assert_eq!(arm.n1 + arm.n2, usable);
    }

    /// LCB estimates never exceed the running means and always stay in the
    /// valid parameter region.
    #[test]
    fn lcb_invariants(obs in proptest::collection::vec((2u32..16, 0.2f64..4.0), 1..80), eps2 in 0.0f64..0.5) {
        let mut arm = ArmState::new();
        let cfg = MabConfig::new(0.04, eps2);
        for (t, (b, tir)) in obs.into_iter().enumerate() {
            arm.observe(t as u64, b, tir, &cfg);
            let e = arm.estimate();
            prop_assert!(e.eta <= arm.eta_bar + 1e-12);
            prop_assert!(e.beta as f64 <= arm.beta_bar.ceil() + 1e-9);
            prop_assert!(e.eta >= 0.0);
            prop_assert!(e.beta >= 1);
            prop_assert!(e.c >= 1.0);
        }
    }

    /// Beyond-threshold evidence raises the plateau estimate.
    #[test]
    fn plateau_rises_on_beyond_evidence(c_obs in 2.0f64..4.0) {
        let mut arm = ArmState::new();
        let cfg = MabConfig::paper_preset();
        let before = arm.c_bar;
        arm.observe(0, 10, c_obs, &cfg);
        prop_assert!(arm.c_bar > before);
        prop_assert!((arm.c_bar - c_obs).abs() < 1e-9, "first beyond obs replaces the mean");
    }
}
