//! Property-based tests for trace generation and I/O.

use birp_workload::{gen::TraceConfig, io, stats::TraceStats, Trace};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = TraceConfig> {
    (
        0u64..1000,
        1usize..40,
        1usize..4,
        1usize..7,
        0.0f64..30.0,
        0.0f64..0.95,
        0.0f64..1.5,
        0.0f64..0.8,
    )
        .prop_map(
            |(seed, slots, apps, edges, rate, amp, imb, burst)| TraceConfig {
                seed,
                num_slots: slots,
                num_apps: apps,
                num_edges: edges,
                mean_rate: rate,
                diurnal_amplitude: amp,
                period: 96,
                imbalance: imb,
                burstiness: burst,
                app_weights: Vec::new(),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generation is a pure function of the config.
    #[test]
    fn generation_deterministic(cfg in arb_config()) {
        prop_assert_eq!(cfg.generate(), cfg.generate());
    }

    /// JSON round-trips exactly.
    #[test]
    fn json_roundtrip(cfg in arb_config()) {
        let t = cfg.generate();
        let back = io::from_json(&io::to_json(&t).unwrap()).unwrap();
        prop_assert_eq!(t, back);
    }

    /// CSV round-trips exactly when the shape is pinned.
    #[test]
    fn csv_roundtrip(cfg in arb_config()) {
        let t = cfg.generate();
        let back = io::from_csv(&io::to_csv(&t), Some((t.num_slots(), t.num_apps(), t.num_edges()))).unwrap();
        prop_assert_eq!(t, back);
    }

    /// Stats never produce NaN / negative nonsense.
    #[test]
    fn stats_are_sane(cfg in arb_config()) {
        let t = cfg.generate();
        let s = TraceStats::compute(&t);
        prop_assert!(s.mean_per_slot >= 0.0);
        prop_assert!(s.peak_to_mean >= 0.0);
        prop_assert!(s.edge_gini >= -1e-12 && s.edge_gini < 1.0);
        prop_assert!(s.edge_imbalance >= 0.0);
        prop_assert_eq!(s.total_requests,
            (0..t.num_slots()).map(|x| t.slot_total(x)).sum::<u64>());
    }

    /// Windowing preserves cell values.
    #[test]
    fn window_preserves_cells(cfg in arb_config(), cut in 0usize..10) {
        let t = cfg.generate();
        let from = cut.min(t.num_slots());
        let w = t.window(from, t.num_slots());
        prop_assert_eq!(w.num_slots(), t.num_slots() - from);
        for s in 0..w.num_slots() {
            for a in 0..t.num_apps() {
                for e in 0..t.num_edges() {
                    prop_assert_eq!(
                        w.demand(s, birp_models::AppId(a), birp_models::EdgeId(e)),
                        t.demand(s + from, birp_models::AppId(a), birp_models::EdgeId(e))
                    );
                }
            }
        }
    }
}

#[test]
fn empty_shapes_are_fine() {
    let t = Trace::zeros(0, 0, 0);
    assert_eq!(t.total(), 0);
    let s = TraceStats::compute(&t);
    assert_eq!(s.total_requests, 0);
}
