//! Synthetic trace generation.
//!
//! The generator reproduces the three properties of the MLaaS-in-the-wild
//! production trace that BIRP's evaluation depends on:
//!
//! 1. **diurnal periodicity** — a sinusoidal rate profile with a period of
//!    96 slots (one day of 15-minute slots, matching the paper's setup of
//!    "each time slot is 15 minutes, a total duration of three days"),
//! 2. **spatial imbalance** — per-edge weights plus per-(app, edge) phase
//!    offsets, so different edges peak at different times and workload
//!    redistribution has something to exploit,
//! 3. **burstiness** — a log-normal multiplicative burst process on top of
//!    Poisson arrivals.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rand_distr::{Distribution, LogNormal, Poisson};
use serde::{Deserialize, Serialize};

use birp_models::{AppId, EdgeId};

use crate::trace::Trace;

/// Knobs of the synthetic generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceConfig {
    pub seed: u64,
    pub num_slots: usize,
    pub num_apps: usize,
    pub num_edges: usize,
    /// Mean requests per (app, edge) per slot before modulation.
    pub mean_rate: f64,
    /// Relative amplitude of the diurnal sinusoid, in [0, 1).
    pub diurnal_amplitude: f64,
    /// Slots per diurnal period (96 = one day of 15-minute slots).
    pub period: usize,
    /// Spatial skew across edges: 0 = uniform, 1 = strongly imbalanced.
    pub imbalance: f64,
    /// Sigma of the log-normal burst multiplier; 0 disables bursts.
    pub burstiness: f64,
    /// Relative popularity of each application (normalised internally).
    /// Empty means uniform.
    pub app_weights: Vec<f64>,
}

impl TraceConfig {
    /// Paper-like defaults for the small-scale scenario (1 app, 6 edges,
    /// 3 simulated days).
    pub fn small_scale(seed: u64) -> Self {
        TraceConfig {
            seed,
            num_slots: 288,
            num_apps: 1,
            num_edges: 6,
            mean_rate: 7.0,
            diurnal_amplitude: 0.6,
            period: 96,
            imbalance: 0.7,
            burstiness: 0.35,
            app_weights: Vec::new(),
        }
    }

    /// Paper-like defaults for the large-scale scenario (5 apps, 6 edges).
    pub fn large_scale(seed: u64) -> Self {
        TraceConfig {
            seed,
            num_slots: 288,
            num_apps: 5,
            num_edges: 6,
            mean_rate: 1.8,
            diurnal_amplitude: 0.6,
            period: 96,
            imbalance: 0.7,
            burstiness: 0.35,
            app_weights: vec![1.6, 1.2, 1.0, 0.7, 0.5],
        }
    }

    /// Normalised app weights (uniform if unspecified).
    fn normalized_app_weights(&self) -> Vec<f64> {
        let w = if self.app_weights.len() == self.num_apps {
            self.app_weights.clone()
        } else {
            vec![1.0; self.num_apps]
        };
        let mean = w.iter().sum::<f64>() / w.len().max(1) as f64;
        w.into_iter().map(|v| v / mean).collect()
    }

    /// Per-edge weights with mean 1; spread controlled by `imbalance`.
    fn edge_weights(&self, rng: &mut StdRng) -> Vec<f64> {
        let raw: Vec<f64> = (0..self.num_edges)
            .map(|_| (self.imbalance * rng.random_range(-1.0..1.0f64)).exp())
            .collect();
        let mean = raw.iter().sum::<f64>() / raw.len().max(1) as f64;
        raw.into_iter().map(|v| v / mean).collect()
    }

    /// Generate the trace.
    pub fn generate(&self) -> Trace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let app_w = self.normalized_app_weights();
        let edge_w = self.edge_weights(&mut rng);
        // Phase offsets: edges peak at different times of day; apps add a
        // smaller secondary shift.
        let phases: Vec<f64> = (0..self.num_apps * self.num_edges)
            .map(|_| rng.random_range(0.0..std::f64::consts::TAU))
            .collect();
        let burst = if self.burstiness > 0.0 {
            // Mean-1 log-normal: mu = -sigma^2/2.
            Some(LogNormal::new(-self.burstiness * self.burstiness / 2.0, self.burstiness).unwrap())
        } else {
            None
        };

        let mut trace = Trace::zeros(self.num_slots, self.num_apps, self.num_edges);
        for t in 0..self.num_slots {
            let day_pos =
                std::f64::consts::TAU * (t % self.period.max(1)) as f64 / self.period.max(1) as f64;
            for a in 0..self.num_apps {
                for e in 0..self.num_edges {
                    let phase = phases[a * self.num_edges + e];
                    let diurnal = 1.0 + self.diurnal_amplitude * (day_pos + phase).sin();
                    let burst_mul = burst.map_or(1.0, |d| d.sample(&mut rng));
                    let lambda = self.mean_rate * app_w[a] * edge_w[e] * diurnal * burst_mul;
                    let n = if lambda <= 0.0 {
                        0
                    } else {
                        Poisson::new(lambda.max(1e-9)).unwrap().sample(&mut rng) as u32
                    };
                    trace.set_demand(t, AppId(a), EdgeId(e), n);
                }
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn generation_is_deterministic() {
        let cfg = TraceConfig::small_scale(11);
        assert_eq!(cfg.generate(), cfg.generate());
        let other = TraceConfig::small_scale(12).generate();
        assert_ne!(cfg.generate(), other);
    }

    #[test]
    fn mean_rate_is_respected() {
        let cfg = TraceConfig {
            diurnal_amplitude: 0.0,
            burstiness: 0.0,
            imbalance: 0.0,
            ..TraceConfig::large_scale(3)
        };
        let t = cfg.generate();
        let cells = (t.num_slots() * t.num_apps() * t.num_edges()) as f64;
        let empirical = t.total() as f64 / cells;
        assert!(
            (empirical - cfg.mean_rate).abs() / cfg.mean_rate < 0.05,
            "empirical mean {empirical} vs configured {}",
            cfg.mean_rate
        );
    }

    #[test]
    fn imbalance_knob_spreads_edges() {
        let uniform = TraceConfig {
            imbalance: 0.0,
            ..TraceConfig::small_scale(5)
        };
        let skewed = TraceConfig {
            imbalance: 1.2,
            ..TraceConfig::small_scale(5)
        };
        let su = TraceStats::compute(&uniform.generate());
        let ss = TraceStats::compute(&skewed.generate());
        assert!(
            ss.edge_imbalance > su.edge_imbalance,
            "skewed {} <= uniform {}",
            ss.edge_imbalance,
            su.edge_imbalance
        );
    }

    #[test]
    fn diurnal_pattern_shows_up() {
        let cfg = TraceConfig {
            diurnal_amplitude: 0.9,
            burstiness: 0.0,
            imbalance: 0.0,
            num_apps: 1,
            num_edges: 1,
            num_slots: 192,
            mean_rate: 200.0,
            ..TraceConfig::small_scale(9)
        };
        let t = cfg.generate();
        // Max and min slot totals must differ strongly under 0.9 amplitude.
        let totals: Vec<u64> = (0..t.num_slots()).map(|s| t.slot_total(s)).collect();
        let max = *totals.iter().max().unwrap() as f64;
        let min = *totals.iter().min().unwrap() as f64;
        assert!(max > 3.0 * (min + 1.0), "max={max} min={min}");
    }

    #[test]
    fn zero_rate_yields_empty_trace() {
        let cfg = TraceConfig {
            mean_rate: 0.0,
            burstiness: 0.0,
            ..TraceConfig::small_scale(1)
        };
        assert_eq!(cfg.generate().total(), 0);
    }

    #[test]
    fn app_weights_shift_demand() {
        let cfg = TraceConfig {
            app_weights: vec![4.0, 1.0, 1.0, 1.0, 1.0],
            burstiness: 0.0,
            ..TraceConfig::large_scale(2)
        };
        let t = cfg.generate();
        let per_app: Vec<u64> = (0..5)
            .map(|a| {
                (0..t.num_slots())
                    .flat_map(|s| (0..t.num_edges()).map(move |e| (s, e)))
                    .map(|(s, e)| t.demand(s, AppId(a), EdgeId(e)) as u64)
                    .sum()
            })
            .collect();
        assert!(per_app[0] > 2 * per_app[1], "{per_app:?}");
    }
}
