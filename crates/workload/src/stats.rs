//! Workload diagnostics.
//!
//! EXPERIMENTS.md documents every run's workload with these statistics, and
//! the generator tests use them to verify the knobs do what they claim.

use serde::{Deserialize, Serialize};

use birp_models::EdgeId;

use crate::trace::Trace;

/// Summary statistics of a trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceStats {
    pub total_requests: u64,
    pub mean_per_slot: f64,
    pub peak_per_slot: u64,
    /// Peak-to-mean ratio of per-slot totals (burstiness indicator).
    pub peak_to_mean: f64,
    /// Max-to-mean ratio of per-edge totals (spatial imbalance; 1 = uniform).
    pub edge_imbalance: f64,
    /// Gini coefficient of per-edge totals in [0, 1).
    pub edge_gini: f64,
}

impl TraceStats {
    pub fn compute(trace: &Trace) -> Self {
        let slots = trace.num_slots().max(1);
        let total = trace.total();
        let mean_per_slot = total as f64 / slots as f64;
        let peak = (0..trace.num_slots())
            .map(|t| trace.slot_total(t))
            .max()
            .unwrap_or(0);

        let per_edge: Vec<u64> = (0..trace.num_edges())
            .map(|e| {
                (0..trace.num_slots())
                    .map(|t| trace.slot_edge_total(t, EdgeId(e)))
                    .sum()
            })
            .collect();
        let edge_mean = per_edge.iter().sum::<u64>() as f64 / per_edge.len().max(1) as f64;
        let edge_max = per_edge.iter().copied().max().unwrap_or(0) as f64;

        TraceStats {
            total_requests: total,
            mean_per_slot,
            peak_per_slot: peak,
            peak_to_mean: if mean_per_slot > 0.0 {
                peak as f64 / mean_per_slot
            } else {
                0.0
            },
            edge_imbalance: if edge_mean > 0.0 {
                edge_max / edge_mean
            } else {
                0.0
            },
            edge_gini: gini(&per_edge),
        }
    }
}

/// Gini coefficient of a non-negative sample.
pub fn gini(values: &[u64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let total: u64 = values.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut sorted: Vec<u64> = values.to_vec();
    sorted.sort_unstable();
    // G = (2 sum_i i*x_i) / (n sum x) - (n + 1)/n  with 1-based i.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use birp_models::AppId;

    #[test]
    fn gini_of_uniform_is_zero() {
        assert!(gini(&[5, 5, 5, 5]).abs() < 1e-12);
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0]), 0.0);
    }

    #[test]
    fn gini_of_concentrated_is_high() {
        let g = gini(&[0, 0, 0, 100]);
        assert!(g > 0.7, "g={g}");
        assert!(g < 1.0);
    }

    #[test]
    fn gini_is_scale_invariant() {
        let a = gini(&[1, 2, 3, 4]);
        let b = gini(&[10, 20, 30, 40]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn stats_on_hand_built_trace() {
        let mut t = Trace::zeros(2, 1, 2);
        t.set_demand(0, AppId(0), EdgeId(0), 10);
        t.set_demand(1, AppId(0), EdgeId(0), 30);
        let s = TraceStats::compute(&t);
        assert_eq!(s.total_requests, 40);
        assert_eq!(s.peak_per_slot, 30);
        assert!((s.mean_per_slot - 20.0).abs() < 1e-12);
        assert!((s.peak_to_mean - 1.5).abs() < 1e-12);
        // Edge 0 has everything: imbalance = max/mean = 40/20 = 2.
        assert!((s.edge_imbalance - 2.0).abs() < 1e-12);
        assert!(s.edge_gini > 0.4);
    }

    #[test]
    fn stats_on_empty_trace() {
        let t = Trace::zeros(3, 2, 2);
        let s = TraceStats::compute(&t);
        assert_eq!(s.total_requests, 0);
        assert_eq!(s.peak_to_mean, 0.0);
        assert_eq!(s.edge_imbalance, 0.0);
    }
}
