//! # birp-workload
//!
//! Inference-workload traces for the edge collaborative system.
//!
//! The paper drives its evaluation with the Alibaba *MLaaS in the wild*
//! production trace [34]. That trace is not redistributable, so this crate
//! generates synthetic traces reproducing its published shape — strong
//! diurnal periodicity, heavy-tailed bursts, and pronounced spatial
//! imbalance between serving sites — with every knob explicit and seeded
//! (see DESIGN.md, substitutions table). External traces can still be
//! loaded from CSV/JSON via [`io`].
//!
//! * [`gen`] — the [`TraceConfig`](gen::TraceConfig) generator,
//! * [`trace`] — the dense `[slot][app][edge]` demand tensor,
//! * [`stats`] — imbalance / burstiness / periodicity diagnostics used by
//!   tests and by EXPERIMENTS.md to document each run's workload,
//! * [`io`] — CSV and JSON (de)serialisation.

pub mod gen;
pub mod io;
pub mod stats;
pub mod trace;
pub mod transform;

pub use gen::TraceConfig;
pub use stats::TraceStats;
pub use trace::Trace;
