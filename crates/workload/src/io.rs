//! Trace (de)serialisation: JSON (full fidelity) and CSV (interoperable
//! `slot,app,edge,requests` rows for loading external traces).

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use birp_models::{AppId, EdgeId};

use crate::trace::Trace;

/// Errors from trace I/O.
#[derive(Debug)]
pub enum TraceIoError {
    Io(io::Error),
    Json(serde_json::Error),
    /// CSV parse failure: line number (1-based) and description.
    Csv {
        line: usize,
        detail: String,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "io error: {e}"),
            TraceIoError::Json(e) => write!(f, "json error: {e}"),
            TraceIoError::Csv { line, detail } => write!(f, "csv error at line {line}: {detail}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<serde_json::Error> for TraceIoError {
    fn from(e: serde_json::Error) -> Self {
        TraceIoError::Json(e)
    }
}

/// Serialise a trace to a JSON string.
pub fn to_json(trace: &Trace) -> Result<String, TraceIoError> {
    Ok(serde_json::to_string(trace)?)
}

/// Deserialise a trace from a JSON string.
pub fn from_json(s: &str) -> Result<Trace, TraceIoError> {
    Ok(serde_json::from_str(s)?)
}

/// Write a trace to a JSON file.
pub fn save_json(trace: &Trace, path: impl AsRef<Path>) -> Result<(), TraceIoError> {
    fs::write(path, to_json(trace)?)?;
    Ok(())
}

/// Read a trace from a JSON file.
pub fn load_json(path: impl AsRef<Path>) -> Result<Trace, TraceIoError> {
    from_json(&fs::read_to_string(path)?)
}

/// Render the trace as `slot,app,edge,requests` CSV (header included,
/// zero cells omitted).
pub fn to_csv(trace: &Trace) -> String {
    let mut out = String::from("slot,app,edge,requests\n");
    for (t, a, e, v) in trace.iter_nonzero() {
        let _ = writeln!(out, "{t},{},{},{v}", a.index(), e.index());
    }
    out
}

/// Parse `slot,app,edge,requests` CSV. Shape is inferred from the maximum
/// indices seen unless `shape` is given.
pub fn from_csv(s: &str, shape: Option<(usize, usize, usize)>) -> Result<Trace, TraceIoError> {
    let mut cells: Vec<(usize, usize, usize, u32)> = Vec::new();
    for (ln, line) in s.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || (ln == 0 && line.starts_with("slot")) {
            continue;
        }
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != 4 {
            return Err(TraceIoError::Csv {
                line: ln + 1,
                detail: format!("expected 4 fields, got {}", parts.len()),
            });
        }
        let parse = |i: usize| -> Result<usize, TraceIoError> {
            parts[i].trim().parse().map_err(|e| TraceIoError::Csv {
                line: ln + 1,
                detail: format!("field {i}: {e}"),
            })
        };
        let t = parse(0)?;
        let a = parse(1)?;
        let e = parse(2)?;
        let v: u32 = parts[3].trim().parse().map_err(|e| TraceIoError::Csv {
            line: ln + 1,
            detail: format!("field 3: {e}"),
        })?;
        cells.push((t, a, e, v));
    }
    let (slots, apps, edges) = shape.unwrap_or_else(|| {
        let s = cells.iter().map(|c| c.0 + 1).max().unwrap_or(0);
        let a = cells.iter().map(|c| c.1 + 1).max().unwrap_or(0);
        let e = cells.iter().map(|c| c.2 + 1).max().unwrap_or(0);
        (s, a, e)
    });
    let mut trace = Trace::zeros(slots, apps, edges);
    for (t, a, e, v) in cells {
        if t >= slots || a >= apps || e >= edges {
            return Err(TraceIoError::Csv {
                line: 0,
                detail: format!("cell ({t},{a},{e}) outside shape ({slots},{apps},{edges})"),
            });
        }
        trace.set_demand(t, AppId(a), EdgeId(e), v);
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceConfig;

    #[test]
    fn json_roundtrip() {
        let t = TraceConfig::small_scale(4).generate();
        let s = to_json(&t).unwrap();
        let back = from_json(&s).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn csv_roundtrip() {
        let t = TraceConfig::large_scale(4).generate();
        let s = to_csv(&t);
        let back = from_csv(&s, Some((t.num_slots(), t.num_apps(), t.num_edges()))).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn csv_shape_inference() {
        let s = "slot,app,edge,requests\n0,0,0,5\n2,1,3,7\n";
        let t = from_csv(s, None).unwrap();
        assert_eq!(t.num_slots(), 3);
        assert_eq!(t.num_apps(), 2);
        assert_eq!(t.num_edges(), 4);
        assert_eq!(t.demand(2, AppId(1), EdgeId(3)), 7);
    }

    #[test]
    fn csv_rejects_malformed_rows() {
        assert!(matches!(
            from_csv("0,1,2\n", None),
            Err(TraceIoError::Csv { line: 1, .. })
        ));
        assert!(matches!(
            from_csv("slot,app,edge,requests\n0,x,0,1\n", None),
            Err(TraceIoError::Csv { line: 2, .. })
        ));
    }

    #[test]
    fn csv_rejects_out_of_shape_cells() {
        let err = from_csv("0,0,5,1\n", Some((1, 1, 2))).unwrap_err();
        assert!(err.to_string().contains("outside shape"));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("birp-workload-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let t = TraceConfig::small_scale(9).generate();
        save_json(&t, &path).unwrap();
        let back = load_json(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(path).ok();
    }
}
