//! The dense demand tensor `r^t_{ik}`.

use birp_models::{AppId, EdgeId};
use serde::{Deserialize, Serialize};

/// Demand of every (application, edge) pair over a horizon of slots.
///
/// This is the paper's `r^t_{ik}`: the number of inference requests of
/// application `i` generated in edge `k`'s region during slot `t`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    num_slots: usize,
    num_apps: usize,
    num_edges: usize,
    /// Flattened `[t][app][edge]`.
    demand: Vec<u32>,
}

impl Trace {
    /// An all-zero trace of the given shape.
    pub fn zeros(num_slots: usize, num_apps: usize, num_edges: usize) -> Self {
        Trace {
            num_slots,
            num_apps,
            num_edges,
            demand: vec![0; num_slots * num_apps * num_edges],
        }
    }

    /// Build from a flattened `[t][app][edge]` vector.
    ///
    /// # Panics
    /// Panics if the vector length does not match the shape.
    pub fn from_flat(
        num_slots: usize,
        num_apps: usize,
        num_edges: usize,
        demand: Vec<u32>,
    ) -> Self {
        assert_eq!(
            demand.len(),
            num_slots * num_apps * num_edges,
            "flat demand length mismatch"
        );
        Trace {
            num_slots,
            num_apps,
            num_edges,
            demand,
        }
    }

    #[inline]
    fn idx(&self, t: usize, a: usize, e: usize) -> usize {
        debug_assert!(t < self.num_slots && a < self.num_apps && e < self.num_edges);
        (t * self.num_apps + a) * self.num_edges + e
    }

    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    pub fn num_apps(&self) -> usize {
        self.num_apps
    }

    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Demand `r^t_{ik}`.
    #[inline]
    pub fn demand(&self, t: usize, app: AppId, edge: EdgeId) -> u32 {
        self.demand[self.idx(t, app.index(), edge.index())]
    }

    /// Mutable access for generators.
    #[inline]
    pub fn set_demand(&mut self, t: usize, app: AppId, edge: EdgeId, value: u32) {
        let i = self.idx(t, app.index(), edge.index());
        self.demand[i] = value;
    }

    /// Total requests in slot `t`.
    pub fn slot_total(&self, t: usize) -> u64 {
        let base = t * self.num_apps * self.num_edges;
        self.demand[base..base + self.num_apps * self.num_edges]
            .iter()
            .map(|&v| v as u64)
            .sum()
    }

    /// Total requests of app `a` at edge `e` in slot `t`... across all apps,
    /// per edge: used by imbalance diagnostics.
    pub fn slot_edge_total(&self, t: usize, edge: EdgeId) -> u64 {
        (0..self.num_apps)
            .map(|a| self.demand[self.idx(t, a, edge.index())] as u64)
            .sum()
    }

    /// Grand total over the whole horizon.
    pub fn total(&self) -> u64 {
        self.demand.iter().map(|&v| v as u64).sum()
    }

    /// Iterate `(t, app, edge, demand)` over non-zero cells.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, AppId, EdgeId, u32)> + '_ {
        (0..self.num_slots).flat_map(move |t| {
            (0..self.num_apps).flat_map(move |a| {
                (0..self.num_edges).filter_map(move |e| {
                    let v = self.demand[self.idx(t, a, e)];
                    (v > 0).then_some((t, AppId(a), EdgeId(e), v))
                })
            })
        })
    }

    /// A sub-trace containing slots `[from, to)`.
    pub fn window(&self, from: usize, to: usize) -> Trace {
        assert!(from <= to && to <= self.num_slots);
        let per_slot = self.num_apps * self.num_edges;
        Trace {
            num_slots: to - from,
            num_apps: self.num_apps,
            num_edges: self.num_edges,
            demand: self.demand[from * per_slot..to * per_slot].to_vec(),
        }
    }

    /// Flat access (used by I/O).
    pub fn as_flat(&self) -> &[u32] {
        &self.demand
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get_roundtrip() {
        let mut t = Trace::zeros(2, 3, 4);
        t.set_demand(1, AppId(2), EdgeId(3), 17);
        assert_eq!(t.demand(1, AppId(2), EdgeId(3)), 17);
        assert_eq!(t.demand(0, AppId(2), EdgeId(3)), 0);
        assert_eq!(t.demand(1, AppId(2), EdgeId(2)), 0);
    }

    #[test]
    fn totals() {
        let mut t = Trace::zeros(2, 2, 2);
        t.set_demand(0, AppId(0), EdgeId(0), 5);
        t.set_demand(0, AppId(1), EdgeId(1), 7);
        t.set_demand(1, AppId(0), EdgeId(1), 11);
        assert_eq!(t.slot_total(0), 12);
        assert_eq!(t.slot_total(1), 11);
        assert_eq!(t.total(), 23);
        assert_eq!(t.slot_edge_total(0, EdgeId(1)), 7);
    }

    #[test]
    fn nonzero_iteration() {
        let mut t = Trace::zeros(1, 2, 2);
        t.set_demand(0, AppId(1), EdgeId(0), 3);
        let cells: Vec<_> = t.iter_nonzero().collect();
        assert_eq!(cells, vec![(0, AppId(1), EdgeId(0), 3)]);
    }

    #[test]
    fn window_slices_slots() {
        let mut t = Trace::zeros(3, 1, 1);
        for s in 0..3 {
            t.set_demand(s, AppId(0), EdgeId(0), s as u32 + 1);
        }
        let w = t.window(1, 3);
        assert_eq!(w.num_slots(), 2);
        assert_eq!(w.demand(0, AppId(0), EdgeId(0)), 2);
        assert_eq!(w.demand(1, AppId(0), EdgeId(0)), 3);
    }

    #[test]
    #[should_panic(expected = "flat demand length mismatch")]
    fn from_flat_checks_shape() {
        Trace::from_flat(2, 2, 2, vec![0; 7]);
    }
}
