//! Trace transforms: scale, clip, splice and spike-injection.
//!
//! Useful both for stress experiments (inject a flash crowd into a
//! recorded trace) and for calibrating external traces to the simulator's
//! capacity scale without regenerating them.

use birp_models::{AppId, EdgeId};

use crate::trace::Trace;

/// Multiply every cell by `factor` (rounding to nearest).
pub fn scale(trace: &Trace, factor: f64) -> Trace {
    let mut out = Trace::zeros(trace.num_slots(), trace.num_apps(), trace.num_edges());
    for t in 0..trace.num_slots() {
        for a in 0..trace.num_apps() {
            for e in 0..trace.num_edges() {
                let v = trace.demand(t, AppId(a), EdgeId(e)) as f64 * factor;
                out.set_demand(t, AppId(a), EdgeId(e), v.round().max(0.0) as u32);
            }
        }
    }
    out
}

/// Clamp every cell to at most `cap` requests.
pub fn clip(trace: &Trace, cap: u32) -> Trace {
    let mut out = Trace::zeros(trace.num_slots(), trace.num_apps(), trace.num_edges());
    for t in 0..trace.num_slots() {
        for a in 0..trace.num_apps() {
            for e in 0..trace.num_edges() {
                out.set_demand(
                    t,
                    AppId(a),
                    EdgeId(e),
                    trace.demand(t, AppId(a), EdgeId(e)).min(cap),
                );
            }
        }
    }
    out
}

/// Add a flash crowd: `extra` additional requests of `app` at `edge`
/// spread uniformly over slots `[from, to)`.
pub fn inject_spike(
    trace: &Trace,
    app: AppId,
    edge: EdgeId,
    from: usize,
    to: usize,
    extra: u32,
) -> Trace {
    let mut out = trace.clone();
    let to = to.min(trace.num_slots());
    if from >= to {
        return out;
    }
    let width = (to - from) as u32;
    let per_slot = extra / width;
    let mut remainder = extra % width;
    for t in from..to {
        let mut add = per_slot;
        if remainder > 0 {
            add += 1;
            remainder -= 1;
        }
        if add > 0 {
            let cur = out.demand(t, app, edge);
            out.set_demand(t, app, edge, cur + add);
        }
    }
    out
}

/// Concatenate two traces of identical (apps, edges) shape along time.
///
/// # Panics
/// Panics on shape mismatch.
pub fn splice(a: &Trace, b: &Trace) -> Trace {
    assert_eq!(a.num_apps(), b.num_apps(), "app count mismatch");
    assert_eq!(a.num_edges(), b.num_edges(), "edge count mismatch");
    let mut out = Trace::zeros(a.num_slots() + b.num_slots(), a.num_apps(), a.num_edges());
    for (src, offset) in [(a, 0usize), (b, a.num_slots())] {
        for t in 0..src.num_slots() {
            for ap in 0..src.num_apps() {
                for e in 0..src.num_edges() {
                    out.set_demand(
                        t + offset,
                        AppId(ap),
                        EdgeId(e),
                        src.demand(t, AppId(ap), EdgeId(e)),
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceConfig;

    #[test]
    fn scale_preserves_shape_and_roughly_total() {
        let t = TraceConfig::small_scale(3).generate();
        let doubled = scale(&t, 2.0);
        assert_eq!(doubled.num_slots(), t.num_slots());
        let ratio = doubled.total() as f64 / t.total() as f64;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
        let zeroed = scale(&t, 0.0);
        assert_eq!(zeroed.total(), 0);
    }

    #[test]
    fn clip_caps_cells() {
        let t = TraceConfig::small_scale(3).generate();
        let clipped = clip(&t, 5);
        for (_, _, _, v) in clipped.iter_nonzero() {
            assert!(v <= 5);
        }
    }

    #[test]
    fn spike_adds_exactly_extra() {
        let t = Trace::zeros(10, 1, 2);
        let spiked = inject_spike(&t, AppId(0), EdgeId(1), 2, 7, 23);
        assert_eq!(spiked.total(), 23);
        // Spread over 5 slots: 5,5,5,4,4.
        let per: Vec<u32> = (2..7)
            .map(|s| spiked.demand(s, AppId(0), EdgeId(1)))
            .collect();
        assert_eq!(per.iter().sum::<u32>(), 23);
        assert!(per.iter().all(|&v| v == 4 || v == 5));
        // Nothing outside the window.
        assert_eq!(spiked.demand(0, AppId(0), EdgeId(1)), 0);
        assert_eq!(spiked.demand(7, AppId(0), EdgeId(1)), 0);
    }

    #[test]
    fn spike_with_empty_window_is_identity() {
        let t = TraceConfig::small_scale(3).generate();
        let same = inject_spike(&t, AppId(0), EdgeId(0), 5, 5, 100);
        assert_eq!(same, t);
    }

    #[test]
    fn splice_concatenates() {
        let cfg = TraceConfig {
            num_slots: 4,
            ..TraceConfig::small_scale(1)
        };
        let a = cfg.generate();
        let b = TraceConfig {
            num_slots: 3,
            seed: 2,
            ..cfg
        }
        .generate();
        let s = splice(&a, &b);
        assert_eq!(s.num_slots(), 7);
        assert_eq!(s.total(), a.total() + b.total());
        assert_eq!(
            s.demand(5, AppId(0), EdgeId(0)),
            b.demand(1, AppId(0), EdgeId(0))
        );
    }

    #[test]
    #[should_panic(expected = "edge count mismatch")]
    fn splice_checks_shapes() {
        let a = Trace::zeros(1, 1, 2);
        let b = Trace::zeros(1, 1, 3);
        splice(&a, &b);
    }
}
