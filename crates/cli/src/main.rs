//! `birp` — command-line front end for the BIRP reproduction.
//!
//! ```text
//! birp run        [--scale small|large] [--slots N] [--seed S] [--scheduler birp|birp-off|oaei|max]
//!                 [--faults plan.json] [--resilience on|off] [--dense-simplex]
//!                 [--checkpoint run.ckpt] [--checkpoint-every N] [--out result.json]
//! birp resume     <run.ckpt> [--checkpoint-every N] [--out result.json]
//! birp chaos      [--slots N] [--seed S] [--kills N] [--out report.json]
//! birp compare    [--scale small|large] [--slots N] [--seed S] [--faults plan.json] [--resilience on|off]
//!                 [--dense-simplex]
//! birp resilience [--slots N] [--seed S] [--smoke] [--out result.json]
//! birp sweep      [--slots N] [--seed S]
//! birp table1     [--windows N] [--seed S]
//! birp fig2       [--reps N] [--seed S]
//! birp trace      [--scale small|large] [--slots N] [--seed S] [--csv|--json]
//! birp report     <run.jsonl>
//! birp profile    <run.jsonl> [--out-dir DIR]
//! birp bench-diff [--solver-bench out.txt] [--runner-json new.json] [--tolerance X]
//! birp conformance [--check] [--update-golden] [--oracle N] [--seed S]
//! ```
//!
//! `--faults` loads a serialized [`birp_sim::FaultPlan`] (outages,
//! degradations, link faults, flaky edges) into the executor; `--resilience
//! on` enables the failure detector / quarantine-and-reroute layer
//! (DESIGN.md §10). `birp resilience` runs the canned three-way
//! BIRP ± resilience experiment and optionally writes its JSON record.
//!
//! `--checkpoint` makes `birp run` crash-safe (DESIGN.md §12): the full run
//! state is written atomically every `--checkpoint-every` slots (default 10)
//! and on SIGTERM/SIGINT, and the checkpoint embeds the resolved invocation
//! so `birp resume <run.ckpt>` is self-contained — it rebuilds the catalog,
//! trace and scheduler from the stored spec and continues mid-trace with
//! bitwise-identical remaining output. `birp chaos` runs the in-process
//! failure-injection harness (scheduler panics, kill–resume cycles,
//! checkpoint corruption, torn writes, sink IO failures) and exits non-zero
//! if any leg breaks the crash-safety contract.
//!
//! Every command additionally accepts `--telemetry <path.jsonl>` to capture
//! a structured event stream (solver search, MAB tuning, per-slot runner
//! records) and `--log-level trace|debug|info|warn|error` to set the event
//! threshold (default `debug`). `birp report` renders a captured stream as
//! per-event counts plus the end-of-run counter/histogram table;
//! `birp profile` renders the same capture's causal spans as a Chrome
//! trace-event file and a collapsed-stack (flamegraph) file plus the
//! per-slot decision provenance table; `birp bench-diff` is the automated
//! perf-regression gate against the committed `BENCH_*.json` baselines.
//!
//! Naming note: `birp trace` dumps a synthetic *workload* trace (demand per
//! slot). Telemetry captures — execution traces — are produced by
//! `--telemetry` and consumed by `report`/`profile`.
//!
//! Argument parsing is hand-rolled over `std::env::args` — the workspace
//! deliberately keeps its dependency set to the paper-relevant crates
//! (DESIGN.md, dependency section).

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

use birp_telemetry as telemetry;

use birp_core::experiments::{
    chaos_experiment, compare_schedulers, epsilon_sweep, fig2_experiment, resilience_experiment,
    table1_experiment, ChaosConfig, ComparisonConfig, ResilienceConfig, SchedulerKind, SweepConfig,
};
use birp_core::{
    checkpoint, run_scheduler, run_scheduler_resumable, CheckpointPolicy, HealthConfig, RunConfig,
    RunOutcome, RunResult, ShardConfig, TemporalReuse,
};
use birp_mab::MabConfig;
use birp_models::Catalog;
use birp_solver::simplex::SimplexMode;
use birp_solver::SolverConfig;
use birp_workload::{io as trace_io, TraceConfig, TraceStats};
use serde::{Deserialize, Serialize, Value};

/// Cooperative shutdown flag raised by SIGTERM/SIGINT when checkpointing is
/// active — the runner observes it at the next slot boundary, saves, and
/// stops cleanly.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Route SIGTERM and SIGINT to the shutdown flag. Installed only when a
/// checkpoint path is in play — plain runs keep the default fatal behaviour.
fn install_signal_handlers() {
    // libc's `signal` is already linked via std; declaring it directly keeps
    // the workspace's no-new-dependencies rule intact.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
    }
}

/// The resolved `birp run` invocation, embedded verbatim in every checkpoint
/// so `birp resume` can rebuild catalog, trace and scheduler without the
/// original command line.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RunSpec {
    scale: String,
    seed: u64,
    slots: usize,
    scheduler: String,
    resilience: bool,
    no_reuse: bool,
    dense_simplex: bool,
    /// `--shards N` (0 = sharding off). Resolved to a cluster size at build
    /// time from the catalog's edge count.
    #[serde(default)]
    shards: usize,
    /// `--cluster-size N` (0 = derive from `shards`). Takes precedence over
    /// `shards` when both are given.
    #[serde(default)]
    cluster_size: usize,
    /// The serialized [`birp_sim::FaultPlan`] (inlined: the plan file may
    /// not exist anymore at resume time).
    faults: Value,
}

struct Args {
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    fn parse(raw: &[String]) -> Args {
        let mut flags = HashMap::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let a = &raw[i];
            if let Some(name) = a.strip_prefix("--") {
                if i + 1 < raw.len() && !raw[i + 1].starts_with("--") {
                    flags.insert(name.to_string(), raw[i + 1].clone());
                    i += 2;
                } else {
                    switches.push(name.to_string());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        Args { flags, switches }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "birp — batch-aware inference workload redistribution (ICPP 2023 reproduction)

USAGE:
    birp run        [--scale small|large] [--slots N] [--seed S] [--scheduler birp|birp-off|oaei|max]
                    [--shards N | --cluster-size N]
                    [--checkpoint run.ckpt] [--checkpoint-every N] [--out result.json]
    birp resume     <run.ckpt> [--checkpoint-every N] [--out result.json]
    birp chaos      [--slots N] [--seed S] [--kills N] [--out report.json]
    birp compare    [--scale small|large] [--slots N] [--seed S]
    birp resilience [--slots N] [--seed S] [--smoke] [--out result.json]
    birp sweep      [--slots N] [--seed S]
    birp table1     [--windows N] [--seed S]
    birp fig2       [--reps N] [--seed S]
    birp trace      [--scale small|large] [--slots N] [--seed S] [--csv] [--json]
                    (dumps the synthetic *workload* trace; for telemetry/execution
                    traces see --telemetry with `report` / `profile` below)
    birp report     <run.jsonl>
    birp profile    <run.jsonl> [--out-dir DIR]
    birp bench-diff [--solver-bench out.txt] [--runner-json new.json] [--tolerance X]
    birp conformance [--check] [--update-golden] [--oracle N] [--seed S]

CONFORMANCE:
    --check          diff golden-trace replays bitwise against tests/golden/ (default; exit 1 on drift)
    --update-golden  regenerate the committed snapshots from the current implementation
    --oracle N       differentially check N random tiny instances against the brute-force oracle

ROBUSTNESS (run / compare):
    --faults <plan.json>       inject a serialized FaultPlan into the executor
    --resilience on|off        failure detector + quarantine-and-reroute (default: off)
    --no-reuse                 disable cross-slot temporal reuse (warm-start install,
                               schedule cache, and the incremental delta path — every
                               slot rebuilds its model from scratch) in the MILP
                               schedulers
    --dense-simplex            force the dense tableau simplex core instead of the
                               sparse revised core (A/B validation and triage)

SHARDING (run):
    --shards N                 decompose each slot MILP into N contiguous edge
                               clusters solved concurrently under Lagrangian
                               coupling prices (DESIGN.md §14); 0 (default)
                               keeps the monolithic solve
    --cluster-size N           set the cluster size directly instead of the
                               cluster count (takes precedence over --shards);
                               emits shard.iterations / shard.duality_gap
                               telemetry per slot

DURABILITY (run / resume):
    --checkpoint <run.ckpt>    write the full run state atomically every
                               --checkpoint-every slots (default 10) and on
                               SIGTERM/SIGINT; the file embeds the invocation,
                               so `birp resume <run.ckpt>` continues mid-trace
                               with bitwise-identical remaining output
    birp chaos                 in-process failure-injection harness: scheduler
                               panics, kill-resume cycles, corrupted checkpoints,
                               torn writes, telemetry sink IO failures; exits
                               non-zero if any leg breaks the contract

OBSERVABILITY (any command):
    --telemetry <path.jsonl>   capture structured events to a JSON Lines file
                               (opens with a telemetry.meta attribution header)
    --log-level <level>        trace|debug|info|warn|error (default: debug;
                               `trace` adds per-wave/per-node solver spans)

PROFILE:
    birp profile <run.jsonl> [--out-dir DIR]
        renders a --telemetry capture as <stem>.chrome.json (chrome://tracing,
        Perfetto) and <stem>.folded.txt (flamegraph.pl / speedscope), and
        prints the capture header plus the per-slot decision provenance table

BENCH-DIFF (perf-regression gate):
    --solver-bench <out.txt>   captured `cargo bench -p birp-bench --bench
                               solver_micro` output, diffed vs BENCH_solver.json
    --runner-json <new.json>   regenerated runner_decide record (use
                               BIRP_BENCH_RUNNER_OUT), diffed vs BENCH_runner.json
    --baseline-solver <path>   committed solver baseline (default BENCH_solver.json)
    --baseline-runner <path>   committed runner baseline (default BENCH_runner.json)
    --tolerance <X>            fail when measured > baseline * X (default 2.0)
"
    );
    ExitCode::from(2)
}

fn catalog_for(scale: &str, seed: u64) -> Catalog {
    match scale {
        "large" => Catalog::large_scale(seed),
        _ => Catalog::small_scale(seed),
    }
}

fn trace_cfg_for(scale: &str, seed: u64, slots: usize) -> TraceConfig {
    let base = match scale {
        "large" => TraceConfig::large_scale(seed),
        _ => TraceConfig::small_scale(seed),
    };
    TraceConfig {
        num_slots: slots,
        ..base
    }
}

/// Apply `--faults <plan.json>`, `--resilience on|off` and `--no-reuse` to a
/// run config.
fn apply_robustness(args: &Args, run: &mut RunConfig) -> Result<(), ExitCode> {
    if args.has("no-reuse") {
        run.reuse = TemporalReuse::disabled();
    }
    if let Some(path) = args.get("faults") {
        let text = std::fs::read_to_string(path).map_err(|e| {
            eprintln!("cannot read fault plan {path}: {e}");
            ExitCode::from(1)
        })?;
        run.sim.faults = serde_json::from_str(&text).map_err(|e| {
            eprintln!("cannot parse fault plan {path}: {e}");
            ExitCode::from(1)
        })?;
    }
    match args.get("resilience") {
        Some("on") => run.resilience = Some(HealthConfig::default()),
        Some("off") | None => {}
        Some(other) => {
            eprintln!("--resilience takes on|off, got '{other}'");
            return Err(ExitCode::from(2));
        }
    }
    Ok(())
}

fn parse_kind(name: &str) -> Option<SchedulerKind> {
    match name {
        "birp" => Some(SchedulerKind::Birp),
        "birp-off" => Some(SchedulerKind::BirpOff),
        "oaei" => Some(SchedulerKind::Oaei),
        "max" => Some(SchedulerKind::Max),
        _ => None,
    }
}

fn solver_for(scale: &str, dense_simplex: bool) -> SolverConfig {
    let mut solver = if scale == "large" {
        SolverConfig {
            node_limit: 16,
            ..SolverConfig::scheduling()
        }
    } else {
        SolverConfig::scheduling()
    };
    if dense_simplex {
        solver.simplex.mode = SimplexMode::Dense;
    }
    solver
}

/// Resolve `--shards` / `--cluster-size` to a [`ShardConfig`]. An explicit
/// cluster size wins; otherwise `shards > 0` derives one that splits the
/// fleet into that many near-equal contiguous clusters. Both zero (the
/// default) leaves the monolithic decide path untouched.
fn shard_config_for(shards: usize, cluster_size: usize, num_edges: usize) -> Option<ShardConfig> {
    let size = if cluster_size > 0 {
        cluster_size
    } else if shards > 0 {
        num_edges.div_ceil(shards)
    } else {
        return None;
    };
    Some(ShardConfig::new(size))
}

fn print_run_result(result: &RunResult) {
    let m = &result.metrics;
    println!("scheduler      {}", result.scheduler);
    println!("slots          {}", result.slots);
    println!("offered        {}", result.offered);
    println!("served         {}", m.served);
    println!("dropped        {}", m.dropped);
    println!("total loss     {:.2}", m.total_loss);
    println!(
        "SLO failures   {} ({:.2}%)",
        m.slo_failures, m.failure_rate_pct
    );
    println!("median compl.  {:.3}", m.cdf.quantile(0.5));
    println!("p95 compl.     {:.3}", m.cdf.quantile(0.95));
    if let Some(h) = &result.health {
        println!("quarantines    {}", h.events.len());
        println!("rerouted       {}", h.rerouted);
        println!("probes         {}", h.probes);
    }
    if let Some(t) = &result.telemetry {
        if t.panic_isolated > 0 {
            println!("panics isolated {}", t.panic_isolated);
        }
    }
}

/// Print / persist a finished-or-interrupted resumable run. `--out` writes
/// the full `RunResult` JSON of a completed run.
fn finish_resumable(
    args: &Args,
    ckpt_path: &std::path::Path,
    outcome: Result<RunOutcome, checkpoint::ResumeError>,
) -> ExitCode {
    match outcome {
        Ok(RunOutcome::Complete(result)) => {
            print_run_result(&result);
            if let Some(out) = args.get("out") {
                let json = serde_json::to_string_pretty(&*result).expect("serializable");
                if let Err(e) = std::fs::write(out, json) {
                    eprintln!("cannot write {out}: {e}");
                    return ExitCode::from(1);
                }
                println!("wrote {out}");
            }
            ExitCode::SUCCESS
        }
        Ok(RunOutcome::Interrupted { next_slot }) => {
            eprintln!(
                "interrupted before slot {next_slot}; checkpoint saved to {} — \
                 continue with `birp resume {}`",
                ckpt_path.display(),
                ckpt_path.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(1)
        }
    }
}

fn cmd_run(args: &Args) -> ExitCode {
    let scale = args.get("scale").unwrap_or("small").to_string();
    let seed = args.num("seed", 42u64);
    let slots = args.num("slots", 48usize);
    let catalog = catalog_for(&scale, seed);
    let trace = trace_cfg_for(&scale, seed, slots).generate();
    let scheduler_name = args.get("scheduler").unwrap_or("birp").to_string();
    let Some(kind) = parse_kind(&scheduler_name) else {
        eprintln!("unknown scheduler '{scheduler_name}'");
        return ExitCode::from(2);
    };
    let solver = solver_for(&scale, args.has("dense-simplex"));
    let mut run_cfg = RunConfig::default();
    if let Err(code) = apply_robustness(args, &mut run_cfg) {
        return code;
    }
    let shards = args.num("shards", 0usize);
    let cluster_size = args.num("cluster-size", 0usize);
    let mut scheduler = kind.build_sharded(
        &catalog,
        MabConfig::paper_preset(),
        seed,
        &solver,
        &run_cfg.reuse,
        shard_config_for(shards, cluster_size, catalog.num_edges()),
    );

    let Some(ckpt_path) = args.get("checkpoint").map(PathBuf::from) else {
        // No durability requested: the plain, non-resumable path.
        let result = run_scheduler(&catalog, &trace, scheduler.as_mut(), &run_cfg);
        print_run_result(&result);
        if let Some(out) = args.get("out") {
            let json = serde_json::to_string_pretty(&result).expect("serializable");
            if let Err(e) = std::fs::write(out, json) {
                eprintln!("cannot write {out}: {e}");
                return ExitCode::from(1);
            }
            println!("wrote {out}");
        }
        return ExitCode::SUCCESS;
    };

    let spec = RunSpec {
        scale,
        seed,
        slots,
        scheduler: scheduler_name,
        resilience: run_cfg.resilience.is_some(),
        no_reuse: args.has("no-reuse"),
        dense_simplex: args.has("dense-simplex"),
        shards,
        cluster_size,
        faults: Serialize::to_value(&run_cfg.sim.faults),
    };
    let policy = CheckpointPolicy {
        path: ckpt_path.clone(),
        every: args.num("checkpoint-every", 10usize),
        spec: Serialize::to_value(&spec),
    };
    install_signal_handlers();
    let outcome = run_scheduler_resumable(
        &catalog,
        &trace,
        scheduler.as_mut(),
        &run_cfg,
        Some(&policy),
        None,
        Some(&SHUTDOWN),
    );
    finish_resumable(args, &ckpt_path, outcome)
}

fn cmd_resume(args: &Args, rest: &[String]) -> ExitCode {
    // First positional operand (skipping --flag value pairs).
    let mut path: Option<&str> = None;
    let mut i = 0;
    while i < rest.len() {
        if rest[i].starts_with("--") {
            i += 2;
        } else {
            path = Some(&rest[i]);
            break;
        }
    }
    let Some(path) = path else {
        eprintln!("usage: birp resume <run.ckpt> [--checkpoint-every N] [--out result.json]");
        return ExitCode::from(2);
    };
    let ckpt_path = PathBuf::from(path);
    let ck = match checkpoint::load(&ckpt_path) {
        Ok(ck) => ck,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(1);
        }
    };
    let spec = match RunSpec::from_value(&ck.spec) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "{path}: checkpoint has no usable run spec ({}) — was it written by `birp run --checkpoint`?",
                e.0
            );
            return ExitCode::from(1);
        }
    };
    let Some(kind) = parse_kind(&spec.scheduler) else {
        eprintln!("{path}: spec names unknown scheduler '{}'", spec.scheduler);
        return ExitCode::from(1);
    };
    let catalog = catalog_for(&spec.scale, spec.seed);
    let trace = trace_cfg_for(&spec.scale, spec.seed, spec.slots).generate();
    let mut run_cfg = RunConfig::default();
    if spec.no_reuse {
        run_cfg.reuse = TemporalReuse::disabled();
    }
    if spec.resilience {
        run_cfg.resilience = Some(HealthConfig::default());
    }
    match Deserialize::from_value(&spec.faults) {
        Ok(plan) => run_cfg.sim.faults = plan,
        Err(e) => {
            eprintln!("{path}: spec carries an unreadable fault plan: {}", e.0);
            return ExitCode::from(1);
        }
    }
    let solver = solver_for(&spec.scale, spec.dense_simplex);
    let mut scheduler = kind.build_sharded(
        &catalog,
        MabConfig::paper_preset(),
        spec.seed,
        &solver,
        &run_cfg.reuse,
        shard_config_for(spec.shards, spec.cluster_size, catalog.num_edges()),
    );
    println!(
        "resuming {} ({} scale, seed {}) at slot {}/{}",
        spec.scheduler, spec.scale, spec.seed, ck.runner.next_slot, spec.slots
    );
    // Keep checkpointing to the same file so the resumed run is itself
    // crash-safe.
    let policy = CheckpointPolicy {
        path: ckpt_path.clone(),
        every: args.num("checkpoint-every", 10usize),
        spec: ck.spec.clone(),
    };
    install_signal_handlers();
    let outcome = run_scheduler_resumable(
        &catalog,
        &trace,
        scheduler.as_mut(),
        &run_cfg,
        Some(&policy),
        Some(ck.runner),
        Some(&SHUTDOWN),
    );
    finish_resumable(args, &ckpt_path, outcome)
}

fn cmd_chaos(args: &Args) -> ExitCode {
    let seed = args.num("seed", 42u64);
    let mut cfg = ChaosConfig::quick(seed);
    cfg.slots = args.num("slots", cfg.slots);
    cfg.kills = args.num("kills", cfg.kills);
    let report = chaos_experiment(&cfg);
    let width = report
        .legs
        .iter()
        .map(|l| l.name.len())
        .max()
        .unwrap_or(0)
        .max("leg".len());
    println!("{:<width$}  {:<6}  detail", "leg", "result");
    for leg in &report.legs {
        println!(
            "{:<width$}  {:<6}  {}",
            leg.name,
            if leg.passed { "ok" } else { "FAILED" },
            leg.detail
        );
    }
    if let Some(out) = args.get("out") {
        let json = serde_json::to_string_pretty(&report).expect("serializable");
        if let Err(e) = std::fs::write(out, json) {
            eprintln!("cannot write {out}: {e}");
            return ExitCode::from(1);
        }
        println!("wrote {out}");
    }
    if report.all_passed() {
        println!("\nchaos harness: every leg held");
        ExitCode::SUCCESS
    } else {
        eprintln!("\nchaos harness: crash-safety contract BROKEN (see FAILED legs)");
        ExitCode::from(1)
    }
}

fn cmd_compare(args: &Args) -> ExitCode {
    let scale = args.get("scale").unwrap_or("small").to_string();
    let seed = args.num("seed", 42u64);
    let slots = args.num("slots", 48usize);
    let mut cfg = match scale.as_str() {
        "large" => ComparisonConfig::large_scale(seed, slots),
        _ => ComparisonConfig::small_scale(seed, slots),
    };
    if let Err(code) = apply_robustness(args, &mut cfg.run) {
        return code;
    }
    if args.has("dense-simplex") {
        cfg.solver.simplex.mode = SimplexMode::Dense;
    }
    let results = compare_schedulers(&cfg);
    println!(
        "{:<10} {:>12} {:>8} {:>9} {:>9}",
        "scheduler", "total loss", "p%", "served", "dropped"
    );
    for r in &results {
        let m = &r.run.metrics;
        println!(
            "{:<10} {:>12.1} {:>7.2}% {:>9} {:>9}",
            r.run.scheduler, m.total_loss, m.failure_rate_pct, m.served, m.dropped
        );
    }
    ExitCode::SUCCESS
}

fn cmd_resilience(args: &Args) -> ExitCode {
    let seed = args.num("seed", 42u64);
    let cfg = if args.has("smoke") {
        ResilienceConfig::smoke(seed)
    } else {
        let slots = args.num("slots", 48usize);
        ResilienceConfig::with_horizon(seed, slots)
    };
    let r = resilience_experiment(&cfg);
    println!(
        "{:<32} {:>10} {:>11} {:>8} {:>8} {:>8}",
        "variant", "in-window", "out-window", "dropped", "rerouted", "probes"
    );
    for s in [&r.blind, &r.resilient, &r.fault_free] {
        println!(
            "{:<32} {:>10} {:>11} {:>8} {:>8} {:>8}",
            s.label,
            s.slo_failures_in_window,
            s.slo_failures_out_window,
            s.dropped,
            s.rerouted,
            s.probes
        );
    }
    println!(
        "\ndetection latency  {} slot(s)",
        r.detection_latency_slots
            .map_or("never".to_string(), |l| l.to_string())
    );
    println!("false positives    {}", r.false_positive_quarantines);
    if let Some(out) = args.get("out") {
        let json = serde_json::to_string_pretty(&r).expect("serializable");
        if let Err(e) = std::fs::write(out, json) {
            eprintln!("cannot write {out}: {e}");
            return ExitCode::from(1);
        }
        println!("wrote {out}");
    }
    ExitCode::SUCCESS
}

fn cmd_sweep(args: &Args) -> ExitCode {
    let seed = args.num("seed", 42u64);
    let slots = args.num("slots", 48usize);
    let cfg = SweepConfig::quick(seed, slots);
    let result = epsilon_sweep(&cfg);
    println!(
        "{:>6} {:>6} {:>12} {:>8}",
        "eps1", "eps2", "dLoss(end)", "p%(end)"
    );
    for p in &result.points {
        let d = p.delta_loss.last().map_or(f64::NAN, |&(_, v)| v);
        let f = p.failure_pct.last().map_or(f64::NAN, |&(_, v)| v);
        println!("{:>6.2} {:>6.2} {:>12.2} {:>8.2}", p.eps1, p.eps2, d, f);
    }
    ExitCode::SUCCESS
}

fn cmd_table1(args: &Args) -> ExitCode {
    let seed = args.num("seed", 3u64);
    let windows = args.num("windows", 300usize);
    println!(
        "{:<10} {:<12} {:>7} {:>7} {:>9} {:>8}",
        "model", "device", "cpu%", "gpu%", "npucore%", "fps"
    );
    for r in table1_experiment(seed, windows) {
        println!(
            "{:<10} {:<12} {:>7.1} {:>7.1} {:>9.1} {:>8.1}",
            r.model,
            r.device,
            r.measured.cpu_pct,
            r.measured.gpu_pct,
            r.measured.npu_core_pct,
            r.measured.avg_fps
        );
    }
    ExitCode::SUCCESS
}

fn cmd_fig2(args: &Args) -> ExitCode {
    let seed = args.num("seed", 11u64);
    let reps = args.num("reps", 5usize);
    for r in fig2_experiment(seed, 16, reps) {
        println!(
            "{:<10} TIR = b^{:.2} (b <= {}), {:.2} beyond   [truth b^{:.2}, {}]",
            r.model, r.fit.params.eta, r.fit.params.beta, r.fit.params.c, r.truth.eta, r.truth.beta
        );
    }
    ExitCode::SUCCESS
}

fn cmd_trace(args: &Args) -> ExitCode {
    let scale = args.get("scale").unwrap_or("small").to_string();
    let seed = args.num("seed", 42u64);
    let slots = args.num("slots", 96usize);
    let trace = trace_cfg_for(&scale, seed, slots).generate();
    if args.has("csv") {
        print!("{}", trace_io::to_csv(&trace));
    } else if args.has("json") {
        println!("{}", trace_io::to_json(&trace).expect("serializable"));
    } else {
        let s = TraceStats::compute(&trace);
        println!("slots          {}", trace.num_slots());
        println!(
            "apps x edges   {} x {}",
            trace.num_apps(),
            trace.num_edges()
        );
        println!("total requests {}", s.total_requests);
        println!("peak/mean      {:.2}", s.peak_to_mean);
        println!("edge imbalance {:.2}", s.edge_imbalance);
        println!("edge gini      {:.3}", s.edge_gini);
        println!("(use --csv or --json to dump the full trace)");
    }
    ExitCode::SUCCESS
}

fn cmd_report(rest: &[String]) -> ExitCode {
    // First positional operand (skipping --flag value pairs).
    let mut path: Option<&str> = None;
    let mut i = 0;
    while i < rest.len() {
        if rest[i].starts_with("--") {
            i += 2;
        } else {
            path = Some(&rest[i]);
            break;
        }
    }
    let Some(path) = path else {
        eprintln!("usage: birp report <run.jsonl>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(1);
        }
    };
    let mut counts: std::collections::BTreeMap<String, u64> = Default::default();
    let mut summary: Option<telemetry::TelemetrySummary> = None;
    let mut meta: Option<serde_json::Value> = None;
    let (mut records, mut unparsable) = (0u64, 0u64);
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(v) = serde_json::from_str::<serde_json::Value>(line) else {
            unparsable += 1;
            continue;
        };
        records += 1;
        let name = v
            .get("name")
            .and_then(|n| n.as_str())
            .unwrap_or("<unnamed>")
            .to_string();
        // The final shutdown record carries the whole counter/histogram
        // snapshot; the last one wins if several runs appended.
        if name == "telemetry.summary" {
            if let Some(s) = v.get("summary") {
                summary = serde_json::from_value(s).ok();
            }
        }
        if name == "telemetry.meta" {
            meta = Some(v.clone());
        }
        *counts.entry(name).or_insert(0) += 1;
    }
    println!("{records} event records ({unparsable} unparsable lines)");
    if let Some(meta) = &meta {
        println!("\ncapture header:");
        print!("{}", telemetry::profile::render_meta(meta));
    }
    if !counts.is_empty() {
        let width = counts
            .keys()
            .map(|n| n.len())
            .max()
            .unwrap_or(0)
            .max("event".len());
        println!("\n{:<width$}  {:>8}", "event", "count");
        for (name, n) in &counts {
            println!("{name:<width$}  {n:>8}");
        }
    }
    match &summary {
        Some(s) => {
            println!();
            print!("{}", telemetry::render_summary(s));
        }
        None => {
            println!("\n(no telemetry.summary record — the run may not have shut down cleanly)")
        }
    }
    ExitCode::SUCCESS
}

fn cmd_profile(args: &Args, rest: &[String]) -> ExitCode {
    use telemetry::profile;

    // First positional operand (skipping --flag value pairs).
    let mut path: Option<&str> = None;
    let mut i = 0;
    while i < rest.len() {
        if rest[i].starts_with("--") {
            i += 2;
        } else {
            path = Some(&rest[i]);
            break;
        }
    }
    let Some(path) = path else {
        eprintln!("usage: birp profile <run.jsonl> [--out-dir DIR]");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(1);
        }
    };
    let cap = profile::parse_capture(&text);

    if let Some(meta) = &cap.meta {
        println!("capture header:");
        print!("{}", profile::render_meta(meta));
        println!();
    }
    println!(
        "{} span record(s), max depth {}, {} provenance record(s), {} malformed line(s)",
        cap.spans.len(),
        profile::max_depth(&cap.spans),
        cap.provenance.len(),
        cap.malformed
    );
    if cap.spans.is_empty() {
        println!(
            "(no spans — capture at --log-level trace for per-wave/per-node \
             solver spans; decide/solve-level spans record at any level)"
        );
    }

    let input = std::path::Path::new(path);
    let stem = input
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "capture".to_string());
    let out_dir = args
        .get("out-dir")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            input
                .parent()
                .unwrap_or(std::path::Path::new("."))
                .to_path_buf()
        });
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::from(1);
    }
    for (suffix, contents) in [
        (".chrome.json", profile::chrome_trace(&cap.spans)),
        (".folded.txt", profile::collapsed_stacks(&cap.spans)),
    ] {
        let out = out_dir.join(format!("{stem}{suffix}"));
        if let Err(e) = std::fs::write(&out, contents) {
            eprintln!("cannot write {}: {e}", out.display());
            return ExitCode::from(1);
        }
        println!("wrote {}", out.display());
    }

    if !cap.provenance.is_empty() {
        println!("\nper-slot decision provenance:");
        print!("{}", profile::provenance_table(&cap.provenance));
    }
    ExitCode::SUCCESS
}

fn cmd_bench_diff(args: &Args) -> ExitCode {
    use birp_bench::diff;

    let tolerance = args.num("tolerance", 2.0f64);
    if tolerance <= 0.0 {
        eprintln!("--tolerance must be positive");
        return ExitCode::from(2);
    }
    let solver_bench = args.get("solver-bench");
    let runner_json = args.get("runner-json");
    if solver_bench.is_none() && runner_json.is_none() {
        eprintln!(
            "bench-diff needs a fresh measurement: --solver-bench <criterion-out.txt> \
             and/or --runner-json <regenerated BENCH_runner.json>"
        );
        return ExitCode::from(2);
    }

    let read = |path: &str| -> Result<String, ExitCode> {
        std::fs::read_to_string(path).map_err(|e| {
            eprintln!("cannot read {path}: {e}");
            ExitCode::from(1)
        })
    };

    let mut failed = false;
    if let Some(bench_out) = solver_bench {
        let baseline_path = args.get("baseline-solver").unwrap_or("BENCH_solver.json");
        let (bench_text, baseline_text) = match (read(bench_out), read(baseline_path)) {
            (Ok(b), Ok(base)) => (b, base),
            (Err(c), _) | (_, Err(c)) => return c,
        };
        let baseline = match diff::parse_solver_baseline(&baseline_text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{baseline_path}: {e}");
                return ExitCode::from(1);
            }
        };
        let measured = diff::parse_criterion_output(&bench_text);
        if measured.is_empty() {
            eprintln!("{bench_out}: no `bench <name> <ns> ns/iter` lines found");
            return ExitCode::from(1);
        }
        let report = diff::compare(&baseline, &measured, tolerance);
        println!("solver_micro vs {baseline_path} (tolerance {tolerance}x):");
        print!("{}", report.render());
        failed |= report.failed();
    }
    if let Some(fresh) = runner_json {
        let baseline_path = args.get("baseline-runner").unwrap_or("BENCH_runner.json");
        let (fresh_text, baseline_text) = match (read(fresh), read(baseline_path)) {
            (Ok(f), Ok(base)) => (f, base),
            (Err(c), _) | (_, Err(c)) => return c,
        };
        let report = match (
            diff::parse_runner_record(&baseline_text),
            diff::parse_runner_record(&fresh_text),
        ) {
            (Ok(base), Ok(meas)) => diff::compare(&base, &meas, tolerance),
            (Err(e), _) => {
                eprintln!("{baseline_path}: {e}");
                return ExitCode::from(1);
            }
            (_, Err(e)) => {
                eprintln!("{fresh}: {e}");
                return ExitCode::from(1);
            }
        };
        println!("\nrunner_decide vs {baseline_path} (tolerance {tolerance}x):");
        print!("{}", report.render());
        failed |= report.failed();
        // Absolute bounds the fresh record carries for itself (checkpoint
        // overhead ≤ 3%) — near-zero percentages would make a baseline
        // ratio meaningless, so they gate on the measurement alone.
        match diff::runner_acceptance_failures(&fresh_text) {
            Ok(violations) => {
                for v in &violations {
                    println!("{v}  ABSOLUTE BOUND FAILED");
                }
                failed |= !violations.is_empty();
            }
            Err(e) => {
                eprintln!("{fresh}: {e}");
                return ExitCode::from(1);
            }
        }
    }
    if failed {
        eprintln!("\nperf regression gate FAILED (see REGRESSED rows above)");
        ExitCode::from(1)
    } else {
        println!("\nperf regression gate passed");
        ExitCode::SUCCESS
    }
}

fn cmd_conformance(args: &Args) -> ExitCode {
    use birp_conformance::golden::{check_all, update_all, GoldenStatus};

    if args.has("update-golden") {
        return match update_all() {
            Ok(paths) => {
                for p in &paths {
                    println!("wrote {}", p.display());
                }
                println!(
                    "{} snapshot(s) regenerated — review and commit the diff",
                    paths.len()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cannot write golden snapshots: {e}");
                ExitCode::from(1)
            }
        };
    }

    // Optional differential smoke against the brute-force oracle.
    if let Some(n) = args.get("oracle") {
        let n: usize = match n.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("--oracle takes a case count, got '{n}'");
                return ExitCode::from(2);
            }
        };
        let seed = args.num("seed", 42u64);
        let mut rng = proptest::TestRng::from_name(&format!("birp-conformance-cli-{seed}"));
        let cfg = SolverConfig {
            node_limit: 50_000,
            rel_gap: 1e-9,
            ..SolverConfig::default()
        };
        for case in 0..n {
            let inst = birp_conformance::sample_tiny_instance(&mut rng);
            let oracle = birp_conformance::oracle_report(&inst);
            let stats = match inst.problem().solve(&cfg) {
                Ok((_, stats)) => stats,
                Err(e) => {
                    eprintln!("case {case}: solver error {e:?}");
                    return ExitCode::from(1);
                }
            };
            let tol = 1e-6 * (1.0 + oracle.objective.abs());
            if (stats.objective - oracle.objective).abs() > tol {
                eprintln!(
                    "case {case}: MISMATCH solver {} vs oracle {}",
                    stats.objective, oracle.objective
                );
                return ExitCode::from(1);
            }
        }
        println!("oracle differential: {n} tiny instance(s) matched");
    }

    // Default action: bitwise golden check.
    let mut drifted = false;
    for (sc, status) in check_all() {
        match status {
            GoldenStatus::Match => println!("{:<20} match", sc.name),
            GoldenStatus::Missing => {
                println!("{:<20} MISSING (run with --update-golden)", sc.name);
                drifted = true;
            }
            GoldenStatus::Drift { first_diff_line } => {
                println!("{:<20} DRIFT at line {first_diff_line}", sc.name);
                drifted = true;
            }
        }
    }
    if drifted {
        eprintln!(
            "golden drift — if intentional, regenerate with `birp conformance --update-golden`"
        );
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first().cloned() else {
        return usage();
    };
    let args = Args::parse(&raw[1..]);
    if let Some(path) = args.get("telemetry") {
        let level = args
            .get("log-level")
            .and_then(telemetry::Level::parse)
            .unwrap_or(telemetry::Level::Debug);
        // Stamp the capture with its invocation so the file is
        // self-describing (`birp report`/`profile` print this header).
        let meta = telemetry::RunMeta {
            command: format!("birp {}", raw.join(" ")),
            config_fingerprint: telemetry::fingerprint_args(&raw),
        };
        if let Err(e) = telemetry::init_jsonl_with_meta(path, level, meta) {
            eprintln!("cannot open telemetry sink {path}: {e}");
            return ExitCode::from(1);
        }
    }
    let code = match cmd.as_str() {
        "run" => cmd_run(&args),
        "resume" => cmd_resume(&args, &raw[1..]),
        "chaos" => cmd_chaos(&args),
        "compare" => cmd_compare(&args),
        "resilience" => cmd_resilience(&args),
        "sweep" => cmd_sweep(&args),
        "table1" => cmd_table1(&args),
        "fig2" => cmd_fig2(&args),
        "trace" => cmd_trace(&args),
        "report" => cmd_report(&raw[1..]),
        "profile" => cmd_profile(&args, &raw[1..]),
        "bench-diff" => cmd_bench_diff(&args),
        "conformance" => cmd_conformance(&args),
        _ => usage(),
    };
    // Flush + append the telemetry.summary record (no-op when disabled).
    telemetry::shutdown();
    code
}
