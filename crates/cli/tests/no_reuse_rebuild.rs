//! `--no-reuse` must disable the whole temporal reuse stack — including the
//! incremental delta path (DESIGN.md §13). The contract is observable in
//! the telemetry capture: every slot's `birp.delta` provenance record shows
//! `path=rebuild reason=disabled` under `--no-reuse`, while a default run
//! over the same trace refreshes the persistent model (`path=delta`) on
//! every slot after the first.

use std::process::{Command, Stdio};

use serde_json::Value;

/// Run `birp run` with a telemetry capture and return the parsed
/// `birp.delta` records in slot order.
fn delta_records(tag: &str, extra: &[&str]) -> Vec<Value> {
    let bin = env!("CARGO_BIN_EXE_birp");
    let dir = std::env::temp_dir().join(format!("birp-noreuse-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let jsonl = dir.join("run.jsonl");
    let status = Command::new(bin)
        .args(["run", "--slots", "6", "--scheduler", "birp", "--seed", "11"])
        .args(["--telemetry", jsonl.to_str().unwrap()])
        .args(extra)
        .stdout(Stdio::null())
        .status()
        .unwrap();
    assert!(status.success(), "birp run failed ({tag})");
    let text = std::fs::read_to_string(&jsonl).unwrap();
    let records: Vec<Value> = text
        .lines()
        .filter_map(|l| serde_json::from_str::<Value>(l).ok())
        .filter(|v| v.get("name").and_then(Value::as_str) == Some("birp.delta"))
        .collect();
    let _ = std::fs::remove_dir_all(&dir);
    records
}

fn field<'a>(r: &'a Value, key: &str) -> &'a str {
    r.get(key)
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("birp.delta record missing `{key}`: {r:?}"))
}

#[test]
fn no_reuse_rebuilds_every_slot_and_default_takes_the_delta_path() {
    // --no-reuse: one provenance record per slot, all full rebuilds, all
    // attributed to the disabled reuse layer.
    let disabled = delta_records("off", &["--no-reuse"]);
    assert_eq!(disabled.len(), 6, "one birp.delta record per slot");
    for r in &disabled {
        assert_eq!(field(r, "path"), "rebuild", "record: {r:?}");
        assert_eq!(field(r, "reason"), "disabled", "record: {r:?}");
    }

    // Default run: slot 0 is a first build, and the persistent model must
    // actually absorb at least one later slot as deltas.
    let default = delta_records("on", &[]);
    assert_eq!(default.len(), 6, "one birp.delta record per slot");
    assert_eq!(field(&default[0], "path"), "rebuild");
    assert_eq!(field(&default[0], "reason"), "first_build");
    let deltas = default
        .iter()
        .filter(|r| field(r, "path") == "delta")
        .count();
    assert!(
        deltas >= 1,
        "default run never took the delta path: {default:?}"
    );
}
