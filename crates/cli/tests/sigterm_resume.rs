//! Process-level crash-safety: a real `birp run --checkpoint` process is
//! SIGTERMed mid-run, must exit gracefully with a valid checkpoint on disk,
//! and `birp resume` must produce a result file identical to the
//! uninterrupted run's (DESIGN.md §12 — the subprocess counterpart of the
//! in-process kill–resume proptests in birp-core).

use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

#[test]
fn sigterm_checkpoint_then_resume_matches_uninterrupted_run() {
    let bin = env!("CARGO_BIN_EXE_birp");
    let dir = std::env::temp_dir().join(format!("birp-sigterm-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("base.json");
    let ckpt = dir.join("run.ckpt");
    let resumed = dir.join("resumed.json");
    let run_args = [
        "run",
        "--slots",
        "150",
        "--scheduler",
        "birp",
        "--seed",
        "9",
    ];

    // Uninterrupted baseline.
    let status = Command::new(bin)
        .args(run_args)
        .args(["--out", base.to_str().unwrap()])
        .stdout(Stdio::null())
        .status()
        .unwrap();
    assert!(status.success(), "baseline run failed");

    // Checkpointed run; SIGTERM as soon as the first periodic checkpoint
    // lands (so the signal provably arrives mid-run, not at startup).
    let mut child = Command::new(bin)
        .args(run_args)
        .args([
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--checkpoint-every",
            "3",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut finished_early = false;
    while !ckpt.exists() {
        if child.try_wait().unwrap().is_some() {
            finished_early = true;
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no checkpoint appeared within 120s"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    if !finished_early {
        let term = Command::new("kill")
            .args(["-s", "TERM", &child.id().to_string()])
            .status()
            .unwrap();
        assert!(term.success(), "could not signal the run");
    }
    let status = child.wait().unwrap();
    assert!(
        status.success(),
        "SIGTERM must be a graceful, zero-exit shutdown, got {status}"
    );
    assert!(ckpt.exists(), "no checkpoint on disk after shutdown");

    // The checkpoint must resume to the exact uninterrupted result. (If the
    // run won the race and completed, the last periodic checkpoint still
    // resumes the tail — the equality below holds either way.)
    let status = Command::new(bin)
        .args([
            "resume",
            ckpt.to_str().unwrap(),
            "--out",
            resumed.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .status()
        .unwrap();
    assert!(status.success(), "resume failed");
    let a = std::fs::read_to_string(&base).unwrap();
    let b = std::fs::read_to_string(&resumed).unwrap();
    assert_eq!(a, b, "resumed result differs from the uninterrupted run");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_rejects_corrupted_checkpoint_with_clean_error() {
    let bin = env!("CARGO_BIN_EXE_birp");
    let dir = std::env::temp_dir().join(format!("birp-sigterm-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("run.ckpt");

    // Produce a real checkpoint, then flip a payload byte.
    let status = Command::new(bin)
        .args(["run", "--slots", "8", "--scheduler", "birp-off"])
        .args([
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--checkpoint-every",
            "2",
        ])
        .stdout(Stdio::null())
        .status()
        .unwrap();
    assert!(status.success());
    let mut bytes = std::fs::read(&ckpt).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&ckpt, &bytes).unwrap();

    let out = Command::new(bin)
        .args(["resume", ckpt.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "resume must fail on a corrupted checkpoint"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("checksum mismatch"),
        "expected a typed checksum diagnosis, got: {stderr}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
