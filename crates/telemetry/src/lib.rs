//! Lightweight, dependency-light observability for the BIRP workspace.
//!
//! Design goals, in priority order:
//!
//! 1. **Zero cost when disabled.** The global facade starts disabled; every
//!    entry point bails after a single relaxed atomic load, so instrumented
//!    hot paths (simplex pivots, B&B waves, per-slot scheduling) pay nothing
//!    measurable in production runs. Seeded runs produce byte-identical
//!    outputs with telemetry off because nothing here touches the RNG or the
//!    decision path — instrumentation only *reads* solver/runner state.
//! 2. **Determinism.** Apart from wall-clock timing fields (span durations,
//!    the `t_ms` event timestamp), identical seeded runs produce identical
//!    event streams: counters, histogram value sequences and field maps are
//!    all derived from deterministic simulation state.
//! 3. **Structured, greppable output.** Events are name + ordered key/value
//!    fields; the [`JsonlSink`] writes one JSON object per line so runs can
//!    be analysed with standard line tools (`jq`, `grep`) or loaded back by
//!    `birp report`.
//!
//! The facade keeps three kinds of state in a global registry guarded by
//! `parking_lot` locks:
//!
//! - **counters** — monotonic `u64` totals (`counter("solver.nodes", n)`),
//! - **histograms** — log₂-bucketed value distributions
//!   ([`LogHistogram`]; `observe("runner.decide_ms", dt)`),
//! - **events** — leveled, structured records forwarded to the active
//!   [`Sink`] (`event(Level::Info, "runner.slot", &[...])`).
//!
//! [`Span`] guards time a scope and feed the elapsed milliseconds into a
//! histogram on drop. Spans additionally form a **causal tree**: every span
//! carries a stable id derived from `(parent id, name, child index)`, so
//! identical seeded runs produce identical tree structure (only the duration
//! fields vary) and `birp profile` can rebuild the decide → presolve → wave
//! → node-LP hierarchy from a JSONL capture. [`SpanContext`] carries the
//! current span id across thread boundaries (rayon waves, the thread-local
//! simplex-engine pools) with caller-supplied deterministic child indices.
//! [`summary()`] snapshots counters and histogram quantiles for end-of-run
//! reporting, and [`render_summary`] pretty-prints that snapshot as the
//! table `birp report` shows.

pub mod profile;

use std::cell::RefCell;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

// --- levels --------------------------------------------------------------

/// Event severity. Events below the configured minimum are dropped before
/// reaching the sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Trace = 0,
    Debug = 1,
    Info = 2,
    Warn = 3,
    Error = 4,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parse a CLI-style level name (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "trace" => Some(Level::Trace),
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Trace,
            1 => Level::Debug,
            2 => Level::Info,
            3 => Level::Warn,
            _ => Level::Error,
        }
    }
}

// --- events & sinks ------------------------------------------------------

/// A structured telemetry record: severity, dotted name, ordered fields.
#[derive(Debug, Clone)]
pub struct Event {
    pub level: Level,
    pub name: String,
    /// Milliseconds since telemetry was initialised (wall clock).
    pub t_ms: f64,
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Lower to the JSON object shape written by [`JsonlSink`].
    pub fn to_value(&self) -> Value {
        let mut obj = vec![
            ("t_ms".to_string(), Value::Float(round3(self.t_ms))),
            ("level".to_string(), Value::Str(self.level.as_str().into())),
            ("name".to_string(), Value::Str(self.name.clone())),
        ];
        for (k, v) in &self.fields {
            obj.push((k.to_string(), v.clone()));
        }
        Value::Object(obj)
    }
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// Destination for telemetry events. Implementations must be thread-safe:
/// solver worker threads emit concurrently with the main loop.
pub trait Sink: Send + Sync {
    fn record(&self, event: &Event);
    fn flush(&self) {}
}

/// Discards everything (the default sink).
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _event: &Event) {}
}

/// Writes one JSON object per event to a buffered file (JSON Lines).
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let line = serde_json::to_string(&event.to_value()).unwrap_or_default();
        let mut w = self.writer.lock();
        let _ = writeln!(w, "{line}");
    }

    fn flush(&self) {
        let _ = self.writer.lock().flush();
    }
}

/// Buffers events in memory; used by tests and `RunResult` capture.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn drain(&self) -> Vec<Event> {
        std::mem::take(&mut self.events.lock())
    }

    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.events.lock().push(event.clone());
    }
}

/// JSONL sink that survives IO failures (disk full, EPIPE, yanked volume).
///
/// On a failed write it retries once after a short backoff, then degrades
/// permanently: the writer is dropped, a `telemetry.sink_degraded` counter
/// is bumped, and every event from the failing one onward is buffered in an
/// in-memory fallback instead. The run itself never sees the error — losing
/// a telemetry file must not abort a long service run.
pub struct DegradingSink {
    primary: Mutex<Option<Box<dyn Write + Send>>>,
    fallback: MemorySink,
    degraded: AtomicBool,
    retry_backoff: Duration,
}

impl DegradingSink {
    /// Open `path` for buffered JSONL writing, as [`JsonlSink::create`].
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::from_writer(Box::new(BufWriter::new(file))))
    }

    /// Wrap an arbitrary writer (tests inject failing writers here).
    pub fn from_writer(writer: Box<dyn Write + Send>) -> Self {
        DegradingSink {
            primary: Mutex::new(Some(writer)),
            fallback: MemorySink::new(),
            degraded: AtomicBool::new(false),
            retry_backoff: Duration::from_millis(10),
        }
    }

    /// True once the primary writer has been abandoned.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// Events captured after degradation (empty while the file is healthy).
    pub fn drain_fallback(&self) -> Vec<Event> {
        self.fallback.drain()
    }

    /// Drop the primary writer and route everything to the fallback.
    /// Must be called without `self.primary` held (it bumps a counter,
    /// which takes the registry lock).
    fn degrade(&self) {
        *self.primary.lock() = None;
        if !self.degraded.swap(true, Ordering::AcqRel) {
            counter("telemetry.sink_degraded", 1);
        }
    }
}

impl Sink for DegradingSink {
    fn record(&self, event: &Event) {
        if self.is_degraded() {
            self.fallback.record(event);
            return;
        }
        let line = serde_json::to_string(&event.to_value()).unwrap_or_default();
        let ok = {
            let mut guard = self.primary.lock();
            match guard.as_mut() {
                Some(w) => {
                    if writeln!(w, "{line}").is_ok() {
                        true
                    } else {
                        // One retry after a short backoff: transient
                        // conditions (pipe pressure, NFS hiccup) recover;
                        // persistent ones (ENOSPC, EPIPE) degrade.
                        std::thread::sleep(self.retry_backoff);
                        writeln!(w, "{line}").is_ok()
                    }
                }
                None => false,
            }
        };
        if !ok {
            self.degrade();
            self.fallback.record(event);
        }
    }

    fn flush(&self) {
        if self.is_degraded() {
            return;
        }
        let ok = {
            let mut guard = self.primary.lock();
            match guard.as_mut() {
                Some(w) => w.flush().is_ok(),
                None => false,
            }
        };
        if !ok {
            self.degrade();
        }
    }
}

// --- histograms ----------------------------------------------------------

/// Fixed-size log₂-bucketed histogram.
///
/// Bucket `i` covers values in `[2^(i-32), 2^(i-31))`, so the usable range
/// spans ~2⁻³² to ~2³¹ — nanoseconds-as-milliseconds up to hours, or counts
/// from 1 to billions. Values ≤ 0 land in bucket 0. Quantiles are estimated
/// at the geometric midpoint of the selected bucket, giving ≤ √2 relative
/// error, which is plenty for latency reporting.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    buckets: [u64; 64],
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; 64],
        }
    }
}

impl LogHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of the bucket a value falls into.
    pub fn bucket_index(value: f64) -> usize {
        if value <= 0.0 || !value.is_finite() {
            return 0;
        }
        (value.log2().floor() + 32.0).clamp(0.0, 63.0) as usize
    }

    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_index(value)] += 1;
    }

    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile from the bucket counts (geometric midpoint of
    /// the bucket containing the q-th sample; exact min/max at the ends).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return self.min;
        }
        if q == 1.0 {
            return self.max;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let mid = 2f64.powf(i as f64 - 32.0 + 0.5);
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub fn summarize(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            mean: if self.count == 0 { 0.0 } else { self.mean() },
            p50: if self.count == 0 {
                0.0
            } else {
                self.quantile(0.50)
            },
            p90: if self.count == 0 {
                0.0
            } else {
                self.quantile(0.90)
            },
            p99: if self.count == 0 {
                0.0
            } else {
                self.quantile(0.99)
            },
        }
    }
}

// Hand-written serde: the `[u64; 64]` bucket array is not derive-supported
// by the vendored serde, and the empty-histogram ±∞ sentinels would lower to
// JSON `null`. Buckets serialize with trailing zeros trimmed; min/max are
// omitted for empty histograms and restored to the sentinels on read.
impl Serialize for LogHistogram {
    fn to_value(&self) -> Value {
        let trimmed = self
            .buckets
            .iter()
            .rposition(|&n| n > 0)
            .map_or(0, |i| i + 1);
        let buckets: Vec<Value> = self.buckets[..trimmed]
            .iter()
            .map(|&n| Value::UInt(n))
            .collect();
        let mut obj = vec![
            ("count".to_string(), Value::UInt(self.count)),
            ("sum".to_string(), Value::Float(self.sum)),
        ];
        if self.count > 0 {
            obj.push(("min".to_string(), Value::Float(self.min)));
            obj.push(("max".to_string(), Value::Float(self.max)));
        }
        obj.push(("buckets".to_string(), Value::Array(buckets)));
        Value::Object(obj)
    }
}

impl Deserialize for LogHistogram {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::custom("LogHistogram: expected object"))?;
        let mut h = LogHistogram::new();
        h.count = serde::field(obj, "count")
            .and_then(Value::as_u64)
            .ok_or_else(|| DeError::custom("LogHistogram: missing count"))?;
        h.sum = serde::field(obj, "sum")
            .and_then(Value::as_f64)
            .ok_or_else(|| DeError::custom("LogHistogram: missing sum"))?;
        if h.count > 0 {
            h.min = serde::field(obj, "min")
                .and_then(Value::as_f64)
                .ok_or_else(|| DeError::custom("LogHistogram: missing min"))?;
            h.max = serde::field(obj, "max")
                .and_then(Value::as_f64)
                .ok_or_else(|| DeError::custom("LogHistogram: missing max"))?;
        }
        let buckets = serde::field(obj, "buckets")
            .and_then(Value::as_array)
            .ok_or_else(|| DeError::custom("LogHistogram: missing buckets"))?;
        if buckets.len() > h.buckets.len() {
            return Err(DeError::custom("LogHistogram: too many buckets"));
        }
        for (slot, v) in h.buckets.iter_mut().zip(buckets.iter()) {
            *slot = v
                .as_u64()
                .ok_or_else(|| DeError::custom("LogHistogram: bad bucket"))?;
        }
        Ok(h)
    }
}

/// Snapshot of one histogram, with quantiles resolved.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
}

/// Snapshot of every counter and histogram in the registry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySummary {
    pub counters: Vec<(String, u64)>,
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl TelemetrySummary {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

// --- global registry -----------------------------------------------------

struct Registry {
    counters: std::collections::BTreeMap<String, u64>,
    histograms: std::collections::BTreeMap<String, LogHistogram>,
    sink: std::sync::Arc<dyn Sink>,
    epoch: Instant,
}

impl Registry {
    fn new() -> Self {
        Registry {
            counters: Default::default(),
            histograms: Default::default(),
            sink: std::sync::Arc::new(NullSink),
            epoch: Instant::now(),
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static MIN_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: std::sync::OnceLock<Mutex<Registry>> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::new()))
}

/// Version of the JSONL record layout written by [`JsonlSink`] captures —
/// bumped whenever the shape of the header/span/summary records changes.
pub const SCHEMA_VERSION: u64 = 2;

/// Capture attribution carried by the [`init_with_meta`] header record: the
/// command line that produced the run and a fingerprint of its resolved
/// configuration (see [`fingerprint_args`]).
#[derive(Debug, Clone, Default)]
pub struct RunMeta {
    /// Human-readable invocation (e.g. the joined CLI argv).
    pub command: String,
    /// Stable hash of the resolved run configuration.
    pub config_fingerprint: u64,
}

/// Stable FNV-1a fingerprint of an argument list — the config id stamped
/// into the capture header so telemetry files, goldens and BENCH json are
/// attributable to the exact invocation that produced them.
pub fn fingerprint_args<I, S>(args: I) -> u64
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut h = FNV_OFFSET;
    for a in args {
        for &b in a.as_ref().as_bytes() {
            h = fnv_step(h, b);
        }
        h = fnv_step(h, 0x1f); // unit separator between arguments
    }
    h
}

/// Enable telemetry with the given sink and minimum event level. Clears any
/// state accumulated by a previous run.
pub fn init(sink: std::sync::Arc<dyn Sink>, min_level: Level) {
    init_with_meta(sink, min_level, None);
}

/// [`init`], plus an attribution header: when `meta` is given, a
/// `telemetry.meta` record (schema version, build/commit id, command line,
/// config fingerprint) is written to the sink before anything else, so a
/// JSONL capture is self-describing. Like `telemetry.summary`, the header
/// bypasses the level filter — it is attribution, not an event.
pub fn init_with_meta(sink: std::sync::Arc<dyn Sink>, min_level: Level, meta: Option<RunMeta>) {
    {
        let mut reg = registry().lock();
        reg.counters.clear();
        reg.histograms.clear();
        reg.sink = sink.clone();
        reg.epoch = Instant::now();
    }
    // New trace generation: every thread's span stack resets lazily, so
    // span ids restart from the same seeds on every run.
    TRACE_GEN.fetch_add(1, Ordering::Relaxed);
    MIN_LEVEL.store(min_level as u8, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
    if let Some(meta) = meta {
        sink.record(&Event {
            level: Level::Info,
            name: "telemetry.meta".to_string(),
            t_ms: 0.0,
            fields: vec![
                ("schema_version", SCHEMA_VERSION.into()),
                ("build", env!("CARGO_PKG_VERSION").into()),
                (
                    "commit",
                    option_env!("BIRP_BUILD_COMMIT").unwrap_or("unknown").into(),
                ),
                ("command", meta.command.into()),
                (
                    "config_fingerprint",
                    format!("{:016x}", meta.config_fingerprint).into(),
                ),
                ("min_level", min_level.as_str().into()),
            ],
        });
    }
}

/// Convenience: enable telemetry writing JSON Lines to `path`.
pub fn init_jsonl(path: impl AsRef<Path>, min_level: Level) -> std::io::Result<()> {
    init_jsonl_with_meta(path, min_level, RunMeta::default())
}

/// [`init_jsonl`] with capture attribution: the file opens with a
/// `telemetry.meta` header record (see [`init_with_meta`]).
pub fn init_jsonl_with_meta(
    path: impl AsRef<Path>,
    min_level: Level,
    meta: RunMeta,
) -> std::io::Result<()> {
    let sink = JsonlSink::create(path)?;
    init_with_meta(std::sync::Arc::new(sink), min_level, Some(meta));
    Ok(())
}

/// Flush the sink and disable the facade. Counters/histograms stay readable
/// through [`summary()`] until the next [`init`].
///
/// Before disabling, the full [`summary()`] snapshot is emitted as a final
/// `telemetry.summary` event so a JSONL capture is self-contained:
/// `birp report` renders the end-of-run table from that record alone. The
/// record bypasses the level filter — it is the capture's payload, and a
/// `--log-level warn` run would otherwise produce a file `report` cannot
/// summarise.
pub fn shutdown() {
    if !enabled() {
        return;
    }
    let snapshot = summary();
    let (sink, t_ms) = {
        let reg = registry().lock();
        (reg.sink.clone(), reg.epoch.elapsed().as_secs_f64() * 1000.0)
    };
    sink.record(&Event {
        level: Level::Info,
        name: "telemetry.summary".to_string(),
        t_ms,
        fields: vec![("summary", Serialize::to_value(&snapshot))],
    });
    ENABLED.store(false, Ordering::Relaxed);
    registry().lock().sink.flush();
}

/// Fast-path check used by all entry points (and available to callers that
/// want to skip building fields entirely).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Current minimum event level.
pub fn min_level() -> Level {
    Level::from_u8(MIN_LEVEL.load(Ordering::Relaxed))
}

/// Add `delta` to the named monotonic counter.
#[inline]
pub fn counter(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut reg = registry().lock();
    if let Some(c) = reg.counters.get_mut(name) {
        *c += delta;
    } else {
        reg.counters.insert(name.to_string(), delta);
    }
}

/// Current value of a named counter (`None` when absent or telemetry is
/// off). Provenance records use before/after reads of the solver counters
/// to attribute warm/cold LP work to a single slot.
pub fn counter_value(name: &str) -> Option<u64> {
    if !enabled() {
        return None;
    }
    registry().lock().counters.get(name).copied()
}

/// Record `value` into the named histogram.
#[inline]
pub fn observe(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let mut reg = registry().lock();
    if let Some(h) = reg.histograms.get_mut(name) {
        h.observe(value);
    } else {
        let mut h = LogHistogram::new();
        h.observe(value);
        reg.histograms.insert(name.to_string(), h);
    }
}

/// Emit a structured event to the sink (dropped below the minimum level).
#[inline]
pub fn event(level: Level, name: &str, fields: &[(&'static str, Value)]) {
    if !enabled() || (level as u8) < MIN_LEVEL.load(Ordering::Relaxed) {
        return;
    }
    let (sink, t_ms) = {
        let reg = registry().lock();
        (reg.sink.clone(), reg.epoch.elapsed().as_secs_f64() * 1000.0)
    };
    sink.record(&Event {
        level,
        name: name.to_string(),
        t_ms,
        fields: fields.to_vec(),
    });
}

/// Snapshot all counters and histogram summaries.
pub fn summary() -> TelemetrySummary {
    let reg = registry().lock();
    TelemetrySummary {
        counters: reg.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        histograms: reg
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.summarize()))
            .collect(),
    }
}

/// Disable the facade and drop all recorded state (tests use this to
/// isolate themselves; runs use [`init`]'s implicit clear instead).
pub fn reset() {
    ENABLED.store(false, Ordering::Relaxed);
    let mut reg = registry().lock();
    reg.counters.clear();
    reg.histograms.clear();
    reg.sink = std::sync::Arc::new(NullSink);
}

// --- spans ---------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01b3;

#[inline]
fn fnv_step(h: u64, b: u8) -> u64 {
    (h ^ b as u64).wrapping_mul(FNV_PRIME)
}

/// Stable span id: FNV-1a over `(parent id, name, child index)`. Id 0 is
/// reserved for the implicit per-thread root, so a hash landing on 0 is
/// remapped to 1.
fn derive_span_id(parent: u64, name: &str, seq: u32) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in &parent.to_le_bytes() {
        h = fnv_step(h, b);
    }
    for &b in name.as_bytes() {
        h = fnv_step(h, b);
    }
    for &b in &seq.to_le_bytes() {
        h = fnv_step(h, b);
    }
    if h == 0 {
        1
    } else {
        h
    }
}

/// Trace generation: bumped by [`init`] so per-thread span stacks (which may
/// hold frames from a previous run in the same process) reset lazily, making
/// span ids reproducible run-to-run.
static TRACE_GEN: AtomicU64 = AtomicU64::new(0);

/// Monotonic lane ids for Chrome-trace rendering. The thread id is the one
/// deliberately non-deterministic span field: it names the OS thread a span
/// happened to run on and never feeds into span ids.
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

struct Frame {
    id: u64,
    next_child: u32,
}

struct SpanStack {
    generation: u64,
    frames: Vec<Frame>,
}

thread_local! {
    static SPAN_STACK: RefCell<SpanStack> = const {
        RefCell::new(SpanStack {
            generation: 0,
            frames: Vec::new(),
        })
    };
    static TID: std::cell::Cell<u64> = const { std::cell::Cell::new(u64::MAX) };
}

fn local_tid() -> u64 {
    TID.with(|t| {
        if t.get() == u64::MAX {
            t.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

fn with_stack<R>(f: impl FnOnce(&mut SpanStack) -> R) -> R {
    SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        let generation = TRACE_GEN.load(Ordering::Relaxed);
        if s.generation != generation || s.frames.is_empty() {
            s.generation = generation;
            s.frames.clear();
            s.frames.push(Frame {
                id: 0,
                next_child: 0,
            });
        }
        f(&mut s)
    })
}

/// Times a scope; on drop, the elapsed milliseconds are observed into the
/// histogram `<name>` and (at trace level) emitted as a `span` event carrying
/// the causal-tree fields `id`/`parent`/`seq`/`tid`.
///
/// Spans are strict scope guards: on any one thread they must drop in LIFO
/// order (the natural order for `let _span = span(...)` guards). Sequential
/// siblings get consecutive child indices from their parent's frame; work
/// fanned out across threads must instead derive children from an explicit
/// [`SpanContext`] so the index is the *item* index, not thread arrival
/// order.
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    id: u64,
    parent: u64,
    seq: u32,
}

impl Span {
    /// Elapsed milliseconds so far (0 when telemetry is disabled).
    pub fn elapsed_ms(&self) -> f64 {
        self.start
            .map(|s| s.elapsed().as_secs_f64() * 1000.0)
            .unwrap_or(0.0)
    }

    /// Stable id of this span (0 when telemetry is disabled).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Context handle for deterministic cross-thread children.
    pub fn context(&self) -> SpanContext {
        SpanContext { id: self.id }
    }
}

/// Start a span feeding the named histogram. When telemetry is disabled the
/// guard is inert (no clock read, no stack touch).
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span {
            name,
            start: None,
            id: 0,
            parent: 0,
            seq: 0,
        };
    }
    let (id, parent, seq) = with_stack(|s| {
        let top = s.frames.last_mut().expect("root frame");
        let parent = top.id;
        let seq = top.next_child;
        top.next_child += 1;
        let id = derive_span_id(parent, name, seq);
        s.frames.push(Frame { id, next_child: 0 });
        (id, parent, seq)
    });
    Span {
        name,
        start: Some(Instant::now()),
        id,
        parent,
        seq,
    }
}

/// A position in the span tree that can be shipped across threads (`Copy`,
/// `Send`). Rayon wave workers and the thread-local `with_engine` pools
/// capture the parent's context before the fan-out and open children with
/// [`SpanContext::span_at`], passing the *item index* as the child index —
/// so the resulting tree is identical no matter which worker ran which item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    id: u64,
}

impl SpanContext {
    /// Context of the innermost open span on this thread (the per-thread
    /// root when none is open, id 0 when telemetry is disabled).
    pub fn current() -> SpanContext {
        if !enabled() {
            return SpanContext { id: 0 };
        }
        SpanContext {
            id: with_stack(|s| s.frames.last().expect("root frame").id),
        }
    }

    /// Open a child of this context with a caller-supplied child index.
    pub fn span_at(self, name: &'static str, seq: u32) -> Span {
        if !enabled() {
            return Span {
                name,
                start: None,
                id: 0,
                parent: 0,
                seq: 0,
            };
        }
        let id = derive_span_id(self.id, name, seq);
        with_stack(|s| s.frames.push(Frame { id, next_child: 0 }));
        Span {
            name,
            start: Some(Instant::now()),
            id,
            parent: self.id,
            seq,
        }
    }
}

/// True when fine-grained (per-wave / per-node) spans should be created:
/// telemetry is on *and* the minimum level is `Trace`. Hot loops check this
/// once so the default `Debug` level pays nothing per node (the ≤ 5%
/// overhead budget on `runner_decide`).
#[inline]
pub fn trace_spans() -> bool {
    enabled() && MIN_LEVEL.load(Ordering::Relaxed) == Level::Trace as u8
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            // Balance the frame pushed at construction. After a mid-span
            // re-init the generation check has already cleared the stack and
            // the guard below leaves the fresh root frame alone.
            with_stack(|s| {
                if s.frames.len() > 1 {
                    s.frames.pop();
                }
            });
            if enabled() {
                let ms = start.elapsed().as_secs_f64() * 1000.0;
                observe(self.name, ms);
                event(
                    Level::Trace,
                    "span",
                    &[
                        ("span", self.name.into()),
                        ("id", Value::UInt(self.id)),
                        ("parent", Value::UInt(self.parent)),
                        ("seq", Value::UInt(self.seq as u64)),
                        ("ms", round3(ms).into()),
                        ("tid", Value::UInt(local_tid())),
                    ],
                );
            }
        }
    }
}

// --- summary rendering ---------------------------------------------------

/// Render a summary as the aligned text table printed by `birp report` and
/// at the end of telemetry-enabled CLI runs.
pub fn render_summary(summary: &TelemetrySummary) -> String {
    let mut out = String::new();
    if !summary.counters.is_empty() {
        out.push_str("counters\n");
        let width = summary
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0);
        for (name, value) in &summary.counters {
            out.push_str(&format!("  {name:<width$}  {value}\n"));
        }
    }
    if !summary.histograms.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        let width = summary
            .histograms
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0)
            .max("histogram".len());
        out.push_str(&format!(
            "{:<width$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}\n",
            "histogram", "count", "mean", "p50", "p90", "p99", "max"
        ));
        for (name, h) in &summary.histograms {
            out.push_str(&format!(
                "{name:<width$}  {:>8}  {:>10.3}  {:>10.3}  {:>10.3}  {:>10.3}  {:>10.3}\n",
                h.count, h.mean, h.p50, h.p90, h.p99, h.max
            ));
        }
    }
    if out.is_empty() {
        out.push_str("(no telemetry recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    // The registry is global, so tests that exercise it share one lock to
    // avoid interleaving (cargo runs tests on multiple threads).
    static TEST_GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_facade_is_inert() {
        let _g = TEST_GUARD.lock();
        reset();
        counter("x", 5);
        observe("y", 1.0);
        event(Level::Error, "z", &[]);
        let s = summary();
        assert!(s.counters.is_empty());
        assert!(s.histograms.is_empty());
        let span = span("unused");
        assert_eq!(span.elapsed_ms(), 0.0);
    }

    #[test]
    fn counters_and_histograms_aggregate() {
        let _g = TEST_GUARD.lock();
        init(Arc::new(NullSink), Level::Info);
        counter("solver.nodes", 3);
        counter("solver.nodes", 4);
        observe("lat", 1.0);
        observe("lat", 4.0);
        let s = summary();
        assert_eq!(s.counter("solver.nodes"), Some(7));
        let h = s.histogram("lat").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 4.0);
        assert!((h.mean - 2.5).abs() < 1e-12);
        reset();
    }

    #[test]
    fn events_respect_min_level_and_reach_sink() {
        let _g = TEST_GUARD.lock();
        let sink = Arc::new(MemorySink::new());
        init(sink.clone(), Level::Info);
        event(Level::Debug, "dropped", &[]);
        event(Level::Info, "kept", &[("k", 1u64.into())]);
        shutdown();
        let events = sink.drain();
        // The debug event is filtered; shutdown appends telemetry.summary.
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "kept");
        assert_eq!(events[0].fields[0], ("k", Value::UInt(1)));
        assert_eq!(events[1].name, "telemetry.summary");
        reset();
    }

    #[test]
    fn histogram_bucketing_is_log2() {
        // Satellite: explicit bucket-boundary coverage.
        assert_eq!(LogHistogram::bucket_index(1.0), 32);
        assert_eq!(LogHistogram::bucket_index(1.5), 32);
        assert_eq!(LogHistogram::bucket_index(2.0), 33);
        assert_eq!(LogHistogram::bucket_index(0.5), 31);
        assert_eq!(LogHistogram::bucket_index(0.0), 0);
        assert_eq!(LogHistogram::bucket_index(-3.0), 0);
        assert_eq!(LogHistogram::bucket_index(f64::NAN), 0);
        // Extremes clamp instead of indexing out of range.
        assert_eq!(LogHistogram::bucket_index(1e300), 63);
        assert_eq!(LogHistogram::bucket_index(1e-300), 0);
    }

    #[test]
    fn histogram_quantiles_are_order_of_magnitude_accurate() {
        let mut h = LogHistogram::new();
        for i in 1..=1000 {
            h.observe(i as f64);
        }
        assert_eq!(h.count, 1000);
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(1.0), 1000.0);
        let p50 = h.quantile(0.5);
        // Log buckets guarantee no worse than a factor-√2 midpoint estimate.
        assert!((250.0..=1000.0).contains(&p50), "p50={p50}");
        let empty = LogHistogram::new();
        assert!(empty.quantile(0.5).is_nan());
    }

    #[test]
    fn span_records_elapsed_into_histogram() {
        let _g = TEST_GUARD.lock();
        init(Arc::new(NullSink), Level::Info);
        {
            let _span = span("work.ms");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let s = summary();
        let h = s.histogram("work.ms").unwrap();
        assert_eq!(h.count, 1);
        assert!(h.max >= 1.0, "span under-measured: {:?}", h);
        reset();
    }

    #[test]
    fn summary_renders_as_table() {
        let summary = TelemetrySummary {
            counters: vec![("solver.nodes".into(), 42)],
            histograms: vec![(
                "runner.decide_ms".into(),
                HistogramSummary {
                    count: 10,
                    sum: 50.0,
                    min: 1.0,
                    max: 9.0,
                    mean: 5.0,
                    p50: 4.0,
                    p90: 8.0,
                    p99: 9.0,
                },
            )],
        };
        let text = render_summary(&summary);
        assert!(text.contains("solver.nodes"));
        assert!(text.contains("runner.decide_ms"));
        assert!(text.contains("p99"));
    }

    #[test]
    fn summary_serializes_roundtrip() {
        let s = TelemetrySummary {
            counters: vec![("a".into(), 1)],
            histograms: vec![],
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: TelemetrySummary = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn log_histogram_serde_round_trip() {
        let mut h = LogHistogram::new();
        for v in [0.25, 1.0, 3.0, 900.0, 1e6] {
            h.observe(v);
        }
        let json = serde_json::to_string(&Serialize::to_value(&h)).unwrap();
        let back = LogHistogram::from_value(&serde_json::from_str(&json).unwrap()).unwrap();
        assert_eq!(back.count, h.count);
        assert_eq!(back.sum, h.sum);
        assert_eq!(back.min, h.min);
        assert_eq!(back.max, h.max);
        assert_eq!(back.buckets, h.buckets);

        // Empty histograms survive the ±∞ sentinels.
        let empty = LogHistogram::new();
        let json = serde_json::to_string(&Serialize::to_value(&empty)).unwrap();
        let back = LogHistogram::from_value(&serde_json::from_str(&json).unwrap()).unwrap();
        assert_eq!(back.count, 0);
        assert_eq!(back.min, f64::INFINITY);
        assert_eq!(back.max, f64::NEG_INFINITY);
    }

    /// Writer that accepts `good_lines` complete lines, then fails forever
    /// (a `writeln!` may arrive as several `write` calls, so count newlines
    /// rather than calls).
    struct FlakyWriter {
        good_lines: usize,
        written: usize,
    }

    impl Write for FlakyWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.written >= self.good_lines {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "disk full",
                ));
            }
            self.written += buf.iter().filter(|&&b| b == b'\n').count();
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn degrading_sink_falls_back_to_memory() {
        let _g = TEST_GUARD.lock();
        let sink = Arc::new(DegradingSink::from_writer(Box::new(FlakyWriter {
            good_lines: 2,
            written: 0,
        })));
        init(sink.clone(), Level::Info);
        event(Level::Info, "a", &[]); // written
        event(Level::Info, "b", &[]); // written
        assert!(!sink.is_degraded());
        event(Level::Info, "c", &[]); // fails, retries, degrades — kept in memory
        event(Level::Info, "d", &[]); // straight to fallback
        assert!(sink.is_degraded());
        let s = summary();
        assert_eq!(s.counter("telemetry.sink_degraded"), Some(1));
        let kept: Vec<String> = sink
            .drain_fallback()
            .iter()
            .map(|e| e.name.clone())
            .collect();
        assert_eq!(kept, vec!["c".to_string(), "d".to_string()]);
        reset();
    }

    #[test]
    fn degrading_sink_healthy_path_writes_jsonl() {
        let _g = TEST_GUARD.lock();
        let dir = std::env::temp_dir().join(format!("birp-degrade-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        let sink = Arc::new(DegradingSink::create(&path).unwrap());
        init(sink.clone(), Level::Info);
        event(Level::Info, "hello", &[("k", 1u64.into())]);
        sink.flush();
        assert!(!sink.is_degraded());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"name\": \"hello\"") || text.contains("\"name\":\"hello\""));
        reset();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("INFO"), Some(Level::Info));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("bogus"), None);
    }
}
