//! Post-processing of captured JSONL telemetry into profiler formats.
//!
//! `birp profile <run.jsonl>` uses this module to turn a capture produced by
//! `--telemetry` into three artifacts:
//!
//! - a **Chrome trace-event file** (`chrome://tracing` / Perfetto): every
//!   `span` record becomes a complete (`"ph": "X"`) event positioned by its
//!   end timestamp minus duration, laned by the recording thread;
//! - a **collapsed-stack file** (flamegraph.pl / speedscope compatible):
//!   one line per unique root→leaf span path with aggregated *self* time in
//!   microseconds;
//! - a **per-slot provenance table**: the `birp.provenance` records laid out
//!   as an aligned text table (which path produced each slot's schedule,
//!   objective/gap, warm vs cold LP counts, quarantine masks).
//!
//! Parsing is tolerant: unknown records pass through untouched, and spans
//! whose parent never closed (e.g. a truncated capture) are attached to the
//! root rather than dropped.

use crate::Value;

/// One `span` record from a capture, decoded.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    pub name: String,
    pub id: u64,
    pub parent: u64,
    pub seq: u64,
    /// End-of-span timestamp (ms since telemetry init).
    pub end_ms: f64,
    pub dur_ms: f64,
    pub tid: u64,
}

impl SpanRecord {
    pub fn start_ms(&self) -> f64 {
        (self.end_ms - self.dur_ms).max(0.0)
    }
}

/// A capture, split into the record kinds `birp profile` renders.
#[derive(Debug, Default)]
pub struct Capture {
    /// The `telemetry.meta` header, when the capture has one.
    pub meta: Option<Value>,
    pub spans: Vec<SpanRecord>,
    /// `birp.provenance` records, in emission (slot) order.
    pub provenance: Vec<Value>,
    /// The final `telemetry.summary` record, when present.
    pub summary: Option<Value>,
    /// Count of lines that were not valid JSON objects.
    pub malformed: usize,
}

/// Parse a JSONL capture. Lines that fail to parse are counted, not fatal:
/// a capture truncated by a crash should still render.
pub fn parse_capture(text: &str) -> Capture {
    let mut cap = Capture::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value: Value = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(_) => {
                cap.malformed += 1;
                continue;
            }
        };
        match value.get("name").and_then(Value::as_str) {
            Some("telemetry.meta") => cap.meta = Some(value),
            Some("telemetry.summary") => cap.summary = Some(value),
            Some("birp.provenance") => cap.provenance.push(value),
            Some("span") => {
                if let Some(span) = decode_span(&value) {
                    cap.spans.push(span);
                }
            }
            _ => {}
        }
    }
    cap
}

fn decode_span(v: &Value) -> Option<SpanRecord> {
    Some(SpanRecord {
        name: v.get("span")?.as_str()?.to_string(),
        id: v.get("id")?.as_u64()?,
        parent: v.get("parent")?.as_u64()?,
        seq: v.get("seq")?.as_u64()?,
        end_ms: v.get("t_ms")?.as_f64()?,
        dur_ms: v.get("ms")?.as_f64()?,
        tid: v.get("tid")?.as_u64()?,
    })
}

// --- chrome trace --------------------------------------------------------

/// Render spans as a Chrome trace-event JSON document (the `traceEvents`
/// object form). Timestamps are microseconds; each OS thread becomes a lane.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let mut events: Vec<Value> = Vec::with_capacity(spans.len());
    for s in spans {
        events.push(Value::Object(vec![
            ("name".into(), Value::Str(s.name.clone())),
            ("cat".into(), Value::Str("span".into())),
            ("ph".into(), Value::Str("X".into())),
            ("ts".into(), Value::Float(round1(s.start_ms() * 1000.0))),
            ("dur".into(), Value::Float(round1(s.dur_ms * 1000.0))),
            ("pid".into(), Value::UInt(1)),
            ("tid".into(), Value::UInt(s.tid)),
            (
                "args".into(),
                Value::Object(vec![
                    ("id".into(), Value::UInt(s.id)),
                    ("parent".into(), Value::UInt(s.parent)),
                    ("seq".into(), Value::UInt(s.seq)),
                ]),
            ),
        ]));
    }
    let doc = Value::Object(vec![
        ("traceEvents".into(), Value::Array(events)),
        ("displayTimeUnit".into(), Value::Str("ms".into())),
    ]);
    serde_json::to_string(&doc).unwrap_or_default()
}

fn round1(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}

// --- collapsed stacks ----------------------------------------------------

/// Render spans as collapsed stacks: `root;child;leaf <self-µs>` per unique
/// path, sorted lexicographically. Self time is a span's duration minus its
/// children's (clamped at zero — parallel children can overlap the parent).
pub fn collapsed_stacks(spans: &[SpanRecord]) -> String {
    use std::collections::BTreeMap;
    // Multiple spans can share an id across repetitions (e.g. the same slot
    // structure each time step); aggregate by id-derived path, which is the
    // point: identical tree positions fold together.
    let mut name_of: BTreeMap<u64, &str> = BTreeMap::new();
    let mut parent_of: BTreeMap<u64, u64> = BTreeMap::new();
    let mut total_us: BTreeMap<u64, f64> = BTreeMap::new();
    let mut child_us: BTreeMap<u64, f64> = BTreeMap::new();
    for s in spans {
        name_of.insert(s.id, &s.name);
        parent_of.insert(s.id, s.parent);
        *total_us.entry(s.id).or_insert(0.0) += s.dur_ms * 1000.0;
        *child_us.entry(s.parent).or_insert(0.0) += s.dur_ms * 1000.0;
    }
    let mut lines: BTreeMap<String, u64> = BTreeMap::new();
    for (&id, &total) in &total_us {
        let self_us = (total - child_us.get(&id).copied().unwrap_or(0.0)).max(0.0);
        let mut path: Vec<&str> = Vec::new();
        let mut cur = id;
        // Walk parent links to the root; a missing parent (truncated
        // capture) roots the path at the last known ancestor.
        for _ in 0..64 {
            match name_of.get(&cur) {
                Some(name) => path.push(name),
                None => break,
            }
            cur = match parent_of.get(&cur) {
                Some(&p) if p != 0 => p,
                _ => break,
            };
        }
        path.reverse();
        let key = path.join(";");
        *lines.entry(key).or_insert(0) += self_us.round() as u64;
    }
    let mut out = String::new();
    for (path, us) in &lines {
        out.push_str(path);
        out.push(' ');
        out.push_str(&us.to_string());
        out.push('\n');
    }
    out
}

// --- provenance / timeline table -----------------------------------------

/// Maximum depth of the span forest (longest root→leaf chain).
pub fn max_depth(spans: &[SpanRecord]) -> usize {
    use std::collections::BTreeMap;
    let parent_of: BTreeMap<u64, u64> = spans.iter().map(|s| (s.id, s.parent)).collect();
    let mut deepest = 0usize;
    for s in spans {
        let mut depth = 1usize;
        let mut cur = s.parent;
        while cur != 0 {
            depth += 1;
            cur = parent_of.get(&cur).copied().unwrap_or(0);
            if depth > 64 {
                break;
            }
        }
        deepest = deepest.max(depth);
    }
    deepest
}

fn field_str(v: &Value, key: &str) -> String {
    match v.get(key) {
        Some(Value::Str(s)) => s.clone(),
        Some(Value::Float(f)) => format!("{f:.4}"),
        Some(Value::UInt(u)) => u.to_string(),
        Some(Value::Int(i)) => i.to_string(),
        Some(Value::Bool(b)) => b.to_string(),
        _ => "-".to_string(),
    }
}

/// Render the per-slot decision provenance records as an aligned table.
pub fn provenance_table(provenance: &[Value]) -> String {
    const COLS: &[(&str, &str)] = &[
        ("slot", "slot"),
        ("path", "path"),
        ("objective", "objective"),
        ("gap", "gap"),
        ("nodes", "nodes"),
        ("lp_warm", "lp_warm"),
        ("lp_cold", "lp_cold"),
        ("masked_edges", "masked"),
        ("degraded", "degraded"),
    ];
    let mut rows: Vec<Vec<String>> = Vec::with_capacity(provenance.len());
    for p in provenance {
        rows.push(COLS.iter().map(|(key, _)| field_str(p, key)).collect());
    }
    let mut widths: Vec<usize> = COLS.iter().map(|(_, h)| h.len()).collect();
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, (_, header)) in COLS.iter().enumerate() {
        out.push_str(&format!("{:<width$}  ", header, width = widths[i]));
    }
    out.push('\n');
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        out.push('\n');
    }
    out
}

/// Render the `telemetry.meta` header as `key: value` lines for `report`
/// and `profile` output.
pub fn render_meta(meta: &Value) -> String {
    let mut out = String::new();
    for key in [
        "schema_version",
        "build",
        "commit",
        "command",
        "config_fingerprint",
        "min_level",
    ] {
        if let Some(v) = meta.get(key) {
            let text = match v {
                Value::Str(s) => s.clone(),
                other => other.as_u64().map(|u| u.to_string()).unwrap_or_default(),
            };
            out.push_str(&format!("  {key:<18}  {text}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_line(name: &str, id: u64, parent: u64, seq: u64, t: f64, ms: f64, tid: u64) -> String {
        format!(
            "{{\"t_ms\":{t},\"level\":\"trace\",\"name\":\"span\",\"span\":\"{name}\",\
             \"id\":{id},\"parent\":{parent},\"seq\":{seq},\"ms\":{ms},\"tid\":{tid}}}"
        )
    }

    fn sample_capture() -> String {
        let mut lines = vec![
            "{\"t_ms\":0.0,\"level\":\"info\",\"name\":\"telemetry.meta\",\
             \"schema_version\":2,\"build\":\"0.1.0\",\"commit\":\"unknown\",\
             \"command\":\"birp run\",\"config_fingerprint\":\"00ff\",\"min_level\":\"trace\"}"
                .to_string(),
        ];
        // decide(10ms) -> solve(8ms) -> wave(6ms) -> node x2 (2ms each)
        lines.push(span_line("solver.node_lp", 40, 30, 0, 6.0, 2.0, 1));
        lines.push(span_line("solver.node_lp", 41, 30, 1, 8.0, 2.0, 2));
        lines.push(span_line("solver.wave", 30, 20, 0, 9.0, 6.0, 0));
        lines.push(span_line("solver.solve", 20, 10, 0, 10.0, 8.0, 0));
        lines.push(span_line("runner.decide", 10, 0, 0, 11.0, 10.0, 0));
        lines.push(
            "{\"t_ms\":11.5,\"level\":\"info\",\"name\":\"birp.provenance\",\"slot\":0,\
             \"path\":\"full_solve\",\"objective\":12.5,\"gap\":0.0,\"nodes\":4,\
             \"lp_warm\":3,\"lp_cold\":1,\"masked_edges\":0,\"degraded\":false}"
                .to_string(),
        );
        lines.push("not json".to_string());
        lines.join("\n")
    }

    #[test]
    fn parses_capture_kinds() {
        let cap = parse_capture(&sample_capture());
        assert!(cap.meta.is_some());
        assert_eq!(cap.spans.len(), 5);
        assert_eq!(cap.provenance.len(), 1);
        assert_eq!(cap.malformed, 1);
        assert_eq!(max_depth(&cap.spans), 4);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_events() {
        let cap = parse_capture(&sample_capture());
        let doc = chrome_trace(&cap.spans);
        let parsed: Value = serde_json::from_str(&doc).expect("chrome trace parses");
        let events = parsed.get("traceEvents").and_then(Value::as_array).unwrap();
        assert_eq!(events.len(), 5);
        let first = &events[0];
        assert_eq!(first.get("ph").and_then(Value::as_str), Some("X"));
        // node span: end 6.0ms, dur 2.0ms -> starts at 4000µs.
        assert_eq!(first.get("ts").and_then(Value::as_f64), Some(4000.0));
        assert_eq!(first.get("dur").and_then(Value::as_f64), Some(2000.0));
    }

    #[test]
    fn collapsed_stacks_aggregate_self_time() {
        let cap = parse_capture(&sample_capture());
        let folded = collapsed_stacks(&cap.spans);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 4, "one line per unique path: {folded}");
        // wave self time: 6ms - 2*2ms children = 2ms = 2000µs.
        assert!(
            folded.contains("runner.decide;solver.solve;solver.wave 2000\n"),
            "{folded}"
        );
        // the two node spans fold into one leaf path: 4000µs.
        assert!(
            folded.contains("runner.decide;solver.solve;solver.wave;solver.node_lp 4000\n"),
            "{folded}"
        );
    }

    #[test]
    fn provenance_table_and_meta_render() {
        let cap = parse_capture(&sample_capture());
        let table = provenance_table(&cap.provenance);
        assert!(table.contains("full_solve"));
        assert!(table.contains("objective"));
        let meta = render_meta(cap.meta.as_ref().unwrap());
        assert!(meta.contains("schema_version"));
        assert!(meta.contains("birp run"));
    }
}
