//! Integration tests for the telemetry facade.
//!
//! The facade keeps one process-global registry, so everything touching
//! `init`/`counter`/`observe`/`shutdown`/`reset` lives in a single `#[test]`
//! (Rust runs tests in one process; two tests fighting over the registry
//! would race). Pure-value types (`LogHistogram`, `MemorySink`, `Event`)
//! are tested separately without global state.

use birp_telemetry as telemetry;
use telemetry::{Event, Level, LogHistogram, MemorySink, Sink, Value};

/// End-to-end JSONL round trip: init a file sink, emit counters /
/// histograms / events, shut down, and parse every line back.
#[test]
fn jsonl_sink_round_trip() {
    let path = std::env::temp_dir().join(format!(
        "birp-telemetry-roundtrip-{}.jsonl",
        std::process::id()
    ));
    telemetry::init_jsonl(&path, Level::Debug).expect("open sink");
    assert!(telemetry::enabled());

    telemetry::counter("test.requests", 3);
    telemetry::counter("test.requests", 4);
    telemetry::observe("test.latency_ms", 12.5);
    telemetry::observe("test.latency_ms", 25.0);
    telemetry::event(
        Level::Info,
        "test.marker",
        &[("answer", Value::Int(42)), ("who", Value::Str("t".into()))],
    );
    // Below the Debug threshold: must not be written.
    telemetry::event(Level::Trace, "test.invisible", &[]);

    let summary = telemetry::summary();
    assert_eq!(summary.counter("test.requests"), Some(7));
    let h = summary.histogram("test.latency_ms").expect("histogram");
    assert_eq!(h.count, 2);
    assert!((h.sum - 37.5).abs() < 1e-9);

    telemetry::shutdown();
    telemetry::reset();
    assert!(!telemetry::enabled());

    let text = std::fs::read_to_string(&path).expect("read back");
    let _ = std::fs::remove_file(&path);
    let lines: Vec<serde_json::Value> = text
        .lines()
        .map(|l| serde_json::from_str(l).expect("every line is valid JSON"))
        .collect();
    let names: Vec<&str> = lines
        .iter()
        .map(|v| v.get("name").and_then(|n| n.as_str()).unwrap())
        .collect();
    assert!(names.contains(&"test.marker"));
    assert!(
        !names.contains(&"test.invisible"),
        "trace event leaked past the Debug threshold"
    );
    // The shutdown record carries the aggregated snapshot.
    let last = lines.last().expect("at least the summary line");
    assert_eq!(
        last.get("name").and_then(|n| n.as_str()),
        Some("telemetry.summary")
    );
    let parsed: telemetry::TelemetrySummary =
        serde_json::from_value(last.get("summary").expect("summary field"))
            .expect("summary deserializes");
    assert_eq!(parsed.counter("test.requests"), Some(7));
    assert_eq!(
        parsed.histogram("test.latency_ms").map(|h| h.count),
        Some(2)
    );
}

#[test]
fn memory_sink_buffers_and_drains() {
    let sink = MemorySink::new();
    assert!(sink.is_empty());
    for i in 0..5 {
        sink.record(&Event {
            level: Level::Info,
            name: format!("e{i}"),
            t_ms: i as f64,
            fields: vec![],
        });
    }
    assert_eq!(sink.len(), 5);
    let events = sink.drain();
    assert_eq!(events.len(), 5);
    assert_eq!(events[3].name, "e3");
    assert!(sink.is_empty(), "drain must leave the sink empty");
}

#[test]
fn log_histogram_aggregation() {
    let mut h = LogHistogram::new();
    for v in [1.0, 2.0, 4.0, 8.0] {
        h.observe(v);
    }
    // Non-finite values must be ignored, not corrupt the aggregates.
    h.observe(f64::NAN);
    h.observe(f64::INFINITY);
    assert_eq!(h.count, 4);
    assert!((h.sum - 15.0).abs() < 1e-9);
    assert!((h.mean() - 3.75).abs() < 1e-9);

    let mut other = LogHistogram::new();
    other.observe(16.0);
    h.merge(&other);
    assert_eq!(h.count, 5);
    assert!((h.sum - 31.0).abs() < 1e-9);

    let s = h.summarize();
    assert_eq!(s.count, 5);
    assert!((s.min - 1.0).abs() < 1e-9);
    assert!((s.max - 16.0).abs() < 1e-9);
    // Log-bucketed quantiles carry <= sqrt(2) relative error.
    let q50 = h.quantile(0.5);
    assert!(
        q50 >= 4.0 / 2f64.sqrt() && q50 <= 4.0 * 2f64.sqrt(),
        "q50={q50}"
    );
}
