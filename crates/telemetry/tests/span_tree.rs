//! Causal span-tree tests: well-formed forest, stable ids under parallel
//! fan-out, and run-to-run determinism of everything except durations.
//!
//! The facade is process-global, so every test here serializes on one lock
//! (see `facade.rs` for the same convention).

use std::sync::Arc;

use birp_telemetry as telemetry;
use parking_lot::Mutex;
use rayon::prelude::*;
use telemetry::{Level, MemorySink, Value};

static TEST_GUARD: Mutex<()> = Mutex::new(());

/// Structure-only view of a span event: (name, id, parent, seq).
type Shape = (String, u64, u64, u64);

fn field_u64(fields: &[(&'static str, Value)], key: &str) -> u64 {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| v.as_u64())
        .unwrap_or_else(|| panic!("span event missing field {key}"))
}

fn field_str(fields: &[(&'static str, Value)], key: &str) -> String {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| v.as_str())
        .unwrap_or_else(|| panic!("span event missing field {key}"))
        .to_string()
}

/// Run a miniature decide-shaped workload: a root span, a sequential probe
/// child, then a solve child fanning `node` spans across rayon workers with
/// item-index child ids. Returns the captured span shapes and durations.
fn run_workload() -> (Vec<Shape>, Vec<f64>) {
    let sink = Arc::new(MemorySink::new());
    telemetry::init(sink.clone(), Level::Trace);
    {
        let decide = telemetry::span("decide");
        let _ = decide.context();
        {
            let _probe = telemetry::span("probe");
        }
        {
            let solve = telemetry::span("solve");
            let ctx = solve.context();
            let out: Vec<u64> = (0..8usize)
                .into_par_iter()
                .map(|i| {
                    let _node = ctx.span_at("node", i as u32);
                    i as u64
                })
                .collect();
            assert_eq!(out.len(), 8);
        }
    }
    telemetry::shutdown();
    let mut shapes = Vec::new();
    let mut durations = Vec::new();
    for ev in sink.drain() {
        if ev.name != "span" {
            continue;
        }
        shapes.push((
            field_str(&ev.fields, "span"),
            field_u64(&ev.fields, "id"),
            field_u64(&ev.fields, "parent"),
            field_u64(&ev.fields, "seq"),
        ));
        durations.push(
            ev.fields
                .iter()
                .find(|(k, _)| *k == "ms")
                .and_then(|(_, v)| v.as_f64())
                .unwrap(),
        );
    }
    telemetry::reset();
    shapes.sort();
    (shapes, durations)
}

#[test]
fn parallel_spans_form_a_well_formed_forest() {
    let _g = TEST_GUARD.lock();
    let (shapes, _) = run_workload();
    // 1 decide + 1 probe + 1 solve + 8 nodes.
    assert_eq!(shapes.len(), 11);

    // Every id is nonzero and unique; every parent is 0 (root) or an id
    // that exists in the capture.
    let ids: std::collections::BTreeSet<u64> = shapes.iter().map(|s| s.1).collect();
    assert_eq!(ids.len(), shapes.len(), "span ids must be unique");
    assert!(!ids.contains(&0), "id 0 is reserved for the root");
    for (name, _, parent, _) in &shapes {
        assert!(
            *parent == 0 || ids.contains(parent),
            "span {name} has dangling parent {parent}"
        );
    }

    // The decide span roots the tree; probe and solve are its children in
    // declaration order; all 8 nodes hang off solve with seq = item index.
    let decide = shapes.iter().find(|s| s.0 == "decide").unwrap();
    assert_eq!(decide.2, 0);
    let probe = shapes.iter().find(|s| s.0 == "probe").unwrap();
    let solve = shapes.iter().find(|s| s.0 == "solve").unwrap();
    assert_eq!((probe.2, probe.3), (decide.1, 0));
    assert_eq!((solve.2, solve.3), (decide.1, 1));
    let mut node_seqs: Vec<u64> = shapes
        .iter()
        .filter(|s| s.0 == "node")
        .map(|s| {
            assert_eq!(s.2, solve.1, "node spans must parent to solve");
            s.3
        })
        .collect();
    node_seqs.sort_unstable();
    assert_eq!(node_seqs, (0..8).collect::<Vec<u64>>());
}

#[test]
fn identical_runs_differ_only_in_durations() {
    let _g = TEST_GUARD.lock();
    let (first, first_ms) = run_workload();
    let (second, second_ms) = run_workload();
    // Structure (names, ids, parents, seqs) is bitwise identical across
    // runs — re-init resets the per-thread span stacks via the trace
    // generation, even though rayon re-spawns worker threads.
    assert_eq!(first, second);
    // Durations exist for every span in both runs (values naturally vary).
    assert_eq!(first_ms.len(), second_ms.len());
    assert!(first_ms.iter().all(|ms| *ms >= 0.0));
}

#[test]
fn disabled_spans_carry_no_ids_and_touch_no_state() {
    let _g = TEST_GUARD.lock();
    telemetry::reset();
    let s = telemetry::span("inert");
    assert_eq!(s.id(), 0);
    let ctx = telemetry::SpanContext::current();
    let child = ctx.span_at("child", 3);
    assert_eq!(child.id(), 0);
    drop(child);
    drop(s);
    // Re-enabling afterwards still produces a clean forest.
    let (shapes, _) = run_workload();
    assert_eq!(shapes.len(), 11);
}
