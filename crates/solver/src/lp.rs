//! Standard-form linear program container.
//!
//! Both simplex engines consume an [`LpProblem`]:
//!
//! ```text
//! minimise   c · x
//! subject to row_i · x  {<=, =, >=}  rhs_i      for every row
//!            lower_j <= x_j <= upper_j           for every column
//! ```
//!
//! Lower bounds must be finite (the BIRP per-slot problems are all
//! non-negative); upper bounds may be `f64::INFINITY`. Rows are sparse,
//! which matters because the per-slot scheduling matrices are > 95 % zeros.

/// Row comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowCmp {
    Le,
    Eq,
    Ge,
}

/// One sparse constraint row.
#[derive(Debug, Clone, PartialEq)]
pub struct LpRow {
    /// `(column, coefficient)` pairs; columns unique and sorted.
    pub coeffs: Vec<(usize, f64)>,
    pub cmp: RowCmp,
    pub rhs: f64,
}

impl LpRow {
    /// Evaluate the left-hand side at `x`.
    pub fn lhs(&self, x: &[f64]) -> f64 {
        self.coeffs.iter().map(|&(j, c)| c * x[j]).sum()
    }

    /// Signed violation of this row at `x` (positive means violated).
    pub fn violation(&self, x: &[f64]) -> f64 {
        let lhs = self.lhs(x);
        match self.cmp {
            RowCmp::Le => lhs - self.rhs,
            RowCmp::Ge => self.rhs - lhs,
            RowCmp::Eq => (lhs - self.rhs).abs(),
        }
    }
}

/// A standard-form LP.
///
/// `PartialEq` compares every column bound, objective entry and sparse row
/// bitwise (f64 `==`, no tolerance) — the incremental-edit differential
/// suites assert edited problems against fresh builds with it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LpProblem {
    /// Objective coefficients, one per column.
    pub objective: Vec<f64>,
    /// Column lower bounds (finite).
    pub lower: Vec<f64>,
    /// Column upper bounds (may be `+inf`).
    pub upper: Vec<f64>,
    pub rows: Vec<LpRow>,
}

/// Outcome classification of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    Optimal,
    Infeasible,
    Unbounded,
}

/// Result of an LP solve; `x`/`objective` are meaningful only when
/// `status == Optimal`.
#[derive(Debug, Clone)]
pub struct LpSolution {
    pub status: LpStatus,
    pub objective: f64,
    pub x: Vec<f64>,
    /// Simplex iterations spent (both phases).
    pub iterations: usize,
}

impl LpSolution {
    pub fn infeasible() -> Self {
        LpSolution {
            status: LpStatus::Infeasible,
            objective: f64::INFINITY,
            x: Vec::new(),
            iterations: 0,
        }
    }

    pub fn unbounded() -> Self {
        LpSolution {
            status: LpStatus::Unbounded,
            objective: f64::NEG_INFINITY,
            x: Vec::new(),
            iterations: 0,
        }
    }
}

impl LpProblem {
    /// An empty problem with `n` columns, zero objective and bounds `[0, inf)`.
    pub fn with_columns(n: usize) -> Self {
        LpProblem {
            objective: vec![0.0; n],
            lower: vec![0.0; n],
            upper: vec![f64::INFINITY; n],
            rows: Vec::new(),
        }
    }

    pub fn num_cols(&self) -> usize {
        self.objective.len()
    }

    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Structural constraint-matrix nonzeros (slacks excluded). The sparse
    /// revised simplex scales with this, not with `m × n`.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(|r| r.coeffs.len()).sum()
    }

    /// Append a sparse row. Coefficients are sorted and merged.
    pub fn push_row(&mut self, mut coeffs: Vec<(usize, f64)>, cmp: RowCmp, rhs: f64) {
        coeffs.sort_unstable_by_key(|&(j, _)| j);
        coeffs.dedup_by(|b, a| {
            if a.0 == b.0 {
                a.1 += b.1;
                true
            } else {
                false
            }
        });
        coeffs.retain(|&(_, c)| c != 0.0);
        self.rows.push(LpRow { coeffs, cmp, rhs });
    }

    /// Replace the right-hand side of row `i` in place. The row's sparsity
    /// pattern is untouched, so a simplex engine holding a factorization of
    /// the current basis stays valid (only `x_B = B⁻¹ b` must be refreshed).
    pub fn set_rhs(&mut self, i: usize, rhs: f64) {
        self.rows[i].rhs = rhs;
    }

    /// Set (or insert, or remove when `c == 0`) the coefficient of column
    /// `col` in row `i`, preserving the sorted-unique invariant of
    /// [`LpRow::coeffs`]. Zero coefficients are dropped, matching
    /// [`push_row`](Self::push_row), so an edited row is structurally
    /// identical to one built fresh with the same values.
    pub fn set_coeff(&mut self, i: usize, col: usize, c: f64) {
        let coeffs = &mut self.rows[i].coeffs;
        match coeffs.binary_search_by_key(&col, |&(j, _)| j) {
            Ok(pos) => {
                if c == 0.0 {
                    coeffs.remove(pos);
                } else {
                    coeffs[pos].1 = c;
                }
            }
            Err(pos) => {
                if c != 0.0 {
                    coeffs.insert(pos, (col, c));
                }
            }
        }
    }

    /// Append a new column with the given bounds and objective coefficient;
    /// returns its index. The column starts with no row coefficients
    /// (populate via [`set_coeff`](Self::set_coeff)).
    pub fn add_col(&mut self, lower: f64, upper: f64, obj: f64) -> usize {
        let j = self.num_cols();
        self.objective.push(obj);
        self.lower.push(lower);
        self.upper.push(upper);
        j
    }

    /// Remove the last column, stripping any row coefficients that
    /// reference it. Only the *last* column is removable so surviving
    /// column indices never shift — the invariant the incremental model
    /// layer relies on for handle stability.
    pub fn remove_last_col(&mut self) {
        let j = self.num_cols() - 1;
        self.objective.pop();
        self.lower.pop();
        self.upper.pop();
        for row in &mut self.rows {
            if let Some(last) = row.coeffs.last() {
                if last.0 == j {
                    row.coeffs.pop();
                }
            }
        }
    }

    /// Maximum feasibility violation of `x` over all rows and bounds.
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let mut worst: f64 = 0.0;
        for row in &self.rows {
            worst = worst.max(row.violation(x));
        }
        for (j, &xj) in x.iter().enumerate().take(self.num_cols()) {
            worst = worst.max(self.lower[j] - xj);
            if self.upper[j].is_finite() {
                worst = worst.max(xj - self.upper[j]);
            }
        }
        worst
    }

    /// Like [`max_violation`](Self::max_violation) but checked against an
    /// external box `[lo, hi]` instead of this problem's own bounds. Branch
    /// and bound nodes share one `LpProblem` and carry their tightened
    /// bounds separately, so feasibility must be judged against the node's
    /// box.
    pub fn max_violation_with_bounds(&self, x: &[f64], lo: &[f64], hi: &[f64]) -> f64 {
        let mut worst: f64 = 0.0;
        for row in &self.rows {
            worst = worst.max(row.violation(x));
        }
        for (j, &xj) in x.iter().enumerate().take(self.num_cols()) {
            worst = worst.max(lo[j] - xj);
            if hi[j].is_finite() {
                worst = worst.max(xj - hi[j]);
            }
        }
        worst
    }

    /// Objective value at `x`.
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Validate bounds: every lower bound finite and `lower <= upper`.
    /// Returns the offending column on failure.
    pub fn validate_bounds(&self) -> Result<(), usize> {
        for j in 0..self.num_cols() {
            if !self.lower[j].is_finite() || self.upper[j] < self.lower[j] || self.upper[j].is_nan()
            {
                return Err(j);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_row_merges_and_sorts() {
        let mut lp = LpProblem::with_columns(3);
        lp.push_row(
            vec![(2, 1.0), (0, 2.0), (2, 3.0), (1, 0.0)],
            RowCmp::Le,
            7.0,
        );
        assert_eq!(lp.rows[0].coeffs, vec![(0, 2.0), (2, 4.0)]);
    }

    #[test]
    fn violation_signs() {
        let mut lp = LpProblem::with_columns(1);
        lp.push_row(vec![(0, 1.0)], RowCmp::Le, 1.0);
        lp.push_row(vec![(0, 1.0)], RowCmp::Ge, 3.0);
        lp.push_row(vec![(0, 1.0)], RowCmp::Eq, 2.0);
        let x = [2.0];
        assert!((lp.rows[0].violation(&x) - 1.0).abs() < 1e-12); // 2 > 1
        assert!((lp.rows[1].violation(&x) - 1.0).abs() < 1e-12); // 2 < 3
        assert!((lp.rows[2].violation(&x) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn max_violation_checks_bounds_too() {
        let mut lp = LpProblem::with_columns(2);
        lp.upper[0] = 1.0;
        lp.lower[1] = 0.5;
        assert!((lp.max_violation(&[2.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((lp.max_violation(&[0.0, 0.0]) - 0.5).abs() < 1e-12);
        assert_eq!(lp.max_violation(&[1.0, 0.5]), 0.0);
    }

    #[test]
    fn validate_bounds_rejects_bad_columns() {
        let mut lp = LpProblem::with_columns(2);
        lp.lower[1] = f64::NEG_INFINITY;
        assert_eq!(lp.validate_bounds(), Err(1));
        lp.lower[1] = 2.0;
        lp.upper[1] = 1.0;
        assert_eq!(lp.validate_bounds(), Err(1));
        lp.upper[1] = 2.0;
        assert_eq!(lp.validate_bounds(), Ok(()));
    }

    #[test]
    fn set_coeff_matches_fresh_row() {
        // Start from one row, edit it coefficient-by-coefficient into the
        // shape of another, and require bitwise structural equality with a
        // fresh build of the target.
        let mut edited = LpProblem::with_columns(4);
        edited.push_row(vec![(0, 1.0), (2, 3.0)], RowCmp::Le, 5.0);
        edited.set_coeff(0, 1, 2.0); // insert in the middle
        edited.set_coeff(0, 2, 0.0); // remove
        edited.set_coeff(0, 3, -1.0); // append
        edited.set_coeff(0, 0, 4.0); // update
        edited.set_rhs(0, 9.0);

        let mut fresh = LpProblem::with_columns(4);
        fresh.push_row(vec![(0, 4.0), (1, 2.0), (3, -1.0)], RowCmp::Le, 9.0);
        assert_eq!(edited, fresh);
    }

    #[test]
    fn add_and_remove_columns_round_trip() {
        let mut edited = LpProblem::with_columns(2);
        edited.push_row(vec![(0, 1.0), (1, 1.0)], RowCmp::Le, 4.0);
        let j = edited.add_col(0.0, 2.0, 7.0);
        assert_eq!(j, 2);
        edited.set_coeff(0, j, 5.0);

        let mut fresh = LpProblem::with_columns(3);
        fresh.upper[2] = 2.0;
        fresh.objective[2] = 7.0;
        fresh.push_row(vec![(0, 1.0), (1, 1.0), (2, 5.0)], RowCmp::Le, 4.0);
        assert_eq!(edited, fresh);

        edited.remove_last_col();
        let mut back = LpProblem::with_columns(2);
        back.push_row(vec![(0, 1.0), (1, 1.0)], RowCmp::Le, 4.0);
        assert_eq!(edited, back);
    }

    #[test]
    fn objective_at_dot_product() {
        let mut lp = LpProblem::with_columns(3);
        lp.objective = vec![1.0, -2.0, 0.5];
        assert!((lp.objective_at(&[1.0, 1.0, 2.0]) - 0.0).abs() < 1e-12);
    }
}
