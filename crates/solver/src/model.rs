//! The user-facing modelling layer.
//!
//! [`Model`] collects variables and linear constraints, plus *exactly
//! linearised products* of a binary variable with a bounded variable
//! ([`Model::linearized_product`]). This is precisely the structure of the
//! BIRP per-slot problem: the paper's "integer quadratic program" contains
//! only `x_ijk * b_ijk` terms with `x` binary, which the McCormick envelope
//! represents without any approximation. Solving therefore reduces to a
//! MILP handled by [`crate::milp::branch_and_bound`].

use std::collections::HashMap;

use crate::error::SolverError;
use crate::expr::{LinExpr, VarId, VarKind};
use crate::lp::{LpProblem, LpSolution, RowCmp};
use crate::milp::{branch_and_bound, BnbConfig, MilpProblem, MilpStatus, SolveBudget};
use crate::simplex::{solve_bounded, SimplexOptions};

/// Configuration forwarded to branch and bound.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Maximum LP relaxations solved before returning the incumbent.
    pub node_limit: usize,
    /// Relative optimality gap at which the search stops.
    pub rel_gap: f64,
    /// Evaluate frontier nodes in rayon-parallel waves.
    pub parallel: bool,
    /// Run the diving heuristic at the root.
    pub root_dive: bool,
    /// Skip the diving heuristics entirely when a warm start was accepted
    /// as the initial incumbent (see [`BnbConfig::trust_warm`]). Set per
    /// solve by callers that hold a known-strong incumbent, such as the
    /// temporal-reuse layer's repaired previous-slot schedule.
    pub trust_warm: bool,
    /// Warm-start node LPs from parent basis snapshots (dual-simplex
    /// re-optimisation). Disable only for A/B validation of the warm path.
    pub warm_nodes: bool,
    /// Run presolve reductions before branch and bound. On by default;
    /// disable only for A/B validation (e.g. the conformance differential
    /// suite cross-checks both paths against a brute-force oracle).
    pub presolve: bool,
    /// Simplex engine tunables (pivot cap, partial-pricing candidate list).
    pub simplex: SimplexOptions,
    /// Hard degradation budget (nodes / pivots / wall-clock). On exhaustion
    /// the solve returns its best incumbent flagged `degraded`, or
    /// [`SolverError::BudgetExhausted`] if no incumbent exists yet.
    pub budget: SolveBudget,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            node_limit: 20_000,
            rel_gap: 1e-6,
            parallel: false,
            root_dive: true,
            trust_warm: false,
            warm_nodes: true,
            presolve: true,
            simplex: SimplexOptions::default(),
            budget: SolveBudget::unlimited(),
        }
    }
}

impl SolverConfig {
    /// Preset used by the BIRP experiment runner: bounded node budget,
    /// modest gap, parallel node evaluation. Gurobi-with-a-time-limit moral
    /// equivalent.
    pub fn scheduling() -> Self {
        SolverConfig {
            node_limit: 96,
            rel_gap: 5e-3,
            parallel: true,
            root_dive: true,
            ..Self::default()
        }
    }
}

/// Terminal status of a model solve that produced a point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelStatus {
    /// Proven optimal within the configured gap.
    Optimal,
    /// Feasible incumbent; node budget exhausted before the gap closed.
    Feasible,
}

/// A feasible (possibly optimal) solution to a [`Model`].
#[derive(Debug, Clone)]
pub struct Solution {
    pub status: ModelStatus,
    pub objective: f64,
    pub values: Vec<f64>,
    /// Best proven bound (same sense as the objective).
    pub bound: f64,
    /// Relative gap between objective and bound.
    pub gap: f64,
    /// LP relaxations solved.
    pub nodes: usize,
    /// The solve budget ran out before the gap closed: the point is the best
    /// incumbent found, not a proven (near-)optimum.
    pub degraded: bool,
    /// Incumbent trajectory `(nodes_solved, objective, gap)` in install
    /// order (see [`crate::milp::MilpResult::incumbents`]).
    pub incumbents: Vec<(u64, f64, f64)>,
}

impl Solution {
    /// Value of a variable in this solution.
    #[inline]
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.index()]
    }

    /// Value rounded to the nearest integer (for integer/binary variables).
    #[inline]
    pub fn int_value(&self, v: VarId) -> i64 {
        self.values[v.index()].round() as i64
    }
}

/// Opaque handle to a constraint row inside a [`Model`], returned by
/// [`Model::add_le`]/[`add_ge`](Model::add_ge)/[`add_eq`](Model::add_eq) and
/// consumed by the in-place edit API ([`Model::set_rhs`],
/// [`Model::set_row_coeff`]). Handles are dense insertion indices and stay
/// valid for the life of the model — rows are never removed or reordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub(crate) usize);

impl RowId {
    /// The dense row index of this constraint (insertion order).
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
struct VarInfo {
    name: String,
    kind: VarKind,
    lower: f64,
    upper: f64,
    obj: f64,
}

#[derive(Debug, Clone)]
struct RowInfo {
    name: String,
    expr: LinExpr,
    cmp: RowCmp,
    rhs: f64,
}

/// Mixed-integer model builder. Minimisation sense.
#[derive(Debug, Clone, Default)]
pub struct Model {
    vars: Vec<VarInfo>,
    rows: Vec<RowInfo>,
    products: HashMap<(VarId, VarId), VarId>,
}

impl Model {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a variable; returns its handle.
    ///
    /// For `VarKind::Binary` the bounds are clamped into `[0, 1]`.
    pub fn add_var(
        &mut self,
        name: &str,
        kind: VarKind,
        lower: f64,
        upper: f64,
        obj: f64,
    ) -> VarId {
        let (lower, upper) = match kind {
            VarKind::Binary => (lower.max(0.0), upper.min(1.0)),
            _ => (lower, upper),
        };
        let id = VarId(self.vars.len());
        self.vars.push(VarInfo {
            name: name.to_string(),
            kind,
            lower,
            upper,
            obj,
        });
        id
    }

    /// Shorthand: continuous variable in `[0, +inf)` with objective `obj`.
    pub fn add_nonneg(&mut self, name: &str, obj: f64) -> VarId {
        self.add_var(name, VarKind::Continuous, 0.0, f64::INFINITY, obj)
    }

    /// Shorthand: binary variable with objective `obj`.
    pub fn add_binary(&mut self, name: &str, obj: f64) -> VarId {
        self.add_var(name, VarKind::Binary, 0.0, 1.0, obj)
    }

    /// Change the objective coefficient of `v`.
    pub fn set_objective(&mut self, v: VarId, obj: f64) {
        self.vars[v.index()].obj = obj;
    }

    /// Add to the objective coefficient of `v`.
    pub fn add_objective(&mut self, v: VarId, obj: f64) {
        self.vars[v.index()].obj += obj;
    }

    /// Tighten (replace) the bounds of `v`.
    pub fn set_bounds(&mut self, v: VarId, lower: f64, upper: f64) {
        self.vars[v.index()].lower = lower;
        self.vars[v.index()].upper = upper;
    }

    pub fn bounds(&self, v: VarId) -> (f64, f64) {
        (self.vars[v.index()].lower, self.vars[v.index()].upper)
    }

    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.index()].name
    }

    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Name of the `i`-th constraint (insertion order).
    pub fn constraint_name(&self, i: usize) -> &str {
        &self.rows[i].name
    }

    fn add_row(&mut self, name: &str, expr: impl Into<LinExpr>, cmp: RowCmp, rhs: f64) -> RowId {
        let mut expr = expr.into();
        expr.compact();
        let adj_rhs = rhs - expr.constant;
        expr.constant = 0.0;
        let id = RowId(self.rows.len());
        self.rows.push(RowInfo {
            name: name.to_string(),
            expr,
            cmp,
            rhs: adj_rhs,
        });
        id
    }

    /// Add constraint `expr <= rhs`; returns the row's handle.
    pub fn add_le(&mut self, name: &str, expr: impl Into<LinExpr>, rhs: f64) -> RowId {
        self.add_row(name, expr, RowCmp::Le, rhs)
    }

    /// Add constraint `expr >= rhs`; returns the row's handle.
    pub fn add_ge(&mut self, name: &str, expr: impl Into<LinExpr>, rhs: f64) -> RowId {
        self.add_row(name, expr, RowCmp::Ge, rhs)
    }

    /// Add constraint `expr == rhs`; returns the row's handle.
    pub fn add_eq(&mut self, name: &str, expr: impl Into<LinExpr>, rhs: f64) -> RowId {
        self.add_row(name, expr, RowCmp::Eq, rhs)
    }

    /// Replace the right-hand side of a constraint in place.
    ///
    /// Note [`add_le`](Self::add_le) et al. fold the expression's constant
    /// into the stored rhs at insertion; `set_rhs` sets the *folded* value
    /// directly, so callers whose original expression carried a constant
    /// must subtract it themselves (the BIRP slot rows carry none).
    pub fn set_rhs(&mut self, row: RowId, rhs: f64) {
        self.rows[row.0].rhs = rhs;
    }

    /// The (folded) right-hand side of a constraint.
    pub fn rhs(&self, row: RowId) -> f64 {
        self.rows[row.0].rhs
    }

    /// Set (insert, update, or — when `c == 0` — remove) the coefficient of
    /// `v` in `row`, preserving the compacted sorted-unique-nonzero term
    /// invariant. An edited row therefore lowers through
    /// [`to_milp`](Self::to_milp) to exactly the bytes a fresh build with
    /// the same values would produce, which is the invariant the
    /// incremental re-solve differential suites pin down.
    pub fn set_row_coeff(&mut self, row: RowId, v: VarId, c: f64) {
        let terms = &mut self.rows[row.0].expr.terms;
        match terms.binary_search_by_key(&v, |&(tv, _)| tv) {
            Ok(pos) => {
                if c == 0.0 {
                    terms.remove(pos);
                } else {
                    terms[pos].1 = c;
                }
            }
            Err(pos) => {
                if c != 0.0 {
                    terms.insert(pos, (v, c));
                }
            }
        }
    }

    /// The coefficient of `v` in `row` (0 when absent).
    pub fn row_coeff(&self, row: RowId, v: VarId) -> f64 {
        self.rows[row.0]
            .expr
            .terms
            .iter()
            .find(|&&(tv, _)| tv == v)
            .map_or(0.0, |&(_, c)| c)
    }

    /// Return a variable `w` that equals `a * b` at every feasible integer
    /// point, where at least one of `a`, `b` is binary and the other has
    /// finite bounds.
    ///
    /// Uses the exact McCormick envelope for a binary factor:
    /// `w <= u*bin`, `w >= l*bin`, `w <= other - l*(1-bin)`,
    /// `w >= other - u*(1-bin)`. Results are memoised, so requesting the
    /// same product twice returns the same variable.
    pub fn linearized_product(&mut self, a: VarId, b: VarId) -> Result<VarId, SolverError> {
        for v in [a, b] {
            if v.index() >= self.vars.len() {
                return Err(SolverError::UnknownVariable { var: v.index() });
            }
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&w) = self.products.get(&key) {
            return Ok(w);
        }
        // Squared binary: x*x = x.
        if a == b && self.vars[a.index()].kind == VarKind::Binary {
            self.products.insert(key, a);
            return Ok(a);
        }
        let (bin, other) = if self.vars[a.index()].kind == VarKind::Binary {
            (a, b)
        } else if self.vars[b.index()].kind == VarKind::Binary {
            (b, a)
        } else {
            return Err(SolverError::NonLinearizable {
                detail: format!(
                    "product {} * {} has no binary factor",
                    self.vars[a.index()].name,
                    self.vars[b.index()].name
                ),
            });
        };
        let (l, u) = self.bounds(other);
        if !l.is_finite() || !u.is_finite() {
            return Err(SolverError::NonLinearizable {
                detail: format!(
                    "non-binary factor {} has unbounded domain [{l}, {u}]",
                    self.vars[other.index()].name
                ),
            });
        }
        let wname = format!(
            "prod({},{})",
            self.vars[bin.index()].name,
            self.vars[other.index()].name
        );
        let w = self.add_var(&wname, VarKind::Continuous, l.min(0.0), u.max(0.0), 0.0);
        self.add_le(
            &format!("{wname}:ub_bin"),
            LinExpr::term(w, 1.0) - LinExpr::term(bin, u),
            0.0,
        );
        self.add_ge(
            &format!("{wname}:lb_bin"),
            LinExpr::term(w, 1.0) - LinExpr::term(bin, l),
            0.0,
        );
        self.add_le(
            &format!("{wname}:ub_other"),
            LinExpr::term(w, 1.0) - LinExpr::term(other, 1.0) - LinExpr::term(bin, l),
            -l,
        );
        self.add_ge(
            &format!("{wname}:lb_other"),
            LinExpr::term(w, 1.0) - LinExpr::term(other, 1.0) - LinExpr::term(bin, u),
            -u,
        );
        self.products.insert(key, w);
        Ok(w)
    }

    /// Lower this model to a [`MilpProblem`].
    pub fn to_milp(&self) -> Result<MilpProblem, SolverError> {
        let n = self.vars.len();
        let mut lp = LpProblem::with_columns(n);
        for (j, v) in self.vars.iter().enumerate() {
            if v.lower > v.upper || !v.lower.is_finite() || v.upper.is_nan() {
                return Err(SolverError::InvalidBounds {
                    var: j,
                    lower: v.lower,
                    upper: v.upper,
                });
            }
            lp.lower[j] = v.lower;
            lp.upper[j] = v.upper;
            lp.objective[j] = v.obj;
        }
        for row in &self.rows {
            if let Some(mv) = row.expr.max_var() {
                if mv >= n {
                    return Err(SolverError::UnknownVariable { var: mv });
                }
            }
            lp.push_row(
                row.expr
                    .terms
                    .iter()
                    .map(|&(v, c)| (v.index(), c))
                    .collect(),
                row.cmp,
                row.rhs,
            );
        }
        let integers: Vec<usize> = self
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind.is_integral())
            .map(|(j, _)| j)
            .collect();
        Ok(MilpProblem { lp, integers })
    }

    /// Solve the model to (near-)optimality.
    pub fn solve(&self, cfg: &SolverConfig) -> Result<Solution, SolverError> {
        self.solve_warm(cfg, None)
    }

    /// Solve with an optional known-feasible warm-start point (dense, one
    /// value per variable). An invalid warm start is silently ignored.
    pub fn solve_warm(
        &self,
        cfg: &SolverConfig,
        warm_start: Option<Vec<f64>>,
    ) -> Result<Solution, SolverError> {
        let milp = self.to_milp()?;
        let bnb = BnbConfig {
            node_limit: cfg.node_limit,
            rel_gap: cfg.rel_gap,
            parallel: cfg.parallel,
            root_dive: cfg.root_dive,
            trust_warm: cfg.trust_warm,
            warm_start,
            presolve: cfg.presolve,
            warm_nodes: cfg.warm_nodes,
            simplex: cfg.simplex,
            budget: cfg.budget,
            ..BnbConfig::default()
        };
        let res = branch_and_bound(&milp, &bnb);
        match res.status {
            MilpStatus::Infeasible => Err(SolverError::Infeasible),
            MilpStatus::Unbounded => Err(SolverError::Unbounded),
            MilpStatus::Feasible if !res.objective.is_finite() => {
                Err(SolverError::BudgetExhausted { nodes: res.nodes })
            }
            MilpStatus::Optimal | MilpStatus::Feasible => Ok(Solution {
                status: if res.status == MilpStatus::Optimal {
                    ModelStatus::Optimal
                } else {
                    ModelStatus::Feasible
                },
                objective: res.objective,
                values: res.x,
                bound: res.bound,
                gap: res.gap,
                nodes: res.nodes,
                degraded: res.degraded,
                incumbents: res.incumbents,
            }),
        }
    }

    /// Solve the continuous relaxation only (integrality dropped).
    /// Used by the OAEI baseline's randomised rounding.
    pub fn solve_relaxation(&self) -> Result<LpSolution, SolverError> {
        let milp = self.to_milp()?;
        Ok(solve_bounded(&milp.lp))
    }

    /// Objective value `c · x` at a point (no feasibility check).
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        self.vars.iter().zip(x).map(|(v, &xi)| v.obj * xi).sum()
    }

    /// Maximum violation of this model's rows and bounds at `x`
    /// (0 means feasible; integrality is not checked).
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        match self.to_milp() {
            Ok(milp) => milp.lp.max_violation(x),
            Err(_) => f64::INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_mip_via_model() {
        let mut m = Model::new();
        let x = m.add_var("x", VarKind::Integer, 0.0, 10.0, -5.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, 10.0, -4.0);
        m.add_le("r1", 6.0 * x + 4.0 * y, 24.0);
        m.add_le("r2", x + 2.0 * y, 6.0);
        let sol = m.solve(&SolverConfig::default()).unwrap();
        // LP optimum (3, 1.5) obj -21; integer x: x=3 -> y = 1.5 feasible
        assert_eq!(sol.int_value(x), 3);
        assert!((sol.value(y) - 1.5).abs() < 1e-6);
        assert!((sol.objective + 21.0).abs() < 1e-6);
    }

    #[test]
    fn binary_bounds_clamped() {
        let mut m = Model::new();
        let b = m.add_var("b", VarKind::Binary, -3.0, 7.0, 1.0);
        assert_eq!(m.bounds(b), (0.0, 1.0));
    }

    #[test]
    fn linearized_product_binary_times_integer() {
        // maximise w = x*b with b in [0, 5] integer, but x costs 6:
        // objective min 6x - w. With w = 5 when x=1: 6 - 5 = 1 > 0, so x=0.
        let mut m = Model::new();
        let x = m.add_binary("x", 6.0);
        let b = m.add_var("b", VarKind::Integer, 0.0, 5.0, 0.0);
        let w = m.linearized_product(x, b).unwrap();
        m.set_objective(w, -1.0);
        let sol = m.solve(&SolverConfig::default()).unwrap();
        assert_eq!(sol.int_value(x), 0);
        assert!(sol.value(w).abs() < 1e-6, "w must be 0 when x = 0");

        // Now make x cheap: x=1 and w = b = 5.
        let mut m2 = Model::new();
        let x2 = m2.add_binary("x", 0.5);
        let b2 = m2.add_var("b", VarKind::Integer, 0.0, 5.0, 0.0);
        let w2 = m2.linearized_product(x2, b2).unwrap();
        m2.set_objective(w2, -1.0);
        let sol2 = m2.solve(&SolverConfig::default()).unwrap();
        assert_eq!(sol2.int_value(x2), 1);
        assert!((sol2.value(w2) - 5.0).abs() < 1e-6);
        assert!((sol2.value(b2) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn product_forces_w_to_track_b_when_binary_on() {
        let mut m = Model::new();
        let x = m.add_binary("x", 0.0);
        let b = m.add_var("b", VarKind::Integer, 0.0, 8.0, 0.0);
        let w = m.linearized_product(x, b).unwrap();
        m.add_eq("fix_x", LinExpr::from(x), 1.0);
        m.add_eq("fix_b", LinExpr::from(b), 3.0);
        m.set_objective(w, 1.0); // push w down; equality must hold anyway
        let sol = m.solve(&SolverConfig::default()).unwrap();
        assert!((sol.value(w) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn product_is_memoised_and_symmetric() {
        let mut m = Model::new();
        let x = m.add_binary("x", 0.0);
        let b = m.add_var("b", VarKind::Integer, 0.0, 5.0, 0.0);
        let w1 = m.linearized_product(x, b).unwrap();
        let w2 = m.linearized_product(b, x).unwrap();
        assert_eq!(w1, w2);
        let nvars = m.num_vars();
        let _ = m.linearized_product(x, b).unwrap();
        assert_eq!(m.num_vars(), nvars);
    }

    #[test]
    fn binary_square_is_identity() {
        let mut m = Model::new();
        let x = m.add_binary("x", 0.0);
        let w = m.linearized_product(x, x).unwrap();
        assert_eq!(w, x);
    }

    #[test]
    fn product_of_two_continuous_rejected() {
        let mut m = Model::new();
        let a = m.add_var("a", VarKind::Continuous, 0.0, 1.0, 0.0);
        let b = m.add_var("b", VarKind::Continuous, 0.0, 1.0, 0.0);
        assert!(matches!(
            m.linearized_product(a, b),
            Err(SolverError::NonLinearizable { .. })
        ));
    }

    #[test]
    fn product_with_unbounded_factor_rejected() {
        let mut m = Model::new();
        let x = m.add_binary("x", 0.0);
        let b = m.add_nonneg("b", 0.0); // upper = +inf
        assert!(matches!(
            m.linearized_product(x, b),
            Err(SolverError::NonLinearizable { .. })
        ));
    }

    #[test]
    fn infeasible_model_errors() {
        let mut m = Model::new();
        let x = m.add_var("x", VarKind::Continuous, 0.0, 1.0, 0.0);
        m.add_ge("impossible", LinExpr::from(x), 5.0);
        assert!(matches!(
            m.solve(&SolverConfig::default()),
            Err(SolverError::Infeasible)
        ));
    }

    #[test]
    fn invalid_bounds_detected_at_lowering() {
        let mut m = Model::new();
        let x = m.add_var("x", VarKind::Continuous, 0.0, 1.0, 0.0);
        m.set_bounds(x, 2.0, 1.0);
        assert!(matches!(
            m.solve(&SolverConfig::default()),
            Err(SolverError::InvalidBounds { var: 0, .. })
        ));
    }

    #[test]
    fn expression_constant_folds_into_rhs() {
        let mut m = Model::new();
        let x = m.add_var("x", VarKind::Continuous, 0.0, 10.0, 1.0);
        // x + 3 >= 5  <=>  x >= 2
        m.add_ge("shifted", LinExpr::from(x) + 3.0, 5.0);
        let sol = m.solve(&SolverConfig::default()).unwrap();
        assert!((sol.value(x) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn edited_model_lowers_identically_to_fresh_build() {
        // Build a model, mutate rhs / coefficients / bounds / objective in
        // place, and require the lowering to match — bitwise — a model built
        // fresh with the final values. This is the core invariant of the
        // incremental re-solve path: delta-edited models are
        // indistinguishable from rebuilds at the LpProblem level.
        let build = |rhs: f64, c0: f64, c2: f64, ub: f64, obj: f64| {
            let mut m = Model::new();
            let x = m.add_var("x", VarKind::Integer, 0.0, ub, obj);
            let y = m.add_var("y", VarKind::Continuous, 0.0, 10.0, -4.0);
            let z = m.add_var("z", VarKind::Continuous, 0.0, 10.0, 0.0);
            let mut e = LinExpr::new();
            if c0 != 0.0 {
                e.add_term(x, c0);
            }
            e.add_term(y, 4.0);
            if c2 != 0.0 {
                e.add_term(z, c2);
            }
            let r = m.add_le("r1", e, rhs);
            m.add_le("r2", x + 2.0 * y, 6.0);
            (m, x, z, r)
        };
        let (mut edited, x, z, r1) = build(24.0, 6.0, 0.0, 10.0, -5.0);
        edited.set_rhs(r1, 30.0);
        edited.set_row_coeff(r1, x, 0.0); // remove
        edited.set_row_coeff(r1, z, 2.5); // insert
        edited.set_bounds(x, 0.0, 8.0);
        edited.set_objective(x, -6.0);
        let (fresh, _, _, _) = build(30.0, 0.0, 2.5, 8.0, -6.0);
        assert_eq!(edited.to_milp().unwrap(), fresh.to_milp().unwrap());
        assert_eq!(edited.rhs(r1), 30.0);
        assert_eq!(edited.row_coeff(r1, x), 0.0);
        assert_eq!(edited.row_coeff(r1, z), 2.5);
    }

    #[test]
    fn set_row_coeff_update_keeps_sorted_terms() {
        let mut m = Model::new();
        let a = m.add_nonneg("a", 0.0);
        let b = m.add_nonneg("b", 0.0);
        let c = m.add_nonneg("c", 0.0);
        let r = m.add_ge("r", a + c, 1.0);
        m.set_row_coeff(r, b, 3.0);
        m.set_row_coeff(r, a, 2.0);
        let milp = m.to_milp().unwrap();
        assert_eq!(milp.lp.rows[0].coeffs, vec![(0, 2.0), (1, 3.0), (2, 1.0)]);
    }

    #[test]
    fn relaxation_ignores_integrality() {
        let mut m = Model::new();
        let x = m.add_var("x", VarKind::Integer, 0.0, 10.0, -1.0);
        m.add_le("half", 2.0 * x, 7.0);
        let rel = m.solve_relaxation().unwrap();
        assert!((rel.x[0] - 3.5).abs() < 1e-6);
        let int = m.solve(&SolverConfig::default()).unwrap();
        assert_eq!(int.int_value(x), 3);
    }
}
