//! Branch-and-bound mixed-integer linear programming.
//!
//! Best-first search over LP relaxations solved by the bounded-variable
//! simplex. Branching variable: most fractional. Incumbents come from three
//! sources: integral LP relaxations, the LP-guided diving heuristic
//! ([`crate::heuristic::dive`]) run at the root, and leaves of the search.
//!
//! With `parallel = true` the search proceeds in *waves*: up to one node per
//! worker is popped from the frontier, their LPs are solved with rayon, and
//! the results are folded back in deterministically (the fold order is the
//! pop order, not the completion order, so runs are reproducible).
//!
//! Node LPs are solved on per-thread persistent [`SimplexEngine`]s
//! ([`with_engine`]): the shared `LpProblem` rows are never cloned per
//! node, and each solved node leaves an [`EngineSnapshot`] that its two
//! children restore and re-optimise with the dual simplex — a few pivots
//! instead of a full two-phase solve, since branching only shifts one
//! bound and the parent basis stays dual-feasible. Snapshot memory on the
//! frontier is capped by [`BnbConfig::warm_memory_budget`] with a
//! deterministic gate, so behaviour is reproducible at any budget.
//!
//! [`SimplexEngine`]: crate::simplex::SimplexEngine

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use birp_telemetry as telemetry;
use rayon::prelude::*;

use crate::heuristic::dive;
use crate::lp::{LpProblem, LpStatus};
use crate::simplex::{with_engine, EngineSnapshot, SimplexOptions};
use crate::INT_TOL;

/// A MILP: an [`LpProblem`] plus the set of columns required to be integral.
///
/// `PartialEq` is bitwise over the LP and the integer set — the
/// incremental-edit differential suites use it to prove an edited model
/// lowers to exactly the problem a fresh build produces.
#[derive(Debug, Clone, PartialEq)]
pub struct MilpProblem {
    pub lp: LpProblem,
    /// Column indices with integrality requirements, strictly increasing.
    pub integers: Vec<usize>,
}

/// A deterministic work budget for one MILP solve, layered on top of
/// [`BnbConfig::node_limit`]. When any limit trips, the search stops and
/// returns its best incumbent with [`MilpResult::degraded`] set — graceful
/// degradation instead of an unbounded solve.
///
/// Node and pivot budgets are exact and deterministic (both are counted on
/// the main search thread in fold order). The wall-clock deadline is the
/// only nondeterministic limit — leave it `None` for bit-reproducible runs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SolveBudget {
    /// Cap on LP relaxations solved (combined with `node_limit` by `min`).
    pub max_nodes: Option<usize>,
    /// Cap on cumulative simplex pivots across every node LP. Checked at
    /// node boundaries: the in-flight LP always completes, so the root
    /// relaxation runs even under `max_pivots = 1`.
    pub max_pivots: Option<u64>,
    /// Wall-clock deadline in milliseconds. **Not deterministic.**
    pub deadline_ms: Option<f64>,
}

impl SolveBudget {
    /// No limits beyond the existing `node_limit` (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// True when any configured limit is met or exceeded.
    fn exhausted(&self, pivots: u64, started: Option<std::time::Instant>) -> bool {
        self.max_pivots.is_some_and(|cap| pivots >= cap)
            || match (self.deadline_ms, started) {
                (Some(ms), Some(t0)) => t0.elapsed().as_secs_f64() * 1000.0 >= ms,
                _ => false,
            }
    }
}

/// Branch-and-bound search parameters.
#[derive(Debug, Clone)]
pub struct BnbConfig {
    /// Maximum number of LP relaxations solved before giving up on proving
    /// optimality. The best incumbent found so far is still returned.
    pub node_limit: usize,
    /// Terminate when `(incumbent - bound) / max(1, |incumbent|)` drops
    /// below this.
    pub rel_gap: f64,
    /// Solve frontier nodes in rayon-parallel waves.
    pub parallel: bool,
    /// Run the diving heuristic at the root for a fast first incumbent.
    pub root_dive: bool,
    /// A known-feasible starting point; validated (bounds, rows,
    /// integrality) and installed as the initial incumbent if it passes.
    /// Guarantees the search always returns *something* under tight node
    /// budgets.
    pub warm_start: Option<Vec<f64>>,
    /// Treat an *accepted* warm start as a strong incumbent: skip the root
    /// and in-tree diving heuristics, whose only role is incumbent supply.
    /// Under tight node budgets the dives dominate the LP-solve count, so
    /// a caller that already holds a high-quality incumbent (e.g. the
    /// repaired previous-slot schedule of the temporal-reuse layer) buys a
    /// large constant-factor speedup. Ignored when the warm start is
    /// rejected or absent — the dives then run as usual.
    pub trust_warm: bool,
    /// Run the presolve reductions before the search (recommended; on the
    /// BIRP per-slot problems it cuts node LP time several-fold).
    pub presolve: bool,
    /// Warm-start child node LPs from their parent's engine snapshot
    /// (dual-simplex bound-shift re-optimisation instead of a full
    /// two-phase solve). Off is only useful for A/B validation.
    pub warm_nodes: bool,
    /// Approximate cap, in bytes, on frontier memory spent on engine
    /// snapshots. When the estimated footprint of the open nodes would
    /// exceed this, new nodes are pushed without snapshots and re-solve
    /// cold — a deterministic degradation, never an OOM.
    pub warm_memory_budget: usize,
    /// Tunables forwarded to the simplex engine (pivot cap).
    pub simplex: SimplexOptions,
    /// Additional node/pivot/deadline limits (see [`SolveBudget`]).
    pub budget: SolveBudget,
}

impl Default for BnbConfig {
    fn default() -> Self {
        BnbConfig {
            node_limit: 20_000,
            rel_gap: 1e-6,
            parallel: false,
            root_dive: true,
            warm_start: None,
            trust_warm: false,
            presolve: true,
            warm_nodes: true,
            warm_memory_budget: 256 << 20,
            simplex: SimplexOptions::default(),
            budget: SolveBudget::default(),
        }
    }
}

/// Outcome classification of a MILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MilpStatus {
    /// Optimal within the configured gap.
    Optimal,
    /// Feasible incumbent returned, but the node budget ran out before the
    /// gap closed.
    Feasible,
    Infeasible,
    Unbounded,
}

/// Result of a branch-and-bound run.
#[derive(Debug, Clone)]
pub struct MilpResult {
    pub status: MilpStatus,
    /// Objective of the incumbent (meaningful for Optimal/Feasible).
    pub objective: f64,
    /// Incumbent point with integer columns snapped exactly.
    pub x: Vec<f64>,
    /// Best proven lower bound on the optimum.
    pub bound: f64,
    /// `(objective - bound) / max(1, |objective|)`.
    pub gap: f64,
    /// LP relaxations solved.
    pub nodes: usize,
    /// The search stopped on a node/pivot/deadline budget before proving
    /// optimality — the incumbent (if any) is best-effort.
    pub degraded: bool,
    /// Incumbent trajectory: one `(nodes_solved, objective, gap)` point per
    /// incumbent installed, in installation order. The gap series is the
    /// solve's convergence signature, surfaced per slot by the decision
    /// provenance record.
    pub incumbents: Vec<(u64, f64, f64)>,
}

/// Frontier node: a box (bound vectors) plus an optimistic objective bound
/// inherited from the parent LP, and (optionally) the parent's solved
/// engine snapshot so the node LP can warm-start. Siblings share the
/// snapshot through the `Arc`.
#[derive(Debug, Clone)]
struct Node {
    lower: Vec<f64>,
    upper: Vec<f64>,
    bound: f64,
    snap: Option<Arc<EngineSnapshot>>,
}

/// Min-heap ordering on the optimistic bound (best-first).
impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest bound on top.
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
    }
}

/// Index of the integer column whose value is farthest from integral, if any.
/// (The search itself now uses [`branch_var`]; this simpler selector remains
/// for unit tests and external diagnostics.)
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn most_fractional(x: &[f64], integers: &[usize]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for &j in integers {
        let v = x[j];
        let frac = (v - v.round()).abs();
        if frac > INT_TOL {
            let dist = (v - v.floor() - 0.5).abs(); // 0 = perfectly half-integral
            match best {
                Some((_, d)) if d <= dist => {}
                _ => best = Some((j, dist)),
            }
        }
    }
    best.map(|(j, _)| (j, x[j]))
}

/// Branching-variable choice: prefer fractional *binary-like* columns
/// (domain width <= 1) — on the BIRP per-slot problems the deployment bits
/// drive everything, and once they are integral the rest of the relaxation
/// is transportation-like and nearly integral. Falls back to the most
/// fractional general integer. Also returns the total fractional count.
fn branch_var(
    x: &[f64],
    integers: &[usize],
    lower: &[f64],
    upper: &[f64],
) -> (Option<(usize, f64)>, usize) {
    let mut best_binary: Option<(usize, f64)> = None;
    let mut best_general: Option<(usize, f64)> = None;
    let mut frac_count = 0usize;
    for &j in integers {
        let v = x[j];
        let frac = (v - v.round()).abs();
        if frac <= INT_TOL {
            continue;
        }
        frac_count += 1;
        let dist = (v - v.floor() - 0.5).abs();
        let slot = if upper[j] - lower[j] <= 1.0 + INT_TOL {
            &mut best_binary
        } else {
            &mut best_general
        };
        match slot {
            Some((_, d)) if *d <= dist => {}
            _ => *slot = Some((j, dist)),
        }
    }
    let pick = best_binary.or(best_general).map(|(j, _)| (j, x[j]));
    (pick, frac_count)
}

/// Snap integer columns of `x` to the nearest integer in place.
pub(crate) fn snap_integers(x: &mut [f64], integers: &[usize]) {
    for &j in integers {
        x[j] = x[j].round();
    }
}

fn incumbent_gap(objective: f64, bound: f64) -> f64 {
    (objective - bound).max(0.0) / objective.abs().max(1.0)
}

/// Record an incumbent-trajectory point (objective / bound / gap after
/// `nodes` LPs) into `traj` and emit it as a trace event. The gap series is
/// the solver's convergence signature.
fn note_incumbent(
    traj: &mut Vec<(u64, f64, f64)>,
    source: &'static str,
    objective: f64,
    bound: f64,
    nodes: usize,
) {
    traj.push((nodes as u64, objective, incumbent_gap(objective, bound)));
    if telemetry::enabled() {
        telemetry::event(
            telemetry::Level::Trace,
            "solver.incumbent",
            &[
                ("source", source.into()),
                ("objective", objective.into()),
                ("bound", bound.into()),
                ("gap", incumbent_gap(objective, bound).into()),
                ("nodes", (nodes as u64).into()),
            ],
        );
    }
}

/// Solve the MILP by branch and bound.
pub fn branch_and_bound(original: &MilpProblem, cfg: &BnbConfig) -> MilpResult {
    let _solve_span = telemetry::span("solver.solve");
    telemetry::counter("solver.solves", 1);
    // Effective budgets: the node limit folds into the classic knob, pivots
    // and the (optional, nondeterministic) deadline are checked at node
    // boundaries alongside it.
    let node_limit = cfg
        .node_limit
        .min(cfg.budget.max_nodes.unwrap_or(usize::MAX));
    let budget_clock = cfg
        .budget
        .deadline_ms
        .is_some()
        .then(std::time::Instant::now);
    let mut pivots_total = 0u64;
    let mut budget_hit = false;
    // Presolve never removes columns, so indices and solutions line up with
    // the caller's problem; it only tightens bounds and drops rows, which
    // shrinks every node LP.
    let mut reduced = original.clone();
    if cfg.presolve {
        let _presolve_span = telemetry::span("solver.presolve_ms");
        let (status, red) = crate::presolve::presolve(&mut reduced.lp, &reduced.integers);
        if telemetry::enabled() {
            telemetry::counter("solver.presolve_rows_removed", red.rows_removed as u64);
            telemetry::counter("solver.presolve_vars_fixed", red.vars_fixed as u64);
            telemetry::event(
                telemetry::Level::Debug,
                "solver.presolve",
                &[
                    ("rows_removed", (red.rows_removed as u64).into()),
                    ("bounds_tightened", (red.bounds_tightened as u64).into()),
                    ("vars_fixed", (red.vars_fixed as u64).into()),
                    ("rounds", (red.rounds as u64).into()),
                    ("nnz_removed", (red.nnz_removed as u64).into()),
                    ("nnz_after", (reduced.lp.nnz() as u64).into()),
                ],
            );
        }
        if status == crate::presolve::PresolveStatus::Infeasible {
            return MilpResult {
                status: MilpStatus::Infeasible,
                objective: f64::INFINITY,
                x: Vec::new(),
                bound: f64::INFINITY,
                gap: 0.0,
                nodes: 0,
                degraded: false,
                incumbents: Vec::new(),
            };
        }
    }
    let problem = &reduced;
    let n = problem.lp.num_cols();
    let root = Node {
        lower: problem.lp.lower.clone(),
        upper: problem.lp.upper.clone(),
        bound: f64::NEG_INFINITY,
        snap: None,
    };
    // Deterministic snapshot budget: estimated per-snapshot footprint,
    // computed once from the (presolved) problem shape.
    let est_snap_bytes = EngineSnapshot::estimate_bytes(&problem.lp, &cfg.simplex).max(1);

    let mut nodes_solved = 0usize;
    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    let mut traj: Vec<(u64, f64, f64)> = Vec::new();
    let mut heap: BinaryHeap<Node> = BinaryHeap::new();
    let mut warm_installed = false;

    // Install a validated warm start as the initial incumbent.
    if let Some(ws) = &cfg.warm_start {
        let mut installed = false;
        if ws.len() == n {
            let integral = problem
                .integers
                .iter()
                .all(|&j| (ws[j] - ws[j].round()).abs() < INT_TOL);
            let mut snapped = ws.clone();
            snap_integers(&mut snapped, &problem.integers);
            let violation = problem.lp.max_violation(&snapped);
            if integral && violation < 1e-6 {
                let obj = problem.lp.objective_at(&snapped);
                note_incumbent(&mut traj, "warm_start", obj, f64::NEG_INFINITY, 0);
                incumbent = Some((obj, snapped));
                installed = true;
            } else if telemetry::enabled() {
                // A rejected warm start leaves the search without a safety
                // net under tight node budgets — worth shouting about.
                telemetry::event(
                    telemetry::Level::Warn,
                    "solver.warm_start_rejected",
                    &[
                        ("integral", integral.into()),
                        ("violation", violation.into()),
                    ],
                );
            }
        }
        telemetry::counter(
            if installed {
                "solver.warm_start_accepted"
            } else {
                "solver.warm_start_rejected"
            },
            1,
        );
        warm_installed = installed;
    }
    // Dives exist to manufacture an incumbent; a trusted warm start already
    // is one, so the dive budget collapses to zero.
    let trust_dives_off = cfg.trust_warm && warm_installed;
    if trust_dives_off {
        telemetry::counter("solver.trusted_warm", 1);
    }

    // --- root -----------------------------------------------------------
    let (root_sol, root_snap) = {
        let _root_span = telemetry::span("solver.root_lp");
        solve_node_lp(&problem.lp, &root, &cfg.simplex, cfg.warm_nodes)
    };
    nodes_solved += 1;
    pivots_total += root_sol.iterations as u64;
    telemetry::counter("solver.pivots", root_sol.iterations as u64);
    match root_sol.status {
        LpStatus::Infeasible => {
            return MilpResult {
                status: MilpStatus::Infeasible,
                objective: f64::INFINITY,
                x: Vec::new(),
                bound: f64::INFINITY,
                gap: 0.0,
                nodes: nodes_solved,
                degraded: false,
                incumbents: traj,
            };
        }
        LpStatus::Unbounded => {
            return MilpResult {
                status: MilpStatus::Unbounded,
                objective: f64::NEG_INFINITY,
                x: Vec::new(),
                bound: f64::NEG_INFINITY,
                gap: 0.0,
                nodes: nodes_solved,
                degraded: false,
                incumbents: traj,
            };
        }
        LpStatus::Optimal => {}
    }
    let root_bound = root_sol.objective;

    let (root_branch, _) = branch_var(&root_sol.x, &problem.integers, &root.lower, &root.upper);
    if let Some((j, v)) = root_branch {
        if nodes_solved >= node_limit || cfg.budget.exhausted(pivots_total, budget_clock) {
            // Budget spent on the root alone: skip the dive (it is dozens
            // of LP solves) and fall straight through to the report with
            // whatever incumbent the warm start installed.
            budget_hit = true;
        } else if cfg.root_dive && !trust_dives_off {
            let _dive_span = telemetry::span("solver.root_dive");
            telemetry::counter("solver.dive_attempts", 1);
            if let Some((obj, x)) = dive(
                &problem.lp,
                &problem.integers,
                &root.lower,
                &root.upper,
                root_snap.as_deref(),
                &cfg.simplex,
            ) {
                if incumbent.as_ref().is_none_or(|(best, _)| obj < *best) {
                    telemetry::counter("solver.dive_hits", 1);
                    note_incumbent(&mut traj, "root_dive", obj, root_bound, nodes_solved);
                    incumbent = Some((obj, x));
                }
            }
        }
        push_children(&mut heap, &root, j, v, root_sol.objective, root_snap);
    } else {
        let mut x = root_sol.x;
        snap_integers(&mut x, &problem.integers);
        let obj = problem.lp.objective_at(&x);
        telemetry::counter("solver.nodes", nodes_solved as u64);
        note_incumbent(&mut traj, "integral_root", obj, root_bound, nodes_solved);
        return MilpResult {
            status: MilpStatus::Optimal,
            objective: obj,
            x,
            bound: root_bound,
            gap: 0.0,
            nodes: nodes_solved,
            degraded: false,
            incumbents: traj,
        };
    }

    // --- search -----------------------------------------------------------
    let workers = if cfg.parallel {
        rayon::current_num_threads().max(1)
    } else {
        1
    };
    // In-tree dives are expensive (a dive is dozens of LP solves); a few
    // well-placed ones capture nearly all their value.
    let mut tree_dives_left = if trust_dives_off { 0 } else { 3 };
    'outer: while !budget_hit && !heap.is_empty() {
        if nodes_solved >= node_limit || cfg.budget.exhausted(pivots_total, budget_clock) {
            budget_hit = true;
            break;
        }
        // Prune against the incumbent, then pop a wave.
        let cutoff = incumbent.as_ref().map_or(f64::INFINITY, |(o, _)| *o);
        let mut wave: Vec<Node> = Vec::with_capacity(workers);
        while wave.len() < workers {
            match heap.pop() {
                Some(node) => {
                    if node.bound < cutoff - 1e-12 {
                        wave.push(node);
                    }
                    // else: dominated, dropped
                }
                None => break,
            }
        }
        if wave.is_empty() {
            break;
        }
        if let Some((obj, _)) = &incumbent {
            let frontier_bound = wave[0]
                .bound
                .min(heap.peek().map_or(f64::INFINITY, |n| n.bound));
            if incumbent_gap(*obj, frontier_bound.max(root_bound)) <= cfg.rel_gap {
                heap.push(wave.swap_remove(0)); // keep bound info for reporting
                for node in wave {
                    heap.push(node);
                }
                break 'outer;
            }
        }

        // Deterministic memory gate: would snapshotting this wave (each
        // node's children share one snapshot) blow the budget, given what
        // the frontier may already be holding? Computed from heap/wave
        // sizes on the main thread, so seeded runs always agree.
        let want_snaps = cfg.warm_nodes
            && (heap.len() + 2 * wave.len()).saturating_mul(est_snap_bytes)
                <= cfg.warm_memory_budget;
        if cfg.warm_nodes && !want_snaps {
            telemetry::counter("solver.warm_budget_skips", wave.len() as u64);
        }
        // Per-wave and per-node spans only at trace level: the gate keeps
        // the default-level per-node cost at zero. Node spans derive their
        // child index from the wave *item* index through the captured
        // context, so the tree is identical whichever worker ran the node.
        let wave_span = telemetry::trace_spans().then(|| telemetry::span("solver.wave"));
        let wave_ctx = wave_span.as_ref().map(|s| s.context());
        let indexed: Vec<(usize, &Node)> = wave.iter().enumerate().collect();
        let solve_indexed = |&(i, node): &(usize, &Node)| {
            let _node_span = wave_ctx.map(|c| c.span_at("solver.node_lp", i as u32));
            solve_node_lp(&problem.lp, node, &cfg.simplex, want_snaps)
        };
        let solved: Vec<_> = if cfg.parallel && wave.len() > 1 {
            indexed.par_iter().map(solve_indexed).collect()
        } else {
            indexed.iter().map(solve_indexed).collect()
        };
        drop(indexed);
        nodes_solved += wave.len();
        pivots_total += solved.iter().map(|(s, _)| s.iterations as u64).sum::<u64>();
        if telemetry::enabled() {
            telemetry::observe("solver.wave_size", wave.len() as f64);
            telemetry::counter(
                "solver.pivots",
                solved.iter().map(|(s, _)| s.iterations as u64).sum(),
            );
        }

        for (node, (sol, node_snap)) in wave.into_iter().zip(solved) {
            match sol.status {
                LpStatus::Infeasible => continue,
                LpStatus::Unbounded => {
                    // Only possible with unbounded continuous directions that
                    // the root somehow missed; treat conservatively.
                    return MilpResult {
                        status: MilpStatus::Unbounded,
                        objective: f64::NEG_INFINITY,
                        x: Vec::new(),
                        bound: f64::NEG_INFINITY,
                        gap: 0.0,
                        nodes: nodes_solved,
                        degraded: false,
                        incumbents: traj,
                    };
                }
                LpStatus::Optimal => {}
            }
            let cutoff = incumbent.as_ref().map_or(f64::INFINITY, |(o, _)| *o);
            if sol.objective >= cutoff - 1e-12 {
                continue; // bound-dominated
            }
            let (pick, frac_count) =
                branch_var(&sol.x, &problem.integers, &node.lower, &node.upper);
            match pick {
                None => {
                    let mut x = sol.x;
                    snap_integers(&mut x, &problem.integers);
                    let obj = problem.lp.objective_at(&x);
                    if obj < cutoff {
                        note_incumbent(&mut traj, "leaf", obj, root_bound, nodes_solved);
                        incumbent = Some((obj, x));
                    }
                }
                Some((j, v)) => {
                    // Nearly-integral nodes are cheap to finish off with a
                    // dive — the main source of strong incumbents under
                    // tight node budgets.
                    if frac_count <= 8 && tree_dives_left > 0 {
                        tree_dives_left -= 1;
                        telemetry::counter("solver.dive_attempts", 1);
                        if let Some((obj, x)) = dive(
                            &problem.lp,
                            &problem.integers,
                            &node.lower,
                            &node.upper,
                            node_snap.as_deref(),
                            &cfg.simplex,
                        ) {
                            let cutoff = incumbent.as_ref().map_or(f64::INFINITY, |(o, _)| *o);
                            if obj < cutoff {
                                telemetry::counter("solver.dive_hits", 1);
                                note_incumbent(
                                    &mut traj,
                                    "tree_dive",
                                    obj,
                                    root_bound,
                                    nodes_solved,
                                );
                                incumbent = Some((obj, x));
                            }
                        }
                    }
                    push_children(&mut heap, &node, j, v, sol.objective, node_snap);
                }
            }
        }
    }

    // --- report -----------------------------------------------------------
    let frontier_bound = heap
        .iter()
        .map(|n| n.bound)
        .fold(f64::INFINITY, f64::min)
        .max(root_bound);
    let result = match incumbent {
        Some((obj, x)) => {
            let bound = if heap.is_empty() {
                obj
            } else {
                frontier_bound.min(obj)
            };
            let gap = incumbent_gap(obj, bound);
            let status = if gap <= cfg.rel_gap {
                MilpStatus::Optimal
            } else {
                MilpStatus::Feasible
            };
            MilpResult {
                status,
                objective: obj,
                x,
                bound,
                gap,
                nodes: nodes_solved,
                degraded: budget_hit && status != MilpStatus::Optimal,
                incumbents: traj,
            }
        }
        None => {
            if heap.is_empty() {
                MilpResult {
                    status: MilpStatus::Infeasible,
                    objective: f64::INFINITY,
                    x: vec![0.0; n],
                    bound: f64::INFINITY,
                    gap: 0.0,
                    nodes: nodes_solved,
                    degraded: false,
                    incumbents: Vec::new(),
                }
            } else {
                // Budget ran out with open nodes and no incumbent.
                MilpResult {
                    status: MilpStatus::Feasible,
                    objective: f64::INFINITY,
                    x: vec![0.0; n],
                    bound: frontier_bound,
                    gap: f64::INFINITY,
                    nodes: nodes_solved,
                    degraded: true,
                    incumbents: Vec::new(),
                }
            }
        }
    };
    if result.degraded {
        telemetry::counter("solver.degraded", 1);
    }
    if telemetry::enabled() {
        telemetry::counter("solver.nodes", result.nodes as u64);
        telemetry::observe("solver.nodes_per_solve", result.nodes as f64);
        if result.gap.is_finite() {
            telemetry::observe("solver.final_gap", result.gap);
        } else if result.bound.is_finite() {
            // Budget exhausted with no incumbent: the formal gap is infinite
            // and the log histogram drops non-finite samples, which used to
            // erase these solves from the gap record entirely. Clamp to 1.0
            // (100%) so they stay visible, and keep the dual bound the
            // frontier did prove.
            telemetry::observe("solver.final_gap", 1.0);
            telemetry::observe("solver.final_bound", result.bound);
        }
        telemetry::event(
            telemetry::Level::Debug,
            "solver.done",
            &[
                ("status", format!("{:?}", result.status).into()),
                ("objective", result.objective.into()),
                ("bound", result.bound.into()),
                ("gap", result.gap.into()),
                ("nodes", (result.nodes as u64).into()),
                ("degraded", result.degraded.into()),
                ("pivots", pivots_total.into()),
            ],
        );
    }
    result
}

/// Solve one node's LP relaxation on this worker's thread-local engine.
///
/// The `LpProblem` rows are shared by reference — nodes only differ in
/// their bound vectors, so nothing is cloned per node. Warm path: restore
/// the parent's snapshot and dual-simplex the branched bound back to
/// feasibility; cold path: full two-phase solve. When `want_snapshot` is
/// set and the node solved to optimality, the solved engine state is
/// captured for this node's children.
fn solve_node_lp(
    lp: &LpProblem,
    node: &Node,
    opts: &SimplexOptions,
    want_snapshot: bool,
) -> (crate::lp::LpSolution, Option<Arc<EngineSnapshot>>) {
    with_engine(|eng| {
        let mut warm = false;
        let sol = match node.snap.as_deref() {
            Some(snap) => match eng.solve_warm(lp, snap, &node.lower, &node.upper, opts) {
                Some(sol) => {
                    warm = true;
                    sol
                }
                None => eng.solve_cold(lp, &node.lower, &node.upper, opts),
            },
            None => eng.solve_cold(lp, &node.lower, &node.upper, opts),
        };
        if telemetry::enabled() {
            if warm {
                telemetry::counter("solver.lp_warm", 1);
                telemetry::counter("solver.warm_pivots", sol.iterations as u64);
            } else {
                telemetry::counter("solver.lp_cold", 1);
                telemetry::counter("solver.cold_pivots", sol.iterations as u64);
            }
        }
        let snap = if want_snapshot && sol.status == LpStatus::Optimal {
            eng.snapshot().map(Arc::new)
        } else {
            None
        };
        (sol, snap)
    })
}

fn push_children(
    heap: &mut BinaryHeap<Node>,
    parent: &Node,
    j: usize,
    v: f64,
    parent_obj: f64,
    snap: Option<Arc<EngineSnapshot>>,
) {
    let floor = v.floor();
    // Down child: x_j <= floor(v)
    if floor >= parent.lower[j] - 1e-12 {
        let mut child = parent.clone();
        child.upper[j] = floor.min(child.upper[j]);
        child.bound = parent_obj;
        child.snap = snap.clone();
        if child.lower[j] <= child.upper[j] + 1e-12 {
            child.upper[j] = child.upper[j].max(child.lower[j]);
            heap.push(child);
        }
    }
    // Up child: x_j >= ceil(v)
    let ceil = floor + 1.0;
    if ceil <= parent.upper[j] + 1e-12 {
        let mut child = parent.clone();
        child.lower[j] = ceil.max(child.lower[j]);
        child.bound = parent_obj;
        child.snap = snap;
        if child.lower[j] <= child.upper[j] + 1e-12 {
            child.lower[j] = child.lower[j].min(child.upper[j]);
            heap.push(child);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::RowCmp;

    fn knapsack(values: &[f64], weights: &[f64], cap: f64) -> MilpProblem {
        let n = values.len();
        let mut lp = LpProblem::with_columns(n);
        lp.objective = values.iter().map(|v| -v).collect();
        lp.upper = vec![1.0; n];
        lp.push_row(
            weights.iter().cloned().enumerate().collect(),
            RowCmp::Le,
            cap,
        );
        MilpProblem {
            lp,
            integers: (0..n).collect(),
        }
    }

    #[test]
    fn knapsack_small() {
        // values 10, 13, 7; weights 3, 4, 2; cap 5 -> best = {10, 7} = 17
        let p = knapsack(&[10.0, 13.0, 7.0], &[3.0, 4.0, 2.0], 5.0);
        let r = branch_and_bound(&p, &BnbConfig::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective + 17.0).abs() < 1e-6, "obj={}", r.objective);
    }

    #[test]
    fn knapsack_parallel_matches_serial() {
        let values = [8.0, 11.0, 6.0, 4.0, 9.0, 7.5, 3.0];
        let weights = [5.0, 7.0, 4.0, 3.0, 6.0, 5.5, 2.0];
        let p = knapsack(&values, &weights, 15.0);
        let serial = branch_and_bound(
            &p,
            &BnbConfig {
                parallel: false,
                ..Default::default()
            },
        );
        let par = branch_and_bound(
            &p,
            &BnbConfig {
                parallel: true,
                ..Default::default()
            },
        );
        assert_eq!(serial.status, MilpStatus::Optimal);
        assert_eq!(par.status, MilpStatus::Optimal);
        assert!((serial.objective - par.objective).abs() < 1e-6);
    }

    #[test]
    fn integer_equality_rounding() {
        // min x + y st 2x + 2y = 7 has no integer solution.
        let mut lp = LpProblem::with_columns(2);
        lp.objective = vec![1.0, 1.0];
        lp.upper = vec![10.0, 10.0];
        lp.push_row(vec![(0, 2.0), (1, 2.0)], RowCmp::Eq, 7.0);
        let p = MilpProblem {
            lp,
            integers: vec![0, 1],
        };
        let r = branch_and_bound(&p, &BnbConfig::default());
        assert_eq!(r.status, MilpStatus::Infeasible);
    }

    #[test]
    fn mixed_integer_continuous() {
        // min -x - 10 y, x continuous in [0, 3.7], y integer in [0, 2],
        // x + 4y <= 8.5 -> y = 2, x = 0.5
        let mut lp = LpProblem::with_columns(2);
        lp.objective = vec![-1.0, -10.0];
        lp.upper = vec![3.7, 2.0];
        lp.push_row(vec![(0, 1.0), (1, 4.0)], RowCmp::Le, 8.5);
        let p = MilpProblem {
            lp,
            integers: vec![1],
        };
        let r = branch_and_bound(&p, &BnbConfig::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.x[1] - 2.0).abs() < 1e-9);
        assert!((r.x[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn node_limit_returns_feasible_incumbent() {
        // Larger knapsack with a tiny node budget: must return Feasible with
        // a valid (if not proven optimal) incumbent from the dive.
        let values: Vec<f64> = (1..=20).map(|i| (i as f64 * 7.3) % 13.0 + 1.0).collect();
        let weights: Vec<f64> = (1..=20).map(|i| (i as f64 * 3.1) % 9.0 + 1.0).collect();
        let p = knapsack(&values, &weights, 30.0);
        let r = branch_and_bound(
            &p,
            &BnbConfig {
                node_limit: 3,
                ..Default::default()
            },
        );
        assert!(matches!(
            r.status,
            MilpStatus::Feasible | MilpStatus::Optimal
        ));
        if r.status == MilpStatus::Feasible {
            assert!(r.objective.is_finite());
            assert!(p.lp.max_violation(&r.x) < 1e-6);
            assert!(r.gap >= 0.0);
        }
    }

    #[test]
    fn already_integral_root_short_circuits() {
        let mut lp = LpProblem::with_columns(2);
        lp.objective = vec![1.0, 1.0];
        lp.upper = vec![4.0, 4.0];
        lp.push_row(vec![(0, 1.0), (1, 1.0)], RowCmp::Ge, 4.0);
        let p = MilpProblem {
            lp,
            integers: vec![0, 1],
        };
        let r = branch_and_bound(&p, &BnbConfig::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert_eq!(r.nodes, 1);
        assert!((r.objective - 4.0).abs() < 1e-6);
    }

    #[test]
    fn pivot_budget_returns_degraded_incumbent_or_exhausted() {
        let values: Vec<f64> = (1..=24).map(|i| (i as f64 * 7.3) % 13.0 + 1.0).collect();
        let weights: Vec<f64> = (1..=24).map(|i| (i as f64 * 3.1) % 9.0 + 1.0).collect();
        let p = knapsack(&values, &weights, 35.0);
        let r = branch_and_bound(
            &p,
            &BnbConfig {
                budget: SolveBudget {
                    max_pivots: Some(1),
                    ..SolveBudget::unlimited()
                },
                ..Default::default()
            },
        );
        // Never a panic: either a (degraded) incumbent from the root dive or
        // an explicitly exhausted Feasible with infinite objective.
        assert_eq!(r.status, MilpStatus::Feasible);
        if r.objective.is_finite() {
            assert!(p.lp.max_violation(&r.x) < 1e-6);
        }
        assert!(r.degraded);
    }

    #[test]
    fn node_budget_caps_nodes_solved() {
        let values: Vec<f64> = (1..=24).map(|i| (i as f64 * 7.3) % 13.0 + 1.0).collect();
        let weights: Vec<f64> = (1..=24).map(|i| (i as f64 * 3.1) % 9.0 + 1.0).collect();
        let p = knapsack(&values, &weights, 35.0);
        let r = branch_and_bound(
            &p,
            &BnbConfig {
                budget: SolveBudget {
                    max_nodes: Some(2),
                    ..SolveBudget::unlimited()
                },
                parallel: false,
                ..Default::default()
            },
        );
        assert!(r.nodes <= 2, "nodes={}", r.nodes);
        assert!(matches!(
            r.status,
            MilpStatus::Feasible | MilpStatus::Optimal
        ));
    }

    #[test]
    fn unlimited_budget_leaves_result_untouched() {
        let p = knapsack(&[10.0, 13.0, 7.0], &[3.0, 4.0, 2.0], 5.0);
        let r = branch_and_bound(&p, &BnbConfig::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!(!r.degraded);
    }

    #[test]
    fn most_fractional_picks_closest_to_half() {
        let x = [1.0, 2.3, 3.5, 0.9];
        let ints = [0, 1, 2, 3];
        let (j, v) = most_fractional(&x, &ints).unwrap();
        assert_eq!(j, 2);
        assert!((v - 3.5).abs() < 1e-12);
        assert!(most_fractional(&[1.0, 2.0], &[0, 1]).is_none());
    }
}
