//! Compressed sparse storage for the revised simplex engine.
//!
//! The constraint matrix of a BIRP per-slot LP is > 95 % zeros (each
//! variable touches one memory row, one compute row and one bandwidth
//! row), so the revised engine never materialises `B⁻¹A`. Instead it keeps
//! the original matrix once, in both column-major ([`SparseMatrix::col`])
//! and row-major form: FTRAN and pricing walk columns, the BTRAN pivot-row
//! pass walks rows. Indices are `u32` — half the memory traffic of `usize`
//! on the hot kernels, and per-slot problems are nowhere near 4 G nonzeros.
//!
//! Column layout matches the dense engine: structural columns first, then
//! one slack per `<=`/`>=` row in row order. Artificial columns are *not*
//! stored — an artificial for row `i` is the singleton `sign_i · e_i` and
//! is synthesised on the fly (see [`SparseMatrix::is_artificial`]).
//!
//! [`WorkVec`] is the shared hyper-sparse scatter workspace: a dense value
//! array plus an explicit nonzero list, with stamp-based occupancy marks so
//! clearing costs O(nnz) instead of O(n).

use crate::lp::{LpProblem, RowCmp};

/// Constraint matrix in CSC + CSR form, structural and slack columns only.
#[derive(Debug, Default)]
pub(crate) struct SparseMatrix {
    pub m: usize,
    /// Explicit columns: `nstruct + num_slacks`.
    pub ncols: usize,
    pub nstruct: usize,
    pub num_slacks: usize,
    // Column-major (CSC).
    col_ptr: Vec<u32>,
    row_idx: Vec<u32>,
    col_val: Vec<f64>,
    // Row-major (CSR), including slack entries.
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    row_val: Vec<f64>,
}

impl SparseMatrix {
    /// (Re)build from `lp`, reusing this matrix's buffers.
    pub fn load(&mut self, lp: &LpProblem) {
        let n = lp.num_cols();
        let m = lp.num_rows();
        let num_slacks = lp.rows.iter().filter(|r| r.cmp != RowCmp::Eq).count();
        let ncols = n + num_slacks;
        let nnz: usize = lp.rows.iter().map(|r| r.coeffs.len()).sum::<usize>() + num_slacks;
        self.m = m;
        self.ncols = ncols;
        self.nstruct = n;
        self.num_slacks = num_slacks;

        // CSR first: rows arrive row-by-row, slack appended at the end of
        // its own row (column order within a row stays sorted because slack
        // columns come after every structural column).
        self.row_ptr.clear();
        self.col_idx.clear();
        self.row_val.clear();
        self.col_idx.reserve(nnz);
        self.row_val.reserve(nnz);
        self.row_ptr.reserve(m + 1);
        self.row_ptr.push(0);
        let mut slack = n as u32;
        for row in &lp.rows {
            for &(j, c) in &row.coeffs {
                self.col_idx.push(j as u32);
                self.row_val.push(c);
            }
            match row.cmp {
                RowCmp::Le => {
                    self.col_idx.push(slack);
                    self.row_val.push(1.0);
                    slack += 1;
                }
                RowCmp::Ge => {
                    self.col_idx.push(slack);
                    self.row_val.push(-1.0);
                    slack += 1;
                }
                RowCmp::Eq => {}
            }
            self.row_ptr.push(self.col_idx.len() as u32);
        }

        // CSC by counting sort over the CSR entries.
        self.col_ptr.clear();
        self.col_ptr.resize(ncols + 1, 0);
        for &j in &self.col_idx {
            self.col_ptr[j as usize + 1] += 1;
        }
        for j in 0..ncols {
            self.col_ptr[j + 1] += self.col_ptr[j];
        }
        self.row_idx.clear();
        self.row_idx.resize(nnz, 0);
        self.col_val.clear();
        self.col_val.resize(nnz, 0.0);
        let mut next = self.col_ptr.clone();
        for i in 0..m {
            let (s, e) = (self.row_ptr[i] as usize, self.row_ptr[i + 1] as usize);
            for k in s..e {
                let j = self.col_idx[k] as usize;
                let dst = next[j] as usize;
                self.row_idx[dst] = i as u32;
                self.col_val[dst] = self.row_val[k];
                next[j] += 1;
            }
        }
    }

    /// Total logical columns: explicit + one implicit artificial per row.
    #[inline]
    pub fn ntot(&self) -> usize {
        self.ncols + self.m
    }

    /// True when `j` addresses an implicit artificial column.
    #[inline]
    pub fn is_artificial(&self, j: usize) -> bool {
        j >= self.ncols
    }

    /// Row of the artificial column `j` (`j >= ncols`).
    #[inline]
    pub fn artificial_row(&self, j: usize) -> usize {
        debug_assert!(self.is_artificial(j));
        j - self.ncols
    }

    /// Explicit column `j` as parallel `(rows, values)` slices.
    #[inline]
    pub fn col(&self, j: usize) -> (&[u32], &[f64]) {
        debug_assert!(j < self.ncols);
        let (s, e) = (self.col_ptr[j] as usize, self.col_ptr[j + 1] as usize);
        (&self.row_idx[s..e], &self.col_val[s..e])
    }

    /// Row `i` (structural + slack entries) as `(cols, values)` slices.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let (s, e) = (self.row_ptr[i] as usize, self.row_ptr[i + 1] as usize);
        (&self.col_idx[s..e], &self.row_val[s..e])
    }

    /// Nonzeros of explicit column `j`.
    #[inline]
    pub fn col_nnz(&self, j: usize) -> usize {
        (self.col_ptr[j + 1] - self.col_ptr[j]) as usize
    }
}

/// Hyper-sparse scatter workspace: dense values + explicit nonzero list.
///
/// Occupancy is tracked with generation stamps, so [`WorkVec::clear`] is
/// O(nnz) and a full reset never touches the dense arrays.
#[derive(Debug, Default)]
pub(crate) struct WorkVec {
    val: Vec<f64>,
    /// Indices holding a (possibly cancelled-to-zero) scattered value.
    pub idx: Vec<u32>,
    stamp: Vec<u32>,
    gen: u32,
}

impl WorkVec {
    /// Resize for dimension `n` and clear.
    pub fn reset(&mut self, n: usize) {
        if self.val.len() < n {
            self.val.resize(n, 0.0);
            self.stamp.resize(n, 0);
        }
        self.clear();
    }

    pub fn clear(&mut self) {
        self.idx.clear();
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // Stamp wrap-around: invalidate everything the slow way once
            // every 2^32 clears.
            self.stamp.fill(u32::MAX);
            self.gen = 1;
        }
    }

    #[inline]
    pub fn nnz(&self) -> usize {
        self.idx.len()
    }

    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        if self.stamp[i] == self.gen {
            self.val[i]
        } else {
            0.0
        }
    }

    #[inline]
    pub fn is_set(&self, i: usize) -> bool {
        self.stamp[i] == self.gen
    }

    /// Add `v` at `i`, registering the index on first touch.
    #[inline]
    pub fn add(&mut self, i: usize, v: f64) {
        if self.stamp[i] == self.gen {
            self.val[i] += v;
        } else {
            self.stamp[i] = self.gen;
            self.val[i] = v;
            self.idx.push(i as u32);
        }
    }

    /// Overwrite the value at `i`.
    #[inline]
    pub fn set(&mut self, i: usize, v: f64) {
        if self.stamp[i] != self.gen {
            self.stamp[i] = self.gen;
            self.idx.push(i as u32);
        }
        self.val[i] = v;
    }

    /// Iterate the registered nonzeros (zero-cancelled entries included).
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.idx
            .iter()
            .map(move |&i| (i as usize, self.val[i as usize]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::{LpProblem, RowCmp};

    fn sample() -> SparseMatrix {
        // 3 columns; rows: x0 + 2 x2 <= 4, x1 = 3, -x0 + x1 >= 1
        let mut lp = LpProblem::with_columns(3);
        lp.push_row(vec![(0, 1.0), (2, 2.0)], RowCmp::Le, 4.0);
        lp.push_row(vec![(1, 1.0)], RowCmp::Eq, 3.0);
        lp.push_row(vec![(0, -1.0), (1, 1.0)], RowCmp::Ge, 1.0);
        let mut a = SparseMatrix::default();
        a.load(&lp);
        a
    }

    #[test]
    fn csc_csr_agree() {
        let a = sample();
        assert_eq!((a.m, a.nstruct, a.num_slacks, a.ncols), (3, 3, 2, 5));
        // Column 0: rows 0 (+1) and 2 (-1).
        let (rows, vals) = a.col(0);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[1.0, -1.0]);
        // Slack of the Ge row is column 4 with a -1 in row 2.
        let (rows, vals) = a.col(4);
        assert_eq!(rows, &[2]);
        assert_eq!(vals, &[-1.0]);
        // Row 2 carries both structural entries and its slack.
        let (cols, vals) = a.row(2);
        assert_eq!(cols, &[0, 1, 4]);
        assert_eq!(vals, &[-1.0, 1.0, -1.0]);
        // Implicit artificials sit past the explicit columns.
        assert!(a.is_artificial(5));
        assert_eq!(a.artificial_row(6), 1);
    }

    #[test]
    fn workvec_scatter_and_stamp_clear() {
        let mut w = WorkVec::default();
        w.reset(8);
        w.add(3, 1.5);
        w.add(5, 2.0);
        w.add(3, 0.5);
        assert_eq!(w.nnz(), 2);
        assert_eq!(w.get(3), 2.0);
        assert_eq!(w.get(0), 0.0);
        w.clear();
        assert_eq!(w.nnz(), 0);
        assert_eq!(w.get(3), 0.0, "stamp clear must hide stale values");
        w.set(3, 7.0);
        assert_eq!(w.get(3), 7.0);
    }
}
