//! Textbook two-phase tableau simplex (the audit oracle).
//!
//! Strategy: shift every variable to `x' = x - lower >= 0`, turn finite upper
//! bounds into explicit `x' <= u - l` rows, add slack variables to make every
//! row an equality with non-negative right-hand side, then add one artificial
//! variable per row and run two phases with Bland's anti-cycling rule.
//!
//! This engine is intentionally unoptimised; its only job is to be obviously
//! correct so the fast bounded-variable engine can be validated against it.

use crate::lp::{LpProblem, LpSolution, LpStatus, RowCmp};
use crate::simplex::{COST_TOL, PIVOT_TOL};

/// Hard iteration cap; reference problems in tests are tiny, so hitting this
/// indicates a bug rather than a big instance.
fn iteration_cap(rows: usize, cols: usize) -> usize {
    10_000 + 50 * (rows + cols)
}

struct Tableau {
    /// `rows x (total_cols + 1)`; the last column is the RHS.
    a: Vec<Vec<f64>>,
    basis: Vec<usize>,
    total_cols: usize,
}

impl Tableau {
    fn rhs(&self, i: usize) -> f64 {
        self.a[i][self.total_cols]
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let piv = self.a[row][col];
        debug_assert!(piv.abs() > PIVOT_TOL);
        let inv = 1.0 / piv;
        for v in self.a[row].iter_mut() {
            *v *= inv;
        }
        let pivot_row = self.a[row].clone();
        for (i, r) in self.a.iter_mut().enumerate() {
            if i == row {
                continue;
            }
            let factor = r[col];
            if factor != 0.0 {
                for (v, p) in r.iter_mut().zip(&pivot_row) {
                    *v -= factor * p;
                }
                // Snap the eliminated entry exactly to zero to fight drift.
                r[col] = 0.0;
            }
        }
        self.basis[row] = col;
    }
}

/// Run Bland-rule simplex on the tableau for the given costs.
/// `allowed` marks columns that may enter the basis.
/// Returns `(objective, iterations)` or `None` if unbounded.
fn run_phase(
    tab: &mut Tableau,
    costs: &[f64],
    allowed: &[bool],
    cap: usize,
) -> Option<(f64, usize)> {
    let m = tab.a.len();
    let n = tab.total_cols;
    let mut iters = 0usize;
    loop {
        iters += 1;
        if iters > cap {
            // With Bland's rule this cannot cycle; the cap is a bug guard.
            panic!("reference simplex exceeded iteration cap (bug)");
        }
        // Reduced costs z_j = c_j - c_B . column_j (computed fresh each
        // iteration -- O(m n), fine for the oracle).
        let mut entering = None;
        for j in 0..n {
            if !allowed[j] || tab.basis.contains(&j) {
                continue;
            }
            let mut z = costs[j];
            for i in 0..m {
                let cb = costs[tab.basis[i]];
                if cb != 0.0 {
                    z -= cb * tab.a[i][j];
                }
            }
            if z < -COST_TOL {
                entering = Some(j); // Bland: first improving index
                break;
            }
        }
        let Some(col) = entering else {
            let obj: f64 = (0..m).map(|i| costs[tab.basis[i]] * tab.rhs(i)).sum();
            return Some((obj, iters));
        };
        // Ratio test, Bland tie-break on smallest basis variable index.
        let mut best: Option<(f64, usize)> = None;
        for i in 0..m {
            let a = tab.a[i][col];
            if a > PIVOT_TOL {
                let ratio = tab.rhs(i) / a;
                match best {
                    None => best = Some((ratio, i)),
                    Some((r, bi)) => {
                        if ratio < r - PIVOT_TOL
                            || (ratio < r + PIVOT_TOL && tab.basis[i] < tab.basis[bi])
                        {
                            best = Some((ratio, i));
                        }
                    }
                }
            }
        }
        let Some((_, row)) = best else {
            return None; // unbounded direction
        };
        tab.pivot(row, col);
    }
}

/// Solve `lp` with the reference engine.
///
/// # Panics
/// Panics if a lower bound is non-finite; callers must pre-validate with
/// [`LpProblem::validate_bounds`].
pub fn solve(lp: &LpProblem) -> LpSolution {
    if let Err(j) = lp.validate_bounds() {
        panic!("invalid bounds on column {j}; validate before solving");
    }
    let n = lp.num_cols();

    // --- build shifted rows: structural columns first -------------------
    // x = x' + l, x' >= 0. Upper bounds become rows x' <= u - l.
    struct RawRow {
        coeffs: Vec<(usize, f64)>,
        cmp: RowCmp,
        rhs: f64,
    }
    let mut raw: Vec<RawRow> = Vec::with_capacity(lp.num_rows() + n);
    for row in &lp.rows {
        let shift: f64 = row.coeffs.iter().map(|&(j, c)| c * lp.lower[j]).sum();
        raw.push(RawRow {
            coeffs: row.coeffs.clone(),
            cmp: row.cmp,
            rhs: row.rhs - shift,
        });
    }
    for j in 0..n {
        if lp.upper[j].is_finite() {
            raw.push(RawRow {
                coeffs: vec![(j, 1.0)],
                cmp: RowCmp::Le,
                rhs: lp.upper[j] - lp.lower[j],
            });
        }
    }

    let m = raw.len();
    // Column layout: [structural n][slacks s][artificials m][rhs]
    let num_slacks = raw.iter().filter(|r| r.cmp != RowCmp::Eq).count();
    let total = n + num_slacks + m;

    let mut tab = Tableau {
        a: vec![vec![0.0; total + 1]; m],
        basis: vec![0; m],
        total_cols: total,
    };

    let mut slack_idx = n;
    for (i, r) in raw.iter().enumerate() {
        for &(j, c) in &r.coeffs {
            tab.a[i][j] = c;
        }
        let mut rhs = r.rhs;
        match r.cmp {
            RowCmp::Le => {
                tab.a[i][slack_idx] = 1.0;
                slack_idx += 1;
            }
            RowCmp::Ge => {
                tab.a[i][slack_idx] = -1.0;
                slack_idx += 1;
            }
            RowCmp::Eq => {}
        }
        // Normalise to non-negative RHS so the artificial basis is feasible.
        if rhs < 0.0 {
            for v in tab.a[i].iter_mut() {
                *v = -*v;
            }
            rhs = -rhs;
        }
        tab.a[i][total] = rhs;
        let art = n + num_slacks + i;
        tab.a[i][art] = 1.0;
        tab.basis[i] = art;
    }

    let cap = iteration_cap(m, total);
    let mut total_iters = 0usize;

    // --- phase 1 ---------------------------------------------------------
    let mut phase1_cost = vec![0.0; total];
    for c in phase1_cost.iter_mut().skip(n + num_slacks) {
        *c = 1.0;
    }
    let allowed_all = vec![true; total];
    let Some((p1_obj, it1)) = run_phase(&mut tab, &phase1_cost, &allowed_all, cap) else {
        // Phase 1 objective is bounded below by 0; unbounded is impossible.
        unreachable!("phase 1 cannot be unbounded");
    };
    total_iters += it1;
    if p1_obj > 1e-6 {
        return LpSolution {
            status: LpStatus::Infeasible,
            objective: f64::INFINITY,
            x: Vec::new(),
            iterations: total_iters,
        };
    }

    // Drive any basic artificials out; drop redundant rows by pivoting on
    // whatever non-artificial column is available.
    for i in 0..m {
        if tab.basis[i] >= n + num_slacks {
            let col = (0..n + num_slacks).find(|&j| tab.a[i][j].abs() > 1e-7);
            if let Some(col) = col {
                tab.pivot(i, col);
            }
            // If no pivot column exists the row is redundant (all zeros);
            // the artificial stays basic at value ~0, which is harmless
            // because phase 2 forbids artificials from moving.
        }
    }

    // --- phase 2 ---------------------------------------------------------
    let mut phase2_cost = vec![0.0; total];
    phase2_cost[..n].copy_from_slice(&lp.objective);
    let mut allowed = vec![true; total];
    for a in allowed.iter_mut().skip(n + num_slacks) {
        *a = false; // artificials may never re-enter
    }
    let Some((_, it2)) = run_phase(&mut tab, &phase2_cost, &allowed, cap) else {
        return LpSolution::unbounded();
    };
    total_iters += it2;

    // --- extract ----------------------------------------------------------
    let mut x = lp.lower.clone();
    for i in 0..m {
        let b = tab.basis[i];
        if b < n {
            x[b] = lp.lower[b] + tab.rhs(i);
        }
    }
    let objective = lp.objective_at(&x);
    LpSolution {
        status: LpStatus::Optimal,
        objective,
        x,
        iterations: total_iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::{LpProblem, RowCmp};

    fn lp2(obj: [f64; 2]) -> LpProblem {
        let mut lp = LpProblem::with_columns(2);
        lp.objective = obj.to_vec();
        lp
    }

    #[test]
    fn simple_maximisation_as_min() {
        // max 3x + 2y st x + y <= 4, x <= 2 -> min -3x -2y
        let mut lp = lp2([-3.0, -2.0]);
        lp.push_row(vec![(0, 1.0), (1, 1.0)], RowCmp::Le, 4.0);
        lp.upper[0] = 2.0;
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(
            (sol.objective - (-10.0)).abs() < 1e-7,
            "obj={}",
            sol.objective
        );
        assert!((sol.x[0] - 2.0).abs() < 1e-7);
        assert!((sol.x[1] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn equality_constraints() {
        // min x + y st x + 2y = 3, x - y = 0 -> x = y = 1
        let mut lp = lp2([1.0, 1.0]);
        lp.push_row(vec![(0, 1.0), (1, 2.0)], RowCmp::Eq, 3.0);
        lp.push_row(vec![(0, 1.0), (1, -1.0)], RowCmp::Eq, 0.0);
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.x[0] - 1.0).abs() < 1e-7);
        assert!((sol.x[1] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn detects_infeasible() {
        let mut lp = lp2([0.0, 0.0]);
        lp.push_row(vec![(0, 1.0)], RowCmp::Ge, 5.0);
        lp.upper[0] = 1.0;
        assert_eq!(solve(&lp).status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut lp = lp2([-1.0, 0.0]);
        lp.push_row(vec![(1, 1.0)], RowCmp::Le, 1.0);
        assert_eq!(solve(&lp).status, LpStatus::Unbounded);
    }

    #[test]
    fn shifted_lower_bounds() {
        // min x st x >= 3 (bound), x <= 10
        let mut lp = LpProblem::with_columns(1);
        lp.objective = vec![1.0];
        lp.lower[0] = 3.0;
        lp.upper[0] = 10.0;
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.x[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn negative_rhs_rows() {
        // min y st -x - y <= -2 (i.e. x + y >= 2), x <= 1
        let mut lp = lp2([0.0, 1.0]);
        lp.push_row(vec![(0, -1.0), (1, -1.0)], RowCmp::Le, -2.0);
        lp.upper[0] = 1.0;
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 1.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Klee-Minty-ish degeneracy smoke test.
        let mut lp = LpProblem::with_columns(3);
        lp.objective = vec![-100.0, -10.0, -1.0];
        lp.push_row(vec![(0, 1.0)], RowCmp::Le, 1.0);
        lp.push_row(vec![(0, 20.0), (1, 1.0)], RowCmp::Le, 100.0);
        lp.push_row(vec![(0, 200.0), (1, 20.0), (2, 1.0)], RowCmp::Le, 10_000.0);
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(sol.objective <= -10_000.0 + 1e-6);
    }

    #[test]
    fn feasibility_of_returned_point() {
        let mut lp = LpProblem::with_columns(3);
        lp.objective = vec![1.0, 2.0, -1.0];
        lp.upper = vec![5.0, 5.0, 5.0];
        lp.push_row(vec![(0, 1.0), (1, 1.0), (2, 1.0)], RowCmp::Ge, 4.0);
        lp.push_row(vec![(0, 2.0), (2, 1.0)], RowCmp::Le, 6.0);
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(lp.max_violation(&sol.x) < 1e-6);
    }
}
